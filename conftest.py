"""Repo-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run
even without installing the package (offline environments may lack
the ``wheel`` package that ``pip install -e .`` needs; alternatively
use ``python setup.py develop``).
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
