# Single entry point for "is this change shippable":
#
#   make verify     tier-1 pytest + the bench regression gate
#   make test       tier-1 pytest only
#   make bench      regenerate BENCH_transient.json (full workloads)
#   make bench-check  gate only: rerun committed workloads, fail on a
#                     >15% speedup regression vs BENCH_transient.json
#
# The bench gate compares hardware-independent *speedups* (seed engine
# and golden runs are timed live on the same machine), so it is
# meaningful on any host.

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: verify test bench bench-check

verify: test bench-check

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/run_perf.py

bench-check:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/run_perf.py --check
