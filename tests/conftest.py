"""Shared fixtures: representative tanks and system configurations."""

from __future__ import annotations

import pytest

from repro.core.oscillator_system import OscillatorConfig
from repro.envelope import HardLimiter, RLCTank


@pytest.fixture
def standard_tank() -> RLCTank:
    """The baseline tank used across system-level tests.

    4 MHz, Q = 30, L = 1 uH: lands the regulated code in the middle of
    the DAC range (around segment 3/4), like the paper's typical
    application.
    """
    return RLCTank.from_frequency_and_q(4e6, 30, 1e-6)


@pytest.fixture
def high_q_tank() -> RLCTank:
    """A high-quality resonator (low driver current)."""
    return RLCTank.from_frequency_and_q(4e6, 300, 1e-6)


@pytest.fixture
def low_q_tank() -> RLCTank:
    """A poor resonator (near the driver's gm budget)."""
    return RLCTank.from_frequency_and_q(4e6, 8, 1e-6)


@pytest.fixture
def standard_limiter() -> HardLimiter:
    return HardLimiter(gm=5e-3, i_max=1e-3)


@pytest.fixture
def standard_config(standard_tank) -> OscillatorConfig:
    return OscillatorConfig(tank=standard_tank)
