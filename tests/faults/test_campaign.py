"""Tests for the FMEA campaign (the §7 reproduction)."""

import pytest

from repro.core import FailureKind
from repro.core.oscillator_system import OscillatorConfig
from repro.envelope import RLCTank
from repro.errors import FaultError
from repro.faults import FaultCampaign, coverage_summary, coverage_table, fault_by_name


def config_factory():
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    return OscillatorConfig(tank=tank)


@pytest.fixture(scope="module")
def campaign_result():
    campaign = FaultCampaign(
        config_factory=config_factory, injection_time=0.02, t_stop=0.04
    )
    return campaign.run()


class TestCampaign:
    def test_full_coverage(self, campaign_result):
        """§7: every external error condition must be detected."""
        assert campaign_result.coverage == 1.0

    def test_no_false_positives(self, campaign_result):
        assert campaign_result.false_positive_free

    def test_hard_faults_raise_missing_oscillation(self, campaign_result):
        for name in ("open-coil", "lc1-short-to-ground", "lc1-short-to-supply"):
            result = campaign_result.result_for(name)
            assert FailureKind.MISSING_OSCILLATION in result.detections

    def test_quality_faults_raise_low_amplitude_only(self, campaign_result):
        for name in ("coil-shorted-turns", "increased-series-resistance"):
            result = campaign_result.result_for(name)
            assert result.detections.keys() == {FailureKind.LOW_AMPLITUDE}

    def test_cap_faults_raise_asymmetry(self, campaign_result):
        for name in ("missing-cosc1", "cosc2-degraded"):
            result = campaign_result.result_for(name)
            assert FailureKind.ASYMMETRY in result.detections

    def test_supply_loss_silent_on_chip(self, campaign_result):
        """An unpowered chip raises nothing — system-level detection."""
        result = campaign_result.result_for("supply-loss")
        assert not result.detections
        assert result.correctly_detected  # correct = silent here

    def test_detuned_tank_silent_on_chip(self, campaign_result):
        """Frequency drift leaves the amplitude regulated — no on-chip
        flag; the paper defers frequency plausibility to system level."""
        result = campaign_result.result_for("tank-detuned")
        assert not result.detections
        assert result.correctly_detected

    def test_intermittent_fault_latches(self, campaign_result):
        """§7 trap case: the fault recovers after 8 ms but the latched
        detection keeps the system in its safe state (max code)."""
        result = campaign_result.result_for("intermittent-contact")
        assert result.spec.intermittent
        assert result.correctly_detected
        assert result.final_code == 127  # still forced after recovery

    def test_detection_latency_reported(self, campaign_result):
        result = campaign_result.result_for("increased-series-resistance")
        assert result.detection_latency is not None
        assert 0 < result.detection_latency < 0.02

    def test_unknown_result_lookup(self, campaign_result):
        with pytest.raises(FaultError):
            campaign_result.result_for("nope")


class TestReporting:
    def test_table_lists_all_faults(self, campaign_result):
        table = coverage_table(campaign_result)
        for spec_result in campaign_result.results:
            assert spec_result.spec.name in table

    def test_summary_line(self, campaign_result):
        summary = coverage_summary(campaign_result)
        assert "100%" in summary
        assert "yes" in summary


class TestValidation:
    def test_bad_times(self):
        with pytest.raises(FaultError):
            FaultCampaign(
                config_factory=config_factory, injection_time=0.05, t_stop=0.04
            )

    def test_single_fault_runner(self):
        campaign = FaultCampaign(
            config_factory=config_factory, injection_time=0.015, t_stop=0.03
        )
        result = campaign.run_single(fault_by_name("open-coil"))
        assert result.correctly_detected
        assert result.final_code == 127  # forced to max current (§9)
