"""Tests for the fault catalog."""

import pytest

from repro.core import FailureKind
from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.envelope import RLCTank
from repro.errors import FaultError
from repro.faults import fault_by_name, standard_fault_catalog


class TestCatalog:
    def test_covers_all_paper_conditions(self):
        names = {spec.name for spec in standard_fault_catalog()}
        assert "open-coil" in names
        assert "lc1-short-to-ground" in names
        assert "lc1-short-to-supply" in names
        assert "coil-shorted-turns" in names
        assert "increased-series-resistance" in names
        assert "missing-cosc1" in names
        assert "supply-loss" in names

    def test_every_on_chip_fault_has_expected_kind(self):
        for spec in standard_fault_catalog():
            if not spec.system_level:
                assert spec.expected_detection is not None
                assert isinstance(spec.expected_detection, FailureKind)

    def test_paper_refs_present(self):
        for spec in standard_fault_catalog():
            assert "§" in spec.paper_ref

    def test_lookup(self):
        spec = fault_by_name("open-coil")
        assert spec.expected_detection is FailureKind.MISSING_OSCILLATION
        with pytest.raises(FaultError):
            fault_by_name("gremlins")


class TestMutators:
    def make_system(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        return OscillatorDriverSystem(OscillatorConfig(tank=tank))

    def test_open_coil_kills_plant(self):
        system = self.make_system()
        fault_by_name("open-coil").mutate(system)
        assert not system.plant.oscillation_possible

    def test_tank_scaling(self):
        system = self.make_system()
        rs0 = system.plant.tank.series_resistance
        fault_by_name("increased-series-resistance").mutate(system)
        assert system.plant.tank.series_resistance == pytest.approx(2.5 * rs0)

    def test_asymmetry_split(self):
        system = self.make_system()
        fault_by_name("missing-cosc1").mutate(system)
        assert system.plant.amplitude_split != 1.0

    def test_supply_loss(self):
        system = self.make_system()
        fault_by_name("supply-loss").mutate(system)
        assert not system.plant.supply_ok

    def test_plant_version_bumped(self):
        """Mutators must invalidate the limiter cache via version."""
        system = self.make_system()
        v0 = system.plant.version
        fault_by_name("coil-shorted-turns").mutate(system)
        assert system.plant.version > v0
