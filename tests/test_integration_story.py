"""End-to-end integration: the paper's full narrative in one place.

§1 sensor drive -> §2-4 regulation -> §7 failure detection -> §9 safe
reaction -> §8 redundancy, crossing every abstraction level the
library provides (MNA netlist, envelope model, digital loop, fault
framework, sensor application).
"""

import math

import numpy as np
import pytest

from repro.analysis import envelope_by_peaks, oscillation_frequency
from repro.core import (
    ClockComparator,
    FailureKind,
    OscillatorNetlist,
    supervise_waveform,
)
from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.digital import EventScheduler, RecurringEvent, WatchdogTimer
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter
from repro.faults import fault_by_name
from repro.sensor import CouplingProfile, PositionReceiver, ReceivingCoilPair


@pytest.fixture(scope="module")
def tank():
    return RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)


class TestFullStory:
    def test_drive_measure_decode(self, tank):
        """§1: oscillator drives the coil, receiver decodes position."""
        system = OscillatorDriverSystem(OscillatorConfig(tank=tank))
        trace = system.run(0.03)
        assert not trace.any_failure

        profile = CouplingProfile(k_max=0.2, theta_range=math.pi / 3)
        coils = ReceivingCoilPair(profile)
        receiver = PositionReceiver(profile)
        theta_true = 0.35
        a1, a2 = coils.received_amplitudes(theta_true, trace.final_amplitude)
        assert receiver.estimate_angle(a1, a2) == pytest.approx(theta_true, abs=1e-9)

    def test_fault_mid_measurement_goes_safe(self, tank):
        """§7+§9: a coil failure mid-run is detected and the system
        reacts (max current, safe outputs) before the receiver would
        use a bogus position."""
        system = OscillatorDriverSystem(OscillatorConfig(tank=tank))
        spec = fault_by_name("open-coil")
        trace = system.run(0.04, faults=[(0.02, spec.mutate)])
        assert FailureKind.MISSING_OSCILLATION in trace.failures
        detect_time = trace.failures[FailureKind.MISSING_OSCILLATION]
        # Detected within two regulation periods of the fault.
        assert detect_time - 0.02 < 2.5e-3
        assert trace.final_code == 127
        # The receiver's plausibility check also fires: no signal.
        receiver = PositionReceiver(CouplingProfile())
        assert not receiver.signal_valid(0.0, 0.0)


class TestCarrierLevelSupervision:
    """The §7 'missing oscillations' chain on real MNA waveforms."""

    @pytest.fixture(scope="class")
    def netlist_run(self, tank):
        small = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
        netlist = OscillatorNetlist(small, vref=2.5)
        limiter = TanhLimiter(gm=6e-3, i_max=2e-3)
        t_stop = 60 / small.frequency
        return netlist.run_startup(code=0, t_stop=t_stop, limiter=limiter)

    def test_healthy_waveform_produces_clock(self, netlist_run):
        comparator = ClockComparator(hysteresis=0.05)
        watchdog = WatchdogTimer(timeout=2e-6)
        # Skip the sub-sensitivity seed interval: supervise the tail.
        diff = netlist_run.differential
        tail = diff.window(0.3 * diff.t_stop, diff.t_stop)
        assert not supervise_waveform(tail, comparator, watchdog)
        freq = comparator.clock_frequency(tail)
        assert freq == pytest.approx(4e6, rel=0.02)

    def test_seed_interval_would_trip_a_fast_watchdog(self, netlist_run):
        """Before the amplitude passes the comparator sensitivity there
        is no clock — exactly why the real chip arms the timeout only
        after enable + startup margin."""
        comparator = ClockComparator(hysteresis=0.5)  # deliberately deaf
        watchdog = WatchdogTimer(timeout=1e-6)
        assert supervise_waveform(netlist_run.differential, comparator, watchdog)


class TestEventDrivenRegulation:
    """Drive the regulation tick from the discrete-event kernel — the
    digital substrate and the analog plant co-simulated."""

    def test_scheduler_driven_loop_settles(self, tank):
        from repro.core import design_window
        from repro.core.regulation_loop import RegulationLoop
        from repro.core.driver_iv import DriverIV
        from repro.envelope import steady_state_amplitude

        driver = DriverIV()
        detector_gain = 1.0 / math.pi
        target_amplitude = 1.35
        loop = RegulationLoop(
            comparator=design_window(detector_gain * target_amplitude),
            initial_code=105,
        )
        scheduler = EventScheduler()
        amplitudes = []

        def tick(now: float) -> None:
            # Quasi-static plant: the envelope settles far faster than
            # the 1 ms tick (ring tau is ~2.4 us here).
            limiter = driver.limiter(loop.code)
            amplitude = steady_state_amplitude(tank, limiter)
            amplitudes.append(amplitude)
            loop.tick(now, detector_gain * amplitude)

        RecurringEvent(scheduler, period=1e-3, callback=tick)
        scheduler.run_until(0.0605)

        assert len(amplitudes) == 60
        assert amplitudes[-1] == pytest.approx(target_amplitude, rel=0.06)
        # Settled: the last ticks hold.
        from repro.core.regulation_loop import RegulationAction

        assert all(
            e.action is RegulationAction.HOLD for e in loop.history[-5:]
        )


class TestAbstractionConsistency:
    """Numbers must agree when crossing abstraction levels."""

    def test_envelope_system_netlist_triangle(self):
        """EnvelopeModel, OscillatorDriverSystem (with regulation
        disabled via equal presets), and the MNA netlist give the same
        amplitude for the same code."""
        small = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
        limiter = TanhLimiter(gm=6e-3, i_max=2e-3)

        a_env = EnvelopeModel(small, limiter).steady_state()

        netlist = OscillatorNetlist(small, vref=2.5)
        t_stop = 80 / small.frequency
        result = netlist.run_startup(code=0, t_stop=t_stop, limiter=limiter)
        tail = result.differential.window(0.75 * t_stop, t_stop)
        a_mna = 0.5 * tail.peak_to_peak()

        assert a_mna == pytest.approx(a_env, rel=0.05)
        assert oscillation_frequency(tail) == pytest.approx(
            small.frequency, rel=0.01
        )
