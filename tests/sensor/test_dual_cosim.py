"""Tests for the dynamic dual-oscillator co-simulation."""

import numpy as np
import pytest

from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.envelope import RLCTank
from repro.errors import ConfigurationError, SimulationError
from repro.sensor.dual_cosim import DualCoSimulation


def make_config():
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    return OscillatorConfig(tank=tank)


class TestSteadyState:
    def test_both_regulate_into_window(self):
        co = DualCoSimulation(
            config_1=make_config(), config_2=make_config(), coupling=0.3
        )
        trace = co.run(0.04)
        for amp in (trace.amplitude_1[-1], trace.amplitude_2[-1]):
            assert abs(amp / 1.35 - 1.0) < 0.06

    def test_mutual_coupling_reduces_drive_codes(self):
        """The partners feed each other energy, so both need less
        drive current than a solo system."""
        solo_trace = OscillatorDriverSystem(make_config()).run(0.04)
        co = DualCoSimulation(
            config_1=make_config(), config_2=make_config(), coupling=0.3
        )
        trace = co.run(0.04)
        assert trace.code_1[-1] < solo_trace.final_code
        assert trace.code_2[-1] < solo_trace.final_code

    def test_zero_coupling_matches_solo(self):
        solo_trace = OscillatorDriverSystem(make_config()).run(0.04)
        co = DualCoSimulation(
            config_1=make_config(), config_2=make_config(), coupling=0.0
        )
        trace = co.run(0.04)
        assert trace.code_1[-1] == solo_trace.final_code
        assert trace.amplitude_1[-1] == pytest.approx(
            solo_trace.final_amplitude, rel=1e-6
        )

    def test_symmetric_systems_identical(self):
        co = DualCoSimulation(
            config_1=make_config(), config_2=make_config(), coupling=0.3
        )
        trace = co.run(0.04)
        assert trace.amplitude_1[-1] == pytest.approx(trace.amplitude_2[-1])
        assert trace.code_1[-1] == trace.code_2[-1]


class TestPartnerDeath:
    def test_survivor_recovers_into_window(self):
        co = DualCoSimulation(
            config_1=make_config(),
            config_2=make_config(),
            coupling=0.3,
            kill_2_at=0.02,
        )
        trace = co.run(0.05)
        # System 2 dies.
        assert trace.amplitude_2[-1] < 0.01
        # System 1 dips but the loop compensates by raising the code.
        i_before = int(np.searchsorted(trace.t, 0.0195))
        assert trace.code_1[-1] > trace.code_1[i_before]
        assert abs(trace.amplitude_1[-1] / 1.35 - 1.0) < 0.06

    def test_dip_stays_inside_safety_margin(self):
        """Losing the partner's contribution must never trip the
        survivor's low-amplitude monitor (k = 0.3 contributes ~30 %,
        the monitor threshold is 50 %)."""
        co = DualCoSimulation(
            config_1=make_config(),
            config_2=make_config(),
            coupling=0.3,
            kill_2_at=0.02,
        )
        trace = co.run(0.05)
        after = trace.amplitude_1[int(np.searchsorted(trace.t, 0.02)) :]
        assert after.min() > 0.5 * 1.35


class TestStaggeredEnable:
    def test_late_system_comes_up(self):
        co = DualCoSimulation(
            config_1=make_config(),
            config_2=make_config(),
            coupling=0.3,
            enable_2_at=0.01,
        )
        trace = co.run(0.04)
        i_early = int(np.searchsorted(trace.t, 0.005))
        assert trace.amplitude_2[i_early] == 0.0
        assert abs(trace.amplitude_2[-1] / 1.35 - 1.0) < 0.06

    def test_startup_time_helper(self):
        co = DualCoSimulation(
            config_1=make_config(), config_2=make_config(), coupling=0.3
        )
        trace = co.run(0.03)
        assert trace.startup_time(1) < 0.002
        with pytest.raises(ConfigurationError):
            trace.amplitude(3)


class TestValidation:
    def test_bad_coupling(self):
        with pytest.raises(ConfigurationError):
            DualCoSimulation(make_config(), make_config(), coupling=1.0)

    def test_bad_kill_time(self):
        co = DualCoSimulation(
            make_config(), make_config(), coupling=0.3, kill_2_at=1.0
        )
        with pytest.raises(ConfigurationError):
            co.run(0.05)

    def test_bad_t_stop(self):
        co = DualCoSimulation(make_config(), make_config())
        with pytest.raises(SimulationError):
            co.run(0.0)
