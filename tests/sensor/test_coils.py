"""Tests for the coupled-coil position-sensor model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.envelope import RLCTank
from repro.errors import ConfigurationError
from repro.sensor import CouplingProfile, ReceivingCoilPair, tank_with_parallel_load


class TestCouplingProfile:
    def test_center_position_symmetric(self):
        k1, k2 = CouplingProfile().couplings(0.0)
        assert k1 == pytest.approx(k2)

    def test_sum_is_constant(self):
        profile = CouplingProfile(k_max=0.2, theta_range=math.pi / 3)
        totals = [
            sum(profile.couplings(theta))
            for theta in (-math.pi / 3, -0.2, 0.0, 0.4, math.pi / 3)
        ]
        assert all(t == pytest.approx(0.2) for t in totals)

    def test_extremes(self):
        profile = CouplingProfile(k_max=0.2, theta_range=math.pi / 3)
        k1, k2 = profile.couplings(math.pi / 3)
        assert k1 == pytest.approx(0.2)
        assert k2 == pytest.approx(0.0, abs=1e-12)

    def test_out_of_range_angle(self):
        with pytest.raises(ConfigurationError):
            CouplingProfile().couplings(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CouplingProfile(k_max=0.0)
        with pytest.raises(ConfigurationError):
            CouplingProfile(theta_range=2.0)


class TestReceivingCoils:
    def test_amplitudes_scale_with_excitation(self):
        pair = ReceivingCoilPair(CouplingProfile())
        a1, a2 = pair.received_amplitudes(0.3, excitation_peak=1.35)
        b1, b2 = pair.received_amplitudes(0.3, excitation_peak=2.7)
        assert b1 == pytest.approx(2 * a1)
        assert b2 == pytest.approx(2 * a2)

    def test_negative_excitation_rejected(self):
        pair = ReceivingCoilPair(CouplingProfile())
        with pytest.raises(ConfigurationError):
            pair.received_amplitudes(0.0, -1.0)


class TestTankLoading:
    def test_infinite_load_is_identity(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        loaded = tank_with_parallel_load(tank, 1e12)
        assert loaded.series_resistance == pytest.approx(
            tank.series_resistance, rel=1e-3
        )

    def test_parallel_load_reduces_rp(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        rp = tank.parallel_resistance
        loaded = tank_with_parallel_load(tank, rp)  # equal load halves Rp
        assert loaded.parallel_resistance == pytest.approx(rp / 2, rel=0.02)

    def test_q_drops_with_load(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        loaded = tank_with_parallel_load(tank, tank.parallel_resistance / 3)
        assert loaded.quality_factor < tank.quality_factor / 2

    def test_validation(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        with pytest.raises(ConfigurationError):
            tank_with_parallel_load(tank, 0.0)


@given(theta=st.floats(-1.0, 1.0))
def test_property_couplings_bounded(theta):
    profile = CouplingProfile(k_max=0.2, theta_range=1.0)
    k1, k2 = profile.couplings(theta)
    assert 0.0 <= k1 <= 0.2
    assert 0.0 <= k2 <= 0.2
    assert k1 + k2 == pytest.approx(0.2)
