"""Tests for the ratiometric position receiver."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sensor import CouplingProfile, PositionReceiver, ReceivingCoilPair


@pytest.fixture
def receiver():
    return PositionReceiver(CouplingProfile(k_max=0.2, theta_range=math.pi / 3))


class TestEstimation:
    def test_roundtrip_through_coils(self, receiver):
        """coils(theta) -> amplitudes -> estimate == theta."""
        pair = ReceivingCoilPair(receiver.profile)
        for theta in (-0.9, -0.3, 0.0, 0.456, 1.0):
            a1, a2 = pair.received_amplitudes(theta, excitation_peak=1.35)
            assert receiver.estimate_angle(a1, a2) == pytest.approx(
                theta, abs=1e-9
            )

    def test_ratiometric_amplitude_independent(self, receiver):
        """The estimate must not depend on the excitation amplitude
        (which regulation only holds within the window width)."""
        pair = ReceivingCoilPair(receiver.profile)
        estimates = []
        for excitation in (1.0, 1.35, 1.4):
            a1, a2 = pair.received_amplitudes(0.5, excitation)
            estimates.append(receiver.estimate_angle(a1, a2))
        assert max(estimates) - min(estimates) < 1e-12

    def test_normalized_difference(self, receiver):
        assert receiver.normalized_difference(0.3, 0.1) == pytest.approx(0.5)

    def test_weak_signal_rejected(self, receiver):
        with pytest.raises(ConfigurationError):
            receiver.estimate_angle(1e-6, 1e-6)

    def test_signal_valid(self, receiver):
        assert receiver.signal_valid(0.1, 0.1)
        assert not receiver.signal_valid(1e-6, 1e-6)

    def test_negative_amplitudes_rejected(self, receiver):
        with pytest.raises(ConfigurationError):
            receiver.normalized_difference(-0.1, 0.2)


@given(theta=st.floats(-1.0, 1.0))
def test_property_estimate_monotonic(theta):
    profile = CouplingProfile(k_max=0.2, theta_range=1.0)
    receiver = PositionReceiver(profile)
    pair = ReceivingCoilPair(profile)
    a1, a2 = pair.received_amplitudes(theta, 1.0)
    recovered = receiver.estimate_angle(a1, a2)
    assert recovered == pytest.approx(theta, abs=1e-6)
