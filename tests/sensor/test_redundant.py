"""Tests for the redundant dual-oscillator scenario (Fig 9, §8)."""

import math

import pytest

from repro.core.oscillator_system import OscillatorConfig
from repro.core.output_stage import run_supply_loss_sweep
from repro.envelope import RLCTank
from repro.errors import ConfigurationError
from repro.sensor import DualSystemScenario, effective_load_resistance

_SWEEPS = {}


def sweep(topology):
    if topology not in _SWEEPS:
        _SWEEPS[topology] = run_supply_loss_sweep(topology, n_points=61)
    return _SWEEPS[topology]


def make_config(target=1.35):
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    return OscillatorConfig(tank=tank, target_peak_amplitude=target)


class TestEffectiveLoad:
    def test_fig11_much_lighter_than_fig10a(self):
        r11 = effective_load_resistance(sweep("fig11"), 2.0)
        r10a = effective_load_resistance(sweep("fig10a"), 2.0)
        assert r11 > 20 * r10a

    def test_load_drops_with_amplitude(self):
        r_small = effective_load_resistance(sweep("fig11"), 1.0)
        r_large = effective_load_resistance(sweep("fig11"), 3.0)
        assert r_large < r_small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_load_resistance(sweep("fig11"), 0.0)


class TestScenario:
    def test_fig11_partner_survives(self):
        """The paper's claim: losing one supply must not disturb the
        other system (Fig 17/18 operating point)."""
        outcome = DualSystemScenario(
            config=make_config(),
            topology="fig11",
            coupling=0.6,
            fault_time=0.02,
            t_stop=0.04,
            sweep=sweep("fig11"),
        ).run()
        assert outcome.survived
        assert abs(outcome.amplitude_drop) < 0.05
        assert not outcome.trace.any_failure

    def test_fig10a_partner_fails_at_higher_amplitude(self):
        """Ablation: with a standard CMOS output stage the dead system
        clamps the live tank once the swing exceeds the diode drops."""
        outcome = DualSystemScenario(
            config=make_config(target=2.0),
            topology="fig10a",
            coupling=0.6,
            fault_time=0.02,
            t_stop=0.04,
            sweep=sweep("fig10a"),
        ).run()
        assert not outcome.survived
        assert outcome.trace.any_failure

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DualSystemScenario(config=make_config(), coupling=0.0)
        with pytest.raises(ConfigurationError):
            DualSystemScenario(config=make_config(), fault_time=1.0, t_stop=0.5)
