"""Public-API sanity: top-level imports, __all__ hygiene, units."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The names used in the README quickstart must exist."""
        from repro import (
            OscillatorConfig,
            OscillatorDriverSystem,
            RLCTank,
        )

        tank = RLCTank.from_frequency_and_q(4e6, 30, 1e-6)
        system = OscillatorDriverSystem(OscillatorConfig(tank=tank))
        trace = system.run(0.005)
        assert trace.final_amplitude >= 0


SUBPACKAGES = [
    "repro.analysis",
    "repro.circuits",
    "repro.core",
    "repro.digital",
    "repro.envelope",
    "repro.faults",
    "repro.mc",
    "repro.sensor",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


class TestUnits:
    def test_constants(self):
        from repro.units import MA, MHZ, UA, parallel, clamp, db, from_db

        assert 12.5 * UA == pytest.approx(12.5e-6)
        assert 5 * MHZ == 5e6
        assert parallel(2.0, 2.0) == pytest.approx(1.0)
        assert parallel(1.0, float("inf")) == 1.0
        assert parallel(0.0, 5.0) == 0.0
        assert clamp(5, 0, 3) == 3
        assert from_db(db(7.7)) == pytest.approx(7.7)

    def test_validation(self):
        from repro.units import clamp, db, parallel

        with pytest.raises(ValueError):
            db(-1.0)
        with pytest.raises(ValueError):
            clamp(0, 3, 1)
        with pytest.raises(ValueError):
            parallel()


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_convergence_error_metadata(self):
        from repro.errors import ConvergenceError

        err = ConvergenceError("x", iterations=5, residual=0.1)
        assert err.iterations == 5
        assert err.residual == 0.1
