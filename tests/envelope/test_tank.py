"""Tests for the RLC tank math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.envelope import RLCTank
from repro.errors import ConfigurationError


class TestConstruction:
    def test_direct(self):
        tank = RLCTank(10e-6, 1e-9, 5.0)
        assert tank.inductance == 10e-6

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            RLCTank(0.0, 1e-9, 1.0)
        with pytest.raises(ConfigurationError):
            RLCTank(1e-6, -1e-9, 1.0)
        with pytest.raises(ConfigurationError):
            RLCTank(1e-6, 1e-9, 0.0)

    def test_from_frequency_and_q_roundtrip(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        assert tank.frequency == pytest.approx(4e6, rel=1e-12)
        assert tank.quality_factor == pytest.approx(30.0, rel=1e-12)


class TestDerived:
    def test_omega0_uses_differential_capacitance(self):
        tank = RLCTank(10e-6, 1e-9, 5.0)
        # C_diff = C/2 -> omega0 = sqrt(2/(L C)).
        assert tank.omega0 == pytest.approx(math.sqrt(2 / (10e-6 * 1e-9)))
        assert tank.differential_capacitance == pytest.approx(0.5e-9)

    def test_parallel_resistance_high_q_limit(self):
        tank = RLCTank.from_frequency_and_q(4e6, 100.0, 1e-6)
        approx = 2 * tank.inductance / (tank.capacitance * tank.series_resistance)
        assert tank.parallel_resistance == pytest.approx(approx, rel=1e-3)

    def test_ring_down_tau(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        assert tank.ring_down_tau() == pytest.approx(
            2 * 30.0 / tank.omega0, rel=1e-12
        )

    def test_stored_energy(self):
        tank = RLCTank(10e-6, 1e-9, 5.0)
        assert tank.stored_energy(2.0) == pytest.approx(0.5 * 0.5e-9 * 4.0)

    def test_loss_power(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        # P = A^2 / (2 Rp)
        assert tank.loss_power(1.0) == pytest.approx(
            1.0 / (2 * tank.parallel_resistance)
        )

    def test_negative_amplitude_rejected(self):
        tank = RLCTank(10e-6, 1e-9, 5.0)
        with pytest.raises(ConfigurationError):
            tank.stored_energy(-1.0)
        with pytest.raises(ConfigurationError):
            tank.loss_power(-1.0)


class TestScaling:
    def test_scaled_q(self):
        tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
        better = tank.scaled(10.0)
        assert better.quality_factor == pytest.approx(300.0, rel=1e-9)
        assert better.frequency == pytest.approx(tank.frequency, rel=1e-12)

    def test_invalid_scale(self):
        tank = RLCTank(1e-6, 1e-9, 1.0)
        with pytest.raises(ConfigurationError):
            tank.scaled(0.0)


@given(
    f=st.floats(2e6, 5e6),
    q=st.floats(2.0, 500.0),
    l=st.floats(0.5e-6, 50e-6),
)
def test_property_constructor_consistency(f, q, l):
    """from_frequency_and_q round-trips for the paper's whole range."""
    tank = RLCTank.from_frequency_and_q(f, q, l)
    assert tank.frequency == pytest.approx(f, rel=1e-9)
    assert tank.quality_factor == pytest.approx(q, rel=1e-9)
    # Rp >= ... always exceeds Rs for Q > 1
    if q > 1:
        assert tank.parallel_resistance > tank.series_resistance
