"""Tests for envelope dynamics, incl. cross-validation against the MNA
transient of the same oscillator — the two substrates must agree."""

import math

import numpy as np
import pytest

from repro.analysis import envelope_by_peaks, oscillation_frequency
from repro.circuits import Circuit, TransientOptions, run_transient
from repro.envelope import (
    EnvelopeModel,
    HardLimiter,
    K_SQUARE_WAVE,
    RLCTank,
    TanhLimiter,
    small_signal_growth_rate,
    steady_state_amplitude,
)
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture
def tank():
    return RLCTank.from_frequency_and_q(4e6, 50.0, 10e-6)


class TestGrowthRate:
    def test_sign(self, tank):
        critical = 1.0 / tank.parallel_resistance
        assert small_signal_growth_rate(tank, 2 * critical) > 0
        assert small_signal_growth_rate(tank, 0.5 * critical) < 0

    def test_value(self, tank):
        gm = 2.0 / tank.parallel_resistance
        expected = (gm - 1 / tank.parallel_resistance) / (
            2 * tank.differential_capacitance
        )
        assert small_signal_growth_rate(tank, gm) == pytest.approx(expected)

    def test_invalid_gm(self, tank):
        with pytest.raises(ConfigurationError):
            small_signal_growth_rate(tank, -1.0)


class TestSteadyState:
    def test_eq4_deep_limiting(self, tank):
        """RMS amplitude = k * Rp * IM (paper Eq 4)."""
        i_max = 1e-3
        lim = HardLimiter(gm=10e-3, i_max=i_max)
        a_pk = steady_state_amplitude(tank, lim)
        v_rms = a_pk / math.sqrt(2)
        expected = K_SQUARE_WAVE * tank.parallel_resistance * i_max
        assert v_rms == pytest.approx(expected, rel=1e-3)

    def test_amplitude_proportional_to_im(self, tank):
        """Eq 5: dV/V = dIM/IM."""
        a1 = steady_state_amplitude(tank, HardLimiter(gm=10e-3, i_max=1e-3))
        a2 = steady_state_amplitude(tank, HardLimiter(gm=10e-3, i_max=1.05e-3))
        assert a2 / a1 == pytest.approx(1.05, rel=1e-3)

    def test_below_critical_gm_returns_zero(self, tank):
        weak = HardLimiter(gm=0.5 / tank.parallel_resistance, i_max=1e-3)
        assert steady_state_amplitude(tank, weak) == 0.0


class TestSimulation:
    def test_startup_reaches_steady_state(self, tank):
        model = EnvelopeModel(tank, HardLimiter(gm=10e-3, i_max=1e-3))
        a_ss = model.steady_state()
        wave = model.simulate(20 * tank.ring_down_tau())
        assert wave.y[-1] == pytest.approx(a_ss, rel=1e-3)

    def test_decay_from_above(self, tank):
        model = EnvelopeModel(tank, HardLimiter(gm=10e-3, i_max=1e-3))
        a_ss = model.steady_state()
        wave = model.simulate(20 * tank.ring_down_tau(), a0=3 * a_ss)
        assert wave.y[-1] == pytest.approx(a_ss, rel=1e-3)
        assert wave.y[0] > wave.y[-1]

    def test_startup_time_orders(self, tank):
        strong = EnvelopeModel(tank, HardLimiter(gm=20e-3, i_max=1e-3))
        weak = EnvelopeModel(tank, HardLimiter(gm=2e-3, i_max=1e-3))
        assert strong.startup_time() < weak.startup_time()

    def test_no_start_raises(self, tank):
        model = EnvelopeModel(
            tank, HardLimiter(gm=0.1 / tank.parallel_resistance, i_max=1e-3)
        )
        with pytest.raises(SimulationError):
            model.startup_time()

    def test_invalid_inputs(self, tank):
        model = EnvelopeModel(tank, HardLimiter(gm=10e-3, i_max=1e-3))
        with pytest.raises(SimulationError):
            model.simulate(0.0)
        with pytest.raises(SimulationError):
            model.startup_time(fraction=1.5)


class TestCrossValidationAgainstMNA:
    """The envelope model and the carrier-level MNA transient describe
    the same oscillator; their steady-state amplitude and frequency
    must agree within a few percent."""

    def test_amplitude_and_frequency(self):
        tank = RLCTank.from_frequency_and_q(3e6, 25.0, 5e-6)
        limiter = TanhLimiter(gm=8e-3, i_max=0.8e-3)

        # Envelope prediction.
        model = EnvelopeModel(tank, limiter)
        a_envelope = model.steady_state()

        # MNA transient of the identical circuit.
        circuit = Circuit("xval")
        circuit.inductor("L", "a", "m", tank.inductance, ic=1e-4)
        circuit.resistor("Rs", "m", "b", tank.series_resistance)
        circuit.capacitor("Ca", "a", "0", tank.capacitance, ic=0.0)
        circuit.capacitor("Cb", "b", "0", tank.capacitance, ic=0.0)
        circuit.nonlinear_vccs("G", "a", "b", "a", "b", lambda v: -limiter(v))
        period = 1.0 / tank.frequency
        res = run_transient(
            circuit,
            TransientOptions(
                t_stop=160 * period,
                dt=period / 60,
                use_dc_operating_point=False,
            ),
        )
        diff = res.differential("a", "b")
        tail = diff.window(120 * period, 160 * period)
        a_mna = 0.5 * tail.peak_to_peak()
        f_mna = oscillation_frequency(tail)

        assert a_mna == pytest.approx(a_envelope, rel=0.05)
        assert f_mna == pytest.approx(tank.frequency, rel=0.01)
