"""Tests for injection locking (Adler) of the dual oscillators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.envelope import RLCTank
from repro.envelope.locking import (
    InjectionLocking,
    frequency_mismatch_from_tolerances,
)
from repro.errors import ConfigurationError


@pytest.fixture
def tank():
    return RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)


class TestLockRange:
    def test_adler_formula(self, tank):
        lock = InjectionLocking(tank, injection_ratio=0.3)
        expected = tank.omega0 / (2 * 30.0) * 0.3
        assert lock.lock_range == pytest.approx(expected)

    def test_scales_with_coupling(self, tank):
        weak = InjectionLocking(tank, injection_ratio=0.1)
        strong = InjectionLocking(tank, injection_ratio=0.4)
        assert strong.lock_range == pytest.approx(4 * weak.lock_range)

    def test_higher_q_narrower_lock(self):
        low_q = RLCTank.from_frequency_and_q(4e6, 10.0, 1e-6)
        high_q = RLCTank.from_frequency_and_q(4e6, 100.0, 1e-6)
        ratio = 0.3
        assert (
            InjectionLocking(high_q, ratio).relative_lock_range
            < InjectionLocking(low_q, ratio).relative_lock_range
        )

    def test_invalid_ratio(self, tank):
        with pytest.raises(ConfigurationError):
            InjectionLocking(tank, injection_ratio=0.0)
        with pytest.raises(ConfigurationError):
            InjectionLocking(tank, injection_ratio=1.5)


class TestLockDecision:
    def test_locks_inside_range(self, tank):
        lock = InjectionLocking(tank, injection_ratio=0.6)
        # Relative lock range = 0.6 / 60 = 1 %.
        assert lock.relative_lock_range == pytest.approx(0.01)
        assert lock.locks(0.005)
        assert lock.locks(-0.009)
        assert not lock.locks(0.02)

    def test_paper_scenario_with_1pct_parts(self, tank):
        """Q=30 sensor, k=0.6 coupling: 1 %-tolerance L *or* C keeps
        the two systems inside the lock range — 'running at the same
        frequency' as §8 assumes; 1 % on both is marginal-to-out."""
        lock = InjectionLocking(tank, injection_ratio=0.6)
        mismatch_good = frequency_mismatch_from_tolerances(0.004, 0.004)
        mismatch_bad = frequency_mismatch_from_tolerances(0.01, 0.01)
        assert lock.locks(mismatch_good)
        assert not lock.locks(mismatch_bad)

    def test_phase_offset(self, tank):
        lock = InjectionLocking(tank, injection_ratio=0.3)
        assert lock.locked_phase(0.0) == 0.0
        edge = lock.max_tolerable_detuning()
        assert lock.locked_phase(edge) == pytest.approx(math.pi / 2)
        with pytest.raises(ConfigurationError):
            lock.locked_phase(2 * edge)

    def test_beat_frequency(self, tank):
        lock = InjectionLocking(tank, injection_ratio=0.3)
        assert lock.beat_frequency(lock.max_tolerable_detuning() / 2) == 0.0
        outside = 2 * lock.max_tolerable_detuning()
        beat = lock.beat_frequency(outside)
        assert beat > 0
        # Far outside, the beat approaches the raw detuning.
        far = 20 * lock.max_tolerable_detuning()
        assert lock.beat_frequency(far) == pytest.approx(
            far * tank.frequency, rel=0.01
        )


class TestTolerances:
    def test_sum_of_tolerances(self):
        assert frequency_mismatch_from_tolerances(0.01, 0.02) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            frequency_mismatch_from_tolerances(-0.01, 0.0)


@given(ratio=st.floats(0.01, 0.99), detuning=st.floats(0, 0.05))
def test_property_lock_consistency(ratio, detuning):
    """locks() iff beat_frequency() == 0 iff locked_phase() exists."""
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    lock = InjectionLocking(tank, injection_ratio=ratio)
    if lock.locks(detuning):
        assert lock.beat_frequency(detuning) == 0.0
        assert abs(lock.locked_phase(detuning)) <= math.pi / 2
    else:
        assert lock.beat_frequency(detuning) > 0.0
