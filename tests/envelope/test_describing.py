"""Tests of the describing-function machinery (k-factor, I1, Gm_eff)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envelope import (
    HardLimiter,
    K_SQUARE_WAVE,
    TanhLimiter,
    delivered_power,
    effective_gm,
    fundamental_current,
    k_factor,
    mean_abs_current,
)
from repro.errors import ConfigurationError


class TestLimiterBasics:
    def test_hard_limiter_shape(self):
        lim = HardLimiter(gm=1e-3, i_max=1e-4)
        assert lim(0.05) == pytest.approx(5e-5)
        assert lim(10.0) == pytest.approx(1e-4)
        assert lim(-10.0) == pytest.approx(-1e-4)
        assert lim.corner_voltage == pytest.approx(0.1)

    def test_tanh_limiter_asymptotes(self):
        lim = TanhLimiter(gm=1e-3, i_max=1e-4)
        assert lim(100.0) == pytest.approx(1e-4, rel=1e-6)
        # small-signal slope = gm
        assert lim(1e-6) / 1e-6 == pytest.approx(1e-3, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardLimiter(gm=0.0, i_max=1.0)
        with pytest.raises(ConfigurationError):
            HardLimiter(gm=1.0, i_max=-1.0)


class TestFundamental:
    def test_linear_region(self):
        lim = HardLimiter(gm=2e-3, i_max=1.0)
        assert fundamental_current(lim, 0.5) == pytest.approx(1e-3, rel=1e-9)

    def test_square_wave_limit(self):
        lim = HardLimiter(gm=1.0, i_max=1e-3)
        # A >> corner: I1 -> 4 IM / pi
        assert fundamental_current(lim, 1000 * lim.corner_voltage) == pytest.approx(
            4e-3 / math.pi, rel=1e-4
        )

    def test_analytic_matches_quadrature(self):
        """The closed form must agree with brute-force integration."""
        lim = HardLimiter(gm=5e-3, i_max=1e-3)
        for amp in (0.05, 0.2, 0.5, 2.0, 20.0):
            analytic = lim.fundamental(amp)
            quad = super(HardLimiter, lim).fundamental(amp, n=8192)
            assert analytic == pytest.approx(quad, rel=1e-5)

    def test_zero_amplitude(self):
        lim = HardLimiter(gm=1e-3, i_max=1e-3)
        assert fundamental_current(lim, 0.0) == 0.0

    def test_negative_amplitude_rejected(self):
        lim = HardLimiter(gm=1e-3, i_max=1e-3)
        with pytest.raises(ConfigurationError):
            fundamental_current(lim, -1.0)


class TestMeanAbs:
    def test_linear_region(self):
        lim = HardLimiter(gm=2e-3, i_max=1.0)
        # mean |gm A sin| = (2/pi) gm A
        assert mean_abs_current(lim, 0.5) == pytest.approx(
            2 / math.pi * 1e-3, rel=1e-9
        )

    def test_square_limit(self):
        lim = HardLimiter(gm=1.0, i_max=1e-3)
        assert mean_abs_current(lim, 1000 * lim.corner_voltage) == pytest.approx(
            1e-3, rel=1e-3
        )

    def test_analytic_matches_quadrature(self):
        lim = HardLimiter(gm=5e-3, i_max=1e-3)
        for amp in (0.1, 0.3, 1.0, 10.0):
            analytic = lim.mean_abs(amp)
            quad = super(HardLimiter, lim).mean_abs(amp, n=8192)
            assert analytic == pytest.approx(quad, rel=1e-4)


class TestKFactor:
    def test_paper_value_deep_limiting(self):
        """k ≈ 0.9 for the hard-limited driver (paper Eq 3/4)."""
        lim = HardLimiter(gm=10e-3, i_max=1e-3)
        k = k_factor(lim, 200 * lim.corner_voltage)
        assert k == pytest.approx(K_SQUARE_WAVE, rel=1e-3)
        assert k == pytest.approx(0.90, abs=0.01)

    def test_k_square_wave_constant(self):
        assert K_SQUARE_WAVE == pytest.approx(2 * math.sqrt(2) / math.pi)

    def test_tanh_close_to_hard(self):
        hard = HardLimiter(gm=10e-3, i_max=1e-3)
        soft = TanhLimiter(gm=10e-3, i_max=1e-3)
        a = 50 * hard.corner_voltage
        assert k_factor(soft, a) == pytest.approx(k_factor(hard, a), rel=0.05)

    def test_requires_positive_amplitude(self):
        lim = HardLimiter(gm=1e-3, i_max=1e-3)
        with pytest.raises(ConfigurationError):
            k_factor(lim, 0.0)


class TestEffectiveGm:
    def test_small_signal_equals_gm(self):
        lim = HardLimiter(gm=3e-3, i_max=1.0)
        assert effective_gm(lim, 1e-6) == pytest.approx(3e-3, rel=1e-6)

    def test_falls_with_amplitude(self):
        lim = HardLimiter(gm=3e-3, i_max=1e-3)
        gms = [effective_gm(lim, a) for a in (0.1, 1.0, 10.0, 100.0)]
        assert all(g1 >= g2 for g1, g2 in zip(gms, gms[1:]))

    def test_inverse_amplitude_rolloff(self):
        lim = HardLimiter(gm=3e-3, i_max=1e-3)
        g10 = effective_gm(lim, 10.0)
        g100 = effective_gm(lim, 100.0)
        assert g10 / g100 == pytest.approx(10.0, rel=1e-2)


class TestDeliveredPower:
    def test_power_is_half_a_i1(self):
        lim = HardLimiter(gm=5e-3, i_max=1e-3)
        a = 3.0
        assert delivered_power(lim, a) == pytest.approx(
            0.5 * a * fundamental_current(lim, a), rel=1e-9
        )


@settings(max_examples=50)
@given(
    gm=st.floats(1e-4, 1e-1),
    i_max=st.floats(1e-5, 1e-1),
    amp=st.floats(1e-3, 100.0),
)
def test_property_fundamental_bounds(gm, i_max, amp):
    """0 <= I1 <= min(gm*A, 4 IM/pi): linear cap and square-wave cap."""
    lim = HardLimiter(gm=gm, i_max=i_max)
    i1 = fundamental_current(lim, amp)
    assert i1 >= 0.0
    assert i1 <= gm * amp * (1 + 1e-9)
    assert i1 <= 4 * i_max / math.pi * (1 + 1e-9)
