"""Tests for the Leeson phase-noise estimate."""

import math

import pytest

from repro.envelope import RLCTank
from repro.envelope.phase_noise import LeesonModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    return LeesonModel(tank=tank, amplitude_peak=1.35)


class TestLeeson:
    def test_minus_20db_per_decade_inside_corner(self, model):
        """Well inside the Leeson corner: -20 dB per decade of offset."""
        f = model.leeson_corner / 100.0
        l1 = model.phase_noise_dbc(f)
        l2 = model.phase_noise_dbc(10 * f)
        assert l1 - l2 == pytest.approx(20.0, abs=0.2)

    def test_flat_floor_beyond_corner(self, model):
        far = model.leeson_corner * 100
        l1 = model.phase_noise_dbc(far)
        l2 = model.phase_noise_dbc(10 * far)
        assert abs(l1 - l2) < 0.1

    def test_corner_value(self, model):
        assert model.leeson_corner == pytest.approx(4e6 / 60.0)

    def test_higher_q_is_quieter(self):
        low = LeesonModel(RLCTank.from_frequency_and_q(4e6, 10, 1e-6), 1.35)
        high = LeesonModel(RLCTank.from_frequency_and_q(4e6, 100, 1e-6), 1.35)
        f = 10e3
        assert high.phase_noise_dbc(f) < low.phase_noise_dbc(f)

    def test_higher_amplitude_is_quieter(self, model):
        quiet = LeesonModel(model.tank, amplitude_peak=2.7)
        f = 10e3
        # 2x amplitude = 4x signal power = -6 dB... but P_sig also
        # enters the floor; inside the corner the full 6 dB shows.
        delta = model.phase_noise_dbc(f) - quiet.phase_noise_dbc(f)
        assert delta == pytest.approx(6.0, abs=0.1)

    def test_plausible_absolute_level(self, model):
        """A low-frequency (4 MHz), mW-level LC oscillator is quiet:
        order −150 dBc/Hz at 10 kHz offset (phase noise scales with
        carrier frequency squared — GHz VCOs are ~55 dB worse)."""
        value = model.phase_noise_dbc(10e3)
        assert -160 < value < -120

    def test_jitter_positive_and_improves_with_q(self, model):
        j = model.jitter_ppm(1e3, 100e3)
        assert j > 0
        high_q = LeesonModel(RLCTank.from_frequency_and_q(4e6, 300, 1e-6), 1.35)
        assert high_q.jitter_ppm(1e3, 100e3) < j

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            LeesonModel(model.tank, amplitude_peak=0.0)
        with pytest.raises(ConfigurationError):
            LeesonModel(model.tank, 1.0, noise_factor=0.5)
        with pytest.raises(ConfigurationError):
            model.phase_noise_dbc(0.0)
        with pytest.raises(ConfigurationError):
            model.jitter_ppm(1e3, 0.0)
