"""Tests for the report assembler."""

import pathlib

import pytest

from repro.report import ARTIFACT_ORDER, assemble_report, main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig02_driver_iv.txt").write_text("FIG2 CONTENT")
    (d / "table1_control_codes.txt").write_text("TABLE1 CONTENT")
    (d / "custom_extra.txt").write_text("EXTRA CONTENT")
    return d


class TestAssemble:
    def test_contains_present_artifacts(self, results_dir):
        report = assemble_report(results_dir)
        assert "FIG2 CONTENT" in report
        assert "TABLE1 CONTENT" in report

    def test_orders_by_paper(self, results_dir):
        report = assemble_report(results_dir)
        assert report.index("FIG2 CONTENT") < report.index("TABLE1 CONTENT")

    def test_extra_artifacts_appended(self, results_dir):
        report = assemble_report(results_dir)
        assert "EXTRA CONTENT" in report

    def test_missing_listed(self, results_dir):
        report = assemble_report(results_dir)
        assert "MISSING ARTIFACTS" in report
        assert "fig16_startup" in report

    def test_order_covers_all_benches(self):
        # Keep ARTIFACT_ORDER in sync with the bench files.
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        bench_names = {
            p.stem.replace("bench_", "")
            for p in bench_dir.glob("bench_*.py")
        }
        order_names = set(ARTIFACT_ORDER)
        # Every bench writes an artifact whose name starts with its own.
        for bench in bench_names:
            assert any(a.startswith(bench) or bench.startswith(a.split("_")[0]) or a in bench or bench in a
                       for a in order_names), bench


class TestCLI:
    def test_main_writes_report(self, results_dir, tmp_path):
        out = tmp_path / "REPORT.txt"
        assert main([str(results_dir), str(out)]) == 0
        assert "FIG2 CONTENT" in out.read_text()

    def test_main_missing_dir(self, tmp_path):
        assert main([str(tmp_path / "nope"), str(tmp_path / "r.txt")]) == 1
