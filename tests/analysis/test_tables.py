"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis import format_si, render_series, render_table


class TestFormatSi:
    def test_microamp(self):
        assert format_si(12.5e-6, "A") == "12.5 uA"

    def test_megahertz(self):
        assert format_si(5e6, "Hz") == "5 MHz"

    def test_zero(self):
        assert format_si(0.0, "V") == "0 V"

    def test_negative(self):
        assert format_si(-3.3e-3, "A") == "-3.3 mA"

    def test_unity(self):
        assert format_si(2.0) == "2"

    def test_tiny(self):
        assert "f" in format_si(2e-15, "F")


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 44]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "33" in lines[-1]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestRenderSeries:
    def test_subsampling(self):
        x = list(range(1000))
        y = [v * 2 for v in x]
        out = render_series(x, y, max_points=20)
        assert len(out.splitlines()) <= 25
        # Last point always included.
        assert "999" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1])
