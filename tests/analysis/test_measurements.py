"""Unit tests for waveform measurements."""

import numpy as np
import pytest

from repro.analysis import (
    StepEvent,
    Waveform,
    amplitude_peak,
    amplitude_rms_of_sine,
    crossing_time,
    find_steps,
    oscillation_frequency,
    oscillation_period,
    settling_time,
    zero_crossings,
)
from repro.errors import AnalysisError


def sine_wave(freq=1e6, amp=1.0, cycles=20, fs_per_cycle=100, offset=0.0):
    t = np.arange(cycles * fs_per_cycle) / (freq * fs_per_cycle)
    return Waveform(t, offset + amp * np.sin(2 * np.pi * freq * t))


class TestZeroCrossings:
    def test_counts(self):
        w = sine_wave(cycles=10)
        rising = zero_crossings(w, rising=True)
        falling = zero_crossings(w, rising=False)
        assert len(rising) in (9, 10)
        assert len(falling) in (9, 10)

    def test_interpolation_accuracy(self):
        w = sine_wave(freq=1.0, cycles=3, fs_per_cycle=37)
        rising = zero_crossings(w, rising=True)
        # Crossings of sin at integer times.
        for t in rising:
            assert abs(t - round(t)) < 1e-3

    def test_level(self):
        w = sine_wave(freq=1.0, amp=2.0, cycles=2)
        ups = zero_crossings(w, level=1.0, rising=True)
        assert len(ups) >= 1
        assert w.value_at(ups[0]) == pytest.approx(1.0, abs=1e-3)

    def test_no_crossings(self):
        w = Waveform([0, 1, 2], [5, 5, 5])
        assert zero_crossings(w).size == 0


class TestFrequency:
    def test_frequency_of_sine(self):
        w = sine_wave(freq=2.5e6, cycles=40)
        assert oscillation_frequency(w) == pytest.approx(2.5e6, rel=1e-4)

    def test_period(self):
        w = sine_wave(freq=4e6, cycles=40)
        assert oscillation_period(w) == pytest.approx(0.25e-6, rel=1e-4)

    def test_dc_raises(self):
        w = Waveform([0, 1, 2], [1, 1, 1])
        with pytest.raises(AnalysisError):
            oscillation_frequency(w)


class TestAmplitude:
    def test_amplitude_peak_of_sine(self):
        w = sine_wave(amp=1.35, cycles=50)
        assert amplitude_peak(w) == pytest.approx(1.35, rel=1e-3)

    def test_rms_of_sine_helper(self):
        assert amplitude_rms_of_sine(1.0) == pytest.approx(1 / np.sqrt(2))

    def test_amplitude_with_offset_rejected_by_two_sided(self):
        w = sine_wave(amp=1.0, offset=0.3, cycles=50)
        # (max-min)/2 is offset-free.
        assert amplitude_peak(w) == pytest.approx(1.0, rel=1e-3)


class TestSettling:
    def test_exponential_settling(self):
        t = np.linspace(0, 10, 1001)
        y = 1 - np.exp(-t)
        w = Waveform(t, y)
        ts = settling_time(w, final_value=1.0, tolerance=0.05)
        assert ts == pytest.approx(3.0, abs=0.1)  # ln(20) ≈ 3.0

    def test_already_settled(self):
        w = Waveform([0, 1, 2], [1.0, 1.0, 1.0])
        assert settling_time(w) == 0.0

    def test_never_settles(self):
        t = np.linspace(0, 1, 101)
        w = Waveform(t, t)
        with pytest.raises(AnalysisError):
            settling_time(w, final_value=0.0, tolerance=0.01)


class TestCrossingTime:
    def test_first_crossing(self):
        t = np.linspace(0, 1, 101)
        w = Waveform(t, t)
        assert crossing_time(w, 0.5) == pytest.approx(0.5, abs=1e-6)

    def test_missing_level_raises(self):
        w = Waveform([0, 1], [0, 0.1])
        with pytest.raises(AnalysisError):
            crossing_time(w, 5.0)


class TestFindSteps:
    def test_staircase(self):
        t = np.linspace(0, 3, 301)
        y = np.where(t < 1, 1.0, np.where(t < 2, 1.5, 2.25))
        steps = find_steps(Waveform(t, y), min_delta=0.25)
        assert len(steps) == 2
        assert steps[0].delta == pytest.approx(0.5)
        assert steps[0].relative == pytest.approx(0.5)
        assert steps[1].relative == pytest.approx(0.5)

    def test_no_steps(self):
        t = np.linspace(0, 1, 101)
        assert find_steps(Waveform(t, np.ones_like(t)), 0.1) == []

    def test_invalid_min_delta(self):
        w = Waveform([0, 1], [0, 1])
        with pytest.raises(AnalysisError):
            find_steps(w, 0.0)

    def test_relative_of_zero_baseline_raises(self):
        event = StepEvent(time=0.0, before=0.0, after=1.0)
        with pytest.raises(AnalysisError):
            _ = event.relative
