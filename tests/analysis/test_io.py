"""Tests for waveform / trace CSV round-trips."""

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.analysis.io import (
    load_columns_csv,
    load_waveform_csv,
    save_columns_csv,
    save_waveform_csv,
)
from repro.errors import AnalysisError


class TestWaveformRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        wave = Waveform.from_function(np.sin, 0.0, 1e-3, n=101, name="v_lc1")
        path = tmp_path / "w.csv"
        save_waveform_csv(wave, path)
        loaded = load_waveform_csv(path)
        assert loaded.name == "v_lc1"
        assert np.array_equal(loaded.t, wave.t)
        assert np.array_equal(loaded.y, wave.y)

    def test_unnamed_waveform(self, tmp_path):
        wave = Waveform([0.0, 1.0], [2.0, 3.0])
        path = tmp_path / "w.csv"
        save_waveform_csv(wave, path)
        assert load_waveform_csv(path).name == "y"

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,y\n1,2,3\n")
        with pytest.raises(AnalysisError):
            load_waveform_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(AnalysisError):
            load_waveform_csv(path)


class TestColumnsRoundtrip:
    def test_roundtrip(self, tmp_path):
        columns = {
            "t": np.linspace(0, 1, 11),
            "amplitude": np.linspace(0, 1.35, 11),
            "code": np.arange(11, dtype=float),
        }
        path = tmp_path / "trace.csv"
        save_columns_csv(path, columns)
        loaded = load_columns_csv(path)
        assert set(loaded) == set(columns)
        for name in columns:
            assert np.array_equal(loaded[name], np.asarray(columns[name]))

    def test_system_trace_export(self, tmp_path, standard_config):
        from repro.core.oscillator_system import OscillatorDriverSystem

        trace = OscillatorDriverSystem(standard_config).run(0.01)
        path = tmp_path / "system.csv"
        save_columns_csv(
            path,
            {
                "t": trace.t,
                "amplitude": trace.amplitude,
                "code": trace.code,
                "i_supply": trace.supply_current,
            },
        )
        loaded = load_columns_csv(path)
        assert loaded["code"][-1] == trace.final_code

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(AnalysisError):
            save_columns_csv(tmp_path / "x.csv", {"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_columns(self, tmp_path):
        with pytest.raises(AnalysisError):
            save_columns_csv(tmp_path / "x.csv", {})
