"""Tests for harmonic/THD analysis."""

import numpy as np
import pytest

from repro.analysis import (
    HarmonicSpectrum,
    Waveform,
    harmonic_spectrum,
    tank_harmonic_rejection,
    thd,
)
from repro.errors import AnalysisError


def multi_tone(f0=1e6, amps=(1.0, 0.0, 0.2), cycles=50, fs_per_cycle=64):
    t = np.arange(int(cycles * fs_per_cycle)) / (f0 * fs_per_cycle)
    y = np.zeros_like(t)
    for k, amp in enumerate(amps, start=1):
        y += amp * np.sin(2 * np.pi * k * f0 * t)
    return Waveform(t, y)


class TestHarmonicSpectrum:
    def test_pure_sine(self):
        w = multi_tone(amps=(1.0,))
        spec = harmonic_spectrum(w, 1e6, n_harmonics=5)
        assert spec.fundamental == pytest.approx(1.0, rel=1e-3)
        for k in range(2, 6):
            assert spec.harmonic(k) < 1e-3

    def test_third_harmonic_recovered(self):
        w = multi_tone(amps=(1.0, 0.0, 0.2))
        spec = harmonic_spectrum(w, 1e6, n_harmonics=5)
        assert spec.harmonic(3) == pytest.approx(0.2, rel=1e-2)
        assert spec.harmonic(2) < 1e-3

    def test_dc_removed(self):
        w = multi_tone(amps=(1.0,)) + 2.5
        spec = harmonic_spectrum(w, 1e6)
        assert spec.fundamental == pytest.approx(1.0, rel=1e-3)

    def test_square_wave_odd_harmonics(self):
        f0 = 1e6
        t = np.arange(3200) / (f0 * 64)
        w = Waveform(t, np.sign(np.sin(2 * np.pi * f0 * t)))
        spec = harmonic_spectrum(w, f0, n_harmonics=5)
        assert spec.fundamental == pytest.approx(4 / np.pi, rel=0.02)
        assert spec.harmonic(3) == pytest.approx(4 / (3 * np.pi), rel=0.05)
        assert spec.harmonic(2) < 0.02

    def test_too_short_record(self):
        t = np.linspace(0, 1e-6, 100)
        w = Waveform(t, np.sin(2 * np.pi * 1e6 * t))
        with pytest.raises(AnalysisError):
            harmonic_spectrum(w, 1e6)

    def test_validation(self):
        w = multi_tone()
        with pytest.raises(AnalysisError):
            harmonic_spectrum(w, -1.0)
        with pytest.raises(AnalysisError):
            harmonic_spectrum(w, 1e6, n_harmonics=0)


class TestTHD:
    def test_known_thd(self):
        w = multi_tone(amps=(1.0, 0.0, 0.1, 0.0, 0.05))
        expected = np.sqrt(0.1**2 + 0.05**2)
        assert thd(w, 1e6, n_harmonics=5) == pytest.approx(expected, rel=0.02)

    def test_clean_sine_near_zero(self):
        assert thd(multi_tone(amps=(1.0,)), 1e6) < 1e-2

    def test_zero_fundamental_raises(self):
        spec = HarmonicSpectrum(1e6, (0.0, 0.1))
        with pytest.raises(AnalysisError):
            spec.thd()

    def test_relative_levels(self):
        spec = HarmonicSpectrum(1e6, (1.0, 0.1))
        levels = spec.relative_levels_db()
        assert levels[2] == pytest.approx(-20.0)


class TestTankRejection:
    def test_unity_at_fundamental(self):
        assert tank_harmonic_rejection(1e-6, 1e-9, 1e3, 1) == pytest.approx(
            1.0, rel=1e-6
        )

    def test_strong_attenuation_of_harmonics(self):
        """The high-Q tank rejects harmonics by >> 20 dB."""
        # Q = Rp / Z0 = 1000/31.6 ≈ 31.6
        for order in (2, 3, 5):
            rejection = tank_harmonic_rejection(1e-6, 1e-9, 1e3, order)
            assert rejection < 0.05  # < -26 dB

    def test_higher_harmonics_more_attenuated(self):
        r2 = tank_harmonic_rejection(1e-6, 1e-9, 1e3, 2)
        r5 = tank_harmonic_rejection(1e-6, 1e-9, 1e3, 5)
        assert r5 < r2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            tank_harmonic_rejection(1e-6, 1e-9, 1e3, 0)
        with pytest.raises(AnalysisError):
            tank_harmonic_rejection(-1e-6, 1e-9, 1e3, 2)
