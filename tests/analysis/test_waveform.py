"""Unit tests for the Waveform container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import Waveform
from repro.errors import AnalysisError


def make_ramp(n=11, t_stop=1.0):
    t = np.linspace(0.0, t_stop, n)
    return Waveform(t, t.copy(), name="ramp")


class TestConstruction:
    def test_basic(self):
        w = Waveform([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert len(w) == 3
        assert w.t_start == 0.0
        assert w.t_stop == 2.0
        assert w.duration == 2.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0], [1.0])

    def test_rejects_non_increasing_time(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0, 1.0], [0.0, 1.0, 2.0])
        with pytest.raises(AnalysisError):
            Waveform([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0], [1.0])

    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_from_function(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=101)
        assert len(w) == 101
        assert abs(w.y[0]) < 1e-12

    def test_arrays_read_only(self):
        w = make_ramp()
        with pytest.raises(ValueError):
            w.t[0] = 5.0
        with pytest.raises(ValueError):
            w.y[0] = 5.0


class TestArithmetic:
    def test_add_scalar(self):
        w = make_ramp() + 1.0
        assert w.y[0] == pytest.approx(1.0)

    def test_add_waveform(self):
        w = make_ramp()
        total = w + w
        assert np.allclose(total.y, 2 * w.y)

    def test_subtract(self):
        w = make_ramp()
        z = w - w
        assert np.allclose(z.y, 0.0)

    def test_rsub(self):
        w = make_ramp()
        z = 1.0 - w
        assert np.allclose(z.y, 1.0 - w.y)

    def test_multiply(self):
        w = make_ramp() * 3.0
        assert w.y[-1] == pytest.approx(3.0)

    def test_neg_and_abs(self):
        w = -make_ramp()
        assert w.y[-1] == pytest.approx(-1.0)
        assert w.abs().y[-1] == pytest.approx(1.0)

    def test_mismatched_time_base_rejected(self):
        a = make_ramp(n=11)
        b = make_ramp(n=21)
        with pytest.raises(AnalysisError):
            _ = a + b


class TestSlicing:
    def test_window(self):
        w = make_ramp(n=101)
        sub = w.window(0.25, 0.75)
        assert sub.t_start >= 0.25
        assert sub.t_stop <= 0.75

    def test_window_empty_raises(self):
        w = make_ramp(n=11)
        with pytest.raises(AnalysisError):
            w.window(0.001, 0.002)

    def test_window_backwards_raises(self):
        w = make_ramp()
        with pytest.raises(AnalysisError):
            w.window(0.5, 0.2)

    def test_resample(self):
        w = make_ramp(n=11)
        r = w.resample(np.linspace(0, 1, 101))
        assert len(r) == 101
        assert np.allclose(r.y, r.t)

    def test_value_at(self):
        w = make_ramp()
        assert w.value_at(0.5) == pytest.approx(0.5)


class TestCalculus:
    def test_integral_of_ramp(self):
        assert make_ramp(n=1001).integral() == pytest.approx(0.5, rel=1e-6)

    def test_mean(self):
        assert make_ramp(n=1001).mean() == pytest.approx(0.5, rel=1e-6)

    def test_rms_of_sine(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=20001)
        assert w.rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_derivative_of_ramp(self):
        d = make_ramp(n=101).derivative()
        assert np.allclose(d.y, 1.0)

    def test_peak_to_peak(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=2001)
        assert w.peak_to_peak() == pytest.approx(2.0, rel=1e-4)


def make_nonuniform(func, t_stop=1.0, n=801, seed=7):
    """Deliberately non-uniform grid: random spacings spanning 20x."""
    rng = np.random.default_rng(seed)
    gaps = rng.uniform(0.05, 1.0, size=n - 1)
    t = np.concatenate([[0.0], np.cumsum(gaps)])
    t *= t_stop / t[-1]
    return Waveform(t, func(t))


class TestNonUniformGrids:
    """Regression: calculus must use the actual sample times, not an
    assumed constant dt (the adaptive transient engine records on its
    accepted-step grid)."""

    def test_derivative_of_quadratic(self):
        w = make_nonuniform(lambda t: t**2)
        d = w.derivative()
        # np.gradient with explicit t is second-order in the interior:
        # exact on t^2 there; the one-sided endpoints are first-order.
        assert np.allclose(d.y[1:-1], 2 * w.t[1:-1], rtol=1e-9, atol=1e-9)
        assert np.allclose(d.y[[0, -1]], 2 * w.t[[0, -1]], atol=0.05)

    def test_derivative_wrong_under_constant_dt_assumption(self):
        """The same data interpreted with a constant dt is badly off —
        guards against regressing to np.gradient(y) / dt0."""
        w = make_nonuniform(lambda t: t**2)
        dt0 = float(w.t[1] - w.t[0])
        naive = np.gradient(w.y) / dt0
        assert not np.allclose(naive, 2 * w.t, rtol=1e-2, atol=1e-3)

    def test_integral_of_linear_is_exact(self):
        w = make_nonuniform(lambda t: 3.0 * t + 1.0)
        # Trapezoid is exact for piecewise-linear integrands on ANY grid.
        assert w.integral() == pytest.approx(1.5 + 1.0, rel=1e-12)

    def test_integral_of_sine(self):
        w = make_nonuniform(lambda t: np.sin(2 * np.pi * t), n=4001)
        assert w.integral() == pytest.approx(0.0, abs=1e-5)

    def test_mean_and_rms_time_weighted(self):
        # Value 1 for the first 10% of time (densely sampled), 0 for
        # the rest (sparsely sampled): sample-count averaging would
        # report ~0.5; time-weighted must report ~0.1.
        t = np.concatenate([np.linspace(0.0, 0.1, 200), np.linspace(0.11, 1.0, 20)])
        y = np.where(t <= 0.1, 1.0, 0.0)
        w = Waveform(t, y)
        assert w.mean() == pytest.approx(0.105, abs=0.01)
        assert w.rms() == pytest.approx(np.sqrt(0.105), abs=0.02)

    def test_resample_round_trip(self):
        w = make_nonuniform(lambda t: np.cos(3 * t), n=2001)
        uniform = w.resample_uniform()
        assert uniform.is_uniform
        assert not w.is_uniform
        back = uniform.resample(w.t)
        assert np.allclose(back.y, w.y, atol=5e-5)

    def test_is_uniform_on_uniform_grid(self):
        assert make_ramp(n=11).is_uniform

    def test_resample_uniform_default_preserves_count(self):
        w = make_nonuniform(lambda t: t, n=101)
        assert len(w.resample_uniform()) == len(w)


@given(
    offset=st.floats(-5, 5),
    scale=st.floats(0.1, 10),
)
def test_property_linear_ops_commute(offset, scale):
    """(w * a) + b equals samplewise a*y + b."""
    w = make_ramp(n=17)
    out = (w * scale) + offset
    assert np.allclose(out.y, scale * w.y + offset)


@given(st.integers(3, 50))
def test_property_resample_identity(n):
    w = make_ramp(n=n)
    r = w.resample(w.t)
    assert np.allclose(r.y, w.y)
