"""Unit tests for the Waveform container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import Waveform
from repro.errors import AnalysisError


def make_ramp(n=11, t_stop=1.0):
    t = np.linspace(0.0, t_stop, n)
    return Waveform(t, t.copy(), name="ramp")


class TestConstruction:
    def test_basic(self):
        w = Waveform([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert len(w) == 3
        assert w.t_start == 0.0
        assert w.t_stop == 2.0
        assert w.duration == 2.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0], [1.0])

    def test_rejects_non_increasing_time(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0, 1.0], [0.0, 1.0, 2.0])
        with pytest.raises(AnalysisError):
            Waveform([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0], [1.0])

    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_from_function(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=101)
        assert len(w) == 101
        assert abs(w.y[0]) < 1e-12

    def test_arrays_read_only(self):
        w = make_ramp()
        with pytest.raises(ValueError):
            w.t[0] = 5.0
        with pytest.raises(ValueError):
            w.y[0] = 5.0


class TestArithmetic:
    def test_add_scalar(self):
        w = make_ramp() + 1.0
        assert w.y[0] == pytest.approx(1.0)

    def test_add_waveform(self):
        w = make_ramp()
        total = w + w
        assert np.allclose(total.y, 2 * w.y)

    def test_subtract(self):
        w = make_ramp()
        z = w - w
        assert np.allclose(z.y, 0.0)

    def test_rsub(self):
        w = make_ramp()
        z = 1.0 - w
        assert np.allclose(z.y, 1.0 - w.y)

    def test_multiply(self):
        w = make_ramp() * 3.0
        assert w.y[-1] == pytest.approx(3.0)

    def test_neg_and_abs(self):
        w = -make_ramp()
        assert w.y[-1] == pytest.approx(-1.0)
        assert w.abs().y[-1] == pytest.approx(1.0)

    def test_mismatched_time_base_rejected(self):
        a = make_ramp(n=11)
        b = make_ramp(n=21)
        with pytest.raises(AnalysisError):
            _ = a + b


class TestSlicing:
    def test_window(self):
        w = make_ramp(n=101)
        sub = w.window(0.25, 0.75)
        assert sub.t_start >= 0.25
        assert sub.t_stop <= 0.75

    def test_window_empty_raises(self):
        w = make_ramp(n=11)
        with pytest.raises(AnalysisError):
            w.window(0.001, 0.002)

    def test_window_backwards_raises(self):
        w = make_ramp()
        with pytest.raises(AnalysisError):
            w.window(0.5, 0.2)

    def test_resample(self):
        w = make_ramp(n=11)
        r = w.resample(np.linspace(0, 1, 101))
        assert len(r) == 101
        assert np.allclose(r.y, r.t)

    def test_value_at(self):
        w = make_ramp()
        assert w.value_at(0.5) == pytest.approx(0.5)


class TestCalculus:
    def test_integral_of_ramp(self):
        assert make_ramp(n=1001).integral() == pytest.approx(0.5, rel=1e-6)

    def test_mean(self):
        assert make_ramp(n=1001).mean() == pytest.approx(0.5, rel=1e-6)

    def test_rms_of_sine(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=20001)
        assert w.rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_derivative_of_ramp(self):
        d = make_ramp(n=101).derivative()
        assert np.allclose(d.y, 1.0)

    def test_peak_to_peak(self):
        w = Waveform.from_function(np.sin, 0.0, 2 * np.pi, n=2001)
        assert w.peak_to_peak() == pytest.approx(2.0, rel=1e-4)


@given(
    offset=st.floats(-5, 5),
    scale=st.floats(0.1, 10),
)
def test_property_linear_ops_commute(offset, scale):
    """(w * a) + b equals samplewise a*y + b."""
    w = make_ramp(n=17)
    out = (w * scale) + offset
    assert np.allclose(out.y, scale * w.y + offset)


@given(st.integers(3, 50))
def test_property_resample_identity(n):
    w = make_ramp(n=n)
    r = w.resample(w.t)
    assert np.allclose(r.y, w.y)
