"""Unit tests for envelope extraction."""

import numpy as np
import pytest

from repro.analysis import Waveform, envelope_by_peaks, envelope_by_rectify_filter
from repro.errors import AnalysisError


def am_wave(carrier=1e6, mod_tau=20e-6, cycles=100, amp=1.0):
    fs = carrier * 50
    t = np.arange(int(cycles * 50)) / fs
    env = amp * (1 - np.exp(-t / mod_tau))
    return Waveform(t, env * np.sin(2 * np.pi * carrier * t)), env, t


class TestEnvelopeByPeaks:
    def test_tracks_growing_envelope(self):
        wave, env, t = am_wave()
        detected = envelope_by_peaks(wave)
        # Compare on the tail (skip the low-amplitude head).
        tail = detected.window(40e-6, detected.t_stop)
        expected = np.interp(tail.t, t, env)
        assert np.allclose(tail.y, expected, rtol=0.05)

    def test_upper_lower(self):
        wave, _env, _t = am_wave()
        up = envelope_by_peaks(wave, polarity="upper")
        low = envelope_by_peaks(wave, polarity="lower")
        assert up.y[-1] == pytest.approx(low.y[-1], rel=0.05)

    def test_rejects_dc(self):
        w = Waveform(np.linspace(0, 1, 100), np.ones(100))
        with pytest.raises(AnalysisError):
            envelope_by_peaks(w)

    def test_bad_polarity(self):
        wave, _e, _t = am_wave(cycles=10)
        with pytest.raises(AnalysisError):
            envelope_by_peaks(wave, polarity="sideways")

    def test_offset_rejection(self):
        wave, env, t = am_wave()
        shifted = wave + 0.25
        detected = envelope_by_peaks(shifted)
        tail = detected.window(40e-6, detected.t_stop)
        expected = np.interp(tail.t, t, env)
        assert np.allclose(tail.y, expected, rtol=0.05)


class TestRectifyFilter:
    def test_converges_to_average_of_rectified_sine(self):
        carrier = 1e6
        fs = carrier * 100
        t = np.arange(20000) / fs
        w = Waveform(t, np.sin(2 * np.pi * carrier * t))
        out = envelope_by_rectify_filter(w, cutoff_hz=20e3)
        # Full-wave rectified sine averages 2/pi of the peak.
        assert out.y[-1] == pytest.approx(2 / np.pi, rel=0.05)

    def test_invalid_cutoff(self):
        w = Waveform([0, 1], [0, 1])
        with pytest.raises(AnalysisError):
            envelope_by_rectify_filter(w, 0.0)
