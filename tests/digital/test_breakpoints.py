"""Digital blocks feeding their event times into adaptive stepping.

The ROADMAP item: the watchdog, POR, and event kernel *know* their own
event times, so mixed-signal scenarios should run adaptively without
hand-listed ``breakpoints=``.  These tests pin each block's
``breakpoints(t_stop)`` hook, the ``collect_breakpoints`` plumbing,
and the end-to-end path through ``TransientOptions.breakpoint_sources``
— a forced step boundary must land exactly on the digital event.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, TransientOptions, dc, run_transient
from repro.circuits.stepcontrol import collect_breakpoints
from repro.digital import EventScheduler, PowerOnReset, RecurringEvent, WatchdogTimer
from repro.errors import SimulationError


class TestEventSchedulerHook:
    def test_pending_events_reported_sorted(self):
        sched = EventScheduler()
        sched.schedule_at(3e-3, lambda: None)
        sched.schedule_at(1e-3, lambda: None)
        sched.schedule_at(9.0, lambda: None)  # beyond t_stop
        assert sched.breakpoints(5e-3) == (1e-3, 3e-3)

    def test_recurring_event_enumerates_future_ticks(self):
        sched = EventScheduler()
        tick = RecurringEvent(sched, period=1e-3, callback=lambda t: None)
        assert tick.breakpoints(3.5e-3) == (1e-3, 2e-3, 3e-3)

    def test_recurring_event_honours_start_delay_and_progress(self):
        sched = EventScheduler()
        tick = RecurringEvent(
            sched, period=1e-3, callback=lambda t: None, start_delay=2.5e-4
        )
        assert tick.breakpoints(2e-3) == (2.5e-4, 1.25e-3)
        sched.run_until(1e-3)  # first tick fired, next at 1.25e-3
        assert tick.breakpoints(2e-3) == (1.25e-3,)
        tick.cancel()
        assert tick.breakpoints(2e-3) == ()


class TestWatchdogAndPorHooks:
    def test_watchdog_deadline(self):
        wd = WatchdogTimer(timeout=2e-3)
        assert wd.breakpoints(1.0) == ()  # not armed
        wd.arm(1e-3)
        assert wd.breakpoints(1.0) == (3e-3,)
        wd.kick(2e-3)
        assert wd.breakpoints(1.0) == (4e-3,)
        assert wd.breakpoints(3e-3) == ()  # deadline beyond window
        assert wd.expired(5e-3)  # latched: no pending deadline
        assert wd.breakpoints(1.0) == ()

    def test_por_release_time(self):
        por = PowerOnReset(threshold=2.4, release_delay=10e-6)
        assert por.breakpoints(1.0) == ()
        por.update(1e-6, 1.0)  # below threshold
        assert por.breakpoints(1.0) == ()
        por.update(2e-6, 3.0)  # supply good
        assert por.breakpoints(1.0) == (12e-6,)


class TestCollectBreakpoints:
    def _circuit(self):
        c = Circuit("rc")
        c.voltage_source("v1", "in", "0", dc(1.0))
        c.resistor("r1", "in", "a", 1e3)
        c.capacitor("c1", "a", "0", 1e-9)
        return c

    def test_sources_merged_with_stimulus_and_extra(self):
        sched = EventScheduler()
        sched.schedule_at(4e-6, lambda: None)
        wd = WatchdogTimer(timeout=2e-6)
        wd.arm(0.0)
        times = collect_breakpoints(
            self._circuit(), 1e-5, extra=(6e-6,), sources=(sched, wd)
        )
        assert times == (2e-6, 4e-6, 6e-6)

    def test_source_without_hook_rejected(self):
        with pytest.raises(SimulationError, match="breakpoints"):
            collect_breakpoints(self._circuit(), 1e-5, sources=(object(),))

    def test_adaptive_run_lands_on_digital_event(self):
        sched = EventScheduler()
        sched.schedule_at(3.3e-6, lambda: None)  # off the dt grid
        result = run_transient(
            self._circuit(),
            TransientOptions(
                t_stop=1e-5,
                dt=1e-6,
                step_control="adaptive",
                use_dc_operating_point=False,
                breakpoint_sources=(sched,),
            ),
        )
        assert result.stats["breakpoints_hit"] >= 1
        # The grid contains the event time *exactly* — no float drift.
        assert np.any(result.t == 3.3e-6)
