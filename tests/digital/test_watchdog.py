"""Tests for the missing-clock watchdog."""

import pytest

from repro.digital import WatchdogTimer
from repro.errors import ConfigurationError


class TestWatchdog:
    def test_not_expired_while_kicked(self):
        wd = WatchdogTimer(timeout=10e-6)
        wd.arm(0.0)
        for k in range(1, 100):
            t = k * 1e-6
            wd.kick(t)
            assert not wd.expired(t)

    def test_expires_after_timeout(self):
        wd = WatchdogTimer(timeout=10e-6)
        wd.arm(0.0)
        wd.kick(5e-6)
        assert not wd.expired(14e-6)
        assert wd.expired(15.1e-6)

    def test_latches(self):
        wd = WatchdogTimer(timeout=1e-6)
        wd.arm(0.0)
        assert wd.expired(2e-6)
        # A late kick does not clear the latch.
        wd.kick(3e-6)
        assert wd.expired(3e-6)

    def test_clear(self):
        wd = WatchdogTimer(timeout=1e-6)
        wd.arm(0.0)
        assert wd.expired(2e-6)
        wd.clear(2e-6)
        assert not wd.expired(2.5e-6)

    def test_disarmed_never_expires(self):
        wd = WatchdogTimer(timeout=1e-6)
        assert not wd.expired(100.0)
        wd.arm(0.0)
        wd.disarm()
        assert not wd.expired(100.0)

    def test_kick_ignored_when_disarmed(self):
        wd = WatchdogTimer(timeout=1e-6)
        wd.kick(5.0)  # no crash, no effect
        wd.arm(10.0)
        assert not wd.expired(10.0 + 0.5e-6)

    def test_invalid_timeout(self):
        with pytest.raises(ConfigurationError):
            WatchdogTimer(timeout=0.0)
