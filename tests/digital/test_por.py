"""Tests for the power-on-reset model."""

import pytest

from repro.digital import PowerOnReset
from repro.errors import ConfigurationError


class TestPOR:
    def test_asserts_below_threshold(self):
        por = PowerOnReset(threshold=2.4, release_delay=10e-6)
        assert por.update(0.0, 1.0) is True

    def test_releases_after_delay(self):
        por = PowerOnReset(threshold=2.4, release_delay=10e-6)
        assert por.update(0.0, 3.3) is True
        assert por.update(5e-6, 3.3) is True
        assert por.update(11e-6, 3.3) is False

    def test_brownout_rearms(self):
        por = PowerOnReset(threshold=2.4, release_delay=10e-6)
        por.update(0.0, 3.3)
        assert por.update(20e-6, 3.3) is False
        # Supply dips: reset asserts again and the delay restarts.
        assert por.update(30e-6, 1.0) is True
        assert por.update(31e-6, 3.3) is True
        assert por.update(42e-6, 3.3) is False

    def test_supply_good_since(self):
        por = PowerOnReset()
        por.update(0.0, 1.0)
        assert por.supply_good_since is None
        por.update(1.0, 3.3)
        assert por.supply_good_since == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerOnReset(threshold=0.0)
        with pytest.raises(ConfigurationError):
            PowerOnReset(release_delay=-1.0)
