"""Tests for the NVM model."""

import pytest

from repro.digital import NonVolatileMemory
from repro.errors import ConfigurationError


class TestNVM:
    def test_program_and_read(self):
        nvm = NonVolatileMemory()
        nvm.program(0x10, 42)
        assert nvm.read(0x10) == 42

    def test_erased_reads_ff(self):
        assert NonVolatileMemory().read(0x33) == 0xFF

    def test_amplitude_code_roundtrip(self):
        nvm = NonVolatileMemory()
        nvm.program_amplitude_code(88)
        assert nvm.read_amplitude_code() == 88

    def test_erased_amplitude_code_clamped_to_max(self):
        """An unprogrammed part must not produce an out-of-range code."""
        assert NonVolatileMemory().read_amplitude_code() == 127

    def test_validation(self):
        nvm = NonVolatileMemory()
        with pytest.raises(ConfigurationError):
            nvm.program(0, 256)
        with pytest.raises(ConfigurationError):
            nvm.program(-1, 0)
        with pytest.raises(ConfigurationError):
            nvm.program_amplitude_code(128)
        with pytest.raises(ConfigurationError):
            NonVolatileMemory(read_latency=-1.0)
