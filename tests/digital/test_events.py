"""Tests for the discrete-event kernel."""

import pytest

from repro.digital import EventScheduler, RecurringEvent
from repro.errors import SimulationError


class TestScheduler:
    def test_order_of_execution(self):
        sched = EventScheduler()
        log = []
        sched.schedule_at(2.0, lambda: log.append("b"))
        sched.schedule_at(1.0, lambda: log.append("a"))
        sched.schedule_at(3.0, lambda: log.append("c"))
        sched.run_until(10.0)
        assert log == ["a", "b", "c"]
        assert sched.now == 10.0

    def test_tie_break_by_insertion(self):
        sched = EventScheduler()
        log = []
        sched.schedule_at(1.0, lambda: log.append("first"))
        sched.schedule_at(1.0, lambda: log.append("second"))
        sched.run_until(1.0)
        assert log == ["first", "second"]

    def test_partial_run(self):
        sched = EventScheduler()
        log = []
        sched.schedule_at(1.0, lambda: log.append(1))
        sched.schedule_at(5.0, lambda: log.append(5))
        executed = sched.run_until(2.0)
        assert executed == 1
        assert log == [1]
        assert sched.pending == 1

    def test_schedule_during_event(self):
        sched = EventScheduler()
        log = []

        def cascade():
            log.append("outer")
            sched.schedule_after(1.0, lambda: log.append("inner"))

        sched.schedule_at(1.0, cascade)
        sched.run_until(5.0)
        assert log == ["outer", "inner"]

    def test_past_scheduling_rejected(self):
        sched = EventScheduler()
        sched.run_until(5.0)
        with pytest.raises(SimulationError):
            sched.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sched.schedule_after(-1.0, lambda: None)

    def test_run_next(self):
        sched = EventScheduler()
        log = []
        sched.schedule_at(1.0, lambda: log.append(1))
        assert sched.run_next() is True
        assert sched.run_next() is False
        assert log == [1]


class TestRecurring:
    def test_period_and_cancel(self):
        sched = EventScheduler()
        times = []
        event = RecurringEvent(sched, period=1.0, callback=times.append)
        sched.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]
        event.cancel()
        sched.run_until(10.0)
        assert times == [1.0, 2.0, 3.0]
        assert event.cancelled

    def test_start_delay(self):
        sched = EventScheduler()
        times = []
        RecurringEvent(sched, period=1.0, callback=times.append, start_delay=0.25)
        sched.run_until(2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_invalid_period(self):
        with pytest.raises(SimulationError):
            RecurringEvent(EventScheduler(), period=0.0, callback=lambda t: None)
