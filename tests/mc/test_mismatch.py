"""Tests for mismatch profiles."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.mc import DEFAULT_SIGMAS, MismatchProfile, MismatchSigmas


class TestProfiles:
    def test_ideal_is_exact(self):
        p = MismatchProfile.ideal()
        assert p.prescale_gain(4) == 4.0
        assert p.fixed_mirror_units(0b1111) == 128.0
        assert p.binary_units(0b1111111) == 127.0
        assert p.gm_gain(0b1111) == 9.0

    def test_sample_reproducible(self):
        a = MismatchProfile.sample(seed=7)
        b = MismatchProfile.sample(seed=7)
        assert a == b
        c = MismatchProfile.sample(seed=8)
        assert a != c

    def test_sample_magnitudes(self):
        p = MismatchProfile.sample(seed=1, sigmas=MismatchSigmas(0.01, 0.01, 0.01, 0.01))
        for group in (
            p.prescale_errors,
            p.fixed_mirror_errors,
            p.binary_bit_errors,
            p.gm_stage_errors,
        ):
            assert all(abs(e) < 0.05 for e in group)

    def test_measured_like_prescale_signature(self):
        """The x8/x4 prescale skew that makes code 96 non-monotonic."""
        p = MismatchProfile.measured_like()
        assert p.prescale_errors[3] < 0  # x8 low
        assert p.prescale_errors[2] > 0  # x4 high

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MismatchProfile(prescale_errors=(0.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            MismatchProfile(prescale_errors=(-1.5, 0.0, 0.0, 0.0))

    def test_invalid_prescale_factor(self):
        with pytest.raises(ConfigurationError):
            MismatchProfile.ideal().prescale_gain(3)

    def test_invalid_osc_f(self):
        with pytest.raises(ConfigurationError):
            MismatchProfile.ideal().binary_units(1 << 7)


class TestRealizedRatios:
    def test_fixed_mirror_partial_mask(self):
        p = MismatchProfile.ideal()
        assert p.fixed_mirror_units(0b0001) == 16.0
        assert p.fixed_mirror_units(0b0011) == 32.0
        assert p.fixed_mirror_units(0b0111) == 64.0

    def test_binary_units_bits(self):
        p = MismatchProfile.ideal()
        assert p.binary_units(0b0000001) == 1.0
        assert p.binary_units(0b1000000) == 64.0

    def test_gm_gain_stage0_always_on(self):
        p = MismatchProfile.ideal()
        assert p.gm_gain(0b0000) == 1.0
        assert p.gm_gain(0b0001) == 2.0
        assert p.gm_gain(0b1000) == 5.0


@given(seed=st.integers(0, 10_000))
def test_property_sampled_ratios_positive(seed):
    """All realized ratios stay positive for any seed (truncation)."""
    p = MismatchProfile.sample(seed=seed)
    assert p.prescale_gain(1) > 0
    assert p.prescale_gain(8) > 0
    assert p.fixed_mirror_units(0b1111) > 0
    assert p.gm_gain(0b1111) > 0


class TestSampleMany:
    def test_rows_equal_per_seed_samples(self):
        draws = MismatchProfile.sample_many(12, base_seed=777)
        assert draws.n == 12
        for i in range(12):
            assert draws.profile(i) == MismatchProfile.sample(seed=777 + i)
            assert draws.seed(i) == 777 + i

    def test_struct_of_arrays_shapes(self):
        draws = MismatchProfile.sample_many(5, base_seed=1)
        assert draws.prescale_errors.shape == (5, 4)
        assert draws.fixed_mirror_errors.shape == (5, 4)
        assert draws.binary_bit_errors.shape == (5, 7)
        assert draws.gm_stage_errors.shape == (5, 5)
        assert len(draws.profiles()) == 5

    def test_custom_sigmas_flow_through(self):
        from repro.mc.mismatch import MismatchSigmas

        sigmas = MismatchSigmas(prescale=0.0)
        draws = MismatchProfile.sample_many(3, base_seed=5, sigmas=sigmas)
        assert np.all(draws.prescale_errors == 0.0)
        assert draws.profile(1) == MismatchProfile.sample(seed=6, sigmas=sigmas)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MismatchProfile.sample_many(0, base_seed=1)
