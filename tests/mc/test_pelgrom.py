"""Tests for the Pelgrom matching model."""

import pytest

from repro.errors import ConfigurationError
from repro.mc import DEFAULT_SIGMAS
from repro.mc.pelgrom import (
    PelgromCoefficients,
    current_mismatch_sigma,
    sigmas_for_areas,
)


class TestCurrentMismatch:
    def test_scales_with_inverse_sqrt_area(self):
        small = current_mismatch_sigma(10.0, 0.35)
        large = current_mismatch_sigma(40.0, 0.35)
        assert small / large == pytest.approx(2.0, rel=1e-9)

    def test_more_overdrive_matches_better(self):
        low = current_mismatch_sigma(20.0, 0.15)
        high = current_mismatch_sigma(20.0, 0.6)
        assert high < low

    def test_representative_magnitude(self):
        """A 20 um^2 mirror device at 350 mV overdrive: ~1 % sigma —
        the regime the paper's DAC lives in."""
        sigma = current_mismatch_sigma(20.0, 0.35)
        assert 0.005 < sigma < 0.02

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            current_mismatch_sigma(0.0, 0.35)
        with pytest.raises(ConfigurationError):
            current_mismatch_sigma(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            PelgromCoefficients(a_vt=0.0)


class TestSigmasForAreas:
    def test_default_areas_near_library_defaults(self):
        """The documented layout areas must justify DEFAULT_SIGMAS to
        within a factor ~2 in every group."""
        derived = sigmas_for_areas()
        for name in ("prescale", "fixed_mirror", "binary_bit", "gm_stage"):
            lib = getattr(DEFAULT_SIGMAS, name)
            phys = getattr(derived, name)
            assert 0.4 < phys / lib < 2.5, (name, phys, lib)

    def test_bigger_mirrors_match_better(self):
        base = sigmas_for_areas()
        upsized = sigmas_for_areas(fixed_mirror_area_um2=240.0)
        assert upsized.fixed_mirror < base.fixed_mirror
        assert upsized.prescale == base.prescale
