"""Tests for the Monte-Carlo runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mc import MismatchProfile, chain_metric, run_monte_carlo


class TestRunner:
    def test_deterministic(self):
        metric = lambda p: p.prescale_errors[0]
        a = run_monte_carlo(metric, 20, base_seed=5)
        b = run_monte_carlo(metric, 20, base_seed=5)
        assert (a.values == b.values).all()

    def test_statistics(self):
        result = run_monte_carlo(lambda p: 2.0, 10)
        assert result.mean == 2.0
        assert result.std == 0.0
        assert result.n == 10
        assert result.quantile(0.5) == 2.0

    def test_fraction_true(self):
        result = run_monte_carlo(
            lambda p: float(p.prescale_errors[0] > 0), 200, base_seed=0
        )
        # Zero-mean draws: roughly half positive.
        assert 0.3 < result.fraction_true() < 0.7

    def test_summary_format(self):
        result = run_monte_carlo(lambda p: 1.0, 3, metric_name="dnl")
        assert "dnl" in result.summary()
        assert "n=3" in result.summary()

    def test_seed_isolation(self):
        """Sample i is reproducible alone from base_seed + i."""
        result = run_monte_carlo(lambda p: p.gm_stage_errors[0], 5, base_seed=100)
        lone = MismatchProfile.sample(seed=103)
        assert result.values[3] == lone.gm_stage_errors[0]

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda p: 0.0, 0)


class TestWarmStartedChains:
    """Chain metrics thread each sample's carry into the next one."""

    def _carry_recorder(self, log):
        @chain_metric
        def metric(profile, carry):
            log.append(carry)
            return float(profile.prescale_errors[0]), len(log)

        return metric

    def test_carry_threads_through_samples(self):
        log = []
        run_monte_carlo(self._carry_recorder(log), 4, base_seed=9)
        assert log == [None, 1, 2, 3]

    def test_opt_out_runs_every_sample_cold(self):
        log = []
        run_monte_carlo(self._carry_recorder(log), 4, base_seed=9, warm_start=False)
        assert log == [None, None, None, None]

    def test_values_identical_warm_or_cold(self):
        """Warm starting is an accelerator, not a statistics change —
        for a metric whose value ignores the carry, results match."""
        warm = run_monte_carlo(self._carry_recorder([]), 8, base_seed=3)
        cold = run_monte_carlo(
            self._carry_recorder([]), 8, base_seed=3, warm_start=False
        )
        plain = run_monte_carlo(
            lambda p: float(p.prescale_errors[0]), 8, base_seed=3
        )
        np.testing.assert_array_equal(warm.values, cold.values)
        np.testing.assert_array_equal(warm.values, plain.values)

    def test_warm_start_reuses_previous_dc_point(self):
        """End-to-end: a DC metric warm-started from the previous
        sample's solution converges in fewer Newton iterations."""
        from repro.circuits import Circuit

        def build(profile):
            c = Circuit()
            c.voltage_source(
                "V1", "in", "0", 2.0 * (1.0 + profile.prescale_errors[0])
            )
            c.resistor("R1", "in", "d", 1e3)
            c.diode("D1", "d", "0")
            return c

        iterations = {"warm": 0, "cold": 0}

        @chain_metric
        def warm_metric(profile, carry):
            from repro.circuits import solve_dc

            op = solve_dc(build(profile), x0=carry)
            iterations["warm"] += op.iterations
            return op.voltage("d"), op.x

        @chain_metric
        def cold_metric(profile, carry):
            from repro.circuits import solve_dc

            op = solve_dc(build(profile))
            iterations["cold"] += op.iterations
            return op.voltage("d"), op.x

        warm = run_monte_carlo(warm_metric, 10, base_seed=42)
        cold = run_monte_carlo(cold_metric, 10, base_seed=42)
        np.testing.assert_allclose(warm.values, cold.values, rtol=1e-6)
        assert iterations["warm"] < iterations["cold"]


def _build_startup_circuit(profile):
    """Module-level oscillator build for the vectorized metric tests."""
    from repro.core import OscillatorNetlist
    from repro.envelope import RLCTank, TanhLimiter

    gm_scale = 1.0 + profile.gm_stage_errors[0]
    q_scale = 1.0 + profile.prescale_errors[0]
    tank = RLCTank.from_frequency_and_q(4e6, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def _startup_amplitude(profile, result):
    return float(
        np.max(np.abs(result.waveform("lc1").y - result.waveform("lc2").y))
    )


def _startup_options():
    from repro.circuits import TransientOptions

    return TransientOptions(
        t_stop=20 / 4e6,
        dt=1.0 / (4e6 * 40),
        method="trap",
        use_dc_operating_point=False,
        record_nodes=("lc1", "lc2"),
    )


def _plain_startup_metric(profile):
    from repro.circuits import run_transient

    result = run_transient(_build_startup_circuit(profile), _startup_options())
    return _startup_amplitude(profile, result)


class TestTransientMetricSpec:
    def spec(self, waveform=False):
        from repro.campaigns import TransientMetricSpec

        return TransientMetricSpec(
            name="startup_amplitude",
            build=_build_startup_circuit,
            options=_startup_options(),
            evaluate=_startup_amplitude,
            waveform=(lambda r: r.differential("lc1", "lc2"))
            if waveform
            else None,
        )

    def test_vectorized_matches_plain_metric(self):
        from repro.campaigns import BatchOptions

        plain = run_monte_carlo(
            _plain_startup_metric, 6, base_seed=42, metric_name="amp"
        )
        vectorized = run_monte_carlo(
            self.spec(),
            6,
            base_seed=42,
            batch=BatchOptions(batch_mode="vectorized"),
        )
        np.testing.assert_allclose(
            vectorized.values, plain.values, rtol=1e-9
        )
        assert vectorized.seeds == plain.seeds
        assert vectorized.metric_name == "startup_amplitude"
        assert vectorized.waveforms is None

    def test_waveform_streaming_and_envelope_quantiles(self):
        from repro.campaigns import BatchOptions

        result = run_monte_carlo(
            self.spec(waveform=True),
            8,
            base_seed=42,
            batch=BatchOptions(batch_mode="vectorized"),
        )
        assert result.waveforms is not None
        assert len(result.waveforms) == 8
        t, bands = result.envelope_quantiles((0.1, 0.5, 0.9))
        assert bands.shape == (3, t.size)
        # Percentile bands are ordered and bracket the median tail.
        tail = slice(-20, None)
        assert np.all(bands[0][tail] <= bands[1][tail] + 1e-15)
        assert np.all(bands[1][tail] <= bands[2][tail] + 1e-15)
        # The terminal band values bracket the per-sample amplitudes.
        assert bands[2].max() <= result.values.max() * 1.001

    def test_envelope_quantiles_without_waveforms_raises(self):
        from repro.errors import ConfigurationError

        scalar = run_monte_carlo(_plain_startup_metric, 3, base_seed=1)
        with pytest.raises(ConfigurationError):
            scalar.envelope_quantiles((0.5,))
