"""Tests for the Monte-Carlo runner."""

import pytest

from repro.errors import ConfigurationError
from repro.mc import MismatchProfile, run_monte_carlo


class TestRunner:
    def test_deterministic(self):
        metric = lambda p: p.prescale_errors[0]
        a = run_monte_carlo(metric, 20, base_seed=5)
        b = run_monte_carlo(metric, 20, base_seed=5)
        assert (a.values == b.values).all()

    def test_statistics(self):
        result = run_monte_carlo(lambda p: 2.0, 10)
        assert result.mean == 2.0
        assert result.std == 0.0
        assert result.n == 10
        assert result.quantile(0.5) == 2.0

    def test_fraction_true(self):
        result = run_monte_carlo(
            lambda p: float(p.prescale_errors[0] > 0), 200, base_seed=0
        )
        # Zero-mean draws: roughly half positive.
        assert 0.3 < result.fraction_true() < 0.7

    def test_summary_format(self):
        result = run_monte_carlo(lambda p: 1.0, 3, metric_name="dnl")
        assert "dnl" in result.summary()
        assert "n=3" in result.summary()

    def test_seed_isolation(self):
        """Sample i is reproducible alone from base_seed + i."""
        result = run_monte_carlo(lambda p: p.gm_stage_errors[0], 5, base_seed=100)
        lone = MismatchProfile.sample(seed=103)
        assert result.values[3] == lone.gm_stage_errors[0]

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda p: 0.0, 0)
