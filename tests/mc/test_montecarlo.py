"""Tests for the Monte-Carlo runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mc import MismatchProfile, chain_metric, run_monte_carlo


class TestRunner:
    def test_deterministic(self):
        metric = lambda p: p.prescale_errors[0]
        a = run_monte_carlo(metric, 20, base_seed=5)
        b = run_monte_carlo(metric, 20, base_seed=5)
        assert (a.values == b.values).all()

    def test_statistics(self):
        result = run_monte_carlo(lambda p: 2.0, 10)
        assert result.mean == 2.0
        assert result.std == 0.0
        assert result.n == 10
        assert result.quantile(0.5) == 2.0

    def test_fraction_true(self):
        result = run_monte_carlo(
            lambda p: float(p.prescale_errors[0] > 0), 200, base_seed=0
        )
        # Zero-mean draws: roughly half positive.
        assert 0.3 < result.fraction_true() < 0.7

    def test_summary_format(self):
        result = run_monte_carlo(lambda p: 1.0, 3, metric_name="dnl")
        assert "dnl" in result.summary()
        assert "n=3" in result.summary()

    def test_seed_isolation(self):
        """Sample i is reproducible alone from base_seed + i."""
        result = run_monte_carlo(lambda p: p.gm_stage_errors[0], 5, base_seed=100)
        lone = MismatchProfile.sample(seed=103)
        assert result.values[3] == lone.gm_stage_errors[0]

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda p: 0.0, 0)


class TestWarmStartedChains:
    """Chain metrics thread each sample's carry into the next one."""

    def _carry_recorder(self, log):
        @chain_metric
        def metric(profile, carry):
            log.append(carry)
            return float(profile.prescale_errors[0]), len(log)

        return metric

    def test_carry_threads_through_samples(self):
        log = []
        run_monte_carlo(self._carry_recorder(log), 4, base_seed=9)
        assert log == [None, 1, 2, 3]

    def test_opt_out_runs_every_sample_cold(self):
        log = []
        run_monte_carlo(self._carry_recorder(log), 4, base_seed=9, warm_start=False)
        assert log == [None, None, None, None]

    def test_values_identical_warm_or_cold(self):
        """Warm starting is an accelerator, not a statistics change —
        for a metric whose value ignores the carry, results match."""
        warm = run_monte_carlo(self._carry_recorder([]), 8, base_seed=3)
        cold = run_monte_carlo(
            self._carry_recorder([]), 8, base_seed=3, warm_start=False
        )
        plain = run_monte_carlo(
            lambda p: float(p.prescale_errors[0]), 8, base_seed=3
        )
        np.testing.assert_array_equal(warm.values, cold.values)
        np.testing.assert_array_equal(warm.values, plain.values)

    def test_warm_start_reuses_previous_dc_point(self):
        """End-to-end: a DC metric warm-started from the previous
        sample's solution converges in fewer Newton iterations."""
        from repro.circuits import Circuit

        def build(profile):
            c = Circuit()
            c.voltage_source(
                "V1", "in", "0", 2.0 * (1.0 + profile.prescale_errors[0])
            )
            c.resistor("R1", "in", "d", 1e3)
            c.diode("D1", "d", "0")
            return c

        iterations = {"warm": 0, "cold": 0}

        @chain_metric
        def warm_metric(profile, carry):
            from repro.circuits import solve_dc

            op = solve_dc(build(profile), x0=carry)
            iterations["warm"] += op.iterations
            return op.voltage("d"), op.x

        @chain_metric
        def cold_metric(profile, carry):
            from repro.circuits import solve_dc

            op = solve_dc(build(profile))
            iterations["cold"] += op.iterations
            return op.voltage("d"), op.x

        warm = run_monte_carlo(warm_metric, 10, base_seed=42)
        cold = run_monte_carlo(cold_metric, 10, base_seed=42)
        np.testing.assert_allclose(warm.values, cold.values, rtol=1e-6)
        assert iterations["warm"] < iterations["cold"]
