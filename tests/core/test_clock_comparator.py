"""Tests for the fast clock comparator + watchdog supervision (§7)."""

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.core import ClockComparator, supervise_waveform
from repro.digital import WatchdogTimer
from repro.errors import ConfigurationError


def carrier(freq=4e6, amp=1.0, cycles=40, die_after=None):
    fs = freq * 50
    t = np.arange(int(cycles * 50)) / fs
    envelope = np.ones_like(t) * amp
    if die_after is not None:
        envelope = np.where(t < die_after, amp, amp * np.exp(-(t - die_after) / 0.2e-6))
    return Waveform(t, envelope * np.sin(2 * np.pi * freq * t))


class TestEdgeExtraction:
    def test_one_edge_per_cycle(self):
        comp = ClockComparator(hysteresis=0.1)
        edges = comp.rising_edges(carrier(cycles=20))
        assert 18 <= len(edges) <= 20

    def test_clock_frequency(self):
        comp = ClockComparator(hysteresis=0.1)
        assert comp.clock_frequency(carrier(freq=4e6)) == pytest.approx(
            4e6, rel=1e-3
        )

    def test_small_signal_no_clock(self):
        comp = ClockComparator(hysteresis=0.1)
        quiet = carrier(amp=0.01)
        assert comp.clock_frequency(quiet) == 0.0

    def test_minimum_amplitude(self):
        comp = ClockComparator(hysteresis=0.1, offset=0.02)
        assert comp.minimum_amplitude == pytest.approx(0.07)

    def test_hysteresis_rejects_noise(self):
        """Noise smaller than the hysteresis produces no extra edges."""
        rng = np.random.default_rng(0)
        wave = carrier(cycles=20)
        noisy = Waveform(wave.t, wave.y + 0.01 * rng.standard_normal(len(wave)))
        comp = ClockComparator(hysteresis=0.1)
        clean_edges = len(comp.rising_edges(wave))
        noisy_edges = len(comp.rising_edges(noisy))
        assert abs(noisy_edges - clean_edges) <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockComparator(hysteresis=0.0)


class TestSupervision:
    def test_healthy_oscillation_passes(self):
        comp = ClockComparator(hysteresis=0.1)
        wd = WatchdogTimer(timeout=2e-6)  # 8 carrier periods
        assert not supervise_waveform(carrier(), comp, wd)

    def test_dying_oscillation_latches(self):
        comp = ClockComparator(hysteresis=0.1)
        wd = WatchdogTimer(timeout=2e-6)
        dying = carrier(cycles=40, die_after=4e-6)
        assert supervise_waveform(dying, comp, wd)

    def test_timeout_longer_than_record_tail(self):
        """A watchdog slower than the record's dead tail stays quiet."""
        comp = ClockComparator(hysteresis=0.1)
        wd = WatchdogTimer(timeout=1.0)
        dying = carrier(cycles=40, die_after=4e-6)
        assert not supervise_waveform(dying, comp, wd)
