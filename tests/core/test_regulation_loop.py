"""Tests for the ±1/hold regulation state machine (§4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ComparatorState,
    RegulationAction,
    RegulationLoop,
    WindowComparator,
    design_window,
)
from repro.core.dac import ExponentialPWLDAC, HardwareDAC
from repro.errors import ConfigurationError
from repro.mc import MismatchProfile


def make_loop(initial=60, target=1.0, margin=1.3):
    return RegulationLoop(comparator=design_window(target, margin=margin), initial_code=initial)


class TestStepping:
    def test_below_steps_up(self):
        loop = make_loop()
        event = loop.tick(0.001, 0.5)
        assert event.action is RegulationAction.UP
        assert loop.code == 61

    def test_above_steps_down(self):
        loop = make_loop()
        event = loop.tick(0.001, 2.0)
        assert event.action is RegulationAction.DOWN
        assert loop.code == 59

    def test_inside_holds(self):
        loop = make_loop()
        event = loop.tick(0.001, 1.0)
        assert event.action is RegulationAction.HOLD
        assert loop.code == 60

    def test_clamps_at_limits(self):
        loop = RegulationLoop(
            comparator=design_window(1.0), initial_code=127
        )
        loop.tick(0.001, 0.0)
        assert loop.code == 127
        loop2 = RegulationLoop(comparator=design_window(1.0), initial_code=0)
        loop2.tick(0.001, 9.9)
        assert loop2.code == 0

    def test_disabled_holds(self):
        loop = make_loop()
        loop.enabled = False
        event = loop.tick(0.001, 0.0)
        assert event.action is RegulationAction.HOLD

    def test_set_code(self):
        loop = make_loop()
        loop.set_code(127)
        assert loop.code == 127
        with pytest.raises(ConfigurationError):
            loop.set_code(200)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegulationLoop(comparator=design_window(1.0), initial_code=200)
        with pytest.raises(ConfigurationError):
            RegulationLoop(
                comparator=design_window(1.0), initial_code=5, min_code=10, max_code=5
            )


class TestConvergenceAgainstDACPlant:
    """Close the loop around the actual DAC law: detector voltage is
    proportional to the DAC current (amplitude tracks IM, Eq 5)."""

    def run_loop(self, dac, start_code, target_current, margin=1.3, ticks=200):
        scale = 1.0 / target_current  # detector volts per amp: target -> 1.0
        loop = RegulationLoop(
            comparator=design_window(1.0, margin=margin), initial_code=start_code
        )
        for k in range(ticks):
            loop.tick(k * 1e-3, dac.current(loop.code) * scale)
        return loop

    def test_settles_into_window_from_above(self):
        dac = ExponentialPWLDAC()
        target = dac.current(60)
        loop = self.run_loop(dac, start_code=105, target_current=target)
        assert abs(dac.current(loop.code) / target - 1.0) < 0.06
        assert loop.settled_at() is not None
        assert not loop.is_limit_cycling()

    def test_settles_from_below(self):
        dac = ExponentialPWLDAC()
        target = dac.current(90)
        loop = self.run_loop(dac, start_code=20, target_current=target)
        assert abs(dac.current(loop.code) / target - 1.0) < 0.07
        assert not loop.is_limit_cycling()

    def test_narrow_window_limit_cycles(self):
        """§4 ablation: a window narrower than the max step (6.25 %)
        makes the loop oscillate forever around the target."""
        dac = ExponentialPWLDAC()
        # Target between two codes so no code can land inside the
        # too-narrow window.
        target = (dac.current(17) * dac.current(18)) ** 0.5
        scale = 1.0 / target
        loop = RegulationLoop(
            comparator=WindowComparator(low=0.99, high=1.01),  # 2 % window
            initial_code=30,
        )
        for k in range(100):
            loop.tick(k * 1e-3, dac.current(loop.code) * scale)
        assert loop.is_limit_cycling()
        assert loop.settled_at() is None

    def test_tolerates_non_monotonic_dac(self):
        """§4: 'the converter can even be non-monotonic' — regulation
        around code 96 with the measured-like DAC still settles."""
        dac = HardwareDAC(mismatch=MismatchProfile.measured_like())
        target = dac.current(96)
        loop = self.run_loop(dac, start_code=70, target_current=target, ticks=300)
        assert abs(dac.current(loop.code) / target - 1.0) < 0.08
        assert not loop.is_limit_cycling()


class TestHistoryAnalysis:
    def test_steps_taken(self):
        loop = make_loop()
        loop.tick(0.001, 0.1)
        loop.tick(0.002, 0.1)
        loop.tick(0.003, 1.0)
        assert loop.steps_taken() == 2

    def test_settled_at_reports_first_hold_of_run(self):
        loop = make_loop()
        loop.tick(0.001, 0.1)  # up
        loop.tick(0.002, 1.0)  # hold
        loop.tick(0.003, 1.0)  # hold
        loop.tick(0.004, 1.0)  # hold
        assert loop.settled_at() == pytest.approx(0.002)

    def test_validation(self):
        loop = make_loop()
        with pytest.raises(ConfigurationError):
            loop.settled_at(consecutive_holds=0)


@settings(max_examples=30, deadline=None)
@given(
    start=st.integers(17, 127),
    target_code=st.integers(20, 120),
)
def test_property_loop_converges_for_random_plants(start, target_code):
    """From any start code the loop reaches the window around any
    target code and stays there (window > max step guarantees no
    overshoot oscillation)."""
    dac = ExponentialPWLDAC()
    target = dac.current(target_code)
    scale = 1.0 / target
    loop = RegulationLoop(
        comparator=design_window(1.0, margin=1.3), initial_code=start
    )
    for k in range(250):
        loop.tick(k * 1e-3, dac.current(loop.code) * scale)
    # Inside the window at the end...
    final = dac.current(loop.code) * scale
    assert loop.comparator.low <= final <= loop.comparator.high
    # ...and holding.
    tail = loop.history[-3:]
    assert all(e.action is RegulationAction.HOLD for e in tail)
