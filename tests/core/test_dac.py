"""Tests for the current-limitation DAC models (Fig 3/13/14)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EQUIVALENT_LINEAR_BITS, ExponentialPWLDAC, HardwareDAC, LinearDAC
from repro.core.constants import I_LSB, I_MAX_DRIVER
from repro.errors import CodingError
from repro.mc import MismatchProfile


class TestIdealDAC:
    def test_lsb_scaling(self):
        dac = ExponentialPWLDAC()
        assert dac.current(1) == pytest.approx(I_LSB)
        assert dac.current(127) == pytest.approx(I_MAX_DRIVER)

    def test_full_scale_is_24_8_ma(self):
        """Fig 13: 1984 * 12.5 uA = 24.8 mA full scale."""
        assert ExponentialPWLDAC().full_scale() == pytest.approx(24.8e-3, rel=1e-6)

    def test_monotonic(self):
        assert ExponentialPWLDAC().is_monotonic()

    def test_transfer_length(self):
        assert len(ExponentialPWLDAC().transfer()) == 128

    def test_relative_steps_match_fig4(self):
        steps = ExponentialPWLDAC().relative_steps(start_code=17)
        assert steps.min() == pytest.approx(1 / 31, rel=1e-9)
        assert steps.max() == pytest.approx(1 / 16, rel=1e-9)

    def test_invalid_lsb(self):
        with pytest.raises(CodingError):
            ExponentialPWLDAC(i_lsb=0.0)


class TestHardwareDACIdeal:
    def test_matches_ideal_without_mismatch(self):
        """The structural path (prescaler x mirrors) equals M(n)*LSB."""
        ideal = ExponentialPWLDAC()
        hardware = HardwareDAC()
        for code in range(128):
            assert hardware.current(code) == pytest.approx(
                ideal.current(code), rel=1e-12
            )

    def test_transconductance_steps_with_segments(self):
        hw = HardwareDAC(gm_unit=1.2e-3)
        assert hw.transconductance(0) == pytest.approx(1.2e-3)
        assert hw.transconductance(127) == pytest.approx(9 * 1.2e-3)

    def test_monotonic_when_ideal(self):
        assert HardwareDAC().is_monotonic()
        assert HardwareDAC().non_monotonic_codes() == []


class TestHardwareDACMeasuredLike:
    """The Fig 13/14 signature: non-monotonic at code 96 only."""

    @pytest.fixture
    def dac(self):
        return HardwareDAC(mismatch=MismatchProfile.measured_like())

    def test_non_monotonic_exactly_at_96(self, dac):
        assert dac.non_monotonic_codes() == [96]

    def test_negative_step_at_96(self, dac):
        steps = dac.relative_steps(start_code=2)
        # steps[i] corresponds to code i+2.
        assert steps[96 - 2] < 0.0

    def test_full_scale_close_to_nominal(self, dac):
        assert dac.current(127) == pytest.approx(I_MAX_DRIVER, rel=0.05)

    def test_max_relative_step_still_below_window(self, dac):
        """Even with mismatch the max step stays below ~8% so the
        regulation window designed for 6.25% + margin still works."""
        assert dac.max_relative_step(start_code=17) < 0.08


class TestLinearDACAblation:
    def test_needs_11_bits_for_same_range(self):
        pwl = ExponentialPWLDAC()
        lin = LinearDAC(bits=EQUIVALENT_LINEAR_BITS, i_lsb=I_LSB)
        assert lin.codes_for_same_range(pwl) <= lin.n_codes
        smaller = LinearDAC(bits=10, i_lsb=I_LSB)
        assert smaller.codes_for_same_range(pwl) > smaller.n_codes

    def test_relative_step_explodes_at_low_codes(self):
        lin = LinearDAC(bits=11, i_lsb=I_LSB)
        steps = lin.relative_steps(start_code=2)
        assert steps[0] == pytest.approx(1.0)  # 100 % at the bottom
        assert steps[-1] < 0.001  # sub-0.1 % at the top

    def test_transfer_is_line(self):
        lin = LinearDAC(bits=4, i_lsb=1e-6)
        assert np.allclose(lin.transfer(), np.arange(16) * 1e-6)

    def test_validation(self):
        with pytest.raises(CodingError):
            LinearDAC(bits=0, i_lsb=1e-6)
        with pytest.raises(CodingError):
            LinearDAC(bits=4, i_lsb=1e-6).current(16)


@settings(max_examples=25)
@given(seed=st.integers(0, 5000))
def test_property_mismatch_preserves_scale(seed):
    """Any realistic mismatch draw keeps the transfer within 10 % of
    nominal and keeps relative steps below the regulation window."""
    dac = HardwareDAC(mismatch=MismatchProfile.sample(seed=seed))
    transfer = dac.transfer()
    nominal = ExponentialPWLDAC().transfer()
    assert np.all(np.abs(transfer[1:] / nominal[1:] - 1.0) < 0.10)
