"""Tests for the transistor-level mirror realization of the DAC."""

import numpy as np
import pytest

from repro.core import multiplication_factor
from repro.core.constants import I_LSB
from repro.core.mirror_netlist import (
    MirrorNetlistParams,
    transistor_dac_current,
    transistor_dac_transfer,
)
from repro.errors import ConfigurationError


class TestIdealDevices:
    """With lam = 0 the mirror ratios are exact W ratios."""

    @pytest.mark.parametrize("code", [1, 16, 40, 64, 96, 127])
    def test_exact_segment_law(self, code):
        params = MirrorNetlistParams(lam=0.0)
        i = transistor_dac_current(code, params)
        ideal = multiplication_factor(code) * I_LSB
        assert i == pytest.approx(ideal, rel=1e-4)

    def test_code_zero(self):
        assert transistor_dac_current(0) == 0.0


class TestRealDevices:
    """Channel-length modulation produces the classic systematic
    mirror gain error — bounded and monotone-preserving here."""

    def test_gain_error_bounded(self):
        codes = [1, 16, 48, 96, 127]
        currents = transistor_dac_transfer(codes)
        for code, current in zip(codes, currents):
            ideal = multiplication_factor(code) * I_LSB
            assert abs(current / ideal - 1.0) < 0.05

    def test_transfer_monotonic(self):
        codes = list(range(1, 128, 3))  # ends at 127
        currents = transistor_dac_transfer(codes)
        assert np.all(np.diff(currents) > 0)

    def test_error_grows_with_lambda(self):
        code = 64
        ideal = multiplication_factor(code) * I_LSB
        small = transistor_dac_current(code, MirrorNetlistParams(lam=0.01))
        large = transistor_dac_current(code, MirrorNetlistParams(lam=0.05))
        assert abs(large / ideal - 1.0) > abs(small / ideal - 1.0)

    def test_error_depends_on_output_voltage(self):
        """Mirror output resistance: more Vds, more current."""
        code = 64
        low = transistor_dac_current(code, MirrorNetlistParams(v_out=0.8))
        high = transistor_dac_current(code, MirrorNetlistParams(v_out=2.5))
        assert high > low


class TestAgainstBehaviouralModel:
    def test_matches_hardware_dac_within_clm_error(self):
        """The behavioural HardwareDAC (ideal profile) and the
        transistor path agree to the CLM error budget."""
        from repro.core import HardwareDAC

        behavioural = HardwareDAC()
        codes = [16, 48, 96, 127]
        for code in codes:
            transistor = transistor_dac_current(code)
            assert transistor == pytest.approx(behavioural.current(code), rel=0.05)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            MirrorNetlistParams(beta_unit=0.0)
        with pytest.raises(ConfigurationError):
            MirrorNetlistParams(lam=-0.1)
        with pytest.raises(ConfigurationError):
            MirrorNetlistParams(v_out=5.0)
