"""Tests for the executable design equations (Eq 1-6)."""

import math

import pytest

from repro.core import design_equations as eq
from repro.envelope import HardLimiter, K_SQUARE_WAVE, RLCTank, steady_state_amplitude
from repro.errors import ConfigurationError


@pytest.fixture
def tank():
    return RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)


class TestOscillationCondition:
    def test_critical_gm_values(self, tank):
        assert eq.critical_gm_lumped(tank) == pytest.approx(
            1 / tank.parallel_resistance
        )
        assert eq.critical_gm_stage(tank) == pytest.approx(
            2 / tank.parallel_resistance
        )

    def test_stage_form_equals_rsc_over_l(self, tank):
        """Eq 1 rearranged: Gm_stage = Rs C / L (high-Q limit)."""
        expected = (
            tank.series_resistance * tank.capacitance / tank.inductance
        )
        assert eq.critical_gm_stage(tank) == pytest.approx(expected, rel=2e-3)

    def test_condition_met(self, tank):
        g0 = eq.critical_gm_lumped(tank)
        assert eq.oscillation_condition_met(tank, 2 * g0)
        assert not eq.oscillation_condition_met(tank, 0.5 * g0)
        assert not eq.oscillation_condition_met(tank, 1.5 * g0, margin=2.0)


class TestAmplitude:
    def test_eq4_agrees_with_describing_function(self, tank):
        """Eq 4 (closed form) vs the envelope fixed point."""
        i_max = 2e-3
        lim = HardLimiter(gm=50 * eq.critical_gm_lumped(tank), i_max=i_max)
        a_numeric = steady_state_amplitude(tank, lim)
        a_eq4 = eq.steady_state_peak(tank, i_max)
        assert a_eq4 == pytest.approx(a_numeric, rel=1e-2)

    def test_rms_peak_ratio(self, tank):
        assert eq.steady_state_peak(tank, 1e-3) == pytest.approx(
            math.sqrt(2) * eq.steady_state_rms(tank, 1e-3)
        )

    def test_inverse(self, tank):
        i_max = eq.current_limit_for_rms(tank, 1.0)
        assert eq.steady_state_rms(tank, i_max) == pytest.approx(1.0, rel=1e-12)

    def test_k_range_guard(self, tank):
        with pytest.raises(ConfigurationError):
            eq.steady_state_rms(tank, 1e-3, k=2.0)


class TestStepLaws:
    def test_eq5_identity(self):
        assert eq.relative_voltage_step(0.05) == 0.05

    def test_eq6_exponential(self):
        assert eq.exponential_current_law(1e-6, 0.045, 0) == pytest.approx(1e-6)
        assert eq.exponential_current_law(1e-6, 0.045, 10) == pytest.approx(
            1e-6 * 1.045**10
        )

    def test_eq6_validation(self):
        with pytest.raises(ConfigurationError):
            eq.exponential_current_law(0.0, 0.05, 1)
        with pytest.raises(ConfigurationError):
            eq.exponential_current_law(1.0, -2.0, 1)
        with pytest.raises(ConfigurationError):
            eq.exponential_current_law(1.0, 0.05, -1)

    def test_delta_for_range(self):
        """Covering 16 -> 1984 in 111 steps needs ~4.4 % per code —
        inside the PWL band of 3.23-6.25 %."""
        delta = eq.delta_for_range(1984 / 16, 111)
        assert 0.0323 < delta < 0.0625
        assert delta == pytest.approx(0.0444, abs=0.002)


class TestPWLApproximation:
    def test_stays_within_6_percent(self):
        errors = eq.pwl_approximation_error(start_code=16)
        assert max(abs(e) for e in errors) < 0.065

    def test_endpoints_exact(self):
        errors = eq.pwl_approximation_error(start_code=16)
        assert errors[0] == pytest.approx(0.0, abs=1e-12)
        assert errors[-1] == pytest.approx(0.0, abs=1e-12)
