"""Consistency checks of the paper constants against each other.

Every number in ``repro.core.constants`` is quoted from the paper;
several of them are redundant, which gives cross-checks that guard
against transcription errors.
"""

import pytest

from repro.core import constants as k
from repro.core.segments import SEGMENTS, multiplication_factor


class TestDACGeometry:
    def test_bit_split(self):
        assert k.SEGMENT_BITS + k.MANTISSA_BITS == k.CODE_BITS
        assert k.N_CODES == 2**k.CODE_BITS == 128
        assert k.MAX_CODE == 127

    def test_dynamic_range_consistent_with_segments(self):
        assert k.DYNAMIC_RANGE == (0, k.MAX_MULTIPLICATION_FACTOR)
        assert SEGMENTS[-1].range_max == k.MAX_MULTIPLICATION_FACTOR

    def test_full_scale_current(self):
        """Fig 13 axis: 1984 x 12.5 uA = 24.8 mA."""
        assert k.I_MAX_DRIVER == pytest.approx(24.8e-3)
        assert k.I_MAX_DRIVER == pytest.approx(
            k.MAX_MULTIPLICATION_FACTOR * k.I_LSB
        )


class TestRegulation:
    def test_step_band_vs_segments(self):
        assert k.MAX_RELATIVE_STEP == pytest.approx(1 / 16)
        assert k.MIN_RELATIVE_STEP_ABOVE_16 == pytest.approx(1 / 31)

    def test_por_code_fraction(self):
        """§4: code 105 is ~40 % of maximum consumption."""
        fraction = multiplication_factor(k.POR_CODE) / multiplication_factor(127)
        assert fraction == pytest.approx(0.42, abs=0.02)

    def test_min_regulated_code_marks_step_band(self):
        """Above code 16 the relative step is bounded — below it the
        steps explode, which is why the loop must stay above."""
        from repro.core.segments import relative_step

        assert relative_step(k.MIN_REGULATED_CODE) > k.MAX_RELATIVE_STEP
        assert relative_step(k.MIN_REGULATED_CODE + 1) <= k.MAX_RELATIVE_STEP


class TestOperatingRange:
    def test_frequency_band(self):
        assert k.F_OSC_MIN == 2e6
        assert k.F_OSC_MAX == 5e6

    def test_consumption_band_ordering(self):
        assert k.SUPPLY_CURRENT_MIN < k.SUPPLY_CURRENT_MAX
        assert k.SUPPLY_CURRENT_MIN == pytest.approx(250e-6)
        assert k.SUPPLY_CURRENT_MAX == pytest.approx(30e-3)

    def test_max_current_capability_consistent(self):
        """The 30 mA consumption ceiling exceeds the 24.8 mA drive
        full-scale (bias overhead on top)."""
        assert k.SUPPLY_CURRENT_MAX > k.I_MAX_DRIVER

    def test_gm_budget(self):
        """§9: ~10 mS equivalent transconductance at full drive."""
        from repro.core.driver_iv import DEFAULT_GM_UNIT
        from repro.core.gm_block import GmBlock

        full = GmBlock(gm_unit=DEFAULT_GM_UNIT).transconductance(0b1111)
        assert full == pytest.approx(k.MAX_EQUIVALENT_GM, rel=0.15)

    def test_amplitude_and_areas(self):
        assert k.MAX_OPERATING_AMPLITUDE_PP == pytest.approx(2.7)
        assert k.LAYOUT_AREA_DRIVER_MM2 < k.LAYOUT_AREA_FULL_MM2
