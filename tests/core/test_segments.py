"""Tests for the PWL exponential segment law against Table 1 / Fig 3/4."""

import pytest
from hypothesis import given, strategies as st

from repro.core import segments as seg
from repro.core.constants import (
    MAX_MULTIPLICATION_FACTOR,
    MAX_RELATIVE_STEP,
    MIN_RELATIVE_STEP_ABOVE_16,
)
from repro.errors import CodingError


class TestTable1Exact:
    """Every static number of Table 1 must be reproduced exactly."""

    EXPECTED = [
        # (segment, step, range_min, range_max, prescale, gm_stages)
        (0, 1, 0, 15, 1, 1),
        (1, 1, 16, 31, 1, 2),
        (2, 2, 32, 62, 2, 2),
        (3, 4, 64, 124, 2, 3),
        (4, 8, 128, 248, 4, 3),
        (5, 16, 256, 496, 4, 5),
        (6, 32, 512, 992, 8, 5),
        (7, 64, 1024, 1984, 8, 9),
    ]

    @pytest.mark.parametrize("row", EXPECTED)
    def test_segment_row(self, row):
        index, step, rmin, rmax, prescale, gm = row
        s = seg.SEGMENTS[index]
        assert s.step == step
        assert s.range_min == rmin
        assert s.range_max == rmax
        assert s.prescale == prescale
        assert s.active_gm_stages == gm
        assert seg.multiplication_factor(s.code_min) == rmin
        assert seg.multiplication_factor(s.code_max) == rmax

    def test_full_scale(self):
        assert seg.multiplication_factor(127) == MAX_MULTIPLICATION_FACTOR

    def test_step_inside_segment(self):
        for s in seg.SEGMENTS:
            for code in range(s.code_min + 1, s.code_max + 1):
                delta = seg.multiplication_factor(code) - seg.multiplication_factor(
                    code - 1
                )
                assert delta == s.step


class TestCodeHandling:
    def test_split_join_roundtrip(self):
        for code in range(128):
            assert seg.join_code(*seg.split_code(code)) == code

    def test_split(self):
        assert seg.split_code(0) == (0, 0)
        assert seg.split_code(96) == (6, 0)
        assert seg.split_code(127) == (7, 15)

    def test_out_of_range(self):
        with pytest.raises(CodingError):
            seg.multiplication_factor(128)
        with pytest.raises(CodingError):
            seg.multiplication_factor(-1)
        with pytest.raises(CodingError):
            seg.multiplication_factor(1.5)  # type: ignore[arg-type]
        with pytest.raises(CodingError):
            seg.multiplication_factor(True)  # type: ignore[arg-type]

    def test_join_validation(self):
        with pytest.raises(CodingError):
            seg.join_code(8, 0)
        with pytest.raises(CodingError):
            seg.join_code(0, 16)

    def test_segment_of_code(self):
        assert seg.segment_of_code(96).index == 6
        assert seg.segment_of_code(15).index == 0


class TestRelativeStep:
    """Fig 4: for codes above 16 the step is between 3.23% and 6.25%."""

    def test_bounds_above_16(self):
        steps = [seg.relative_step(c) for c in range(17, 128)]
        assert min(steps) == pytest.approx(MIN_RELATIVE_STEP_ABOVE_16, rel=1e-6)
        assert max(steps) == pytest.approx(MAX_RELATIVE_STEP, rel=1e-6)
        assert min(steps) == pytest.approx(0.0323, abs=2e-4)  # 3.23 %
        assert max(steps) == pytest.approx(0.0625, abs=1e-9)  # 6.25 %

    def test_max_step_at_mantissa_zero_to_one(self):
        """The 6.25% worst case is the 16 -> 17 type step (1/16)."""
        assert seg.relative_step(17) == pytest.approx(1 / 16)

    def test_min_step_at_segment_boundary(self):
        """The 3.23% best case is the 1/31 step entering a segment
        (e.g. code 31 -> 32: factor 31 -> 32)."""
        assert seg.relative_step(32) == pytest.approx(1 / 31)

    def test_defined_from_code_2(self):
        assert seg.relative_step(2) == pytest.approx(1.0)
        with pytest.raises(CodingError):
            seg.relative_step(1)


class TestIdealMonotonicity:
    def test_strictly_monotonic_above_zero(self):
        factors = seg.all_multiplication_factors()
        assert all(b > a for a, b in zip(factors[1:], factors[2:]))

    def test_dynamic_range(self):
        factors = seg.all_multiplication_factors()
        assert factors[0] == 0
        assert factors[-1] == 1984  # "0:1984" (§5)


class TestCodeForFactor:
    def test_exact_hits(self):
        assert seg.code_for_factor(16) == 16
        assert seg.code_for_factor(1984) == 127

    def test_between_codes_rounds_up(self):
        assert seg.multiplication_factor(seg.code_for_factor(33)) >= 33

    def test_clamps(self):
        assert seg.code_for_factor(1e9) == 127
        assert seg.code_for_factor(0) == 0


@given(code=st.integers(2, 127))
def test_property_relative_step_positive(code):
    assert seg.relative_step(code) > 0


@given(code=st.integers(17, 127))
def test_property_step_band(code):
    step = seg.relative_step(code)
    assert MIN_RELATIVE_STEP_ABOVE_16 - 1e-12 <= step <= MAX_RELATIVE_STEP + 1e-12
