"""Tests for the §6 mid-supply reference buffer."""

import pytest

from repro.core import OVERDRIVE_CONSUMPTION_TYPICAL, VrefBuffer
from repro.errors import ConfigurationError


class TestDCOperatingPoint:
    def test_nominal_is_mid_supply(self):
        assert VrefBuffer(vdd=3.3).nominal_vref == pytest.approx(1.65)

    def test_holds_under_small_overdrive(self):
        buf = VrefBuffer()
        # 120 uA typical overdrive: Vref moves by i*Rout = 6 mV only.
        v = buf.output_voltage(OVERDRIVE_CONSUMPTION_TYPICAL)
        assert abs(v - buf.nominal_vref) < 0.01
        assert buf.regulation_ok(OVERDRIVE_CONSUMPTION_TYPICAL)

    def test_sink_and_source_symmetric(self):
        buf = VrefBuffer()
        up = buf.output_voltage(-100e-6) - buf.nominal_vref
        down = buf.nominal_vref - buf.output_voltage(100e-6)
        assert up == pytest.approx(down)

    def test_slips_beyond_class_a_limit(self):
        buf = VrefBuffer(class_a_limit=250e-6)
        inside = abs(buf.output_voltage(240e-6) - buf.nominal_vref)
        outside = abs(buf.output_voltage(500e-6) - buf.nominal_vref)
        assert outside > 10 * inside
        assert not buf.regulation_ok(2e-3)


class TestConsumption:
    def test_quiescent(self):
        buf = VrefBuffer(quiescent_current=40e-6)
        assert buf.supply_current(0.0) == pytest.approx(40e-6)

    def test_class_a_carries_overdrive(self):
        """§6: overdrive costs its own current on top of the bias —
        'additional power consumption (typically 120 uA)'."""
        buf = VrefBuffer(quiescent_current=40e-6)
        extra = buf.supply_current(120e-6) - buf.supply_current(0.0)
        assert extra == pytest.approx(120e-6)
        assert buf.typical_overdrive_consumption() == pytest.approx(160e-6)

    def test_consumption_clamps_at_class_a_limit(self):
        buf = VrefBuffer(class_a_limit=250e-6, quiescent_current=40e-6)
        assert buf.supply_current(10e-3) == pytest.approx(290e-6)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            VrefBuffer(vdd=0.0)
        with pytest.raises(ConfigurationError):
            VrefBuffer(output_resistance=-1.0)
        with pytest.raises(ConfigurationError):
            VrefBuffer(class_a_limit=0.0)
        with pytest.raises(ConfigurationError):
            VrefBuffer().regulation_ok(0.0, tolerance=0.0)
