"""Tests for the digital register interface."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ComparatorState, FailureKind
from repro.core.registers import ControlRegister, StatusRegister
from repro.errors import CodingError


class TestControlRegister:
    def test_roundtrip(self):
        reg = ControlRegister(
            enable=True, forced_code=105, force_code_mode=True, freeze_regulation=False
        )
        assert ControlRegister.unpack(reg.pack()) == reg

    def test_default_is_disabled(self):
        assert not ControlRegister().enable

    def test_reserved_bits_rejected(self):
        with pytest.raises(CodingError):
            ControlRegister.unpack(0x0004)

    def test_code_range(self):
        with pytest.raises(CodingError):
            ControlRegister(forced_code=128)

    @given(
        enable=st.booleans(),
        code=st.integers(0, 127),
        force=st.booleans(),
        freeze=st.booleans(),
    )
    def test_property_roundtrip(self, enable, code, force, freeze):
        reg = ControlRegister(enable, code, force, freeze)
        assert ControlRegister.unpack(reg.pack()) == reg


class TestStatusRegister:
    def test_roundtrip_clean(self):
        status = StatusRegister(code=61, comparator=ComparatorState.INSIDE)
        assert StatusRegister.unpack(status.pack()) == status
        assert not status.any_failure

    def test_roundtrip_with_failures(self):
        status = StatusRegister(
            code=127,
            comparator=ComparatorState.BELOW,
            failures={FailureKind.MISSING_OSCILLATION, FailureKind.LOW_AMPLITUDE},
        )
        unpacked = StatusRegister.unpack(status.pack())
        assert unpacked.failures == status.failures
        assert unpacked.any_failure

    def test_any_failure_bit_set(self):
        status = StatusRegister(
            code=0,
            comparator=ComparatorState.ABOVE,
            failures={FailureKind.ASYMMETRY},
        )
        assert status.pack() & (1 << 15)

    def test_inconsistent_summary_bit_rejected(self):
        clean = StatusRegister(code=5, comparator=ComparatorState.INSIDE).pack()
        with pytest.raises(CodingError):
            StatusRegister.unpack(clean | (1 << 15))

    def test_invalid_comparator_field(self):
        with pytest.raises(CodingError):
            StatusRegister.unpack(0b11 << 10)

    def test_from_system_trace(self, standard_config):
        from repro.core.oscillator_system import OscillatorDriverSystem

        trace = OscillatorDriverSystem(standard_config).run(0.02)
        status = StatusRegister.from_system_trace(trace)
        assert status.code == trace.final_code
        assert not status.any_failure

    def test_from_faulted_trace(self, standard_config):
        from repro.core.oscillator_system import OscillatorDriverSystem

        system = OscillatorDriverSystem(standard_config)
        trace = system.run(
            0.03, faults=[(0.015, lambda s: s.plant.kill_oscillation())]
        )
        status = StatusRegister.from_system_trace(trace)
        assert FailureKind.MISSING_OSCILLATION in status.failures
        assert status.code == 127

    @given(
        code=st.integers(0, 127),
        comparator=st.sampled_from(list(ComparatorState)),
        failures=st.sets(st.sampled_from(list(FailureKind))),
    )
    def test_property_roundtrip(self, code, comparator, failures):
        status = StatusRegister(code=code, comparator=comparator, failures=failures)
        assert StatusRegister.unpack(status.pack()) == status
