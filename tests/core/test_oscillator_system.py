"""System-level tests of the complete oscillator driver."""

import numpy as np
import pytest

from repro.core import FailureKind
from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.envelope import RLCTank
from repro.errors import ConfigurationError, SimulationError


class TestConfig:
    def test_derived_nvm_code_reasonable(self, standard_tank):
        code = OscillatorConfig(tank=standard_tank).derived_nvm_code()
        assert 16 <= code <= 127

    def test_validation(self, standard_tank):
        with pytest.raises(ConfigurationError):
            OscillatorConfig(tank=standard_tank, target_peak_amplitude=0.0)
        with pytest.raises(ConfigurationError):
            OscillatorConfig(tank=standard_tank, window_margin=0.9)
        with pytest.raises(ConfigurationError):
            OscillatorConfig(tank=standard_tank, substeps_per_tick=0)


class TestRegulation:
    def test_settles_to_target(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(0.05)
        target = standard_config.target_peak_amplitude
        # Inside the regulation window (±~5.3 % of target with the
        # default 1.3 margin) — allow the window width.
        assert abs(trace.final_amplitude / target - 1.0) < 0.06
        assert not trace.any_failure

    def test_final_code_matches_design_equation(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(0.05)
        derived = standard_config.derived_nvm_code()
        assert abs(trace.final_code - derived) <= 3

    def test_startup_sequence_codes(self, standard_tank):
        config = OscillatorConfig(tank=standard_tank, nvm_code=70)
        system = OscillatorDriverSystem(config)
        trace = system.run(0.02)
        # First sample: POR code.
        assert trace.code[0] == config.por_code
        # Shortly after the NVM delay but before the first tick: NVM code.
        idx = np.searchsorted(trace.t, config.regulation_period * 0.5)
        assert trace.code[idx] == 70

    def test_regulates_from_wrong_nvm_preset(self, standard_tank):
        """Even a badly-programmed NVM code converges to the target."""
        config = OscillatorConfig(tank=standard_tank, nvm_code=120)
        trace = OscillatorDriverSystem(config).run(0.12)
        assert abs(
            trace.final_amplitude / config.target_peak_amplitude - 1.0
        ) < 0.06

    def test_steady_state_holds(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(0.06)
        tail_codes = trace.code[-20:]
        assert tail_codes.max() - tail_codes.min() <= 1  # no limit cycle


class TestQualityFactorRange:
    """§1/§9: the driver works over two decades of tank Q."""

    @pytest.mark.parametrize("q", [8.0, 30.0, 100.0, 500.0])
    def test_regulates_across_q(self, q):
        tank = RLCTank.from_frequency_and_q(4e6, q, 1e-6)
        config = OscillatorConfig(tank=tank, target_peak_amplitude=1.0)
        trace = OscillatorDriverSystem(config).run(0.08)
        assert abs(trace.final_amplitude - 1.0) < 0.06
        assert not trace.any_failure

    def test_higher_q_needs_less_current(self):
        results = []
        for q in (10.0, 100.0):
            tank = RLCTank.from_frequency_and_q(4e6, q, 1e-6)
            config = OscillatorConfig(tank=tank, target_peak_amplitude=1.0)
            trace = OscillatorDriverSystem(config).run(0.05)
            results.append(trace.mean_supply_current)
        assert results[1] < results[0] / 3


class TestSupplyCurrentRange:
    def test_paper_consumption_band(self):
        """§9: 250 uA (good tank) to 30 mA (poor tank) — the model's
        supply current must span the same order of magnitudes."""
        good = RLCTank.from_frequency_and_q(4e6, 400.0, 2e-6)
        poor = RLCTank.from_frequency_and_q(4e6, 6.0, 1e-6)
        i_good = (
            OscillatorDriverSystem(OscillatorConfig(tank=good))
            .run(0.05)
            .mean_supply_current
        )
        i_poor = (
            OscillatorDriverSystem(OscillatorConfig(tank=poor))
            .run(0.05)
            .mean_supply_current
        )
        assert i_good < 1e-3
        assert i_poor > 5e-3
        assert i_poor < 35e-3


class TestFaultsAndSafety:
    def test_killed_oscillation_detected_and_forced_max(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(
            0.05, faults=[(0.02, lambda s: s.plant.kill_oscillation())]
        )
        assert FailureKind.MISSING_OSCILLATION in trace.failures
        assert trace.failures[FailureKind.MISSING_OSCILLATION] >= 0.02
        # §9 reaction: driver forced to maximum output current.
        assert trace.final_code == 127

    def test_asymmetry_detected(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(
            0.05, faults=[(0.02, lambda s: s.plant.set_amplitude_split(1.5))]
        )
        assert FailureKind.ASYMMETRY in trace.failures

    def test_supply_loss_freezes_chip(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        trace = system.run(0.05, faults=[(0.02, lambda s: s.plant.lose_supply())])
        # Unpowered: no on-chip detection fires; amplitude dies; supply
        # current is zero at the end.
        assert not trace.any_failure
        assert trace.final_amplitude < 1e-3
        assert trace.supply_current[-1] == 0.0


class TestTraceAccessors:
    def test_waveform_helpers(self, standard_config):
        trace = OscillatorDriverSystem(standard_config).run(0.01)
        assert len(trace.amplitude_waveform()) == len(trace.t)
        assert trace.code_waveform().y[0] == standard_config.por_code
        assert trace.detector_waveform().y[-1] > 0
        assert trace.supply_current_waveform().y[-1] > 0

    def test_run_validation(self, standard_config):
        system = OscillatorDriverSystem(standard_config)
        with pytest.raises(SimulationError):
            system.run(0.0)
