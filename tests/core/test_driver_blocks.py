"""Tests for prescaler, mirrors, Gm block, and the driver I-V factory."""

import numpy as np
import pytest

from repro.core import GmBlock, Prescaler
from repro.core.current_mirror import ComplementaryMirrors, CurrentMirror
from repro.core.driver_iv import (
    DEFAULT_GM_UNIT,
    DriverIV,
    driver_limiter_for_code,
    static_iv_curve,
)
from repro.envelope import HardLimiter, TanhLimiter
from repro.errors import CodingError
from repro.mc import MismatchProfile


class TestPrescaler:
    def test_factors(self):
        assert Prescaler.factor_for(0b000) == 1
        assert Prescaler.factor_for(0b001) == 2
        assert Prescaler.factor_for(0b011) == 4
        assert Prescaler.factor_for(0b111) == 8

    def test_invalid_code(self):
        with pytest.raises(CodingError):
            Prescaler.factor_for(0b010)

    def test_output_current(self):
        p = Prescaler(i_ref=12.5e-6)
        assert p.output_current(0b011) == pytest.approx(50e-6)

    def test_mismatch_applied(self):
        profile = MismatchProfile(prescale_errors=(0.0, 0.0, 0.01, 0.0))
        p = Prescaler(i_ref=1e-6, mismatch=profile)
        assert p.gain(0b011) == pytest.approx(4.04)

    def test_invalid_iref(self):
        with pytest.raises(CodingError):
            Prescaler(i_ref=-1.0)


class TestCurrentMirror:
    def test_fixed_and_binary(self):
        m = CurrentMirror()
        assert m.fixed_units(0b0111) == 64
        assert m.binary_units(0b0101) == 5
        assert m.output_units(0b1111, 0b1111000) == 128 + 120

    def test_validation(self):
        m = CurrentMirror()
        with pytest.raises(CodingError):
            m.fixed_units(1 << 4)
        with pytest.raises(CodingError):
            m.binary_units(1 << 7)

    def test_complementary_average_and_asymmetry(self):
        top = MismatchProfile(fixed_mirror_errors=(0.02, 0.0, 0.0, 0.0))
        bottom = MismatchProfile(fixed_mirror_errors=(-0.02, 0.0, 0.0, 0.0))
        pair = ComplementaryMirrors(top_mismatch=top, bottom_mismatch=bottom)
        assert pair.output_units(0b0001, 0) == pytest.approx(16.0)
        assert pair.asymmetry_units(0b0001, 0) == pytest.approx(0.64)


class TestGmBlock:
    def test_stage_weights(self):
        assert GmBlock.active_stage_weight(0b0000) == 1
        assert GmBlock.active_stage_weight(0b0001) == 2
        assert GmBlock.active_stage_weight(0b0011) == 3
        assert GmBlock.active_stage_weight(0b0111) == 5
        assert GmBlock.active_stage_weight(0b1111) == 9

    def test_transconductance(self):
        block = GmBlock(gm_unit=1.2e-3)
        assert block.transconductance(0b1111) == pytest.approx(10.8e-3)

    def test_max_gm_matches_paper(self):
        """§9: equivalent transconductance up to around 10 mS."""
        block = GmBlock(gm_unit=DEFAULT_GM_UNIT)
        assert 9e-3 < block.transconductance(0b1111) < 12e-3

    def test_validation(self):
        with pytest.raises(CodingError):
            GmBlock(gm_unit=0.0)
        with pytest.raises(CodingError):
            GmBlock(gm_unit=1e-3).transconductance(1 << 4)


class TestDriverIV:
    def test_limiter_for_code(self):
        driver = DriverIV()
        lim = driver.limiter(100)
        assert isinstance(lim, HardLimiter)
        # Code 100 = segment 6, mantissa 4 -> (16+4)*32 = 640 units.
        assert lim.i_max == pytest.approx(640 * 12.5e-6, rel=1e-9)
        assert lim.gm == pytest.approx(5 * DEFAULT_GM_UNIT, rel=1e-9)

    def test_smooth_variant(self):
        driver = DriverIV(smooth=True)
        assert isinstance(driver.limiter(50), TanhLimiter)

    def test_code0_floor(self):
        lim = DriverIV().limiter(0)
        assert lim.i_max > 0  # valid object, physically ~zero

    def test_convenience_matches_class(self):
        a = DriverIV().limiter(77)
        b = driver_limiter_for_code(77)
        assert a.i_max == pytest.approx(b.i_max)
        assert a.gm == pytest.approx(b.gm)


class TestStaticIVCurve:
    def test_fig2_shape(self):
        """Fig 2: linear through zero, flat at ±Im."""
        lim = HardLimiter(gm=1e-3, i_max=1e-4)
        v, i = static_iv_curve(lim, v_max=1.0, n=401)
        assert i[0] == pytest.approx(-1e-4)
        assert i[-1] == pytest.approx(1e-4)
        mid = np.argmin(np.abs(v))
        assert i[mid] == pytest.approx(0.0, abs=1e-9)
        # Odd symmetry.
        assert np.allclose(i, -i[::-1])

    def test_validation(self):
        with pytest.raises(CodingError):
            static_iv_curve(HardLimiter(gm=1e-3, i_max=1e-4), v_max=0.0)
