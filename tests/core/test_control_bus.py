"""Tests of the OscD/OscE/OscF control-bus coding against Table 1."""

import pytest
from hypothesis import given, strategies as st

from repro.core import control_bus as cb
from repro.core.segments import multiplication_factor
from repro.errors import CodingError


class TestEncode:
    def test_every_code_matches_factor(self):
        """The paper's bus formula reproduces M(n) for all 128 codes."""
        for code in range(128):
            word = cb.encode(code)
            assert word.output_units == multiplication_factor(code), code

    def test_segment0_buses(self):
        word = cb.encode(5)
        assert word.osc_d == 0b000
        assert word.osc_e == 0b0000
        assert word.osc_f == 5

    def test_segment7_buses(self):
        word = cb.encode(127)
        assert word.osc_d == 0b111
        assert word.osc_e == 0b1111
        assert word.osc_f == 0b1111000  # mantissa 15 shifted by 3

    def test_prescale_factors(self):
        assert cb.encode(0).prescale_factor == 1
        assert cb.encode(40).prescale_factor == 2
        assert cb.encode(70).prescale_factor == 4
        assert cb.encode(127).prescale_factor == 8

    def test_active_gm_stages_match_table(self):
        assert cb.encode(0).active_gm_stages == 1
        assert cb.encode(16).active_gm_stages == 2
        assert cb.encode(48).active_gm_stages == 3
        assert cb.encode(80).active_gm_stages == 5
        assert cb.encode(112).active_gm_stages == 9


class TestControlWordValidation:
    def test_non_thermometer_osc_d_rejected(self):
        with pytest.raises(CodingError):
            cb.ControlWord(osc_d=0b010, osc_e=0, osc_f=0)

    def test_out_of_width(self):
        with pytest.raises(CodingError):
            cb.ControlWord(osc_d=0b1000, osc_e=0, osc_f=0)
        with pytest.raises(CodingError):
            cb.ControlWord(osc_d=0, osc_e=0b10000, osc_f=0)
        with pytest.raises(CodingError):
            cb.ControlWord(osc_d=0, osc_e=0, osc_f=1 << 7)

    def test_bus_strings(self):
        word = cb.encode(127)
        assert word.bus_strings() == ["111", "1111", "1111000"]


class TestTable1Rows:
    def test_row_count(self):
        assert len(cb.table1_rows()) == 8

    def test_osc_f_templates(self):
        rows = cb.table1_rows()
        assert rows[0]["osc_f_template"] == "000B3B2B1B0"
        assert rows[3]["osc_f_template"] == "00B3B2B1B00"
        assert rows[5]["osc_f_template"] == "0B3B2B1B000"
        assert rows[7]["osc_f_template"] == "B3B2B1B0000"

    def test_ranges_in_rows(self):
        rows = cb.table1_rows()
        assert rows[7]["range_min"] == 1024
        assert rows[7]["range_max"] == 1984

    def test_verify_helper(self):
        assert cb.verify_against_factors()


class TestMirrorSplit:
    def test_fixed_units_by_osc_e(self):
        assert cb.encode(0).fixed_mirror_units == 0
        assert cb.encode(16).fixed_mirror_units == 16
        assert cb.encode(64).fixed_mirror_units == 32
        assert cb.encode(80).fixed_mirror_units == 64
        assert cb.encode(127).fixed_mirror_units == 128

    def test_output_decomposition(self):
        """Iout = prescale * (fixed + OscF) for every code."""
        for code in range(128):
            word = cb.encode(code)
            assert word.output_units == word.prescale_factor * (
                word.fixed_mirror_units + word.osc_f
            )


@given(code=st.integers(0, 127))
def test_property_encode_valid_word(code):
    word = cb.encode(code)
    assert word.osc_d in (0b000, 0b001, 0b011, 0b111)
    assert 0 <= word.osc_e <= 0b1111
    assert 0 <= word.osc_f <= 0b1111111
