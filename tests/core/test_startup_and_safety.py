"""Tests for startup sequencing (§4) and the safety monitors (§7)."""

import pytest

from repro.core import (
    FailureKind,
    SafetyConfig,
    SafetyMonitors,
    SafetyReaction,
    StartupPhase,
    StartupSequencer,
    startup_current_fraction,
)
from repro.core.constants import NVM_READ_DELAY, POR_CODE
from repro.digital import NonVolatileMemory
from repro.errors import ConfigurationError


class TestStartupFraction:
    def test_paper_40_percent(self):
        """§4: startup at code 105 draws ~40 % of max consumption."""
        fraction = startup_current_fraction()
        assert fraction == pytest.approx(0.42, abs=0.02)

    def test_por_code_below_max(self):
        assert POR_CODE < 127


class TestStartupSequencer:
    @pytest.fixture
    def sequencer(self):
        nvm = NonVolatileMemory()
        nvm.program_amplitude_code(61)
        return StartupSequencer(nvm=nvm)

    def test_disabled_phase(self, sequencer):
        assert sequencer.phase_at(1.0) is StartupPhase.DISABLED
        assert sequencer.code_at(1.0) == 0

    def test_por_then_nvm(self, sequencer):
        sequencer.enable(0.0)
        assert sequencer.phase_at(1e-6) is StartupPhase.POR_PRESET
        assert sequencer.code_at(1e-6) == POR_CODE
        assert sequencer.phase_at(NVM_READ_DELAY + 1e-6) is StartupPhase.NVM_PRESET
        assert sequencer.code_at(NVM_READ_DELAY + 1e-6) == 61

    def test_disable(self, sequencer):
        sequencer.enable(0.0)
        sequencer.disable()
        assert not sequencer.enabled
        assert sequencer.code_at(1.0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StartupSequencer(nvm=NonVolatileMemory(), por_code=128)


class TestSafetyMonitors:
    def make(self, **kwargs):
        config = SafetyConfig(**kwargs)
        monitors = SafetyMonitors(config=config, detector_target=0.43)
        monitors.arm(0.0)
        return monitors

    def test_missing_oscillation(self):
        m = self.make(watchdog_timeout=10e-6)
        # Healthy oscillation for a while.
        for k in range(10):
            m.observe_oscillation(k * 1e-6, peak_amplitude=1.0)
        assert not m.any_failure
        # Oscillation stops: amplitude below comparator sensitivity.
        for k in range(10, 40):
            m.observe_oscillation(k * 1e-6, peak_amplitude=0.001)
        assert FailureKind.MISSING_OSCILLATION in m.failures
        assert m.first_detection_time(FailureKind.MISSING_OSCILLATION) > 10e-6

    def test_low_amplitude_needs_persistence(self):
        m = self.make(low_amplitude_ticks=3)
        m.observe_tick(0.001, detector_voltage=0.05)
        m.observe_tick(0.002, detector_voltage=0.05)
        assert FailureKind.LOW_AMPLITUDE not in m.failures
        m.observe_tick(0.003, detector_voltage=0.05)
        assert FailureKind.LOW_AMPLITUDE in m.failures

    def test_low_amplitude_counter_resets(self):
        m = self.make(low_amplitude_ticks=3)
        m.observe_tick(0.001, 0.05)
        m.observe_tick(0.002, 0.40)  # healthy tick resets the count
        m.observe_tick(0.003, 0.05)
        m.observe_tick(0.004, 0.05)
        assert FailureKind.LOW_AMPLITUDE not in m.failures

    def test_asymmetry(self):
        m = self.make()
        m.observe_tick(0.001, 0.43, amplitude_lc1=0.9, amplitude_lc2=0.4)
        assert FailureKind.ASYMMETRY in m.failures

    def test_symmetric_quiet(self):
        m = self.make()
        m.observe_tick(0.001, 0.43, amplitude_lc1=0.675, amplitude_lc2=0.675)
        assert not m.any_failure

    def test_arm_clears(self):
        m = self.make(low_amplitude_ticks=1)
        m.observe_tick(0.001, 0.0)
        assert m.any_failure
        m.arm(0.002)
        assert not m.any_failure

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SafetyConfig(low_amplitude_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SafetyConfig(watchdog_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SafetyMonitors(detector_target=0.0)


class TestSafetyReaction:
    def test_forced_code_is_max(self):
        """§9: on failure the driver is set to maximum output current."""
        assert SafetyReaction().forced_code() == 127
