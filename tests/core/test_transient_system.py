"""Tests for the carrier-level oscillator netlist (Fig 16)."""

import math

import pytest

from repro.analysis import envelope_by_peaks, oscillation_frequency
from repro.core import OscillatorNetlist, driver_limiter_for_code
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def small_tank():
    """A modest-Q tank so startup completes in few carrier cycles."""
    return RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)


@pytest.fixture(scope="module")
def startup_run(small_tank):
    netlist = OscillatorNetlist(small_tank, vref=2.5)
    limiter = TanhLimiter(gm=6e-3, i_max=2e-3)
    t_stop = 60 / small_tank.frequency
    return (
        netlist.run_startup(code=0, t_stop=t_stop, limiter=limiter),
        limiter,
        t_stop,
    )


class TestStartup:
    def test_oscillation_grows_from_seed(self, startup_run):
        result, _limiter, t_stop = startup_run
        early = result.differential.window(0, t_stop / 10).peak_to_peak()
        late = result.differential.window(0.8 * t_stop, t_stop).peak_to_peak()
        assert late > 5 * early

    def test_frequency_matches_tank(self, startup_run, small_tank):
        result, _limiter, t_stop = startup_run
        tail = result.differential.window(0.5 * t_stop, t_stop)
        assert oscillation_frequency(tail) == pytest.approx(
            small_tank.frequency, rel=0.01
        )

    def test_amplitude_matches_envelope_model(self, startup_run, small_tank):
        result, limiter, t_stop = startup_run
        tail = result.differential.window(0.8 * t_stop, t_stop)
        a_mna = 0.5 * tail.peak_to_peak()
        a_env = EnvelopeModel(small_tank, limiter).steady_state()
        assert a_mna == pytest.approx(a_env, rel=0.05)

    def test_pins_swing_around_vref(self, startup_run):
        result, _limiter, t_stop = startup_run
        lc1_tail = result.lc1.window(0.8 * t_stop, t_stop)
        mid = 0.5 * (lc1_tail.max() + lc1_tail.min())
        assert mid == pytest.approx(2.5, abs=0.1)

    def test_complementary_pins(self, startup_run):
        """LC1 and LC2 swing in antiphase: their sum is ~2*Vref DC."""
        result, _limiter, t_stop = startup_run
        total = result.lc1 + result.lc2
        tail = total.window(0.8 * t_stop, t_stop)
        assert tail.peak_to_peak() < 0.2 * result.differential.peak_to_peak()


class TestHelpers:
    def test_expected_period(self, small_tank):
        netlist = OscillatorNetlist(small_tank)
        assert netlist.expected_period() == pytest.approx(
            1 / small_tank.frequency
        )

    def test_cycles_to_settle(self, small_tank):
        netlist = OscillatorNetlist(small_tank)
        critical = 1 / small_tank.parallel_resistance
        assert math.isinf(netlist.cycles_to_settle(0.5 * critical))
        assert netlist.cycles_to_settle(5 * critical) < 1000

    def test_validation(self, small_tank):
        netlist = OscillatorNetlist(small_tank)
        with pytest.raises(SimulationError):
            netlist.run_startup(code=10, t_stop=0.0)
        with pytest.raises(SimulationError):
            netlist.run_startup(code=10, t_stop=1e-6, points_per_cycle=4)

    def test_default_limiter_from_code(self, small_tank):
        lim = driver_limiter_for_code(100, smooth=True)
        assert lim.i_max == pytest.approx(640 * 12.5e-6)
