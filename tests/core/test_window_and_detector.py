"""Tests for the window comparator and amplitude/asymmetry detectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AmplitudeDetector,
    AsymmetryDetector,
    ComparatorState,
    DETECTOR_GAIN,
    WindowComparator,
    design_window,
)
from repro.core.constants import MAX_RELATIVE_STEP
from repro.errors import ConfigurationError


class TestWindowComparator:
    def test_three_states(self):
        w = WindowComparator(low=0.9, high=1.1)
        assert w.compare(0.5) is ComparatorState.BELOW
        assert w.compare(1.0) is ComparatorState.INSIDE
        assert w.compare(1.5) is ComparatorState.ABOVE

    def test_boundaries_inclusive(self):
        w = WindowComparator(low=0.9, high=1.1)
        assert w.compare(0.9) is ComparatorState.INSIDE
        assert w.compare(1.1) is ComparatorState.INSIDE

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowComparator(low=1.1, high=0.9)
        with pytest.raises(ConfigurationError):
            WindowComparator(low=0.0, high=1.0)

    def test_relative_width(self):
        w = WindowComparator(low=0.95, high=1.05)
        assert w.relative_width == pytest.approx(0.1)
        assert w.center == pytest.approx(1.0)


class TestDesignWindow:
    def test_wider_than_max_step(self):
        """§4 rule: window > 6.25 % so a step can never jump across."""
        w = design_window(1.0)
        assert w.is_wider_than_step(MAX_RELATIVE_STEP)
        assert w.relative_width > 0.0625

    def test_margin_scales_width(self):
        narrow = design_window(1.0, margin=1.1)
        wide = design_window(1.0, margin=2.0)
        assert wide.relative_width > narrow.relative_width

    def test_margin_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            design_window(1.0, margin=0.9)

    def test_target_positive(self):
        with pytest.raises(ConfigurationError):
            design_window(0.0)


class TestAmplitudeDetector:
    def test_gain_is_one_over_pi(self):
        """Full-wave rectified pin swing A/2 averages (2/pi)(A/2)."""
        assert DETECTOR_GAIN == pytest.approx(1 / math.pi)

    def test_instant_detector(self):
        d = AmplitudeDetector(tau=0.0)
        d.update(math.pi, dt=1e-6)
        assert d.output == pytest.approx(1.0)

    def test_filter_lag(self):
        d = AmplitudeDetector(tau=50e-6)
        d.update(1.0, dt=50e-6)  # one tau
        target = d.target_for_amplitude(1.0)
        assert d.output == pytest.approx(target * (1 - math.exp(-1)), rel=1e-6)

    def test_inverse(self):
        d = AmplitudeDetector()
        assert d.amplitude_for_output(d.target_for_amplitude(1.35)) == pytest.approx(
            1.35
        )

    def test_reset(self):
        d = AmplitudeDetector()
        d.update(1.0, 1.0)
        d.reset()
        assert d.output == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmplitudeDetector(gain=0.0)
        with pytest.raises(ConfigurationError):
            AmplitudeDetector(tau=-1.0)
        with pytest.raises(ConfigurationError):
            AmplitudeDetector().update(1.0, dt=-1.0)


class TestAsymmetryDetector:
    def test_symmetric_is_quiet(self):
        det = AsymmetryDetector(threshold=0.05)
        assert det.output(0.675, 0.675) == 0.0
        assert not det.asymmetric(0.675, 0.675)

    def test_missing_cap_detected(self):
        det = AsymmetryDetector(threshold=0.05)
        # Strong imbalance: one pin at 1.0, the other at 0.35.
        assert det.asymmetric(1.0, 0.35)

    def test_output_value(self):
        det = AsymmetryDetector()
        assert det.output(1.0, 0.5) == pytest.approx((2 / math.pi) * 0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsymmetryDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            AsymmetryDetector().output(-1.0, 0.5)


@given(target=st.floats(0.1, 10.0), margin=st.floats(1.01, 3.0))
def test_property_designed_window_always_beats_step(target, margin):
    w = design_window(target, margin=margin)
    assert w.is_wider_than_step()
    assert w.low < target < w.high


class TestDetectorRipple:
    def test_ripple_small_vs_window(self):
        """With the default 50 us filter at 4 MHz carrier, the ripple
        is tiny compared to the regulation window half-width."""
        d = AmplitudeDetector(tau=50e-6)
        ripple = d.ripple(1.35, carrier_frequency=4e6)
        window = design_window(d.target_for_amplitude(1.35))
        half_width = (window.high - window.low) / 2
        assert ripple < 0.02 * half_width

    def test_ripple_scales_inverse_tau(self):
        fast = AmplitudeDetector(tau=10e-6).ripple(1.0, 4e6)
        slow = AmplitudeDetector(tau=100e-6).ripple(1.0, 4e6)
        assert fast / slow == pytest.approx(10.0, rel=1e-6)

    def test_unfiltered_ripple_is_two_thirds_dc(self):
        d = AmplitudeDetector(tau=0.0)
        assert d.ripple(math.pi, 4e6) == pytest.approx(2.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmplitudeDetector().ripple(1.0, 0.0)
