"""Tests for the output-stage topologies (Fig 10/11, 17/18)."""

import numpy as np
import pytest

from repro.core.output_stage import (
    TOPOLOGIES,
    build_supply_loss_testbench,
    powered_output_low_voltage,
    run_supply_loss_sweep,
)
from repro.errors import ConfigurationError

# One sweep per topology, shared across tests (they are DC solves and
# take a noticeable fraction of a second each).
_SWEEPS = {}


def sweep(topology):
    if topology not in _SWEEPS:
        _SWEEPS[topology] = run_supply_loss_sweep(topology, n_points=61)
    return _SWEEPS[topology]


class TestTestbench:
    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            build_supply_loss_testbench("fig99")
        with pytest.raises(ConfigurationError):
            run_supply_loss_sweep("fig99")

    def test_differential_drive(self):
        r = sweep("fig11")
        # LC1 = +V/2, LC2 = -V/2 (minus the small source drop).
        i = np.argmax(r.v_diff)
        assert r.v_lc1[i] == pytest.approx(+1.5, abs=0.05)
        assert r.v_lc2[i] == pytest.approx(-1.5, abs=0.05)


class TestFig11:
    """The paper's driver: Fig 17/18 shapes."""

    def test_dead_zone_at_small_amplitude(self):
        r = sweep("fig11")
        assert abs(r.current_at(0.5)) < 5e-6
        assert abs(r.current_at(-0.5)) < 5e-6

    def test_sub_milliamp_at_3v(self):
        """Fig 17: current stays below ~1 mA over the full ±3 V."""
        r = sweep("fig11")
        assert r.max_loading_current() < 1.5e-3

    def test_negligible_at_operating_amplitude(self):
        """§9: at 2.7 Vpp the dead system does not significantly load
        the live one."""
        r = sweep("fig11")
        assert abs(r.current_at(1.35)) < 200e-6
        assert abs(r.current_at(-1.35)) < 200e-6

    def test_vdd_pumped_by_bulk_diode(self):
        """Fig 18: floating Vdd rises toward |V/2| - Vdiode."""
        r = sweep("fig11")
        assert 0.5 < r.vdd_at(3.0) < 1.3
        assert 0.5 < r.vdd_at(-3.0) < 1.3
        assert abs(r.vdd_at(0.0)) < 0.05

    def test_current_odd_symmetric(self):
        r = sweep("fig11")
        assert r.current_at(3.0) == pytest.approx(-r.current_at(-3.0), rel=0.25)


class TestFig10aAblation:
    """Standard CMOS driver: must load heavily (the paper's problem)."""

    def test_negative_half_conducts_hard(self):
        r = sweep("fig10a")
        assert r.current_at(-3.0) < -10e-3  # tens of mA

    def test_orders_of_magnitude_worse_than_fig11(self):
        bad = sweep("fig10a").max_loading_current()
        good = sweep("fig11").max_loading_current()
        assert bad > 30 * good


class TestFig10bAblation:
    """Series PMOS: negative blocked, but output range lost."""

    def test_negative_blocked(self):
        r = sweep("fig10b")
        assert abs(r.current_at(-3.0)) < 50e-6

    def test_voltage_range_cost(self):
        """§8: 'voltage needed to open MP1d' — output low stalls about
        a PMOS threshold above ground; fig10a/fig11 reach ~0 V."""
        low_b = powered_output_low_voltage("fig10b")
        low_a = powered_output_low_voltage("fig10a")
        low_11 = powered_output_low_voltage("fig11")
        assert low_b > 0.6
        assert low_a < 0.1
        assert low_11 < 0.1

    def test_powered_range_validation(self):
        with pytest.raises(ConfigurationError):
            powered_output_low_voltage("fig99")


class TestSweepValidation:
    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            run_supply_loss_sweep("fig11", v_max=0.0)
        with pytest.raises(ConfigurationError):
            run_supply_loss_sweep("fig11", n_points=2)

    def test_topology_list(self):
        assert set(TOPOLOGIES) == {"fig10a", "fig10b", "fig11"}
