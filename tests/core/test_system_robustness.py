"""System-level robustness: mismatch, noise, and the §4 claims that
the regulation loop tolerates an imperfect DAC and a noisy detector."""

import numpy as np
import pytest

from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.envelope import RLCTank
from repro.errors import ConfigurationError
from repro.mc import MismatchProfile


@pytest.fixture
def tank():
    return RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)


class TestMismatchedSystem:
    def test_regulates_through_non_monotonic_code(self, tank):
        """§4: 'the converter can even be non-monotonic' — a system
        whose regulated code sits right at the code-96 reversal must
        still settle inside the window."""
        profile = MismatchProfile.measured_like()
        # Pick a target amplitude whose required current lands near
        # code 96 for this tank: I(96) ~ 6.25 mA realized.
        from repro.core.dac import HardwareDAC
        from repro.core.design_equations import steady_state_peak

        dac = HardwareDAC(mismatch=profile)
        target = steady_state_peak(tank, dac.current(96))
        config = OscillatorConfig(
            tank=tank,
            target_peak_amplitude=target,
            mismatch=profile,
            nvm_code=80,
        )
        trace = OscillatorDriverSystem(config).run(0.08)
        assert abs(trace.final_amplitude / target - 1.0) < 0.06
        assert not trace.any_failure
        # And it ended in the reversal neighbourhood, proving the loop
        # actually walked across the non-monotonic region.
        assert 90 <= trace.final_code <= 102

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_monte_carlo_parts_all_regulate(self, tank, seed):
        config = OscillatorConfig(
            tank=tank, mismatch=MismatchProfile.sample(seed=seed)
        )
        trace = OscillatorDriverSystem(config).run(0.05)
        assert abs(trace.final_amplitude / 1.35 - 1.0) < 0.07
        assert not trace.any_failure


class TestDetectorNoise:
    def test_noisy_detector_still_settles(self, tank):
        """Comparator noise well below the window half-width cannot
        destabilize the loop."""
        config = OscillatorConfig(tank=tank, detector_noise_rms=3e-3)
        trace = OscillatorDriverSystem(config).run(0.08)
        assert abs(trace.final_amplitude / 1.35 - 1.0) < 0.07
        tail = trace.code[-30:]
        assert tail.max() - tail.min() <= 2

    def test_noise_reproducible_by_seed(self, tank):
        config_a = OscillatorConfig(tank=tank, detector_noise_rms=5e-3, noise_seed=7)
        config_b = OscillatorConfig(tank=tank, detector_noise_rms=5e-3, noise_seed=7)
        trace_a = OscillatorDriverSystem(config_a).run(0.03)
        trace_b = OscillatorDriverSystem(config_b).run(0.03)
        assert np.array_equal(trace_a.code, trace_b.code)

    def test_large_noise_causes_extra_steps(self, tank):
        """Noise comparable to the window width makes the loop hunt —
        quantifying why the window has margin over the step."""
        quiet = OscillatorDriverSystem(
            OscillatorConfig(tank=tank, detector_noise_rms=0.0)
        ).run(0.08)
        noisy = OscillatorDriverSystem(
            OscillatorConfig(tank=tank, detector_noise_rms=0.05)
        ).run(0.08)

        def tail_changes(trace):
            tail = trace.code[-40:]
            return int(np.sum(np.abs(np.diff(tail)) > 0))

        assert tail_changes(noisy) > tail_changes(quiet)

    def test_negative_noise_rejected(self, tank):
        with pytest.raises(ConfigurationError):
            OscillatorConfig(tank=tank, detector_noise_rms=-1.0)
