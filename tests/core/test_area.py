"""Tests for the Fig 12 / §9 area budget."""

import pytest

from repro.core.area import AreaBudget, default_area_budget
from repro.core.constants import LAYOUT_AREA_DRIVER_MM2, LAYOUT_AREA_FULL_MM2
from repro.errors import ConfigurationError


class TestDefaultBudget:
    def test_matches_paper_subtotals(self):
        budget = default_area_budget()
        ok, message = budget.check_against_paper(tolerance=0.005)
        assert ok, message
        assert budget.driver_total == pytest.approx(LAYOUT_AREA_DRIVER_MM2, abs=5e-3)
        assert budget.total == pytest.approx(LAYOUT_AREA_FULL_MM2, abs=5e-3)

    def test_driver_is_majority_of_die(self):
        """§9: the driver dominates the block (0.22 of 0.40 mm2)."""
        budget = default_area_budget()
        assert 0.5 < budget.driver_total / budget.total < 0.6

    def test_fractions_sum_to_one(self):
        budget = default_area_budget()
        assert sum(budget.fraction(n) for n in budget.blocks) == pytest.approx(1.0)


class TestBookkeeping:
    def test_duplicate_rejected(self):
        budget = AreaBudget()
        budget.add("x", 0.1)
        with pytest.raises(ConfigurationError):
            budget.add("x", 0.2)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            AreaBudget().add("x", 0.0)

    def test_unknown_fraction(self):
        with pytest.raises(ConfigurationError):
            default_area_budget().fraction("nope")

    def test_check_fails_for_wrong_budget(self):
        budget = AreaBudget()
        budget.add("only-block", 0.01, driver=True)
        ok, _message = budget.check_against_paper()
        assert not ok
