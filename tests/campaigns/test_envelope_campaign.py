"""Tests for warm-started envelope campaigns and the chain ordering."""

import numpy as np
import pytest

from repro.campaigns import nearest_neighbor_chain, run_envelope_campaign
from repro.circuits import EnvelopeOptions, TransientOptions
from repro.core import OscillatorNetlist
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter

F = 4e6
T = 1.0 / F


def _tank():
    return RLCTank.from_frequency_and_q(F, 15.0, 1e-6)


def build_oscillator(i_max):
    return OscillatorNetlist(_tank(), vref=2.5).build(
        TanhLimiter(gm=6e-3, i_max=i_max)
    )


def envelope_for(i_max):
    model = EnvelopeModel(_tank(), TanhLimiter(gm=6e-3, i_max=i_max))
    return EnvelopeOptions(period=T, nodes=("lc1", "lc2"), model=model)


OPTIONS = TransientOptions(
    t_stop=200 * T,
    dt=T / 40,
    method="trap",
    use_dc_operating_point=False,
    record_nodes=("lc1", "lc2"),
)


class TestNearestNeighborChain:
    def test_scalar_chain_greedy(self):
        assert nearest_neighbor_chain([3.0, 1.0, 2.5, 0.5]) == [0, 2, 1, 3]

    def test_vector_chain(self):
        pts = [(0.0, 0.0), (5.0, 5.0), (1.0, 0.0), (5.0, 6.0)]
        assert nearest_neighbor_chain(pts) == [0, 2, 1, 3]

    def test_start_index(self):
        assert nearest_neighbor_chain([0.0, 10.0, 1.0], start=1) == [1, 2, 0]

    def test_empty_and_validation(self):
        assert nearest_neighbor_chain([]) == []
        with pytest.raises(ValueError):
            nearest_neighbor_chain([1.0], start=3)
        with pytest.raises(ValueError):
            nearest_neighbor_chain([(1.0, 2.0), (1.0,)])


class TestRunEnvelopeCampaign:
    def test_warm_chain_accepts_and_saves_cycles(self):
        draws = [2.0e-3, 2.05e-3, 1.95e-3]
        results = run_envelope_campaign(
            draws, build_oscillator, OPTIONS, envelope_for, params=draws
        )
        stats = [r.stats["envelope"] for r in results]
        # Results come back in task order, each stamped with its chain
        # position.
        assert sorted(s["chain_rank"] for s in stats) == [0, 1, 2]
        first = next(s for s in stats if s["chain_rank"] == 0)
        assert first["warm_start"] is None
        followers = [s for s in stats if s["chain_rank"] > 0]
        assert all(s["warm_start"] == "accepted" for s in followers)
        # A warm-started neighbour resolves fewer cycles than the cold
        # chain head.
        assert all(
            s["resolved_cycles"] < first["resolved_cycles"] for s in followers
        )
        # Settled amplitude tracks the drive strength across the chain.
        amp = {d: s["final"]["amplitude"] for d, s in zip(draws, stats)}
        assert amp[1.95e-3] < amp[2.0e-3] < amp[2.05e-3]

    def test_shared_options_and_empty(self):
        assert run_envelope_campaign([], build_oscillator, OPTIONS, envelope_for) == []
        # One shared EnvelopeOptions (not a callable) is accepted too.
        results = run_envelope_campaign(
            [2.0e-3], build_oscillator, OPTIONS, envelope_for(2.0e-3)
        )
        assert results[0].stats["envelope"]["chain_rank"] == 0

    def test_skip_off_campaign_degrades_to_carrier_runs(self):
        from dataclasses import replace

        env = replace(envelope_for(2.0e-3), skip="off")
        results = run_envelope_campaign(
            [2.0e-3, 2.05e-3], build_oscillator, OPTIONS, env
        )
        for r in results:
            assert r.stats["envelope"]["skip"] == "off"
