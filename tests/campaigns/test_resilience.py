"""Fault-tolerant campaign execution: retry, skip, checkpoint/resume.

Covers the :func:`repro.campaigns.run_batch` resilience layer
(:class:`RetryPolicy`, ``on_error`` modes, structured
:class:`~repro.errors.TaskFailure` records, checkpointing, broken-pool
handling) and the acceptance scenario for the robustness tentpole: a
seeded 64-sample Monte-Carlo-style startup campaign with 8 injected
non-convergent samples completes with 56 healthy waveforms plus 8
structured quarantine records — and a killed campaign resumes from its
checkpoint re-running only the missing tasks.
"""

import os
import pickle

import numpy as np
import pytest

from repro.campaigns import BatchOptions, RetryPolicy, TaskFailure, run_batch
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import TransientOptions
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.errors import BatchTaskError, ConfigurationError, ConvergenceError


# -- picklable workers (process-pool tests need module-level defs) -----------


def _square(task):
    return task * task


def _fail_on_multiples_of_three(task):
    if task % 3 == 0 and task != 0:
        raise ValueError(f"task {task} refuses")
    return task * 10


def _fail_below_five(task):
    if task < 5:
        raise ValueError(f"task {task} too small")
    return task


def _exit_on_seven(task):
    if task == 7:
        os._exit(17)  # hard worker death: breaks the pool
    return task


def _convergence_failure(task):
    raise ConvergenceError(
        "no convergence", iterations=9, time=2e-6, dt=1e-9, phase="step"
    )


def _succeed_if_adjusted(task):
    if isinstance(task, dict) and task.get("rescue"):
        return ("rescued", task["index"])
    raise ValueError("needs the rescue knob")


def _enable_rescue(task, attempt):
    return {"index": task, "rescue": attempt >= 2}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)

    def test_backoff_schedule(self):
        policy = RetryPolicy(delay=0.1, backoff=2.0)
        assert policy.wait(1) == pytest.approx(0.1)
        assert policy.wait(2) == pytest.approx(0.2)
        assert policy.wait(3) == pytest.approx(0.4)

    def test_batch_options_validation(self):
        with pytest.raises(ConfigurationError):
            BatchOptions(on_error="ignore")
        with pytest.raises(ConfigurationError):
            BatchOptions(checkpoint_every=0)


class TestTaskFailureRecords:
    def test_skip_mode_records_failures_in_slots(self):
        results = run_batch(
            _fail_on_multiples_of_three,
            range(7),
            BatchOptions(on_error="skip"),
        )
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert [f.index for f in failures] == [3, 6]
        assert [r for r in results if not isinstance(r, TaskFailure)] == [
            0, 10, 20, 40, 50,
        ]
        # TaskFailure is always falsy: healthy truthy results filter
        # with a plain comprehension.
        assert all(not f for f in failures)
        assert "task 3 refuses" in failures[0].message

    def test_failure_context_carries_convergence_fields(self):
        results = run_batch(
            _convergence_failure, [0], BatchOptions(on_error="skip")
        )
        context = results[0].context
        assert context["iterations"] == 9
        assert context["time"] == 2e-6
        assert context["phase"] == "step"

    def test_retry_mode_counts_attempts(self):
        results = run_batch(
            _fail_below_five,
            [1, 9],
            BatchOptions(on_error="retry", retry=RetryPolicy(max_attempts=3)),
        )
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 3
        assert results[1] == 9

    def test_retry_adjust_hook_heals_tasks(self):
        policy = RetryPolicy(max_attempts=2, adjust=_enable_rescue)
        results = run_batch(
            _succeed_if_adjusted,
            [4, 5],
            BatchOptions(on_error="retry", retry=policy),
        )
        assert results == [("rescued", 4), ("rescued", 5)]


class TestCheckpointResume:
    def test_checkpoint_then_resume_runs_only_missing(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        first = run_batch(
            _fail_below_five,
            range(8),
            BatchOptions(on_error="skip", checkpoint_path=path),
        )
        assert [r.index for r in first if isinstance(r, TaskFailure)] == [
            0, 1, 2, 3, 4,
        ]
        # The checkpoint stores only the successes.
        with open(path, "rb") as fh:
            stored = pickle.load(fh)
        assert sorted(stored["done"]) == [5, 6, 7]
        # Resume with a healed worker: only the failed tasks re-run.
        calls = []

        def healed(task):
            calls.append(task)
            return task

        resumed = run_batch(healed, range(8), resume_from=path)
        assert calls == [0, 1, 2, 3, 4]
        assert resumed == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_raise_mode_flushes_checkpoint_before_raising(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(
                _fail_on_multiples_of_three,
                range(6),
                BatchOptions(checkpoint_path=path, checkpoint_every=1),
            )
        assert excinfo.value.index == 3
        with open(path, "rb") as fh:
            stored = pickle.load(fh)
        assert sorted(stored["done"]) == [0, 1, 2]

    def test_task_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        run_batch(
            _square, range(4), BatchOptions(on_error="skip", checkpoint_path=path)
        )
        with pytest.raises(ConfigurationError, match="misalign"):
            run_batch(_square, range(9), resume_from=path)

    def test_missing_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "never-written.pkl")
        with pytest.raises(ConfigurationError, match="does not exist"):
            run_batch(_square, range(4), resume_from=path)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ConfigurationError, match="unreadable"):
            run_batch(_square, range(4), resume_from=str(path))

    def test_checkpoint_write_is_atomic(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        run_batch(
            _square,
            range(4),
            BatchOptions(on_error="skip", checkpoint_path=path),
        )
        assert not os.path.exists(path + ".tmp")


class TestProcessPoolResilience:
    def test_skip_mode_across_processes(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        results = run_batch(
            _fail_on_multiples_of_three,
            range(7),
            BatchOptions(
                max_workers=2, on_error="skip", checkpoint_path=path
            ),
        )
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert [f.index for f in failures] == [3, 6]
        # The child-side traceback rode along as a string.
        assert "task 3 refuses" in failures[0].context["cause_text"]
        with open(path, "rb") as fh:
            assert sorted(pickle.load(fh)["done"]) == [0, 1, 2, 4, 5]

    def test_broken_pool_surfaces_and_checkpoints(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(
                _exit_on_seven,
                range(12),
                BatchOptions(
                    max_workers=2,
                    on_error="skip",
                    checkpoint_path=path,
                    checkpoint_every=1,
                ),
            )
        assert "in flight" in str(excinfo.value)
        assert excinfo.value.index >= 0
        # Completed results survived the crash.
        with open(path, "rb") as fh:
            stored = pickle.load(fh)
        assert len(stored["done"]) >= 1
        assert 7 not in stored["done"]

    def test_batch_task_error_cause_text_survives_pickle(self):
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(
                _fail_on_multiples_of_three,
                range(7),
                BatchOptions(max_workers=2),
            )
        error = pickle.loads(pickle.dumps(excinfo.value))
        assert error.index == 3
        assert error.cause_text is not None
        assert "ValueError" in error.cause_text


class TestVectorizedFallback:
    def test_collective_failure_falls_back_per_task(self):
        def worker(task):
            if task == 2:
                raise ValueError("solo failure")
            return task

        def run_many(tasks):
            raise ConvergenceError("whole batch dead")

        worker.run_many = run_many
        results = run_batch(
            worker,
            range(4),
            BatchOptions(batch_mode="vectorized", on_error="skip"),
        )
        assert results[0] == 0 and results[1] == 1 and results[3] == 3
        assert isinstance(results[2], TaskFailure)

    def test_vectorized_success_checkpoints(self, tmp_path):
        path = str(tmp_path / "campaign.pkl")

        def worker(task):
            return -task

        worker.run_many = lambda tasks: [t * 2 for t in tasks]
        results = run_batch(
            worker,
            range(3),
            BatchOptions(batch_mode="vectorized", checkpoint_path=path),
        )
        assert results == [0, 2, 4]
        with open(path, "rb") as fh:
            assert sorted(pickle.load(fh)["done"]) == [0, 1, 2]


# -- acceptance: 64-sample campaign with 8 injected divergences ---------------

F0 = 4e6
T0 = 1.0 / F0
_FAULTY = frozenset({3, 11, 17, 22, 30, 41, 52, 60})


def _build_mc_sample(index):
    """Seeded mismatch draw: deterministic gm/Q variation per index."""
    rng = np.random.default_rng(1000 + index)
    gm_scale = 1.0 + 0.05 * rng.standard_normal()
    q_scale = 1.0 + 0.03 * rng.standard_normal()
    tank = RLCTank.from_frequency_and_q(F0, 15.0 * q_scale, 1e-6)
    circuit = OscillatorNetlist(tank, vref=2.5).build(
        TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    )
    circuit.mc_index = index
    return circuit


def _mc_fault_hook(time, phase, circuit):
    """8 of the 64 samples diverge persistently from 0.5 us on —
    rescue attempts included, so no ladder can save them."""
    return getattr(circuit, "mc_index", -1) in _FAULTY and time >= 5e-7


class TestCampaignAcceptance:
    def test_64_sample_campaign_with_8_divergent_samples(self):
        t_stop = 8.0 * T0
        options = TransientOptions(
            t_stop=t_stop,
            dt=T0 / 40.0,
            method="trap",
            use_dc_operating_point=False,
            quarantine=True,
            rescue=True,
        )
        options.newton.fail_hook = _mc_fault_hook
        tasks = list(range(64))
        results = run_transient_campaign(
            tasks,
            _build_mc_sample,
            options,
            BatchOptions(batch_mode="vectorized"),
        )
        assert len(results) == 64
        healthy = [r for r in results if not r.stats.get("quarantined")]
        quarantined = [r for r in results if r.stats.get("quarantined")]
        assert len(healthy) == 56
        assert len(quarantined) == 8
        assert results[0].stats["quarantined_samples"] == sorted(_FAULTY)
        for result in healthy:
            assert result.t[-1] == pytest.approx(t_stop)
        for result in quarantined:
            record = result.stats["quarantine"]
            assert record["sample"] in _FAULTY
            assert record["reason"] == "newton"
            assert record["time"] >= 5e-7
            # The solo rescue rerun was attempted and also failed
            # (the injected fault follows the sample, not the batch).
            assert "rescue_failed" in result.stats
