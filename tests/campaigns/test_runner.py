"""Tests for the shared batch-campaign engine."""

import pytest

from repro.campaigns import (
    BatchOptions,
    corner_sweep,
    labelled_sweep,
    run_batch,
    run_chain,
)
from repro.errors import ConfigurationError


class TestBatchOptions:
    def test_defaults_are_sequential(self):
        assert not BatchOptions().parallel
        assert not BatchOptions(max_workers=1).parallel
        assert not BatchOptions(max_workers=0).parallel
        assert BatchOptions(max_workers=2).parallel

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchOptions(max_workers=-1)
        with pytest.raises(ConfigurationError):
            BatchOptions(chunksize=0)


class TestRunBatch:
    def test_sequential_order_and_results(self):
        calls = []

        def worker(task):
            calls.append(task)
            return task * task

        assert run_batch(worker, [3, 1, 2]) == [9, 1, 4]
        assert calls == [3, 1, 2]

    def test_empty_batch(self):
        assert run_batch(abs, []) == []

    def test_sequential_allows_closures(self):
        total = {"sum": 0.0}

        def worker(task):
            total["sum"] += task
            return total["sum"]

        assert run_batch(worker, [1.0, 2.0]) == [1.0, 3.0]

    def test_parallel_preserves_task_order(self):
        options = BatchOptions(max_workers=2)
        assert run_batch(abs, [-5, 3, -1, 0], options) == [5, 3, 1, 0]


class TestRunChain:
    def test_carry_threads_through(self):
        def worker(task, carry):
            carry = (carry or 0) + task
            return carry, carry

        assert run_chain(worker, [1, 2, 3]) == [1, 3, 6]

    def test_initial_carry(self):
        def worker(task, carry):
            return task + carry, carry

        assert run_chain(worker, [1, 2], carry=10) == [11, 12]


class _Corner:
    def __init__(self, name, value):
        self.name = name
        self.value = value


class TestSweeps:
    def test_labelled_sweep(self):
        result = labelled_sweep(abs, [-1, -2], label=str)
        assert result == {"-1": 1, "-2": 2}

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            labelled_sweep(abs, [1, 1], label=str)

    def test_corner_sweep_keys_by_name(self):
        corners = [_Corner("tt", 1.0), _Corner("ss", 2.0)]
        result = corner_sweep(lambda c: c.value * 2, corners)
        assert result == {"tt": 2.0, "ss": 4.0}
