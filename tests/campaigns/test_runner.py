"""Tests for the shared batch-campaign engine."""

import pytest

from repro.campaigns import (
    BatchOptions,
    corner_sweep,
    labelled_sweep,
    run_batch,
    run_chain,
)
from repro.errors import ConfigurationError


class TestBatchOptions:
    def test_defaults_are_sequential(self):
        assert not BatchOptions().parallel
        assert not BatchOptions(max_workers=1).parallel
        assert not BatchOptions(max_workers=0).parallel
        assert BatchOptions(max_workers=2).parallel

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchOptions(max_workers=-1)
        with pytest.raises(ConfigurationError):
            BatchOptions(chunksize=0)


class TestRunBatch:
    def test_sequential_order_and_results(self):
        calls = []

        def worker(task):
            calls.append(task)
            return task * task

        assert run_batch(worker, [3, 1, 2]) == [9, 1, 4]
        assert calls == [3, 1, 2]

    def test_empty_batch(self):
        assert run_batch(abs, []) == []

    def test_sequential_allows_closures(self):
        total = {"sum": 0.0}

        def worker(task):
            total["sum"] += task
            return total["sum"]

        assert run_batch(worker, [1.0, 2.0]) == [1.0, 3.0]

    def test_parallel_preserves_task_order(self):
        options = BatchOptions(max_workers=2)
        assert run_batch(abs, [-5, 3, -1, 0], options) == [5, 3, 1, 0]


class TestRunChain:
    def test_carry_threads_through(self):
        def worker(task, carry):
            carry = (carry or 0) + task
            return carry, carry

        assert run_chain(worker, [1, 2, 3]) == [1, 3, 6]

    def test_initial_carry(self):
        def worker(task, carry):
            return task + carry, carry

        assert run_chain(worker, [1, 2], carry=10) == [11, 12]


class _Corner:
    def __init__(self, name, value):
        self.name = name
        self.value = value


class TestSweeps:
    def test_labelled_sweep(self):
        result = labelled_sweep(abs, [-1, -2], label=str)
        assert result == {"-1": 1, "-2": 2}

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            labelled_sweep(abs, [1, 1], label=str)

    def test_corner_sweep_keys_by_name(self):
        corners = [_Corner("tt", 1.0), _Corner("ss", 2.0)]
        result = corner_sweep(lambda c: c.value * 2, corners)
        assert result == {"tt": 2.0, "ss": 4.0}


class TestBatchModes:
    def test_auto_workers_resolve_to_cpu_count(self):
        import os

        options = BatchOptions(max_workers="auto")
        assert options.resolved_max_workers() == (os.cpu_count() or 1)

    def test_process_mode_defaults_to_auto_workers(self):
        import os

        options = BatchOptions(batch_mode="process")
        assert options.resolved_max_workers() == (os.cpu_count() or 1)

    def test_invalid_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchOptions(batch_mode="turbo")
        with pytest.raises(ConfigurationError):
            BatchOptions(max_workers="all")

    def test_sequential_mode_never_parallel(self):
        assert not BatchOptions(max_workers=8, batch_mode="sequential").parallel
        assert not BatchOptions(max_workers=8, batch_mode="vectorized").parallel

    def test_vectorized_without_hook_falls_back_sequential(self):
        calls = []

        def worker(task):
            calls.append(task)
            return task * 2

        result = run_batch(worker, [1, 2], BatchOptions(batch_mode="vectorized"))
        assert result == [2, 4]
        assert calls == [1, 2]

    def test_vectorized_dispatches_run_many(self):
        def worker(task):
            raise AssertionError("per-task path must not run")

        worker.run_many = lambda tasks: [t * 10 for t in tasks]
        result = run_batch(worker, [1, 2], BatchOptions(batch_mode="vectorized"))
        assert result == [10, 20]


def _failing_worker(task):
    if task == 7:
        raise ValueError("kaboom")
    return task


class TestErrorWrapping:
    def test_sequential_failure_carries_index_and_task(self):
        from repro.errors import BatchTaskError

        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(_failing_worker, [5, 6, 7, 8])
        assert excinfo.value.index == 2
        assert excinfo.value.task == 7
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_failure_carries_index(self):
        from repro.errors import BatchTaskError

        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(_failing_worker, [5, 7, 6], BatchOptions(max_workers=2))
        assert excinfo.value.index == 1
        assert excinfo.value.task == 7

    def test_batch_task_error_pickles_round_trip(self):
        # Worker processes raise BatchTaskError across the pool
        # boundary; a non-picklable exception would break the pool.
        import pickle

        from repro.errors import BatchTaskError

        error = BatchTaskError("msg", index=3, task=7)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.index == 3
        assert clone.task == 7
        assert str(clone) == "msg"

    def test_process_mode_is_forced_even_for_one_worker(self):
        import os

        options = BatchOptions(batch_mode="process", max_workers=1)
        assert options.parallel
        # A single task still goes through the pool: process isolation
        # is the point of forcing the mode.
        pids = run_batch(_worker_pid, [0], options)
        assert pids[0] != os.getpid()

    def test_vectorized_run_many_failure_wrapped_collectively(self):
        from repro.errors import BatchTaskError

        def worker(task):
            raise AssertionError("per-task path must not run")

        def run_many(tasks):
            raise ValueError("lockstep died")

        worker.run_many = run_many
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(worker, [1, 2], BatchOptions(batch_mode="vectorized"))
        assert excinfo.value.index == -1
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_vectorized_failure_attributes_failed_samples(self):
        from repro.errors import BatchTaskError

        def worker(task):
            raise AssertionError("per-task path must not run")

        def run_many(tasks):
            error = ValueError("sample 1 diverged")
            error.failed_samples = [1]
            raise error

        worker.run_many = run_many
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(worker, ["a", "b"], BatchOptions(batch_mode="vectorized"))
        assert excinfo.value.index == 1
        assert excinfo.value.task == "b"


def _worker_pid(task):
    import os

    return os.getpid()


class TestChunkedAttribution:
    def test_chunked_parallel_failure_attributes_true_index(self):
        # A chunked map surfaces a failed chunk's exception at the
        # chunk's first drain position; child-side wrapping must still
        # name the task that actually died.
        from repro.errors import BatchTaskError

        tasks = [5, 6, 8, 9, 7, 10, 11, 12]
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(
                _failing_worker,
                tasks,
                BatchOptions(max_workers=2, chunksize=4),
            )
        assert excinfo.value.index == 4
        assert excinfo.value.task == 7


class TestRunChainErrors:
    def test_chain_failures_propagate_raw(self):
        # Continuation callers (dc_sweep, warm-started MC) document
        # typed errors; run_chain must not rewrap them.
        def worker(task, carry):
            if task == 3:
                raise ValueError("diverged")
            return task, carry

        with pytest.raises(ValueError):
            run_chain(worker, [1, 2, 3, 4])
