"""Tests for the transient-campaign front-end (lockstep + streaming)."""

import numpy as np
import pytest

from repro.campaigns import (
    BatchOptions,
    corner_sweep,
    run_batch,
    run_transient_campaign,
    transient_worker,
    TransientMetricSpec,
)
from repro.circuits import Circuit, TransientOptions, sine
from repro.errors import BatchTaskError


def build_rc(r):
    """Module-level (picklable) per-task circuit builder."""
    circuit = Circuit("rc")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    circuit.resistor("R", "in", "out", float(r))
    circuit.capacitor("C", "out", "0", 1e-9)
    return circuit


def build_diode(r):
    """A netlist the lockstep engine cannot stack (diode)."""
    circuit = Circuit("d")
    circuit.voltage_source("V", "in", "0", 1.0)
    circuit.resistor("R", "in", "a", float(r))
    circuit.diode("D", "a", "0")
    circuit.capacitor("C", "a", "0", 1e-9)
    return circuit


OPTIONS = TransientOptions(t_stop=2e-5, dt=1e-8, use_dc_operating_point=True)
TASKS = [100.0, 150.0, 220.0]


class TestRunTransientCampaign:
    def reference(self, build=build_rc, options=OPTIONS, tasks=TASKS):
        return run_transient_campaign(
            tasks, build, options, BatchOptions(batch_mode="sequential")
        )

    def test_vectorized_matches_sequential(self):
        reference = self.reference()
        vectorized = run_transient_campaign(
            TASKS, build_rc, OPTIONS, BatchOptions(batch_mode="vectorized")
        )
        for ref, vec in zip(reference, vectorized):
            np.testing.assert_array_equal(vec.t, ref.t)
            np.testing.assert_allclose(vec.x, ref.x, rtol=1e-9, atol=1e-15)
        assert vectorized[0].stats["strategy"].startswith("batched-")

    def test_incompatible_falls_back_per_sample(self):
        results = run_transient_campaign(
            TASKS, build_diode, OPTIONS, BatchOptions(batch_mode="vectorized")
        )
        reference = self.reference(build=build_diode)
        for ref, res in zip(reference, results):
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)
        assert not results[0].stats["strategy"].startswith("batched-")

    def test_process_streaming_matches(self):
        reference = self.reference()
        streamed = run_transient_campaign(
            TASKS,
            build_rc,
            OPTIONS,
            BatchOptions(max_workers=2, batch_mode="process"),
        )
        for ref, res in zip(reference, streamed):
            np.testing.assert_array_equal(res.t, ref.t)
            # Same engine in the workers: bitwise identical records.
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)
            assert res.stats["strategy"] == ref.stats["strategy"]

    def test_process_adaptive_streams_ragged_records(self):
        # Adaptive grids have per-sample record counts; the process
        # path streams them through the ragged shared block (length
        # header per sample) and the round-trip is bit-identical.
        options = TransientOptions(
            t_stop=2e-5,
            dt=1e-8,
            step_control="adaptive",
            use_dc_operating_point=True,
        )
        reference = self.reference(options=options)
        streamed = run_transient_campaign(
            TASKS,
            build_rc,
            options,
            BatchOptions(max_workers=2, batch_mode="process"),
        )
        for ref, res in zip(reference, streamed):
            np.testing.assert_array_equal(res.t, ref.t)
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)

    def test_process_adaptive_slot_overflow_falls_back_per_sample(self, monkeypatch):
        # A sample outgrowing its ragged slot must come back pickled —
        # same numbers, just a slower lane.  Shrink the capacity so
        # every sample overflows.
        from repro.campaigns import vectorized

        monkeypatch.setattr(vectorized, "_ragged_record_capacity", lambda _o: 2)
        options = TransientOptions(
            t_stop=2e-5,
            dt=1e-8,
            step_control="adaptive",
            use_dc_operating_point=True,
        )
        reference = self.reference(options=options)
        streamed = run_transient_campaign(
            TASKS,
            build_rc,
            options,
            BatchOptions(max_workers=2, batch_mode="process"),
        )
        for ref, res in zip(reference, streamed):
            np.testing.assert_array_equal(res.t, ref.t)
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)

    def test_empty_tasks(self):
        assert run_transient_campaign([], build_rc, OPTIONS) == []

    def test_build_failure_carries_index(self):
        def build(r):
            if r == 150.0:
                raise ValueError("boom")
            return build_rc(r)

        with pytest.raises(BatchTaskError) as excinfo:
            run_transient_campaign(TASKS, build, OPTIONS)
        assert excinfo.value.index == 1
        assert excinfo.value.task == 150.0


class TestTransientWorker:
    def metric(self, task, result):
        return float(result.waveform("out").y.max())

    def test_run_many_hook_dispatch(self):
        worker = transient_worker(build_rc, OPTIONS, self.metric)
        via_hook = run_batch(
            worker, TASKS, BatchOptions(batch_mode="vectorized")
        )
        plain = [worker(task) for task in TASKS]
        np.testing.assert_allclose(via_hook, plain, rtol=1e-9)

    def test_corner_sweep_vectorized(self):
        class Corner:
            def __init__(self, name, r):
                self.name, self.r = name, r

        corners = [Corner("tt", 100.0), Corner("ss", 220.0)]
        worker = transient_worker(
            lambda corner: build_rc(corner.r), OPTIONS, self.metric
        )
        swept = corner_sweep(
            worker, corners, BatchOptions(batch_mode="vectorized")
        )
        assert set(swept) == {"tt", "ss"}
        for corner in corners:
            assert abs(swept[corner.name] - worker(corner)) < 1e-12

    def test_worker_without_evaluate_returns_results(self):
        worker = transient_worker(build_rc, OPTIONS)
        results = worker.run_many(TASKS)
        assert len(results) == len(TASKS)
        assert results[0].waveform("out").y.size


class TestMetricSpec:
    def test_spec_is_frozen_and_labelled(self):
        spec = TransientMetricSpec(
            name="m", build=build_rc, options=OPTIONS, evaluate=self_eval
        )
        assert spec.name == "m"
        with pytest.raises(AttributeError):
            spec.name = "other"


def self_eval(task, result):
    return float(task)


class TestAutoModeGridPolicy:
    def test_auto_locksteps_fixed_grids(self):
        results = run_transient_campaign(TASKS, build_rc, OPTIONS)
        assert results[0].stats["strategy"].startswith("batched-")

    def test_auto_never_locksteps_adaptive_grids(self):
        # The shared worst-sample grid is a different discretization
        # than per-sample adaptive grids, so implicit lockstep would
        # silently change campaign statistics; adaptive lockstep
        # requires an explicit batch_mode="vectorized" opt-in.
        options = TransientOptions(
            t_stop=2e-5,
            dt=1e-8,
            step_control="adaptive",
            use_dc_operating_point=True,
        )
        auto = run_transient_campaign(TASKS, build_rc, options)
        sequential = run_transient_campaign(
            TASKS, build_rc, options, BatchOptions(batch_mode="sequential")
        )
        for a, s in zip(auto, sequential):
            assert not a.stats["strategy"].startswith("batched-")
            np.testing.assert_array_equal(a.t, s.t)
            np.testing.assert_allclose(a.x, s.x, rtol=0, atol=0)
        explicit = run_transient_campaign(
            TASKS, build_rc, options, BatchOptions(batch_mode="vectorized")
        )
        assert explicit[0].stats["strategy"].startswith("batched-")

    def test_run_many_forwards_vectorized_policy_for_adaptive(self):
        options = TransientOptions(
            t_stop=2e-5,
            dt=1e-8,
            step_control="adaptive",
            use_dc_operating_point=True,
        )
        worker = transient_worker(build_rc, options)
        results = worker.run_many(TASKS)
        # Explicit vectorized dispatch locksteps adaptive grids too.
        assert results[0].stats["strategy"].startswith("batched-")

    def test_run_many_evaluate_failure_carries_task_index(self):
        def evaluate(task, result):
            if task == 150.0:
                raise ValueError("bad metric")
            return 1.0

        worker = transient_worker(build_rc, OPTIONS, evaluate)
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch(worker, TASKS, BatchOptions(batch_mode="vectorized"))
        assert excinfo.value.index == 1
        assert excinfo.value.task == 150.0


def build_sized(n):
    """Heterogeneous topologies: n extra RC stages per task."""
    circuit = Circuit(f"sized{n}")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    prev = "in"
    for j in range(int(n)):
        node = f"s{j}"
        circuit.resistor(f"R{j}", prev, node, 100.0)
        circuit.capacitor(f"C{j}", node, "0", 1e-9)
        prev = node
    return circuit


class TestHeterogeneousProcessCampaign:
    def test_full_state_recording_uses_pickled_records(self):
        # Different unknown counts cannot share one shm record shape;
        # the process path must fall back to pickled records and
        # still return correct per-task results.
        tasks = [1, 2, 3]
        results = run_transient_campaign(
            tasks,
            build_sized,
            OPTIONS,
            BatchOptions(max_workers=2, batch_mode="process"),
        )
        reference = run_transient_campaign(
            tasks, build_sized, OPTIONS, BatchOptions(batch_mode="sequential")
        )
        for ref, res in zip(reference, results):
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)
