"""Sharded campaign execution vs the single-batch lockstep run.

The contract under test: splitting a fixed-grid lockstep campaign
into shards — sequentially in-process or across a process pool with
the shared-memory record stream — merges back **bit-identical** to
the unsharded vectorized run, for every per-sample solve strategy
(``linear``/``rank1``/``woodbury``/``general``).  Bit-identity is
possible because every per-sample solve in the lockstep engine
(block-diagonal LU, per-sample Newton masks, the batched DC seed) is
independent of batch membership.

Fault paths: quarantined samples keep their (globally remapped)
quarantine records through the shard merge, and a shard that fails
collectively either raises with the failing sample's global index or
— under ``on_error="skip"``/``"retry"`` — lands a ``TaskFailure`` in
exactly the guilty sample's slot while its shard-mates recover solo.

Deterministic failures come from ``NewtonOptions.fail_hook`` keyed on
a circuit attribute (module-level, so the hook pickles into pool
workers).
"""

import numpy as np
import pytest

from repro.campaigns import BatchOptions, RetryPolicy, TaskFailure
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import (
    Circuit,
    TransientOptions,
    sine,
    stiffness_bins,
)
from repro.circuits.batched import probe_stiffness_ratios
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.envelope.describing import tanh_limiter_pair
from repro.errors import BatchTaskError

F0 = 4e6
T0 = 1.0 / F0


def build_linear(task):
    """Linear strategy: R + C + L + sources, no nonlinear devices."""
    r = float(task)
    circuit = Circuit("rlc")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    circuit.resistor("R", "in", "out", r)
    circuit.capacitor("C", "out", "0", 1e-9)
    circuit.inductor("L", "out", "tail", 1e-6)
    circuit.resistor("R2", "tail", "0", 50.0)
    return circuit


def build_rank1(task):
    """Rank-1 strategy: the Fig 1 startup netlist, one NonlinearVCCS."""
    gm_scale = float(task)
    tank = RLCTank.from_frequency_and_q(F0, 15.0, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def _build_k_vccs(task, k):
    gm = float(task)
    circuit = Circuit(f"k{k}")
    circuit.voltage_source("Vin", "in", "0", sine(0.5, 1e5))
    circuit.resistor("R", "in", "a", 100.0)
    circuit.capacitor("C", "a", "0", 1e-9)
    circuit.resistor("RL", "a", "0", 1e3)
    for j in range(k):
        node = f"o{j}"
        gm_j = gm * (1.0 + 0.1 * j)
        circuit.resistor(f"Ro{j}", node, "0", 500.0)
        circuit.capacitor(f"Co{j}", node, "0", 1e-10)
        circuit.nonlinear_vccs(
            f"G{j}",
            node,
            "0",
            "a",
            "0",
            lambda v, g=gm_j: 1e-3 * np.tanh(g * v / 1e-3),
            vector_pair=tanh_limiter_pair,
            vector_params=(gm_j, 1e-3),
        )
    return circuit


def build_woodbury(task):
    """3 NonlinearVCCS devices: the woodbury strategy (k <= 4)."""
    return _build_k_vccs(task, 3)


def build_general(task):
    """6 NonlinearVCCS devices: the general batched strategy (k > 4)."""
    return _build_k_vccs(task, 6)


FAMILIES = {
    "linear": (
        build_linear,
        [100.0, 150.0, 220.0, 330.0, 470.0],
        dict(t_stop=2e-5, dt=1e-8, use_dc_operating_point=True),
        "batched-linear",
    ),
    "rank1": (
        build_rank1,
        [0.9, 1.0, 1.1, 1.2, 1.3],
        dict(t_stop=8 * T0, dt=T0 / 40, use_dc_operating_point=False),
        "batched-rank1",
    ),
    "woodbury": (
        build_woodbury,
        [2e-3, 2.4e-3, 2.8e-3, 3.2e-3, 3.6e-3],
        dict(t_stop=1e-5, dt=1e-8, use_dc_operating_point=True),
        "batched-woodbury",
    ),
    "general": (
        build_general,
        [2e-3, 2.4e-3, 2.8e-3, 3.2e-3, 3.6e-3],
        dict(t_stop=1e-5, dt=1e-8, use_dc_operating_point=True),
        "batched-woodbury",
    ),
}


def _run_family(family, batch):
    build, tasks, opt_kw, _strategy = FAMILIES[family]
    return run_transient_campaign(
        tasks, build, TransientOptions(**opt_kw), batch
    )


def assert_bit_identical(reference, sharded):
    assert len(sharded) == len(reference)
    for ref, res in zip(reference, sharded):
        np.testing.assert_array_equal(res.t, ref.t)
        np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)


class TestShardMergeBitIdentity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_sequential_shards(self, family):
        """1 worker: shards run in-process, merges stay bit-identical."""
        reference = _run_family(family, BatchOptions(batch_mode="vectorized"))
        sharded = _run_family(
            family,
            BatchOptions(batch_mode="sharded", shard_size=2, max_workers=1),
        )
        assert_bit_identical(reference, sharded)
        strategy = FAMILIES[family][3]
        assert sharded[0].stats["strategy"] == strategy
        # 5 samples in shards of 2 -> 3 shards, stamped per sample.
        assert [r.stats["shard"] for r in sharded] == [0, 0, 1, 1, 2]
        assert all(r.stats["n_shards"] == 3 for r in sharded)
        assert all(r.stats["shard_workers"] == 1 for r in sharded)

    @pytest.mark.parametrize("family", ["linear", "rank1"])
    def test_process_pool_shards(self, family):
        """2 workers: the shared-memory streamed merge, bit-identical."""
        reference = _run_family(family, BatchOptions(batch_mode="vectorized"))
        sharded = _run_family(
            family,
            BatchOptions(batch_mode="sharded", shard_size=2, max_workers=2),
        )
        assert_bit_identical(reference, sharded)
        assert all(r.stats["shard_workers"] == 2 for r in sharded)

    def test_shard_size_invariance(self):
        """Any shard cut merges to the same bits as any other."""
        runs = [
            _run_family(
                "rank1",
                BatchOptions(
                    batch_mode="sharded", shard_size=size, max_workers=1
                ),
            )
            for size in (1, 3, 5)
        ]
        for other in runs[1:]:
            assert_bit_identical(runs[0], other)

    def test_adaptive_sharded_runs_per_shard_grids(self):
        """Explicit adaptive sharding: every sample finishes, each
        shard on its own worst-sample grid (pickled-record pool)."""
        build, tasks, _kw, _s = FAMILIES["rank1"]
        options = TransientOptions(
            t_stop=4 * T0,
            dt=T0 / 40,
            step_control="adaptive",
            use_dc_operating_point=False,
        )
        results = run_transient_campaign(
            tasks,
            build,
            options,
            BatchOptions(batch_mode="sharded", shard_size=2, max_workers=2),
        )
        assert len(results) == len(tasks)
        for result in results:
            assert result.t[-1] == pytest.approx(4 * T0)
            assert "shard" in result.stats


# -- fault paths ---------------------------------------------------------------

#: Samples the injected fault follows (by circuit attribute, so the
#: hook pickles into pool workers and follows solo reruns too).
_FAULTY = (3, 7)
_T_FAIL = 2.0 * T0


def _fault_hook(time, phase, circuit):
    return getattr(circuit, "fault_id", -1) in _FAULTY and time >= _T_FAIL


def build_faulty_rank1(task):
    index, gm_scale = task
    circuit = build_rank1(gm_scale)
    circuit.fault_id = index
    return circuit


def _faulty_options(**kw):
    options = TransientOptions(
        t_stop=8 * T0,
        dt=T0 / 40,
        use_dc_operating_point=False,
        **kw,
    )
    options.newton.fail_hook = _fault_hook
    return options


FAULTY_TASKS = [(i, 0.9 + 0.05 * i) for i in range(10)]


class TestShardedFaults:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_quarantine_records_remap_to_global(self, max_workers):
        """Quarantined samples keep globally-indexed records through
        the shard merge; healthy samples stay bit-identical."""
        options = _faulty_options(quarantine=True, rescue=True)
        reference = run_transient_campaign(
            FAULTY_TASKS,
            build_faulty_rank1,
            options,
            BatchOptions(batch_mode="vectorized"),
        )
        sharded = run_transient_campaign(
            FAULTY_TASKS,
            build_faulty_rank1,
            options,
            BatchOptions(
                batch_mode="sharded", shard_size=4, max_workers=max_workers
            ),
        )
        quarantined = [
            s for s, r in enumerate(sharded) if r.stats.get("quarantined")
        ]
        assert quarantined == list(_FAULTY)
        for s in quarantined:
            record = sharded[s].stats["quarantine"]
            assert record["sample"] == s  # global, not shard-local
            assert record["reason"] == "newton"
            # The solo rescue rerun also hit the injected fault.
            assert "rescue_failed" in sharded[s].stats
        for s, (ref, res) in enumerate(zip(reference, sharded)):
            if s in _FAULTY:
                continue
            np.testing.assert_allclose(res.x, ref.x, rtol=0, atol=0)

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_task_failure_lands_in_guilty_slot(self, max_workers):
        """No quarantine: the faulty shard fails collectively; under
        on_error="skip" only the guilty samples become TaskFailure
        records, shard-mates recover through the solo fallback."""
        options = _faulty_options(quarantine=False)
        results = run_transient_campaign(
            FAULTY_TASKS,
            build_faulty_rank1,
            options,
            BatchOptions(
                batch_mode="sharded",
                shard_size=4,
                max_workers=max_workers,
                on_error="skip",
            ),
        )
        assert len(results) == len(FAULTY_TASKS)
        for s, result in enumerate(results):
            if s in _FAULTY:
                assert isinstance(result, TaskFailure)
                assert result.index == s
                assert not result  # falsy, filterable
            else:
                assert result.t[-1] == pytest.approx(8 * T0)
                # Shard-mates of a faulty sample went through the solo
                # fallback; samples in clean shards merged normally.
                in_faulty_shard = any(s // 4 == f // 4 for f in _FAULTY)
                assert bool(
                    result.stats.get("shard_fallback")
                ) == in_faulty_shard

    def test_task_failure_respects_retry_policy(self):
        attempts = 2
        results = run_transient_campaign(
            FAULTY_TASKS,
            build_faulty_rank1,
            _faulty_options(quarantine=False),
            BatchOptions(
                batch_mode="sharded",
                shard_size=4,
                max_workers=1,
                on_error="retry",
                retry=RetryPolicy(max_attempts=attempts),
            ),
        )
        for s in _FAULTY:
            assert isinstance(results[s], TaskFailure)
            assert results[s].attempts == attempts

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_on_error_raise_names_global_sample(self, max_workers):
        with pytest.raises(BatchTaskError) as excinfo:
            run_transient_campaign(
                FAULTY_TASKS,
                build_faulty_rank1,
                _faulty_options(quarantine=False),
                BatchOptions(
                    batch_mode="sharded",
                    shard_size=4,
                    max_workers=max_workers,
                ),
            )
        assert excinfo.value.index == _FAULTY[0]


# -- stiffness clustering ------------------------------------------------------


def build_mixed_stiffness(task):
    """RC circuits whose time constants span decades: the fast ones
    (small tau) are the stiff ones relative to the shared probe dt."""
    rng = np.random.default_rng(int(task))
    tau_exp = rng.uniform(-9.0, -6.0)
    circuit = Circuit("mixed")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e6))
    circuit.resistor("R", "in", "out", 1e3)
    circuit.capacitor("C", "out", "0", 10.0**tau_exp / 1e3)
    return circuit


class TestStiffnessClustering:
    def test_bins_rank_and_partition(self):
        ratios = [0.5, 8.0, 0.1, 8.0, np.nan, 2.0]
        bins = stiffness_bins(ratios, 3)
        assert [list(b) for b in bins] == [[0, 2], [1, 5], [3, 4]]
        merged = sorted(int(i) for b in bins for i in b)
        assert merged == list(range(6))

    def test_bins_degenerate_counts(self):
        assert stiffness_bins([], 4) == []
        bins = stiffness_bins([1.0, 2.0], 8)  # more bins than samples
        assert [list(b) for b in bins] == [[0], [1]]
        (whole,) = stiffness_bins([3.0, 1.0, 2.0], 1)
        assert list(whole) == [0, 1, 2]

    def test_probe_ranks_fast_circuits_stiffer(self):
        tasks = list(range(12))
        circuits = [build_mixed_stiffness(t) for t in tasks]
        options = TransientOptions(t_stop=1e-6, dt=1e-9)
        ratios = probe_stiffness_ratios(circuits, options)
        assert ratios is not None and len(ratios) == 12
        taus = [c["R"].resistance * c["C"].capacitance for c in circuits]
        stiffest = int(np.argmax(ratios))
        assert taus[stiffest] == min(taus)

    def test_clustering_is_deterministic_and_bit_identical(self):
        """Same seed-built campaign twice: identical shard assignment,
        identical bits; and clustered == unclustered results on a
        fixed grid (clustering only reorders the shard cut)."""
        tasks = list(range(12))
        options = TransientOptions(t_stop=1e-6, dt=1e-9)
        clustered = BatchOptions(
            batch_mode="sharded",
            shard_size=3,
            stiffness_bins=4,
            max_workers=1,
        )
        first = run_transient_campaign(
            tasks, build_mixed_stiffness, options, clustered
        )
        second = run_transient_campaign(
            tasks, build_mixed_stiffness, options, clustered
        )
        assert [r.stats["shard"] for r in first] == [
            r.stats["shard"] for r in second
        ]
        assert_bit_identical(first, second)
        reference = run_transient_campaign(
            tasks,
            build_mixed_stiffness,
            options,
            BatchOptions(batch_mode="vectorized"),
        )
        assert_bit_identical(reference, first)

    def test_clusters_compose_with_sharding(self):
        """Shards never straddle a stiffness bin: every shard's samples
        share one bin, and bins split into ceil(len/shard_size) shards."""
        tasks = list(range(12))
        options = TransientOptions(t_stop=1e-6, dt=1e-9)
        circuits = [build_mixed_stiffness(t) for t in tasks]
        ratios = probe_stiffness_ratios(circuits, options)
        bins = stiffness_bins(ratios, 4)
        results = run_transient_campaign(
            tasks,
            build_mixed_stiffness,
            options,
            BatchOptions(
                batch_mode="sharded",
                shard_size=2,
                stiffness_bins=4,
                max_workers=1,
            ),
        )
        shard_of = [r.stats["shard"] for r in results]
        bin_of = {int(s): b for b, members in enumerate(bins) for s in members}
        for shard in set(shard_of):
            members = [s for s, sh in enumerate(shard_of) if sh == shard]
            assert len({bin_of[s] for s in members}) == 1
