"""The pool watchdog and graceful-interrupt satellites of ISSUE 8.

``BatchOptions(task_timeout=...)`` gives every process-pool task a
per-attempt deadline measured from when it is first observed
*running* (queue time never counts).  A hung worker is terminated, the
pool rebuilt, surviving in-flight tasks resubmitted without charging
an attempt, and the hung task either retried (under a
:class:`RetryPolicy`) or recorded as ``TaskFailure(kind="timeout")``.

SIGTERM/SIGINT handling: an interrupted ``run_batch`` flushes its
atomic checkpoint before re-raising, and the re-raised interrupt names
the ``resume_from=`` path.
"""

import pickle
import signal
import time

import pytest

from repro.campaigns import BatchOptions, RetryPolicy, TaskFailure, run_batch
from repro.errors import BatchTaskError, ConfigurationError


def _double(task):
    return task * 2


def _hang_on_seven(task):  # pragma: no cover - hangs in pool workers
    if task == 7:
        time.sleep(300.0)
    return task * 2


class _HangFirstAttempt:
    """Hang only while a marker file exists (first attempt deletes it),
    so a retry succeeds.  Pickles by path, not state."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, task):  # pragma: no cover - runs in pool workers
        import os

        if task == 3 and os.path.exists(self.marker):
            os.unlink(self.marker)
            time.sleep(300.0)
        return task * 2


class TestTaskTimeout:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchOptions(task_timeout=0.0)
        with pytest.raises(ConfigurationError):
            BatchOptions(task_timeout=-1.0)
        BatchOptions(task_timeout=1.5)  # fine

    def test_hung_worker_killed_and_recorded(self):
        t0 = time.monotonic()
        results = run_batch(
            _hang_on_seven,
            [1, 7, 2, 3],
            BatchOptions(
                batch_mode="process",
                max_workers=2,
                on_error="skip",
                task_timeout=2.0,
            ),
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 60.0
        assert results[0] == 2 and results[2] == 4 and results[3] == 6
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert isinstance(failure.error, TimeoutError)

    def test_timeout_raises_without_skip(self):
        with pytest.raises(BatchTaskError, match="watchdog"):
            run_batch(
                _hang_on_seven,
                [1, 7],
                BatchOptions(
                    batch_mode="process",
                    max_workers=2,
                    on_error="raise",
                    task_timeout=2.0,
                ),
            )

    def test_timeout_then_retry_succeeds(self, tmp_path):
        marker = tmp_path / "hang-once"
        marker.write_text("armed")
        results = run_batch(
            _HangFirstAttempt(marker),
            [1, 2, 3, 4],
            BatchOptions(
                batch_mode="process",
                max_workers=2,
                on_error="retry",
                retry=RetryPolicy(max_attempts=2),
                task_timeout=2.0,
            ),
        )
        assert results == [2, 4, 6, 8]

    def test_survivors_not_charged_an_attempt(self):
        """Tasks in flight when the pool is rebuilt must complete
        normally, not accumulate attempts toward their retry cap."""
        results = run_batch(
            _hang_on_seven,
            list(range(12)) + [7],
            BatchOptions(
                batch_mode="process",
                max_workers=4,
                on_error="skip",
                task_timeout=2.0,
            ),
        )
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert [f.kind for f in failures] == ["timeout", "timeout"]
        assert sorted(f.task for f in failures) == [7, 7]
        for task, result in zip(range(12), results):
            if task != 7:
                assert result == task * 2


class TestGracefulInterrupt:
    def test_sigterm_flushes_checkpoint_with_resume_hint(self, tmp_path):
        """A SIGTERM mid-campaign lands as KeyboardInterrupt, the
        checkpoint is flushed, and the re-raised interrupt names the
        resume path."""
        save = tmp_path / "campaign.ckpt"

        fired = {"done": False}

        def worker(task):
            if task == 5 and not fired["done"]:
                fired["done"] = True
                signal.raise_signal(signal.SIGTERM)
            return task * 2

        with pytest.raises(KeyboardInterrupt) as excinfo:
            run_batch(
                worker,
                range(10),
                BatchOptions(
                    on_error="skip",
                    checkpoint_every=1,
                    checkpoint_path=str(save),
                ),
            )
        assert "resume_from=" in str(excinfo.value)
        assert save.exists()
        with open(save, "rb") as fh:
            payload = pickle.load(fh)
        assert payload["done"]  # partial progress persisted

        # The flushed checkpoint actually resumes.
        resumed = run_batch(
            _double,
            range(10),
            BatchOptions(on_error="skip"),
            resume_from=str(save),
        )
        assert resumed == [t * 2 for t in range(10)]

    def test_sigterm_handler_restored(self, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        run_batch(
            _double,
            range(4),
            BatchOptions(checkpoint_path=str(tmp_path / "c.ckpt")),
        )
        assert signal.getsignal(signal.SIGTERM) is before
