"""The health layer at campaign scale: the ISSUE 8 acceptance story.

The headline scenario: a 64-sample sharded Monte-Carlo-shaped campaign
with one sample whose device data turns NaN mid-run must deliver 63
certified, finite waveforms plus one structured quarantine/health
record — no hang, no NaN in any survivor, no leaked shared-memory
segment.  Around it: health reports crossing the shard/process
boundary with globally remapped sample indices, the shard-pool
watchdog turning a hung shard into structured timeout failures, and
the Monte-Carlo front-end aggregating per-sample reports.

Everything a pool worker touches (build functions, source callables)
is module-level for pickling.
"""

import glob
import time

import numpy as np
import pytest

from repro.campaigns import BatchOptions, TaskFailure
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import Circuit, TransientOptions
from repro.errors import BatchTaskError

T_STOP = 1e-6
DT = 1e-9
T_NAN = 5e-7
POISONED_SAMPLE = 13
N_SAMPLES = 64


def nan_after(t):
    return float("nan") if t > T_NAN else 1e-3


def hang_after(t):  # pragma: no cover - runs (and dies) in pool workers
    if t > T_NAN:
        time.sleep(300.0)
    return 1e-3


def build(task):
    """task = (r_scale, kind) with kind in (None, "nan", "hang")."""
    r_scale, kind = task
    circuit = Circuit("rc")
    circuit.resistor("R", "out", "0", 1e3 * r_scale)
    circuit.capacitor("C", "out", "0", 1e-9)
    source = {"nan": nan_after, "hang": hang_after}.get(kind, 1e-3)
    circuit.current_source("I", "0", "out", source)
    return circuit


def tasks_with(kind, where, n=N_SAMPLES):
    return [
        (1.0 + 0.01 * s, kind if s == where else None) for s in range(n)
    ]


def armed_options(**overrides):
    base = dict(
        t_stop=T_STOP,
        dt=DT,
        step_control="fixed",
        guards=True,
        certify=True,
        quarantine=True,
        on_abort="partial",
    )
    base.update(overrides)
    return TransientOptions(**base)


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestShardedNaNAcceptance:
    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_63_certified_plus_1_quarantine_no_leak(self, max_workers):
        before = shm_segments()
        results = run_transient_campaign(
            tasks_with("nan", POISONED_SAMPLE),
            build,
            armed_options(),
            BatchOptions(batch_mode="sharded", max_workers=max_workers),
        )
        assert len(results) == N_SAMPLES
        quarantined = []
        for g, result in enumerate(results):
            if result.stats.get("quarantined"):
                quarantined.append(g)
                record = result.stats["quarantine"]
                assert record["reason"] == "health"
                assert record["sample"] == POISONED_SAMPLE
                reports = result.stats["health"]
                assert reports
                # Shard-local indices must have been remapped to the
                # campaign's global sample index.
                assert all(r.sample == POISONED_SAMPLE for r in reports)
                assert all(r.kind == "nonfinite" for r in reports)
            else:
                assert np.isfinite(result.x).all(), f"NaN in survivor {g}"
                assert result.stats["health"] == []
                assert result.stats["certified_steps"] > 0
        assert quarantined == [POISONED_SAMPLE]
        assert shm_segments() - before == set()

    def test_sharded_armed_matches_lockstep_unarmed(self):
        """Healthy armed sharded run == unarmed single-batch, bitwise."""
        tasks = tasks_with(None, -1, n=16)
        reference = run_transient_campaign(
            tasks,
            build,
            TransientOptions(t_stop=T_STOP, dt=DT, step_control="fixed"),
            BatchOptions(batch_mode="vectorized"),
        )
        sharded = run_transient_campaign(
            tasks,
            build,
            armed_options(quarantine=False, on_abort="raise"),
            BatchOptions(batch_mode="sharded", max_workers=4),
        )
        for a, b in zip(reference, sharded):
            assert np.array_equal(a.x, b.x)
            assert b.stats["health"] == []


class TestShardWatchdog:
    def test_hung_shard_becomes_timeout_failures(self):
        """A worker hung mid-solve is killed; its shard's samples land
        as ``TaskFailure(kind="timeout")`` and every other shard's
        results survive.  Must finish far faster than the hang."""
        t0 = time.monotonic()
        before = shm_segments()
        results = run_transient_campaign(
            tasks_with("hang", 7, n=16),
            build,
            TransientOptions(t_stop=T_STOP, dt=DT, step_control="fixed"),
            BatchOptions(
                batch_mode="sharded",
                max_workers=4,
                shard_size=4,
                on_error="skip",
                task_timeout=3.0,
            ),
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 60.0
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert len(failures) == 4  # the hung shard, whole
        assert {f.kind for f in failures} == {"timeout"}
        assert {f.index for f in failures} == {4, 5, 6, 7}
        for g, result in enumerate(results):
            if not isinstance(result, TaskFailure):
                assert np.isfinite(result.x).all()
        assert shm_segments() - before == set()

    def test_hung_shard_raises_when_asked(self):
        with pytest.raises(BatchTaskError, match="watchdog"):
            run_transient_campaign(
                tasks_with("hang", 1, n=8),
                build,
                TransientOptions(t_stop=T_STOP, dt=DT, step_control="fixed"),
                BatchOptions(
                    batch_mode="sharded",
                    max_workers=4,
                    shard_size=2,
                    on_error="raise",
                    task_timeout=3.0,
                ),
            )


class TestMonteCarloAggregation:
    def test_health_reports_aggregate_with_global_samples(self):
        from repro.campaigns.vectorized import TransientMetricSpec
        from repro.mc import run_monte_carlo

        spec = TransientMetricSpec(
            name="v_final",
            build=_mc_build,
            options=armed_options(),
            evaluate=_mc_evaluate,
        )
        result = run_monte_carlo(
            spec,
            n_samples=8,
            batch=BatchOptions(batch_mode="vectorized"),
        )
        assert result.n == 8
        # Sample index == seed index; the poisoned seed draws the NaN.
        flagged = {r.sample for r in result.health}
        assert flagged == {_MC_POISONED}
        assert result.health_for(_MC_POISONED)
        assert result.health_for(0) == []


_MC_POISONED = 5


def _mc_build(profile):
    # Sample i draws with seed base_seed + i (bitwise reproducible in
    # isolation), so the poisoned sample is identified by comparing
    # against its deterministic draw — no side channel needed.
    from repro.mc.mismatch import DEFAULT_SIGMAS, MismatchProfile

    poisoned = MismatchProfile.sample(
        seed=12345 + _MC_POISONED, sigmas=DEFAULT_SIGMAS
    )
    return build((1.0, "nan" if profile == poisoned else None))


def _mc_evaluate(profile, result):
    return float(result.x[-1, 0])
