"""The Krylov iterative backend and its stale-LU preconditioner.

Pinned claims:

* waveform equivalence: ``backend="krylov"`` reproduces the direct
  sparse path well under the rtol 1e-6 the mesh benches assert, on
  fixed and adaptive grids, linear and nonlinear (matrix-free
  ``solve_updated``) circuits, DC, AC, and the batched lockstep
  engine;
* refresh policy: the stale preconditioner re-anchors proactively
  when the previous solve of a matrix crossed the iteration
  threshold, and unconditionally when the iteration fails to
  converge — and never re-factors while riding the fast path;
* degradation: scipy-less environments fail fast for an explicit
  ``"krylov"`` and fall back to dense for ``"auto"``; health guards
  skip condition estimation (with an info-severity note) instead of
  crashing on the factorization-less solver;
* per-sample isolation: one singular sample in a batch degrades to
  least-squares without touching its shard-mates, for both the direct
  :class:`BlockDiagLU` and the Krylov block solver.
"""

import numpy as np
import pytest

import repro.circuits.backend as backend_mod
from repro.circuits import (
    Circuit,
    TransientOptions,
    resolve_backend,
    run_ac,
    run_transient,
    run_transient_batched,
    sine,
    solve_dc,
)
from repro.circuits.backend import (
    KRYLOV_AUTO_THRESHOLD,
    SPARSE_AUTO_THRESHOLD,
    BlockDiagLU,
    KrylovBackend,
    SparseBackend,
)
from repro.circuits.batched import probe_stiffness_ratios
from repro.envelope import RLCTank
from repro.errors import SimulationError
from repro.sensor.coils import CoilMesh, coil_mesh_array

pytestmark = pytest.mark.skipif(
    not backend_mod._HAVE_SCIPY, reason="krylov backend requires scipy"
)

TANK = RLCTank(inductance=10e-6, capacitance=1e-9, series_resistance=2.0)
MESH = CoilMesh(tank=TANK, nx=4, ny=4)
F0 = TANK.frequency


def _mesh_options(backend, drive="pulse", step_control="adaptive"):
    return TransientOptions(
        t_stop=3.0 / F0,
        dt=0.02 / F0,
        backend=backend,
        step_control=step_control,
    )


def _nonlinear_circuit():
    c = Circuit("nl")
    c.voltage_source("vin", "in", "0", sine(2.0, 2e6, offset=1.5))
    c.resistor("r1", "in", "a", 200.0)
    c.capacitor("c1", "a", "0", 1e-9)
    c.diode("d1", "a", "b")
    c.resistor("r2", "b", "0", 1e3)
    c.capacitor("c2", "b", "0", 5e-10)
    return c


def _csr(dense):
    return backend_mod._sparse.csr_matrix(np.asarray(dense, dtype=float))


class TestResolution:
    def test_auto_promotes_by_unknown_count(self):
        assert resolve_backend("auto", KRYLOV_AUTO_THRESHOLD).name == "krylov"
        assert resolve_backend("auto", KRYLOV_AUTO_THRESHOLD - 1).name == "sparse"
        assert resolve_backend("auto", SPARSE_AUTO_THRESHOLD - 1).is_dense

    def test_explicit_krylov(self):
        backend = resolve_backend("krylov", 10)
        assert isinstance(backend, KrylovBackend)
        # Stateful: every resolution must construct a fresh instance.
        assert resolve_backend("krylov", 10) is not backend

    def test_unknown_method_raises(self):
        with pytest.raises(SimulationError, match="unknown Krylov method"):
            KrylovBackend(method="cg")

    def test_options_accept_krylov(self):
        options = TransientOptions(t_stop=1e-6, dt=1e-9, backend="krylov")
        assert options.backend == "krylov"


class TestNoScipyDegradation:
    """Mirrors the sparse backend's optional-scipy contract."""

    def test_explicit_krylov_raises_clearly(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        with pytest.raises(SimulationError, match="requires scipy"):
            resolve_backend("krylov", 100_000)

    def test_constructor_raises(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        with pytest.raises(SimulationError, match="requires scipy"):
            KrylovBackend()

    def test_auto_falls_back_to_dense_past_krylov_threshold(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        assert resolve_backend("auto", 10 * KRYLOV_AUTO_THRESHOLD).is_dense

    def test_run_transient_explicit_krylov_raises(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        circuit = _nonlinear_circuit()
        options = TransientOptions(t_stop=1e-7, dt=1e-9, backend="krylov")
        with pytest.raises(SimulationError, match="requires scipy"):
            run_transient(circuit, options)


class TestRefreshPolicy:
    """The stale-preconditioner triggers, pinned deterministically."""

    def _matrices(self, n=12, scale=40.0):
        rng = np.random.default_rng(7)
        a = np.eye(n) * 4.0 + rng.uniform(-0.5, 0.5, (n, n))
        # Far enough from A that refinement stalls and GMRES needs
        # several preconditioned iterations.
        b = a + scale * np.diag(rng.uniform(0.5, 1.0, n))
        return _csr(a), _csr(b)

    def test_fast_path_never_refactors(self):
        a, _ = self._matrices()
        backend = KrylovBackend()
        solver = backend.factor(a)
        rhs = np.arange(a.shape[0], dtype=float)
        first = solver.solve(rhs)
        assert backend.n_refreshes == 1  # the initial anchoring only
        for _ in range(5):
            again = solver.solve(rhs)
        assert backend.n_refreshes == 1
        # The fast path is a plain direct solve: bitwise stable.
        assert np.array_equal(first, again)

    def test_proactive_refresh_on_iteration_threshold(self):
        a, b = self._matrices()
        backend = KrylovBackend(refresh_iterations=1, refresh_cooldown=0)
        rhs = np.ones(a.shape[0])
        backend.factor(a).solve(rhs)  # anchor the stale LU on A
        solver_b = backend.factor(b)
        solver_b.solve(rhs)  # iterates against the stale-A LU
        assert solver_b._last_applies > backend.refresh_iterations
        refreshes = backend.n_refreshes
        solver_b.solve(rhs)  # previous solve was expensive: re-anchor
        assert backend.n_refreshes == refreshes + 1
        assert backend._precond_matrix is b

    def test_cooldown_suppresses_proactive_refresh(self):
        a, b = self._matrices()
        backend = KrylovBackend(refresh_iterations=1, refresh_cooldown=100)
        rhs = np.ones(a.shape[0])
        backend.factor(a).solve(rhs)
        solver_b = backend.factor(b)
        solver_b.solve(rhs)
        assert solver_b._last_applies > backend.refresh_iterations
        refreshes = backend.n_refreshes
        solver_b.solve(rhs)  # hysteresis: inside the cooldown window
        assert backend.n_refreshes == refreshes
        assert backend._precond_matrix is a

    def test_forced_refresh_on_nonconvergence(self):
        a, b = self._matrices(scale=400.0)
        # An iteration budget too small to converge from the stale LU.
        backend = KrylovBackend(
            refresh_cooldown=10_000, max_refine=1, restart=2, max_iterations=2
        )
        rhs = np.ones(a.shape[0])
        backend.factor(a).solve(rhs)
        refreshes = backend.n_refreshes
        solver_b = backend.factor(b)
        x = solver_b.solve(rhs)
        # Non-convergence must force a refresh despite the cooldown,
        # and the answer comes from the fresh (exact) factorization.
        assert backend.n_refreshes == refreshes + 1
        assert backend._precond_matrix is b
        np.testing.assert_allclose(b.dot(x), rhs, rtol=1e-9, atol=1e-12)

    def test_refreshes_counted_in_solver_factorizations(self):
        a, b = self._matrices()
        backend = KrylovBackend(refresh_iterations=1, refresh_cooldown=0)
        rhs = np.ones(a.shape[0])
        solver_a = backend.factor(a)
        solver_a.solve(rhs)
        assert solver_a.n_factorizations == 1
        solver_b = backend.factor(b)
        solver_b.solve(rhs)
        solver_b.solve(rhs)  # proactive refresh charged to solver_b
        assert solver_b.n_factorizations == 1


class TestAnchorPool:
    """The multi-slot stale-LU pool: retention, eviction, adoption."""

    def _matrices(self, count, n=12, scale=40.0):
        rng = np.random.default_rng(7)
        base = np.eye(n) * 4.0 + rng.uniform(-0.5, 0.5, (n, n))
        return [
            _csr(base + k * scale * np.diag(rng.uniform(0.5, 1.0, n)))
            for k in range(count)
        ]

    def _anchor_all(self, backend, matrices, rhs):
        """Drive each matrix through iterate -> proactive refresh."""
        solvers = [backend.factor(m) for m in matrices]
        for solver in solvers:
            solver.solve(rhs)
            solver.solve(rhs)
        return solvers

    def test_pool_retains_multiple_anchors(self):
        a, b = self._matrices(2)
        backend = KrylovBackend(refresh_iterations=1, refresh_cooldown=0)
        rhs = np.ones(a.shape[0])
        solver_a, solver_b = self._anchor_all(backend, [a, b], rhs)
        refreshes = backend.n_refreshes
        iterations = backend.n_iterations
        # Both matrices are pooled: alternating solves all take the
        # direct fast path — no iterations, no further refreshes.
        for _ in range(3):
            solver_a.solve(rhs)
            solver_b.solve(rhs)
        assert backend.n_refreshes == refreshes
        assert backend.n_iterations == iterations
        assert len(backend._anchors) == 2

    def test_eviction_beyond_pool_size(self):
        matrices = self._matrices(3)
        backend = KrylovBackend(
            refresh_iterations=1, refresh_cooldown=0, pool_size=2
        )
        rhs = np.ones(matrices[0].shape[0])
        self._anchor_all(backend, matrices, rhs)
        assert len(backend._anchors) == 2
        # LRU eviction: the first-anchored matrix lost its slot.
        pooled = [anchor.matrix for anchor in backend._anchors]
        assert not any(m is matrices[0] for m in pooled)
        assert any(m is matrices[2] for m in pooled)

    def test_pool_size_validated(self):
        with pytest.raises(SimulationError, match="pool_size"):
            KrylovBackend(pool_size=0)

    def test_rebuilt_matrix_adopted_without_iterating(self):
        (a,) = self._matrices(1)
        backend = KrylovBackend()
        rhs = np.ones(a.shape[0])
        backend.factor(a).solve(rhs)  # anchor on A
        iterations = backend.n_iterations
        refreshes = backend.n_refreshes
        # A value-identical rebuild (a dt-cache entry reconstructed
        # after eviction) must be adopted by A's anchor: direct solve,
        # zero iterations, zero refreshes.
        rebuilt = a.copy()
        backend.factor(rebuilt).solve(rhs)
        assert backend.n_iterations == iterations
        assert backend.n_refreshes == refreshes
        assert any(
            anchor.matrix is rebuilt for anchor in backend._anchors
        )

    def test_sketch_fingerprint_picks_nearest_anchor(self):
        a, b, c = self._matrices(3, scale=40.0)
        backend = KrylovBackend(refresh_iterations=1, refresh_cooldown=0)
        rhs = np.ones(a.shape[0])
        solver_a, _, solver_c = self._anchor_all(backend, [a, b, c], rhs)
        # A slight perturbation of A must rank A's anchor nearest (and
        # C's for a C-like matrix) — the sketch fingerprint is a
        # faithful ordering coordinate within one sparsity pattern.
        near_a = _csr(a.toarray() * (1.0 + 1e-6))
        near_c = _csr(c.toarray() * (1.0 + 1e-6))
        sa = backend.factor(near_a)
        sc = backend.factor(near_c)
        assert backend._anchor_for(near_a, sa._scale_proxy()).matrix is a
        assert backend._anchor_for(near_c, sc._scale_proxy()).matrix is c


class TestWaveformEquivalence:
    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    @pytest.mark.parametrize("drive", ["sine", "pulse"])
    def test_mesh_matches_sparse(self, step_control, drive):
        sparse = run_transient(
            MESH.build_circuit(drive=drive),
            _mesh_options("sparse", step_control=step_control),
        )
        krylov = run_transient(
            MESH.build_circuit(drive=drive),
            _mesh_options("krylov", step_control=step_control),
        )
        assert krylov.stats["backend"] == "krylov"
        assert np.array_equal(sparse.t, krylov.t)
        scale = max(float(np.abs(sparse.x).max()), 1e-12)
        np.testing.assert_allclose(
            krylov.x, sparse.x, rtol=1e-6, atol=1e-6 * scale
        )
        counters = krylov.stats["krylov"]
        assert counters["solves"] > 0

    def test_nonlinear_matrix_free_newton(self):
        """delta_solve routes through solve_updated (no per-iteration
        CSR re-assembly) and still matches the dense waveform."""
        options = dict(t_stop=2e-6, dt=5e-9, step_control="adaptive")
        dense = run_transient(
            _nonlinear_circuit(), TransientOptions(backend="dense", **options)
        )
        krylov = run_transient(
            _nonlinear_circuit(), TransientOptions(backend="krylov", **options)
        )
        scale = max(float(np.abs(dense.x).max()), 1e-12)
        np.testing.assert_allclose(
            krylov.x, dense.x, rtol=1e-6, atol=1e-6 * scale
        )

    def test_solve_dc_equivalence(self):
        dense = solve_dc(_nonlinear_circuit(), backend="dense")
        krylov = solve_dc(_nonlinear_circuit(), backend="krylov")
        np.testing.assert_allclose(krylov.x, dense.x, rtol=1e-8, atol=1e-10)

    def test_run_ac_equivalence(self):
        """Complex AC systems ride the real stale LU (split solves)."""
        freqs = np.linspace(0.5 * F0, 1.5 * F0, 11)
        circuit_d = MESH.build_circuit()
        dense = run_ac(circuit_d, freqs, backend="dense")
        circuit_k = MESH.build_circuit()
        krylov = run_ac(circuit_k, freqs, backend="krylov")
        np.testing.assert_allclose(
            krylov.x, dense.x, rtol=1e-6, atol=1e-6 * np.abs(dense.x).max()
        )

    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_batched_matches_sparse(self, step_control):
        options = dict(
            t_stop=2.0 / F0, dt=0.05 / F0, step_control=step_control
        )
        sparse = run_transient_batched(
            coil_mesh_array(MESH, 4, spread=0.1),
            TransientOptions(backend="sparse", **options),
        )
        krylov = run_transient_batched(
            coil_mesh_array(MESH, 4, spread=0.1),
            TransientOptions(backend="krylov", **options),
        )
        for rs, rk in zip(sparse, krylov):
            scale = max(float(np.abs(rs.x).max()), 1e-12)
            # Iterative solves can flip an adaptive accept decision,
            # so the step sequences need not be identical; compare on
            # the shared time points (the quantized dt ladder makes
            # accepted times exactly representable, so shared points
            # match bit-for-bit).
            _, is_, ik = np.intersect1d(
                np.round(rs.t * F0, 9),
                np.round(rk.t * F0, 9),
                return_indices=True,
            )
            # A single flip desynchronizes the cumulative grid until
            # the controllers re-converge, so require broad (not
            # near-total) overlap.
            assert is_.size >= 0.5 * rs.t.size
            # Divergent step sequences accumulate differences bounded
            # by the controller's LTE budget (lte_reltol=1e-3), not by
            # the linear-solver tolerance; 1e-4 is an order tighter
            # than that budget.  Identical sequences stay at 1e-6.
            rtol = 1e-6 if np.array_equal(rs.t, rk.t) else 1e-4
            np.testing.assert_allclose(
                rk.x[ik], rs.x[is_], rtol=rtol, atol=rtol * scale
            )


class TestHealthGuardDegradation:
    """Satellite: guards skip condest gracefully without a direct LU."""

    def test_transient_guards_note_condest_skip(self):
        options = _mesh_options("krylov")
        options.guards = True
        result = run_transient(MESH.build_circuit(), options)
        kinds = [r.kind for r in result.stats["health"]]
        assert "condest_skipped" in kinds
        note = next(
            r for r in result.stats["health"] if r.kind == "condest_skipped"
        )
        assert note.severity == "info"
        # The note appears once, not once per dt-cache entry.
        assert kinds.count("condest_skipped") == 1
        assert not any(r.severity == "error" for r in result.stats["health"])

    def test_sparse_guards_unaffected(self):
        options = _mesh_options("sparse")
        options.guards = True
        result = run_transient(MESH.build_circuit(), options)
        kinds = [r.kind for r in result.stats["health"]]
        assert "condest_skipped" not in kinds

    def test_batched_guards_note_condest_skip(self):
        options = TransientOptions(
            t_stop=2.0 / F0, dt=0.05 / F0, backend="krylov", guards=True
        )
        results = run_transient_batched(
            coil_mesh_array(MESH, 3, spread=0.1), options
        )
        kinds = [r.kind for r in results[0].stats["health"]]
        assert "condest_skipped" in kinds
        assert kinds.count("condest_skipped") == 1


class TestBlockIsolation:
    """Satellite: a singular sample never poisons its shard-mates."""

    def _blocks(self):
        # Same 3x3 pattern; the middle sample's values are exactly
        # singular (duplicate rows survive any shared column
        # ordering's pivoting with a zero pivot).
        good = [[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]]
        bad = [[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 1.0, 2.0]]
        good2 = [[5.0, 2.0, 0.0], [2.0, 6.0, 1.0], [0.0, 1.0, 3.0]]
        return [_csr(good), _csr(bad), _csr(good2)]

    def test_blockdiaglu_heterogeneous_zero_pivot(self):
        blocks = self._blocks()
        lu = BlockDiagLU(blocks)
        assert lu.is_singular
        rhs = np.arange(1.0, 10.0)
        out = lu.solve(rhs)
        assert np.isfinite(out).all()
        # Shard-mates get their exact direct solutions...
        np.testing.assert_allclose(
            out[:3], np.linalg.solve(blocks[0].toarray(), rhs[:3]), rtol=1e-12
        )
        np.testing.assert_allclose(
            out[6:], np.linalg.solve(blocks[2].toarray(), rhs[6:]), rtol=1e-12
        )
        # ...and the singular sample its minimum-norm fallback.
        expected, *_ = np.linalg.lstsq(
            blocks[1].toarray(), rhs[3:6], rcond=None
        )
        np.testing.assert_allclose(out[3:6], expected, rtol=1e-10, atol=1e-12)
        cond = lu.condest_blocks()
        assert np.isinf(cond[1]) and np.isfinite(cond[0]) and np.isfinite(cond[2])

    def test_krylov_blockdiag_heterogeneous_zero_pivot(self):
        blocks = self._blocks()
        backend = KrylovBackend()
        lu = backend.factor_blocks(blocks)
        assert lu.is_singular
        rhs = np.arange(1.0, 10.0)
        out = lu.solve(rhs)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(
            out[:3], np.linalg.solve(blocks[0].toarray(), rhs[:3]), rtol=1e-12
        )
        np.testing.assert_allclose(
            out[6:], np.linalg.solve(blocks[2].toarray(), rhs[6:]), rtol=1e-12
        )
        expected, *_ = np.linalg.lstsq(
            blocks[1].toarray(), rhs[3:6], rcond=None
        )
        np.testing.assert_allclose(out[3:6], expected, rtol=1e-10, atol=1e-12)
        # And deliberately no condest hook: that is what the guards'
        # graceful-skip path keys on.
        assert not hasattr(lu, "condest_blocks")

    def test_krylov_blockdiag_matches_blockdiaglu_per_sample(self):
        """Same shared-ordering factorization path: the fast-path
        solves are identical to BlockDiagLU's, sample for sample."""
        good = self._blocks()[::2]  # both nonsingular samples
        rhs = np.arange(1.0, 7.0)
        direct = BlockDiagLU(good).solve(rhs)
        backend = KrylovBackend()
        iterative = backend.factor_blocks(good).solve(rhs)
        assert np.array_equal(direct, iterative)


class TestStiffnessReprobe:
    """Satellite: the stiffness probe re-probes past the first
    stimulus breakpoint, so delayed-pulse batches rank nontrivially."""

    def _circuits(self):
        return coil_mesh_array(MESH, 4, spread=0.3, drive="pulse")

    def _options(self):
        return TransientOptions(t_stop=16.0 / F0, dt=0.05 / F0)

    def test_pulse_batch_ranks_nonzero(self):
        # The pulse is delayed: at t=0 every sample sits exactly at
        # its DC point, so without the post-breakpoint re-probe every
        # ratio would be identically zero and clustering would be
        # noise.
        ratios = probe_stiffness_ratios(self._circuits(), self._options())
        assert ratios is not None
        assert np.all(ratios > 0.0)
        assert np.ptp(ratios) > 0.0  # spread samples rank differently

    def test_reprobe_deterministic(self):
        first = probe_stiffness_ratios(self._circuits(), self._options())
        second = probe_stiffness_ratios(self._circuits(), self._options())
        np.testing.assert_array_equal(first, second)

    def test_sine_batch_unchanged_contract(self):
        # No breakpoints: single-probe behaviour, still advisory.
        circuits = coil_mesh_array(MESH, 4, spread=0.3, drive="sine")
        ratios = probe_stiffness_ratios(circuits, self._options())
        assert ratios is not None and ratios.shape == (4,)
