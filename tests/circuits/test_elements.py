"""Tests for passive elements against hand-solved circuits."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    NewtonOptions,
    TransientOptions,
    run_transient,
    solve_dc,
)
from repro.errors import NetlistError


class TestResistor:
    def test_voltage_divider(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 9.0)
        c.resistor("R1", "in", "mid", 2e3)
        c.resistor("R2", "mid", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("mid") == pytest.approx(3.0, rel=1e-6)

    def test_source_current(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 10.0)
        c.resistor("R1", "in", "0", 1e3)
        op = solve_dc(c)
        # SPICE convention: source sinks 10 mA at its + terminal.
        assert op.branch_current("V1") == pytest.approx(-0.01, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Circuit().resistor("R1", "a", "b", 0.0)
        with pytest.raises(NetlistError):
            Circuit().resistor("R1", "a", "b", -5.0)

    def test_current_helper(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        r = c.resistor("R1", "in", "0", 1e3)
        op = solve_dc(c)
        assert r.current(op.x) == pytest.approx(5e-3, rel=1e-6)


class TestCapacitorDC:
    def test_open_in_dc(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9)
        op = solve_dc(c)
        # No DC path through the cap: out floats to the input value.
        assert op.voltage("out") == pytest.approx(5.0, rel=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Circuit().capacitor("C1", "a", "b", -1e-9)


class TestInductorDC:
    def test_short_in_dc(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "mid", 1e3)
        c.inductor("L1", "mid", "0", 1e-6)
        op = solve_dc(c)
        assert op.voltage("mid") == pytest.approx(0.0, abs=1e-6)
        assert op.branch_current("L1") == pytest.approx(5e-3, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Circuit().inductor("L1", "a", "b", 0.0)


class TestRCTransient:
    def test_charging_curve(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6, ic=0.0)
        res = run_transient(
            c,
            TransientOptions(t_stop=5e-3, dt=5e-6, use_dc_operating_point=False),
        )
        w = res.waveform("out")
        tau = 1e-3
        for t_probe in (0.5e-3, 1e-3, 2e-3):
            assert w.value_at(t_probe) == pytest.approx(
                1 - np.exp(-t_probe / tau), rel=5e-3
            )

    def test_backward_euler_also_converges(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6, ic=0.0)
        res = run_transient(
            c,
            TransientOptions(
                t_stop=5e-3, dt=2e-6, method="be", use_dc_operating_point=False
            ),
        )
        assert res.waveform("out").value_at(1e-3) == pytest.approx(
            1 - np.exp(-1), rel=2e-2
        )


class TestLRTransient:
    def test_current_rise(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "mid", 100.0)
        c.inductor("L1", "mid", "0", 1e-3, ic=0.0)
        res = run_transient(
            c,
            TransientOptions(t_stop=50e-6, dt=50e-9, use_dc_operating_point=False),
        )
        i = res.branch_current("L1")
        tau = 1e-3 / 100.0  # 10 us
        assert i.value_at(10e-6) == pytest.approx((1 - np.exp(-1)) / 100, rel=5e-3)


class TestLCEnergyConservation:
    def test_trapezoidal_is_lossless(self):
        """Trapezoidal integration must not damp an ideal LC tank."""
        c = Circuit()
        c.inductor("L1", "a", "0", 10e-6, ic=1e-3)
        c.capacitor("C1", "a", "0", 1e-9, ic=0.0)
        f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
        res = run_transient(
            c,
            TransientOptions(
                t_stop=50 / f0, dt=1 / (f0 * 64), use_dc_operating_point=False
            ),
        )
        v = res.waveform("a")
        first = v.window(0, 5 / f0).peak_to_peak()
        last = v.window(45 / f0, 50 / f0).peak_to_peak()
        assert last == pytest.approx(first, rel=1e-3)


class TestSwitch:
    def test_open_closed(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        sw = c.switch("S1", "in", "out", r_on=1.0, r_off=1e9)
        c.resistor("RL", "out", "0", 1e3)
        op_open = solve_dc(c)
        assert op_open.voltage("out") < 1e-3
        sw.closed = True
        op_closed = solve_dc(c)
        assert op_closed.voltage("out") == pytest.approx(1.0, rel=1e-2)

    def test_invalid_resistances(self):
        with pytest.raises(NetlistError):
            Circuit().switch("S1", "a", "b", r_on=10.0, r_off=1.0)
