"""Tests for the Circuit container."""

import pytest

from repro.circuits import Circuit, solve_dc
from repro.errors import NetlistError


class TestNodes:
    def test_ground_aliases(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        c.resistor("R2", "b", "gnd", 1.0)
        c.prepare()
        assert c.node_index("0") == -1
        assert c.node_index("gnd") == -1
        assert c.node_index("a") >= 0

    def test_unknown_node(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            c.node_index("zz")

    def test_node_names_ordered(self):
        c = Circuit()
        c.resistor("R1", "x", "y", 1.0)
        c.resistor("R2", "y", "z", 1.0)
        assert c.node_names == ("x", "y", "z")


class TestComponents:
    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            c.resistor("R1", "b", "0", 1.0)

    def test_remove(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        c.remove("R1")
        assert "R1" not in c
        with pytest.raises(NetlistError):
            c.remove("R1")

    def test_getitem(self):
        c = Circuit()
        r = c.resistor("R1", "a", "0", 1.0)
        assert c["R1"] is r
        with pytest.raises(NetlistError):
            _ = c["nope"]

    def test_len_and_iter(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        c.resistor("R2", "a", "0", 1.0)
        assert len(c) == 2
        assert {comp.name for comp in c} == {"R1", "R2"}


class TestPreparation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().prepare()

    def test_size_accounts_for_branches(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 1.0)  # 1 branch
        c.inductor("L1", "a", "b", 1e-6)  # 1 branch
        c.resistor("R1", "b", "0", 1.0)
        assert c.prepare() == 2 + 2  # 2 nodes + 2 branches

    def test_prepare_idempotent(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 1.0)
        c.resistor("R1", "a", "0", 1.0)
        assert c.prepare() == c.prepare()

    def test_adding_after_prepare_reprepares(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 1.0)
        c.resistor("R1", "a", "0", 1e3)
        solve_dc(c)
        c.resistor("R2", "a", "b", 1e3)
        c.resistor("R3", "b", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("b") == pytest.approx(0.5, rel=1e-6)

    def test_has_nonlinear(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1.0)
        assert not c.has_nonlinear()
        c.diode("D1", "a", "0")
        assert c.has_nonlinear()
