"""Tests for stimulus functions and independent sources."""

import math

import pytest

from repro.circuits import Circuit, CurrentSource, dc, pulse, pwl, sine, solve_dc
from repro.errors import NetlistError


class TestStimuli:
    def test_dc(self):
        f = dc(3.3)
        assert f(0.0) == 3.3
        assert f(1e9) == 3.3

    def test_sine_basics(self):
        f = sine(amplitude=2.0, frequency=1e6, offset=1.0)
        assert f(0.0) == pytest.approx(1.0)
        assert f(0.25e-6) == pytest.approx(3.0)

    def test_sine_delay(self):
        f = sine(amplitude=1.0, frequency=1e6, delay=1e-6)
        assert f(0.5e-6) == pytest.approx(0.0)

    def test_sine_phase(self):
        f = sine(amplitude=1.0, frequency=1e6, phase_deg=90.0)
        assert f(0.0) == pytest.approx(1.0)

    def test_sine_invalid_frequency(self):
        with pytest.raises(NetlistError):
            sine(1.0, 0.0)

    def test_pulse_shape(self):
        f = pulse(0.0, 1.0, delay=1e-6, rise=1e-7, width=1e-6, fall=1e-7)
        assert f(0.0) == 0.0
        assert f(1.05e-6) == pytest.approx(0.5)
        assert f(1.5e-6) == 1.0
        assert f(2.15e-6) == pytest.approx(0.5)
        assert f(3e-6) == 0.0

    def test_pulse_periodic(self):
        f = pulse(0.0, 1.0, rise=1e-9, width=0.4e-6, fall=1e-9, period=1e-6)
        assert f(0.2e-6) == pytest.approx(1.0)
        assert f(1.2e-6) == pytest.approx(1.0)
        assert f(0.8e-6) == pytest.approx(0.0)

    def test_pwl(self):
        f = pwl([(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)])
        assert f(0.5) == pytest.approx(1.0)
        assert f(1.5) == pytest.approx(2.0)
        assert f(5.0) == pytest.approx(2.0)  # clamps at the end

    def test_pwl_validation(self):
        with pytest.raises(NetlistError):
            pwl([(0.0, 1.0)])
        with pytest.raises(NetlistError):
            pwl([(0.0, 1.0), (0.0, 2.0)])


class TestCurrentSource:
    def test_drives_resistor(self):
        c = Circuit()
        c.current_source("I1", "0", "out", 1e-3)
        c.resistor("R1", "out", "0", 1e3)
        op = solve_dc(c)
        # Current flows 0 -> out through the source, raising "out".
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_set_value(self):
        c = Circuit()
        src = c.current_source("I1", "0", "out", 1e-3)
        c.resistor("R1", "out", "0", 1e3)
        src.set_value(2e-3)
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)


class TestVoltageSource:
    def test_time_dependent_value(self):
        c = Circuit()
        src = c.voltage_source("V1", "a", "0", sine(1.0, 1e6))
        assert src.value_at(0.25e-6) == pytest.approx(1.0)

    def test_two_sources_stack(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 1.0)
        c.voltage_source("V2", "b", "a", 2.0)
        c.resistor("R", "b", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("b") == pytest.approx(3.0, rel=1e-9)
