"""Unit tests for the LTE step controller and breakpoint collection."""

import numpy as np
import pytest

from repro.circuits import Circuit, StepController, collect_breakpoints, pulse, pwl, sine
from repro.circuits.sources import source_breakpoints
from repro.errors import SimulationError


def make_controller(**overrides):
    kw = dict(
        t_stop=1e-3,
        dt_initial=1e-6,
        dt_min=1e-8,
        dt_max=8e-6,
        method="trap",
        reltol=1e-3,
        abstol=1e-6,
    )
    kw.update(overrides)
    return StepController(**kw)


class TestQuantization:
    def test_grid_is_power_of_two_ladder(self):
        c = make_controller()
        # 1e-6 is not on the 8e-6/2^k grid; it snaps down to 8e-6/8.
        assert c.dt == pytest.approx(1e-6)
        assert c.dt in [8e-6 / 2**k for k in range(0, 12)]

    def test_dt_min_snaps_onto_grid(self):
        c = make_controller(dt_min=1e-8)
        # Effective floor is the grid value at or below the requested
        # minimum, so halving always lands on a cached level.
        assert c.dt_min <= 1e-8
        ratio = 8e-6 / c.dt_min
        assert 2 ** round(np.log2(ratio)) == pytest.approx(ratio)

    def test_growth_is_clamped_and_quantized(self):
        c = make_controller()
        t, dt = c.propose()
        c.accept(t, dt, ratio=1e-9)  # essentially zero error
        assert c.dt == pytest.approx(2e-6)  # one grid level, max_growth=2

    def test_accept_near_tolerance_keeps_step(self):
        c = make_controller()
        before = c.dt
        t, dt = c.propose()
        c.accept(t, dt, ratio=0.95)
        assert c.dt == pytest.approx(before)

    def test_reject_shrinks_at_least_halving(self):
        c = make_controller()
        before = c.dt
        c.propose()
        c.reject(ratio=4.0)
        assert c.dt <= before / 2

    def test_underflow_raises(self):
        c = make_controller(dt_initial=1e-8, dt_min=1e-8)
        with pytest.raises(SimulationError):
            for _ in range(10):
                c.propose()
                c.reject(ratio=100.0)


class TestBreakpoints:
    def test_step_truncates_onto_breakpoint(self):
        c = make_controller(breakpoints=(2.5e-6,))
        # Walk until the proposal would cross the breakpoint.
        while True:
            t_target, dt = c.propose()
            if t_target == 2.5e-6:
                break
            c.accept(t_target, dt, ratio=0.5)
            assert t_target < 2.5e-6
        assert dt <= c.dt

    def test_step_restarts_small_after_breakpoint(self):
        c = make_controller(breakpoints=(2.5e-6,))
        while True:
            t_target, dt = c.propose()
            accepted_dt_before = c.dt
            c.accept(t_target, dt, ratio=0.5)
            if t_target == 2.5e-6:
                break
        assert c.breakpoints_hit == 1
        assert c.dt < accepted_dt_before

    def test_t_stop_is_exact(self):
        c = make_controller(t_stop=1e-5, dt_initial=3e-6, dt_max=4e-6)
        while not c.finished:
            t_target, dt = c.propose()
            c.accept(t_target, dt, ratio=0.2)
        assert c.t == 1e-5  # exact float equality: landed, not drifted


class TestErrorRatio:
    def test_scales_with_difference(self):
        c = make_controller()
        x_half = np.array([1.0, 2.0, 0.0])
        x_full = x_half + np.array([3e-3, 0.0, 0.0])
        r1 = c.error_ratio(x_full, x_half, n_nodes=2)
        r2 = c.error_ratio(x_half + 2 * (x_full - x_half), x_half, n_nodes=2)
        assert r2 == pytest.approx(2 * r1)

    def test_ignores_branch_currents(self):
        c = make_controller()
        x_half = np.zeros(3)
        x_full = np.array([0.0, 0.0, 100.0])  # huge branch-current diff
        assert c.error_ratio(x_full, x_half, n_nodes=2) == 0.0

    def test_relative_scale_loosens_large_signals(self):
        c = make_controller()
        diff = np.array([1e-4, 0.0])
        small = c.error_ratio(diff, np.zeros(2), n_nodes=2)
        large = c.error_ratio(np.array([10.0, 0.0]) + diff, np.array([10.0, 0.0]), n_nodes=2)
        assert large < small


class TestOrderControl:
    def make_gear(self, **overrides):
        kw = dict(method="gear", order_control=True)
        kw.update(overrides)
        return make_controller(**kw)

    def test_one_step_methods_have_fixed_order(self):
        c = make_controller(method="trap", order_control=True)
        assert not c.order_control  # nothing to control
        assert c.order == 2
        assert c.candidate_order(1) == 2  # no startup ramp for trap
        c = make_controller(method="be")
        assert c.order == 1

    def test_candidate_order_clamped_by_history(self):
        c = self.make_gear()
        assert c.order == 1  # starts at the bottom
        c.order = 2  # force a raised target
        assert c.candidate_order(1) == 1
        assert c.candidate_order(2) == 2
        assert c.candidate_order(10) == 2

    def test_err_div_tracks_candidate_order(self):
        c = self.make_gear()
        c.order = 2
        c.candidate_order(1)
        assert c._err_div == 1.0  # order 1: 2^1 - 1
        c.candidate_order(5)
        assert c._err_div == 3.0  # order 2: 2^2 - 1

    def test_order_raises_after_streak_of_good_accepts(self):
        c = self.make_gear()
        for _ in range(3):
            assert c.order == 1
            c.candidate_order(10)
            t, dt = c.propose()
            c.accept(t, dt, ratio=0.01)
        assert c.order == 2
        assert c.order_raises == 1

    def test_marginal_accepts_do_not_raise(self):
        c = self.make_gear()
        for _ in range(6):
            c.candidate_order(10)
            t, dt = c.propose()
            c.accept(t, dt, ratio=0.8)  # passed, but not comfortably
        assert c.order == 1

    def test_reject_streak_lowers_order(self):
        c = self.make_gear()
        c.order = 2
        c.candidate_order(10)
        c.propose()
        c.reject(ratio=4.0)
        assert c.order == 2  # one rejection only shrinks dt
        c.propose()
        c.reject(ratio=4.0)
        assert c.order == 1
        assert c.order_lowers == 1

    def test_breakpoint_resets_order_and_flags_crossing(self):
        c = self.make_gear(breakpoints=(2.5e-6,))
        c.order = 2
        while True:
            c.candidate_order(10)
            t_target, dt = c.propose()
            c.accept(t_target, dt, ratio=0.5)
            if t_target == 2.5e-6:
                break
            assert not c.crossed_breakpoint
        assert c.crossed_breakpoint
        assert c.order == 1

    def test_stats_order_histogram_and_per_order_counts(self):
        c = self.make_gear()
        c.candidate_order(10)  # order 1
        t, dt = c.propose()
        c.accept(t, dt, ratio=0.5)
        c.order = 2
        c.candidate_order(10)
        c.propose()
        c.reject(ratio=4.0)
        c.candidate_order(10)
        t, dt = c.propose()
        c.accept(t, dt, ratio=0.5)
        stats = c.stats()
        assert stats["order_histogram"] == {1: 1, 2: 1}
        assert stats["accepted_by_order"] == {1: 1, 2: 1}
        assert stats["rejected_by_order"] == {2: 1}
        assert stats["final_order"] == 2
        assert stats["order_raises"] == 0
        assert stats["order_lowers"] == 0

    def test_trap_stats_keep_existing_shape(self):
        c = make_controller()
        t, dt = c.propose()
        c.accept(t, dt, ratio=0.5)
        stats = c.stats()
        assert stats["accepted_steps"] == 1
        assert stats["order_histogram"] == {2: 1}
        assert "order_raises" not in stats  # no order control active


class TestCollectBreakpoints:
    def test_sources_and_extras_merge_sorted(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", pulse(0.0, 1.0, delay=1e-5, rise=1e-8, fall=1e-8, width=2e-5))
        c.resistor("R1", "a", "0", 1e3)
        c.current_source("I1", "a", "0", pwl([(0.0, 0.0), (4e-5, 1e-3), (9e-5, 0.0)]))
        c.prepare()
        bps = collect_breakpoints(c, t_stop=1e-4, extra=(5e-5,))
        assert bps == tuple(sorted(bps))
        assert 1e-5 in bps  # pulse edge
        assert 4e-5 in bps  # pwl corner
        assert 5e-5 in bps  # extra
        assert all(0.0 < t < 1e-4 for t in bps)

    def test_delayed_sine_has_turn_on_breakpoint(self):
        assert source_breakpoints(sine(1.0, 1e6, delay=3e-6), 1e-5) == (3e-6,)
        assert source_breakpoints(sine(1.0, 1e6), 1e-5) == ()

    def test_plain_callable_has_no_breakpoints(self):
        assert source_breakpoints(lambda t: t, 1.0) == ()

    def test_periodic_pulse_repeats_edges(self):
        f = pulse(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9, width=4e-7, period=1e-6)
        bps = source_breakpoints(f, 3.5e-6)
        assert any(abs(t - 1e-6) < 1e-12 for t in bps)
        assert any(abs(t - 2e-6) < 1e-12 for t in bps)


class TestPhaseSchedule:
    def _schedule(self):
        from repro.circuits import PhaseSchedule

        return PhaseSchedule.carrier_then_settle(
            2e-6,
            carrier_dt=1e-8,
            settle_dt=1e-7,
            settle_method="gear",
            max_order=3,
        )

    def test_carrier_then_settle_shape(self):
        schedule = self._schedule()
        assert len(schedule.phases) == 2
        carrier, settle = schedule.phases
        assert carrier.t_start == 0.0
        assert settle.t_start == pytest.approx(2e-6)
        assert carrier.resolved_method().name == "trap"
        assert settle.resolved_method().name == "gear"
        assert schedule.boundaries() == (pytest.approx(2e-6),)

    def test_phase_cursor(self):
        schedule = self._schedule()
        first = schedule.restart()
        assert first is schedule.phases[0]
        assert schedule.phase_at(1e-6) is schedule.phases[0]
        assert schedule.phase_at(3e-6) is schedule.phases[1]
        # advance_to only fires when a boundary is crossed, once.
        assert schedule.advance_to(1e-6) is None
        assert schedule.advance_to(2.5e-6) is schedule.phases[1]
        assert schedule.advance_to(3e-6) is None
        # restart rewinds the cursor.
        schedule.restart()
        assert schedule.advance_to(2.5e-6) is schedule.phases[1]
