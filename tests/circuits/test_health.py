"""Numerical health layer: guards, certification, condition estimation.

Fault injection is a current source whose value function returns NaN
past a chosen time — a *data* fault the Newton loop would otherwise
propagate silently into the waveform, unlike the ``fail_hook``
convergence faults of ``test_fault_tolerance.py``.  The invariants:

* healthy armed runs (guards + certify + preflight) are bit-identical
  to unarmed runs — the health layer only reads;
* a NaN reaching the solution aborts the scalar engine with a
  structured ``phase="health"`` error (or a ``"health"`` abort reason
  in partial mode), never a NaN-bearing "successful" waveform;
* in the batched engine only the guilty sample is quarantined, with
  ``reason="health"`` and per-sample :class:`HealthReport` records,
  while every survivor stays finite and report-free;
* condition estimation against cached factorizations is cheap,
  accurate to the order of magnitude, and read-only.
"""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    HealthReport,
    TransientOptions,
    run_transient,
    run_transient_batched,
    sine,
)
from repro.circuits.health import (
    check_grid_invariants,
    condest_from_solves,
    invnorm1_estimate,
    nonfinite_sample_rows,
)
from repro.circuits.linsolve import ReusableLU
from repro.errors import ConvergenceError

T_STOP = 1e-6
DT = 1e-9
T_NAN = 5e-7


def nan_after(t):
    return float("nan") if t > T_NAN else 1e-3


def build_rc(poison=False, r=1e3):
    c = Circuit("rc")
    c.resistor("R", "out", "0", r)
    c.capacitor("C", "out", "0", 1e-9)
    c.current_source("I", "0", "out", nan_after if poison else 1e-3)
    return c


def build_oscillator(poison=False):
    """Nonlinear netlist (general strategy) with a sine drive."""
    c = Circuit("osc")
    c.voltage_source("Vin", "in", "0", sine(1.0, 4e6))
    c.resistor("R", "in", "out", 1e3)
    c.capacitor("C", "out", "0", 1e-9)
    c.diode("D", "out", "0")
    if poison:
        c.current_source("I", "0", "out", nan_after)
    return c


def options(**overrides):
    base = dict(t_stop=T_STOP, dt=DT, step_control="fixed")
    base.update(overrides)
    return TransientOptions(**base)


ARMED = dict(guards=True, certify=True)


class TestPrimitives:
    def test_invnorm1_estimate_matches_exact(self):
        rng = np.random.default_rng(42)
        A = rng.normal(size=(12, 12)) + 12 * np.eye(12)
        inv = np.linalg.inv(A)
        est = invnorm1_estimate(
            lambda b: np.linalg.solve(A, b),
            lambda b: np.linalg.solve(A.T, b),
            12,
        )
        exact = np.abs(inv).sum(axis=0).max()
        assert est <= exact * 1.001
        assert est >= 0.3 * exact  # Hager's bound is rarely this loose

    def test_condest_orders_of_magnitude(self):
        for target in (1e2, 1e8):
            A = np.diag([1.0] * 9 + [1.0 / target])
            est = condest_from_solves(
                np.abs(A).sum(axis=0).max(),
                lambda b, A=A: np.linalg.solve(A, b),
                lambda b, A=A: np.linalg.solve(A.T, b),
                10,
            )
            assert 0.1 * target < est < 10 * target

    def test_reusable_lu_condest(self):
        A = np.diag([1.0, 1e-10, 1.0])
        lu = ReusableLU(A)
        assert lu.condest() == pytest.approx(1e10, rel=1.0)
        assert ReusableLU(np.zeros((3, 3))).condest() == np.inf

    def test_reusable_lu_degrades_on_singular(self):
        """An exactly singular system falls back to lstsq, not Inf."""
        A = np.zeros((40, 40))
        A[:20, :20] = np.eye(20)  # rank-deficient but consistent
        b = np.zeros(40)
        b[:20] = 1.0
        x = ReusableLU(A).solve(b)
        assert np.isfinite(x).all()
        np.testing.assert_allclose(x[:20], 1.0, atol=1e-9)

    def test_reusable_lu_propagates_nan_rhs(self):
        """A NaN *input* must flow through (the engine guard's job),
        not trigger the lstsq degradation."""
        lu = ReusableLU(np.eye(3))
        b = np.array([1.0, np.nan, 0.0])
        assert np.isnan(lu.solve(b)).any()

    def test_nonfinite_sample_rows(self):
        x = np.ones((4, 3))
        x[1, 2] = np.nan
        x[3, 0] = np.inf
        assert nonfinite_sample_rows(x).tolist() == [1, 3]
        eligible = np.array([True, False, True, True])
        assert nonfinite_sample_rows(x, eligible).tolist() == [3]

    def test_grid_invariants(self):
        health = []
        check_grid_invariants(np.array([0.0, 1.0, 2.0]), 2.0, health)
        assert health == []
        check_grid_invariants(np.array([0.0, 2.0, 1.0]), 2.0, health)
        assert [r.kind for r in health] == ["grid"]


class TestScalarEngine:
    @pytest.mark.parametrize("build", [build_rc, build_oscillator])
    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_armed_healthy_run_bit_identical(self, build, step_control):
        plain = run_transient(build(), options(step_control=step_control))
        armed = run_transient(
            build(), options(step_control=step_control, **ARMED)
        )
        assert np.array_equal(plain.x, armed.x)
        assert plain.stats["newton_iterations"] == armed.stats["newton_iterations"]
        assert armed.stats["health"] == []
        assert armed.stats["certified_steps"] > 0
        assert "health" not in plain.stats

    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_nan_aborts_with_health_phase(self, step_control):
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient(
                build_rc(poison=True),
                options(step_control=step_control, guards=True),
            )
        assert excinfo.value.phase == "health"

    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_nan_partial_mode_keeps_finite_prefix(self, step_control):
        result = run_transient(
            build_rc(poison=True),
            options(step_control=step_control, on_abort="partial", **ARMED),
        )
        assert result.stats["completed"] is False
        assert result.stats["abort_reason"] == "health"
        assert np.isfinite(result.x).all()
        assert result.t[-1] <= T_NAN + 2 * DT

    def test_unguarded_nan_runs_to_garbage(self):
        """The negative control: without guards the NaN propagates
        silently — exactly the failure mode the layer exists for."""
        result = run_transient(build_rc(poison=True), options())
        assert np.isnan(result.x).any()

    def test_health_reports_are_structured(self):
        result = run_transient(
            build_rc(poison=True),
            options(on_abort="partial", guards=True),
        )
        # The abort is recorded in stats; any filed reports are real
        # HealthReport records.
        for report in result.stats["health"]:
            assert isinstance(report, HealthReport)
            assert report.kind in (
                "nonfinite", "ill_conditioned", "residual", "state", "grid"
            )


class TestBatchedEngine:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_armed_healthy_batch_bit_identical(self, backend):
        if backend == "sparse":
            pytest.importorskip("scipy")
        circuits = [build_rc(r=1e3 * (1 + 0.01 * s)) for s in range(6)]
        plain = run_transient_batched(circuits, options(backend=backend))
        circuits = [build_rc(r=1e3 * (1 + 0.01 * s)) for s in range(6)]
        armed = run_transient_batched(
            circuits, options(backend=backend, **ARMED)
        )
        for a, b in zip(plain, armed):
            assert np.array_equal(a.x, b.x)
            assert b.stats["health"] == []

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_nan_sample_quarantined_alone(self, backend):
        if backend == "sparse":
            pytest.importorskip("scipy")
        circuits = [
            build_rc(poison=(s == 3), r=1e3 * (1 + 0.01 * s))
            for s in range(8)
        ]
        results = run_transient_batched(
            circuits,
            options(
                backend=backend, quarantine=True, on_abort="partial", **ARMED
            ),
        )
        for s, result in enumerate(results):
            if s == 3:
                assert result.stats["quarantined"] is True
                record = result.stats["quarantine"]
                assert record["reason"] == "health"
                assert record["sample"] == 3
                reports = result.stats["health"]
                assert reports and all(r.sample == 3 for r in reports)
                assert all(r.kind == "nonfinite" for r in reports)
            else:
                assert not result.stats.get("quarantined")
                assert np.isfinite(result.x).all()
                assert result.stats["health"] == []

    def test_nan_without_quarantine_aborts_batch(self):
        circuits = [build_rc(poison=(s == 1)) for s in range(4)]
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient_batched(circuits, options(guards=True))
        assert excinfo.value.phase == "health"
        assert excinfo.value.failed_samples == [1]

    def test_adaptive_nan_sample_quarantined(self):
        circuits = [build_rc(poison=(s == 2)) for s in range(4)]
        results = run_transient_batched(
            circuits,
            options(
                step_control="adaptive",
                quarantine=True,
                on_abort="partial",
                **ARMED,
            ),
        )
        assert results[2].stats["quarantine"]["reason"] == "health"
        for s in (0, 1, 3):
            assert np.isfinite(results[s].x).all()
