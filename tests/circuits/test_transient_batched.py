"""Batched lockstep engine vs the per-sample reference path.

The contract under test: for every netlist family the lockstep engine
accepts, ``run_transient_batched(circuits, options)[s]`` matches
``run_transient(circuits[s], options)`` at rtol 1e-9 — across all
per-sample solve strategies (``linear``/``rank1``/``woodbury``/
``general``), both integration methods, ragged Newton convergence,
and the recording options campaigns actually use.
"""

import numpy as np
import pytest

from repro.circuits import (
    BatchIncompatible,
    Circuit,
    TransientOptions,
    run_transient,
    run_transient_batched,
    sine,
)
from repro.core import OscillatorNetlist, supply_loss_tank_circuit
from repro.envelope import RLCTank, TanhLimiter
from repro.envelope.describing import tanh_limiter_pair
from repro.errors import SimulationError


F0 = 4e6
T0 = 1.0 / F0


def build_rlc(r, amplitude=1.0):
    """Linear strategy: R + C + L + sources, no nonlinear devices."""
    circuit = Circuit("rlc")
    circuit.voltage_source("Vin", "in", "0", sine(amplitude, 1e5))
    circuit.resistor("R", "in", "out", r)
    circuit.capacitor("C", "out", "0", 1e-9)
    circuit.inductor("L", "out", "tail", 1e-6)
    circuit.resistor("R2", "tail", "0", 50.0)
    circuit.current_source("Ib", "out", "0", 1e-4)
    return circuit


def build_oscillator(gm_scale, q_scale=1.0):
    """Rank-1 strategy: the Fig 1 startup netlist, one NonlinearVCCS."""
    tank = RLCTank.from_frequency_and_q(F0, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def build_k_vccs(k, gm, vectorized=True):
    """k NonlinearVCCS devices: woodbury (k<=4) / general (k>4)."""
    circuit = Circuit(f"k{k}")
    circuit.voltage_source("Vin", "in", "0", sine(0.5, 1e5))
    circuit.resistor("R", "in", "a", 100.0)
    circuit.capacitor("C", "a", "0", 1e-9)
    circuit.resistor("RL", "a", "0", 1e3)
    for j in range(k):
        node = f"o{j}"
        gm_j = gm * (1.0 + 0.1 * j)
        circuit.resistor(f"Ro{j}", node, "0", 500.0)
        circuit.capacitor(f"Co{j}", node, "0", 1e-10)

        def func(v, g=gm_j):
            return 1e-3 * np.tanh(g * v / 1e-3)

        circuit.nonlinear_vccs(
            f"G{j}",
            node,
            "0",
            "a",
            "0",
            func,
            vector_pair=tanh_limiter_pair if vectorized else None,
            vector_params=(gm_j, 1e-3) if vectorized else (),
        )
    return circuit


def assert_batch_equivalent(builders, options, rtol=1e-9, atol=1e-15):
    per_sample = [run_transient(build(), options) for build in builders]
    batched = run_transient_batched([build() for build in builders], options)
    assert len(batched) == len(per_sample)
    for reference, stacked in zip(per_sample, batched):
        np.testing.assert_array_equal(stacked.t, reference.t)
        np.testing.assert_allclose(stacked.x, reference.x, rtol=rtol, atol=atol)
    return per_sample, batched


@pytest.mark.parametrize("method", ["trap", "be"])
class TestStrategyEquivalence:
    def options(self, method, **kw):
        kw.setdefault("t_stop", 2e-5)
        kw.setdefault("dt", 1e-8)
        kw.setdefault("use_dc_operating_point", True)
        return TransientOptions(method=method, **kw)

    def test_linear(self, method):
        builders = [lambda r=r: build_rlc(r) for r in (100.0, 150.0, 220.0)]
        per, bat = assert_batch_equivalent(builders, self.options(method))
        assert per[0].stats["strategy"] == "linear"
        assert bat[0].stats["strategy"] == "batched-linear"

    def test_rank1(self, method):
        options = TransientOptions(
            t_stop=20 * T0,
            dt=T0 / 40,
            method=method,
            use_dc_operating_point=False,
        )
        builders = [
            lambda g=g: build_oscillator(g) for g in (0.9, 1.0, 1.15, 1.3)
        ]
        per, bat = assert_batch_equivalent(builders, options)
        assert per[0].stats["strategy"] == "rank1"
        assert bat[0].stats["strategy"] == "batched-rank1"

    def test_woodbury(self, method):
        builders = [
            lambda g=g: build_k_vccs(3, g) for g in (2e-3, 2.5e-3, 3e-3)
        ]
        per, bat = assert_batch_equivalent(
            builders, self.options(method), atol=1e-12
        )
        assert per[0].stats["strategy"] == "woodbury"
        assert bat[0].stats["strategy"] == "batched-woodbury"

    def test_general(self, method):
        # 5 devices put the per-sample engine on its general full-
        # Newton path; the lockstep engine stacks them as rank-k.
        builders = [
            lambda g=g: build_k_vccs(5, g) for g in (2e-3, 2.5e-3, 3e-3)
        ]
        per, bat = assert_batch_equivalent(
            builders, self.options(method), atol=1e-12
        )
        assert per[0].stats["strategy"] == "general"
        assert bat[0].stats["strategy"] == "batched-woodbury"

    def test_scalar_linearize_fallback(self, method):
        # Devices without a batchable family loop over linearize();
        # the results must not change.
        builders = [
            lambda g=g: build_k_vccs(2, g, vectorized=False)
            for g in (2e-3, 3e-3)
        ]
        assert_batch_equivalent(builders, self.options(method), atol=1e-12)


class TestRaggedConvergence:
    def test_samples_take_different_newton_counts(self):
        # Widely spread drive strengths: saturation onset differs per
        # sample, so Newton counts are ragged while results still pin
        # to the per-sample engine.
        options = TransientOptions(
            t_stop=20 * T0,
            dt=T0 / 40,
            use_dc_operating_point=False,
        )
        scales = (0.8, 1.0, 1.4, 2.0)
        builders = [lambda g=g: build_oscillator(g) for g in scales]
        per, bat = assert_batch_equivalent(builders, options)
        per_counts = [r.stats["newton_iterations"] for r in per]
        bat_counts = [r.stats["newton_iterations"] for r in bat]
        # The convergence mask reproduces each sample's own count.
        assert bat_counts == per_counts
        assert len(set(bat_counts)) > 1, "spread should be ragged"


class TestRecordingOptions:
    def test_record_nodes_and_stride(self):
        options = TransientOptions(
            t_stop=20 * T0,
            dt=T0 / 40,
            use_dc_operating_point=False,
            record_nodes=("lc1", "lc2"),
            record_stride=4,
        )
        builders = [lambda g=g: build_oscillator(g) for g in (0.9, 1.2)]
        per, bat = assert_batch_equivalent(builders, options)
        assert bat[0].recorded_nodes == ("lc1", "lc2")
        assert bat[0].x.shape[1] == 2
        # Unrecorded nodes still raise, like the per-sample result.
        with pytest.raises(SimulationError):
            bat[0].waveform("mid")

    def test_stats_carry_batch_info(self):
        options = TransientOptions(
            t_stop=5 * T0, dt=T0 / 40, use_dc_operating_point=False
        )
        bat = run_transient_batched(
            [build_oscillator(1.0), build_oscillator(1.1)], options
        )
        assert bat[0].stats["batch_samples"] == 2
        assert bat[0].stats["steps"] == 200


class TestAdaptiveLockstep:
    def test_shared_worst_sample_grid(self):
        circuits = [
            supply_loss_tank_circuit(F0, 10 * T0, q=q) for q in (12.0, 18.0)
        ]
        options = TransientOptions(
            t_stop=40 * T0,
            dt=T0 / 40,
            step_control="adaptive",
            use_dc_operating_point=False,
            dt_min=T0 / 640,
            dt_max=4 * T0,
        )
        results = run_transient_batched(circuits, options)
        # One shared (non-uniform) grid for every sample.
        np.testing.assert_array_equal(results[0].t, results[1].t)
        dts = np.diff(results[0].t)
        assert dts.min() < dts.max() / 2, "grid should actually adapt"
        # The fault breakpoint is landed on exactly.
        assert np.any(np.isclose(results[0].t, 10 * T0, rtol=0, atol=1e-18))
        assert results[0].stats["breakpoints_hit"] >= 1
        # Stats parity with the per-sample adaptive engine.
        assert results[0].stats["dt_cache_entries"] >= 1

    def test_adaptive_matches_fine_fixed_shape(self):
        circuits = lambda: [
            supply_loss_tank_circuit(F0, 10 * T0, q=q) for q in (12.0, 18.0)
        ]
        adaptive = run_transient_batched(
            circuits(),
            TransientOptions(
                t_stop=30 * T0,
                dt=T0 / 40,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_min=T0 / 640,
                dt_max=2 * T0,
                lte_reltol=2e-4,
            ),
        )
        fine = [
            run_transient(
                c,
                TransientOptions(
                    t_stop=30 * T0, dt=T0 / 320, use_dc_operating_point=False
                ),
            )
            for c in circuits()
        ]
        for a, f in zip(adaptive, fine):
            wa = a.differential("lc1", "lc2")
            wf = f.differential("lc1", "lc2")
            ya = np.interp(wf.t, wa.t, wa.y)
            mask = wf.t < 9 * T0  # driven phase
            scale = np.max(np.abs(wf.y[mask]))
            assert np.max(np.abs(ya[mask] - wf.y[mask])) < 0.02 * scale


class TestIncompatibility:
    def test_topology_mismatch(self):
        a = build_rlc(100.0)
        b = build_rlc(100.0)
        b.resistor("Rextra", "out", "0", 1e4)
        with pytest.raises(BatchIncompatible):
            run_transient_batched(
                [a, b], TransientOptions(t_stop=1e-6, dt=1e-9)
            )

    def test_unsupported_nonlinear_device(self):
        def diode_circuit():
            c = Circuit("d")
            c.voltage_source("V", "in", "0", 1.0)
            c.resistor("R", "in", "a", 1e3)
            c.diode("D", "a", "0")
            c.capacitor("C", "a", "0", 1e-9)
            return c

        with pytest.raises(BatchIncompatible):
            run_transient_batched(
                [diode_circuit(), diode_circuit()],
                TransientOptions(t_stop=1e-6, dt=1e-9),
            )

    def test_non_auto_jacobian(self):
        with pytest.raises(BatchIncompatible):
            run_transient_batched(
                [build_oscillator(1.0)],
                TransientOptions(t_stop=1e-6, dt=1e-9, jacobian="chord"),
            )

    def test_empty_batch(self):
        with pytest.raises(SimulationError):
            run_transient_batched([], TransientOptions(t_stop=1e-6, dt=1e-9))


class TestVectorPairContract:
    def test_vector_pair_must_match_scalar_func(self):
        from repro.errors import NetlistError

        c = Circuit("bad")
        with pytest.raises(NetlistError):
            c.nonlinear_vccs(
                "G",
                "a",
                "0",
                "a",
                "0",
                lambda v: 1.0 + v,  # i(0) = 1
                vector_pair=tanh_limiter_pair,  # i(0) = 0
                vector_params=(1e-3, 1e-3),
            )

    def test_oscillator_driver_declares_family(self):
        circuit = build_oscillator(1.0)
        device = circuit["Gdrv"]
        assert device.vector_pair is not None
        # Structural equality across samples is what makes stacking
        # possible: two builds must compare equal.
        other = build_oscillator(2.0)["Gdrv"]
        assert device.vector_pair == other.vector_pair
        i, g = device.vector_pair(
            np.array([0.0, 0.1]), *[np.array([p, p]) for p in device.vector_params]
        )
        gm_ref, ieq_ref = device.linearize(0.1)
        np.testing.assert_allclose(g[1], gm_ref, rtol=1e-12)
        np.testing.assert_allclose(i[1] - g[1] * 0.1, ieq_ref, rtol=1e-12)


class TestVectorPairValidation:
    def test_sign_flipped_family_rejected(self):
        # An odd characteristic agrees with anything at v = 0; the
        # off-origin probes must catch a sign flip.
        from repro.errors import NetlistError

        import math

        def flipped(v, gm, i_max):
            i, g = tanh_limiter_pair(v, gm, i_max)
            return -i, -g

        c = Circuit("flip")
        with pytest.raises(NetlistError):
            c.nonlinear_vccs(
                "G",
                "a",
                "0",
                "a",
                "0",
                lambda v: 1e-3 * math.tanh(2e-3 * v / 1e-3),
                vector_pair=flipped,
                vector_params=(2e-3, 1e-3),
            )

    def test_wrong_scale_family_rejected(self):
        from repro.errors import NetlistError

        import math

        c = Circuit("scale")
        with pytest.raises(NetlistError):
            c.nonlinear_vccs(
                "G",
                "a",
                "0",
                "a",
                "0",
                lambda v: 1e-3 * math.tanh(2e-3 * v / 1e-3),
                vector_pair=tanh_limiter_pair,
                vector_params=(4e-3, 1e-3),  # double the real gm
            )


class TestMultistepLockstep:
    """BDF2/Gear through the batched engine: one shared order schedule,
    stacked multistep history, per-sample equivalence at rtol 1e-9."""

    def test_bdf2_fixed_grid_matches_per_sample(self):
        builders = [lambda r=r: build_rlc(r) for r in (100.0, 150.0, 220.0)]
        options = TransientOptions(
            t_stop=2e-5, dt=1e-8, method="bdf2", use_dc_operating_point=True
        )
        per, bat = assert_batch_equivalent(builders, options)
        assert bat[0].stats["strategy"] == "batched-linear"
        assert bat[0].stats["order_histogram"] == per[0].stats["order_histogram"]

    def test_gear3_fixed_grid_rank1_matches_per_sample(self):
        builders = [
            lambda s=s: build_oscillator(s) for s in (0.9, 1.0, 1.1)
        ]
        options = TransientOptions(
            t_stop=20 * T0,
            dt=T0 / 40,
            method="gear",
            max_order=3,
            use_dc_operating_point=False,
        )
        per, bat = assert_batch_equivalent(builders, options)
        assert bat[0].stats["strategy"] == "batched-rank1"
        hist = bat[0].stats["order_histogram"]
        assert hist[3] > 0  # the batch reached order 3 together

    def test_gear_adaptive_lockstep_shared_order_schedule(self):
        builders = [lambda r=r: build_rlc(r) for r in (100.0, 220.0)]
        options = TransientOptions(
            t_stop=2e-5,
            dt=1e-8,
            method="gear",
            step_control="adaptive",
            use_dc_operating_point=True,
            dt_max=4e-7,
        )
        results = run_transient_batched(
            [build() for build in builders], options
        )
        stats = results[0].stats
        assert stats["accepted_steps"] > 0
        assert sum(stats["order_histogram"].values()) == stats["accepted_steps"]
        # One lockstep grid: both samples share it exactly.
        np.testing.assert_array_equal(results[0].t, results[1].t)

    def test_gear_adaptive_supply_loss_matches_per_sample_shape(self):
        def build(q):
            return supply_loss_tank_circuit(F0, 20 * T0, q=q, inductance=1e-6)

        options = TransientOptions(
            t_stop=80 * T0,
            dt=T0 / 40,
            method="bdf2",
            step_control="adaptive",
            use_dc_operating_point=False,
            dt_min=T0 / 640,
            dt_max=4 * T0,
        )
        batched = run_transient_batched([build(12.0), build(18.0)], options)
        fine = run_transient(
            build(12.0),
            TransientOptions(
                t_stop=80 * T0, dt=T0 / 160, use_dc_operating_point=False
            ),
        )
        wa = batched[0].differential("lc1", "lc2")
        wf = fine.differential("lc1", "lc2")
        pre = wa.window(10 * T0, 20 * T0).peak_to_peak()
        pre_f = wf.window(10 * T0, 20 * T0).peak_to_peak()
        assert pre == pytest.approx(pre_f, rel=0.05)


class TestSkipMask:
    """Per-sample skip masks: masked samples freeze (state held),
    unmasked samples are bit-identical to an unmasked run."""

    def _options(self, **kw):
        return TransientOptions(
            t_stop=2e-5, dt=1e-8, use_dc_operating_point=True, **kw
        )

    def test_fixed_masked_sample_freezes_others_identical(self):
        tasks = [100.0, 150.0, 220.0]
        circuits = [build_rlc(r) for r in tasks]
        options = self._options()

        def mask(t):
            m = np.zeros(3, dtype=bool)
            m[1] = 0.5e-5 <= t < 1.0e-5
            return m

        plain = run_transient_batched(
            [build_rlc(r) for r in tasks], options
        )
        masked = run_transient_batched(circuits, options, skip_mask=mask)
        # Unmasked samples: bit-identical.
        for s in (0, 2):
            np.testing.assert_allclose(
                masked[s].x, plain[s].x, rtol=0, atol=0
            )
            assert masked[s].stats["skipped_steps"] == 0
        # The masked sample froze for the window...
        assert masked[1].stats["skipped_steps"] > 0
        t = masked[1].t
        window = (t >= 0.5e-5) & (t < 1.0e-5)
        v = masked[1].waveform("out").y
        assert np.ptp(v[window]) == 0.0
        # ...and moved again afterwards.
        assert np.ptp(v[t >= 1.0e-5]) > 0.0

    def test_adaptive_mask_accepted(self):
        tasks = [100.0, 220.0]
        options = self._options(step_control="adaptive")

        def mask(t):
            return np.array([False, t < 0.4e-5])

        results = run_transient_batched(
            [build_rlc(r) for r in tasks], options, skip_mask=mask
        )
        assert results[0].stats["skipped_steps"] == 0
        assert results[1].stats["skipped_steps"] > 0
        assert np.isfinite(results[1].x).all()
