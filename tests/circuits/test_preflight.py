"""Preflight netlist lint: structural diagnostics and engine wiring.

Each classic silent-failure topology gets a minimal netlist that
triggers exactly the expected :class:`Diagnostic`, plus the negative
control (a healthy netlist lints clean).  The wiring tests pin the
``preflight="off" | "warn" | "raise"`` contract on every analysis
front-end: off is free, warn emits ``PreflightWarning`` per finding,
raise aborts with :class:`~repro.errors.PreflightError` only on
error-severity findings.
"""

import warnings

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    PreflightWarning,
    TransientOptions,
    check_netlist,
    dc,
    run_ac,
    run_transient,
    sine,
    solve_dc,
)
from repro.circuits.preflight import apply_preflight
from repro.errors import ConfigurationError, PreflightError


def build_rc():
    c = Circuit("rc")
    c.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    c.resistor("R", "in", "out", 1e3)
    c.capacitor("C", "out", "0", 1e-9)
    return c


def codes(diags, severity=None):
    return {
        d.code
        for d in diags
        if severity is None or d.severity == severity
    }


class TestFindings:
    def test_healthy_netlist_lints_clean(self):
        assert check_netlist(build_rc()) == []

    def test_dangling_node(self):
        c = build_rc()
        c.resistor("Rstub", "out", "stub", 1e3)  # 'stub' touched once
        diags = check_netlist(c)
        assert "dangling_node" in codes(diags, "warning")
        (diag,) = [d for d in diags if d.code == "dangling_node"]
        assert diag.nodes == ("stub",)

    def test_floating_island_at_dc(self):
        c = build_rc()
        # Two nodes joined by a resistor, isolated from ground by
        # capacitors on both sides: conducting in transient, floating
        # at DC.
        c.capacitor("Cf1", "in", "f1", 1e-9)
        c.resistor("Rf", "f1", "f2", 1e3)
        c.capacitor("Cf2", "f2", "0", 1e-9)
        assert "floating_island" in codes(check_netlist(c, analysis="dc"))
        assert "floating_island" not in codes(check_netlist(c, analysis="tran"))

    def test_vsource_loop_is_error(self):
        c = Circuit("loop")
        c.voltage_source("V1", "a", "0", dc(1.0))
        c.voltage_source("V2", "a", "0", dc(2.0))
        c.resistor("R", "a", "0", 1e3)
        diags = check_netlist(c)
        assert "vsource_loop" in codes(diags, "error")

    def test_inductor_loop_is_warning(self):
        c = Circuit("lloop")
        c.voltage_source("V1", "a", "0", dc(1.0))
        c.inductor("L1", "a", "b", 1e-6)
        c.inductor("L2", "a", "b", 1e-6)
        c.resistor("R", "b", "0", 1e3)
        diags = check_netlist(c)
        assert "inductor_loop" in codes(diags, "warning")

    def test_isolated_node_zero_row(self):
        c = build_rc()
        # Current source into a node with no other connection: the
        # node's KCL row has no conductance entries at gmin=0.
        c.current_source("I1", "0", "iso", dc(1e-3))
        diags = check_netlist(c)
        assert "zero_row" in codes(diags, "warning")
        assert "dangling_node" in codes(diags, "warning")

    def test_parameter_spread(self):
        c = build_rc()
        c.resistor("Rtiny", "in", "out", 1e-9)  # 1e9 S vs 1e-9 S of Rgiant
        c.resistor("Rgiant", "out", "0", 1e9)
        diags = check_netlist(c)
        assert "parameter_spread" in codes(diags, "warning")

    def test_breakpoint_sanity(self):
        c = build_rc()
        options = TransientOptions(
            t_stop=1e-6, dt=1e-9, breakpoints=(2e-6, float("nan"), 5e-7)
        )
        diags = check_netlist(c, options=options)
        bad = [d for d in diags if d.code == "breakpoint"]
        assert len(bad) == 2  # 2e-6 beyond t_stop, nan; 5e-7 is fine


class TestApplyPreflight:
    def test_off_is_silent(self):
        c = Circuit("loop")
        c.voltage_source("V1", "a", "0", dc(1.0))
        c.voltage_source("V2", "a", "0", dc(2.0))
        c.resistor("R", "a", "0", 1e3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert apply_preflight(c, "off") == []

    def test_warn_emits_one_warning_per_finding(self):
        c = build_rc()
        c.resistor("Rstub", "out", "stub", 1e3)
        with pytest.warns(PreflightWarning):
            diags = apply_preflight(c, "warn")
        assert diags

    def test_raise_only_on_error_severity(self):
        benign = build_rc()
        benign.resistor("Rstub", "out", "stub", 1e3)  # warning only
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            apply_preflight(benign, "raise")  # survives

        fatal = Circuit("loop")
        fatal.voltage_source("V1", "a", "0", dc(1.0))
        fatal.voltage_source("V2", "a", "0", dc(2.0))
        fatal.resistor("R", "a", "0", 1e3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(PreflightError) as excinfo:
                apply_preflight(fatal, "raise")
        assert any(d.code == "vsource_loop" for d in excinfo.value.diagnostics)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_preflight(build_rc(), "maybe")


class TestEngineWiring:
    def test_transient_preflight_warn_and_stats(self):
        options = TransientOptions(
            t_stop=1e-6, dt=1e-9, step_control="fixed", preflight="warn"
        )
        c = build_rc()
        c.resistor("Rstub", "out", "stub", 1e3)
        with pytest.warns(PreflightWarning):
            result = run_transient(c, options)
        assert any(
            d.code == "dangling_node" for d in result.stats["preflight"]
        )

    def test_transient_preflight_raise(self):
        c = Circuit("loop")
        c.voltage_source("V1", "a", "0", dc(1.0))
        c.voltage_source("V2", "a", "0", dc(2.0))
        c.resistor("R", "a", "0", 1e3)
        options = TransientOptions(
            t_stop=1e-6, dt=1e-9, step_control="fixed", preflight="raise"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(PreflightError):
                run_transient(c, options)

    def test_preflight_off_bit_identical(self):
        base = TransientOptions(t_stop=1e-6, dt=1e-9, step_control="fixed")
        linted = TransientOptions(
            t_stop=1e-6, dt=1e-9, step_control="fixed", preflight="warn"
        )
        plain = run_transient(build_rc(), base)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            checked = run_transient(build_rc(), linted)
        assert np.array_equal(plain.x, checked.x)
        assert "preflight" not in plain.stats

    def test_dc_and_ac_preflight(self):
        fatal = Circuit("loop")
        fatal.voltage_source("V1", "a", "0", dc(1.0))
        fatal.voltage_source("V2", "a", "0", dc(2.0))
        fatal.resistor("R", "a", "0", 1e3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(PreflightError):
                solve_dc(fatal, preflight="raise")
            with pytest.raises(PreflightError):
                run_ac(fatal, [1e6], preflight="raise")
        # off (the default) never lints — the loop solves via lstsq.
        solve_dc(fatal)

    def test_preflight_is_side_effect_free(self):
        """Linting must not touch engine caches or circuit state."""
        c = build_rc()
        before = check_netlist(c)
        options = TransientOptions(t_stop=1e-6, dt=1e-9, step_control="fixed")
        baseline = run_transient(build_rc(), options)
        after_lint = run_transient(c, options)
        assert np.array_equal(baseline.x, after_lint.x)
        assert check_netlist(c) == before
