"""Tests for thermal-noise analysis against textbook results."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.noise import BOLTZMANN, T_ROOM, run_noise
from repro.errors import AnalysisError


def rc_circuit(r=10e3, c=1e-9):
    circuit = Circuit("rc-noise")
    circuit.voltage_source("Vb", "in", "0", 0.0)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", "0", c)
    return circuit


class TestRCNoise:
    def test_low_frequency_density_is_4ktr(self):
        r = 10e3
        circuit = rc_circuit(r=r)
        f_pole = 1 / (2 * np.pi * r * 1e-9)
        result = run_noise(circuit, [f_pole / 1000], "out")
        expected = np.sqrt(4 * BOLTZMANN * T_ROOM * r)
        assert result.total_density[0] == pytest.approx(expected, rel=1e-3)

    def test_density_rolls_off_at_pole(self):
        r, c = 10e3, 1e-9
        circuit = rc_circuit(r, c)
        f_pole = 1 / (2 * np.pi * r * c)
        result = run_noise(circuit, [f_pole / 1000, f_pole], "out")
        assert result.total_density[1] == pytest.approx(
            result.total_density[0] / np.sqrt(2), rel=1e-3
        )

    def test_integrated_noise_is_kt_over_c(self):
        """The classic: total RC noise is kT/C, independent of R."""
        for r in (1e3, 100e3):
            c = 1e-9
            circuit = rc_circuit(r=r, c=c)
            f_pole = 1 / (2 * np.pi * r * c)
            freqs = np.logspace(
                np.log10(f_pole / 1e3), np.log10(f_pole * 1e3), 4000
            )
            result = run_noise(circuit, freqs, "out")
            expected = np.sqrt(BOLTZMANN * T_ROOM / c)
            assert result.integrated_rms() == pytest.approx(expected, rel=0.02)


class TestBreakdown:
    def test_dominant_source(self):
        circuit = Circuit("div-noise")
        circuit.voltage_source("Vb", "in", "0", 0.0)
        circuit.resistor("Rbig", "in", "out", 100e3)
        circuit.resistor("Rsmall", "out", "0", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-12)
        result = run_noise(circuit, [1e3], "out")
        # Parallel combination: the small resistor shunts the node, so
        # its own noise current sees ~Rsmall... both see the same
        # impedance; the larger noise CURRENT comes from the small R,
        # but the output noise from each is i_n^2 * Rpar^2: the small
        # resistor dominates (i_n^2 ∝ 1/R).
        assert result.dominant_source(1e3) == "Rsmall"

    def test_contributions_sum_to_total(self):
        circuit = rc_circuit()
        result = run_noise(circuit, [1e4, 1e5], "out")
        total_sq = sum(c for c in result.contributions.values())
        assert np.allclose(np.sqrt(total_sq), result.total_density)


class TestTankNoise:
    def test_tank_noise_peaks_at_resonance(self):
        """The tank's Rs noise peaks at f0 — the physical origin of
        the oscillator's phase noise (Leeson's starting point)."""
        circuit = Circuit("tank-noise")
        circuit.inductor("L", "t", "m", 1e-6)
        circuit.resistor("Rs", "m", "0", 5.0)
        circuit.capacitor("C", "t", "0", 1.58e-9)
        f0 = 1 / (2 * np.pi * np.sqrt(1e-6 * 1.58e-9))
        freqs = np.linspace(0.5 * f0, 1.5 * f0, 301)
        result = run_noise(circuit, freqs, "t")
        peak_f = freqs[int(np.argmax(result.total_density))]
        assert peak_f == pytest.approx(f0, rel=0.02)


class TestValidation:
    def test_no_resistors(self):
        circuit = Circuit("lc")
        circuit.inductor("L", "a", "0", 1e-6)
        circuit.capacitor("C", "a", "0", 1e-9)
        with pytest.raises(AnalysisError):
            run_noise(circuit, [1e6], "a")

    def test_ground_output_rejected(self):
        with pytest.raises(AnalysisError):
            run_noise(rc_circuit(), [1e3], "0")

    def test_bad_frequencies(self):
        with pytest.raises(AnalysisError):
            run_noise(rc_circuit(), [], "out")
        with pytest.raises(AnalysisError):
            run_noise(rc_circuit(), [-1.0], "out")
