"""Tests for the level-1 MOSFET model."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Mosfet,
    MosfetParams,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    solve_dc,
)
from repro.errors import NetlistError

NMOS = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.0)
PMOS = MosfetParams(polarity=-1, beta=2e-3, vt0=0.5, lam=0.0)


def nmos_bias(vg, vd, params=NMOS):
    c = Circuit()
    c.voltage_source("Vg", "g", "0", vg)
    c.voltage_source("Vd", "d", "0", vd)
    m = c.mosfet("M1", "d", "g", "0", "0", params)
    op = solve_dc(c)
    return m.channel_current(op.x)


class TestNMOSRegions:
    def test_cutoff(self):
        assert nmos_bias(vg=0.3, vd=2.0) == pytest.approx(0.0, abs=1e-9)

    def test_saturation_square_law(self):
        # vov = 1.0, sat: I = beta/2 * vov^2 = 1 mA
        assert nmos_bias(vg=1.5, vd=3.0) == pytest.approx(1e-3, rel=1e-6)

    def test_saturation_scales_quadratically(self):
        i1 = nmos_bias(vg=1.0, vd=3.0)  # vov = 0.5
        i2 = nmos_bias(vg=1.5, vd=3.0)  # vov = 1.0
        assert i2 / i1 == pytest.approx(4.0, rel=1e-6)

    def test_triode(self):
        # vov = 1.0, vds = 0.2: I = beta*(vov*vds - vds^2/2)
        expected = 2e-3 * (1.0 * 0.2 - 0.02)
        assert nmos_bias(vg=1.5, vd=0.2) == pytest.approx(expected, rel=1e-6)

    def test_boundary_continuity(self):
        i_triode = nmos_bias(vg=1.5, vd=0.999999)
        i_sat = nmos_bias(vg=1.5, vd=1.000001)
        assert i_triode == pytest.approx(i_sat, rel=1e-4)

    def test_channel_length_modulation(self):
        params = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.1)
        i1 = nmos_bias(vg=1.5, vd=2.0, params=params)
        i2 = nmos_bias(vg=1.5, vd=3.0, params=params)
        assert i2 > i1
        assert i2 / i1 == pytest.approx(1.3 / 1.2, rel=1e-6)


class TestSymmetry:
    def test_drain_source_swap(self):
        """Current reverses cleanly when the terminals swap roles."""
        c = Circuit()
        c.voltage_source("Vg", "g", "0", 1.5)
        c.voltage_source("Vs", "s", "0", 0.5)
        m = c.mosfet("M1", "0", "g", "s", "0", NMOS)  # drain grounded
        op = solve_dc(c)
        # Effective vgs = 1.5-0, vds = 0-0.5 < 0 -> swapped internally;
        # conventional current flows source terminal -> drain terminal.
        assert m.channel_current(op.x) < 0


class TestPMOS:
    def test_mirror_of_nmos(self):
        c = Circuit()
        c.voltage_source("Vdd", "vdd", "0", 3.0)
        c.voltage_source("Vg", "g", "0", 1.5)
        m = c.mosfet("M1", "0", "g", "vdd", "vdd", PMOS)
        op = solve_dc(c)
        # vsg = 1.5, vov = 1.0 -> 1 mA flowing source->drain, i.e.
        # channel current into the drain terminal is negative... the
        # PMOS delivers current out of its drain into the ground node.
        assert abs(m.channel_current(op.x)) == pytest.approx(1e-3, rel=1e-6)

    def test_pmos_cutoff(self):
        c = Circuit()
        c.voltage_source("Vdd", "vdd", "0", 3.0)
        c.voltage_source("Vg", "g", "0", 3.0)
        m = c.mosfet("M1", "0", "g", "vdd", "vdd", PMOS)
        op = solve_dc(c)
        assert m.channel_current(op.x) == pytest.approx(0.0, abs=1e-9)


class TestInverter:
    def test_static_transfer(self):
        def vout(vin):
            c = Circuit()
            c.voltage_source("Vdd", "vdd", "0", 3.3)
            c.voltage_source("Vin", "g", "0", vin)
            c.mosfet("MN", "out", "g", "0", "0", NMOS_DEFAULT)
            c.mosfet("MP", "out", "g", "vdd", "vdd", PMOS_DEFAULT)
            return solve_dc(c).voltage("out")

        assert vout(0.0) > 3.2
        assert vout(3.3) < 0.1
        # Switching threshold for these device strengths is ~1.42 V.
        assert 0.3 < vout(1.42) < 3.0  # transition region


class TestBodyDiodes:
    def test_nmos_bulk_diode_conducts_below_ground(self):
        c = Circuit()
        c.voltage_source("Vd", "d", "0", -1.5)
        c.resistor("Rs", "d", "pin", 10.0)
        c.mosfet("M1", "pin", "0", "0", "0", NMOS)
        op = solve_dc(c)
        # Bulk (gnd) -> drain diode clamps the pin near -0.7 V.
        assert -0.85 < op.voltage("pin") < -0.5

    def test_pmos_bulk_diode_pumps_well(self):
        c = Circuit()
        c.voltage_source("Vd", "d", "0", 2.0)
        c.resistor("Rs", "d", "pin", 10.0)
        c.mosfet("M1", "pin", "well", "well", "well", PMOS)
        c.resistor("Rload", "well", "0", 10e3)
        op = solve_dc(c)
        # Drain -> well diode charges the floating well a drop below.
        assert op.voltage("well") == pytest.approx(2.0 - 0.75, abs=0.2)


class TestValidation:
    def test_bad_polarity(self):
        with pytest.raises(NetlistError):
            MosfetParams(polarity=0)

    def test_bad_beta(self):
        with pytest.raises(NetlistError):
            MosfetParams(polarity=1, beta=-1.0)


class TestBodyEffect:
    def test_gamma_raises_threshold(self):
        base = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.0)
        body = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.0, gamma=0.5)
        c = Circuit()
        c.voltage_source("Vg", "g", "0", 1.5)
        c.voltage_source("Vd", "d", "0", 3.0)
        c.voltage_source("Vs", "s", "0", 0.5)
        c.voltage_source("Vb", "b", "0", 0.0)  # vsb = 0.5
        m0 = c.mosfet("M0", "d", "g", "s", "b", base)
        m1 = c.mosfet("M1", "d", "g", "s", "b", body)
        op = solve_dc(c)
        assert abs(m1.channel_current(op.x)) < abs(m0.channel_current(op.x))
