"""Adaptive step control: shape-level golden tests against fine
fixed-step runs, plus engine bookkeeping on non-uniform grids.

Fixed-step mode stays pinned bit-for-bit to the seed engine by
test_transient_golden.py; adaptive mode trades bit equality for
wall-clock and is validated here at measurement level (amplitude,
frequency, point-wise error against the LTE tolerance).
"""

import numpy as np
import pytest

from repro.analysis import envelope_by_peaks, oscillation_frequency
from repro.circuits import (
    Circuit,
    TransientOptions,
    pulse,
    run_transient,
    sine,
)
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.errors import SimulationError

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)


def _rc_pulse():
    c = Circuit()
    c.voltage_source("V1", "in", "0", pulse(0.0, 1.0, delay=2e-5, width=1e-3))
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-7)
    return c


class TestOptionsValidation:
    def test_unknown_mode(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, step_control="magic")

    def test_bad_dt_bounds(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, dt_min=-1.0)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, dt_min=1e-6, dt_max=1e-7)

    def test_bad_lte_tolerances(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, lte_reltol=0.0)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, lte_abstol=-1e-9)

    def test_bad_growth_and_cache(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, max_step_growth=1.0)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, dt_cache_size=0)


class TestLinearAdaptive:
    def _run(self):
        return run_transient(
            _rc_pulse(),
            TransientOptions(
                t_stop=5e-4,
                dt=1e-6,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_max=5e-5,
            ),
        )

    def test_grid_is_non_uniform_and_increasing(self):
        res = self._run()
        dt = np.diff(res.t)
        assert np.all(dt > 0)
        assert len({round(float(d), 15) for d in dt}) > 1

    def test_matches_fine_fixed_run(self):
        res = self._run()
        fine = run_transient(
            _rc_pulse(),
            TransientOptions(t_stop=5e-4, dt=2e-7, use_dc_operating_point=False),
        )
        wa = res.waveform("out")
        wf = fine.waveform("out")
        err = np.max(np.abs(wa.resample(wf.t).y - wf.y))
        # LTE reltol is 1e-3 of a ~1 V signal; allow interpolation slack.
        assert err < 1e-2
        # ... at a small fraction of the samples.
        assert len(wa) < len(wf) / 10

    def test_pulse_edges_are_step_boundaries(self):
        res = self._run()
        # The pulse delay edge must be an exact recorded time.
        assert 2e-5 in res.t.tolist()
        assert res.stats["breakpoints_hit"] >= 1

    def test_far_fewer_steps_than_fixed(self):
        res = self._run()
        assert res.stats["steps"] < 100  # fixed grid would take 500

    def test_stats_contents(self):
        res = self._run()
        stats = res.stats
        assert stats["strategy"] == "linear"
        assert stats["step_control"] == "adaptive"
        assert stats["accepted_steps"] == stats["steps"] == len(res.t) - 1
        assert stats["rejected_steps"] >= 0
        assert 0 < stats["min_dt"] <= stats["max_dt"] <= 5e-5
        assert stats["dt_cache_entries"] >= 1
        assert stats["lu_refactorizations"] >= 1


class TestFig16Adaptive:
    @pytest.fixture(scope="class")
    def runs(self):
        t_stop = 60 / TANK.frequency
        netlist = OscillatorNetlist(TANK, vref=2.5)
        adaptive = netlist.run_startup(
            code=0, t_stop=t_stop, limiter=LIMITER, step_control="adaptive"
        )
        fine = netlist.run_startup(
            code=0, t_stop=t_stop, points_per_cycle=160, limiter=LIMITER
        )
        return adaptive, fine, t_stop

    def test_envelope_amplitude_within_one_percent(self, runs):
        adaptive, fine, _ = runs
        env_a = envelope_by_peaks(adaptive.differential)
        env_f = envelope_by_peaks(fine.differential)
        assert env_a.y[-1] == pytest.approx(env_f.y[-1], rel=0.01)

    def test_frequency_within_one_percent(self, runs):
        adaptive, fine, t_stop = runs
        f_a = oscillation_frequency(adaptive.differential.window(0.5 * t_stop, t_stop))
        f_f = oscillation_frequency(fine.differential.window(0.5 * t_stop, t_stop))
        assert f_a == pytest.approx(f_f, rel=0.01)


class TestSupplyLossAdaptive:
    """Stiff-then-slow: forced carrier, supply loss, ring-down, quiet
    tail — the workload adaptive stepping exists for."""

    F0 = 4e6

    def _build(self, t_fault):
        from repro.core import supply_loss_tank_circuit

        return supply_loss_tank_circuit(self.F0, t_fault)

    def test_decay_matches_fine_fixed(self):
        T = 1.0 / self.F0
        t_fault = 20 * T
        t_stop = 120 * T
        adaptive = run_transient(
            self._build(t_fault),
            TransientOptions(
                t_stop=t_stop,
                dt=T / 40,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_min=T / 640,
                dt_max=8 * T,
            ),
        )
        fine = run_transient(
            self._build(t_fault),
            TransientOptions(t_stop=t_stop, dt=T / 160, use_dc_operating_point=False),
        )
        wa = adaptive.differential("lc1", "lc2")
        wf = fine.differential("lc1", "lc2")
        # Pre-fault driven amplitude and immediate post-fault decay.
        pre_a = wa.window(15 * T, t_fault).peak_to_peak()
        pre_f = wf.window(15 * T, t_fault).peak_to_peak()
        assert pre_a == pytest.approx(pre_f, rel=0.01)
        post_a = wa.window(t_fault + 4 * T, t_fault + 9 * T).peak_to_peak()
        post_f = wf.window(t_fault + 4 * T, t_fault + 9 * T).peak_to_peak()
        assert post_a == pytest.approx(post_f, rel=0.05)
        # The quiet tail must be quiet — and cheap.
        assert np.abs(wa.window(80 * T, 120 * T).y).max() < 1e-6
        assert adaptive.stats["steps"] < fine.stats["steps"] / 5
        assert adaptive.stats["breakpoints_hit"] >= 1


class TestAdaptiveNonlinearStrategies:
    def _rectifier(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
        c.diode("D1", "in", "out")
        c.resistor("RL", "out", "0", 10e3)
        c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
        return c

    def test_general_newton_under_step_control(self):
        adaptive = run_transient(
            self._rectifier(),
            TransientOptions(
                t_stop=60e-6,
                dt=0.2e-6,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_max=2e-6,
            ),
        )
        fine = run_transient(
            self._rectifier(),
            TransientOptions(t_stop=60e-6, dt=0.05e-6, use_dc_operating_point=False),
        )
        assert adaptive.stats["strategy"] == "general"
        wa = adaptive.waveform("out")
        wf = fine.waveform("out")
        # Compare at the adaptive solution points (the dense fixed run
        # interpolates accurately; the sparse one does not).
        err = np.max(np.abs(wa.y - wf.resample(wa.t).y))
        assert err < 0.02  # 2 V scale signal: within 1 %

    def test_record_stride_counts_accepted_steps(self):
        res = run_transient(
            _rc_pulse(),
            TransientOptions(
                t_stop=5e-4,
                dt=1e-6,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_max=5e-5,
                record_stride=4,
            ),
        )
        assert len(res.t) - 1 == res.stats["accepted_steps"] // 4


class TestPhaseSwitching:
    """Per-phase method switching: trap through the carrier phase,
    Gear through the settle phase, switched live at the boundary."""

    def _phased_options(self, **kw):
        from repro.circuits import PhaseSchedule

        schedule = PhaseSchedule.carrier_then_settle(
            2e-5,
            carrier_dt=1e-7,
            settle_dt=1e-6,
            settle_method="gear",
            max_order=3,
        )
        options = TransientOptions(
            t_stop=1e-4,
            dt=1e-7,
            step_control="adaptive",
            phases=schedule,
            **kw,
        )
        return options

    def test_phase_switch_fires_once_and_logs(self):
        result = run_transient(_rc_pulse(), self._phased_options())
        assert result.stats["phase_switches"] == 1
        (switch,) = result.stats["phases"]
        assert switch["method"] == "gear"
        assert switch["t"] >= 2e-5
        assert switch["bootstrapped"]

    def test_phased_run_tracks_unphased_solution(self):
        plain = run_transient(
            _rc_pulse(),
            TransientOptions(t_stop=1e-4, dt=1e-7, step_control="adaptive"),
        )
        phased = run_transient(_rc_pulse(), self._phased_options())
        # Different grids; compare the settled tail against the LTE
        # budget rather than point-wise.
        v_plain = plain.waveform("out").y[-1]
        v_phased = phased.waveform("out").y[-1]
        assert v_phased == pytest.approx(v_plain, rel=1e-3, abs=1e-6)

    def test_phases_require_adaptive_control(self):
        from repro.circuits import PhaseSchedule

        schedule = PhaseSchedule.carrier_then_settle(2e-5)
        with pytest.raises(SimulationError):
            TransientOptions(
                t_stop=1e-4, dt=1e-7, step_control="fixed", phases=schedule
            )
