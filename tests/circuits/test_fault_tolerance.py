"""Fault-injection tests for the transient rescue/quarantine layer.

Deterministic failures come from ``NewtonOptions.fail_hook`` — the
test-only hook consulted before each transient Newton step
(``phase="step"``) and each rescue attempt (``phase="rescue"``).
Returning True makes that solve fail exactly as if Newton diverged,
which pins down every escalation path without needing a circuit that
genuinely diverges at a chosen step:

* fixed-grid rescue ladder (gmin ramp, residual continuation),
* adaptive dt-shrink escalation down to ``dt_min`` and rescue there,
* budgets (``max_steps``, ``max_wall_time``, ``max_rescues``),
* partial-result mode (``on_abort="partial"``),
* batched per-sample quarantine on both grids,
* the zero-overhead guarantee for healthy runs.
"""

import pickle

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    TransientOptions,
    run_transient,
    run_transient_batched,
    sine,
)
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.errors import ConvergenceError, SimulationError

F0 = 4e6
T0 = 1.0 / F0
DT = T0 / 40.0
T_STOP = 4.0 * T0


def build_oscillator(gm_scale=1.0, fault_id=None):
    """The Fig 1 startup netlist (rank-1 strategy), optionally marked
    with a ``fault_id`` attribute the module-level hooks key on."""
    tank = RLCTank.from_frequency_and_q(F0, 15.0, 1e-6)
    circuit = OscillatorNetlist(tank, vref=2.5).build(
        TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    )
    circuit.fault_id = fault_id
    return circuit


def build_rc(fault_id=None):
    """Linear strategy: V source + R + C."""
    circuit = Circuit("rc")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    circuit.resistor("R", "in", "out", 1e3)
    circuit.capacitor("C", "out", "0", 1e-9)
    circuit.fault_id = fault_id
    return circuit


# Failures start here — partway into the run, away from t=0.
T_FAIL = 1.0 * T0 + 0.1 * DT


class FailUntilRescued:
    """Fail every Newton *step* solve from ``start`` on, until the
    engine escalates to the rescue ladder; the rescue succeeds and
    flips the hook off.  Pins "exactly one rescue, run completes" on
    both grids (the adaptive grid cannot step around a failure that
    follows the clock)."""

    def __init__(self, start=T_FAIL):
        self.start = start
        self.rescued = False

    def __call__(self, time, phase, circuit):
        if phase == "rescue":
            self.rescued = True
            return False
        return not self.rescued and time >= self.start


class CountedStepFailures:
    """Fail the first ``n`` step solves at/after ``start`` (rescues
    succeed) — each failed grid step consumes one rescue."""

    def __init__(self, n, start=T_FAIL):
        self.remaining = n
        self.start = start

    def __call__(self, time, phase, circuit):
        if phase == "step" and time >= self.start and self.remaining > 0:
            self.remaining -= 1
            return True
        return False


def fail_all_forever(time, phase, circuit):
    """Step and rescue solves all fail from T_FAIL on: unrecoverable."""
    return time >= T_FAIL


def fail_step_forever(time, phase, circuit):
    return phase == "step" and time >= T_FAIL


def fail_marked_after(time, phase, circuit):
    """Samples marked ``fault_id="bad"`` die (rescue included) from
    T_FAIL on; everyone else is healthy."""
    return getattr(circuit, "fault_id", None) == "bad" and time >= T_FAIL


def _options(**kw):
    kw.setdefault("t_stop", T_STOP)
    kw.setdefault("dt", DT)
    kw.setdefault("method", "trap")
    kw.setdefault("use_dc_operating_point", False)
    return TransientOptions(**kw)


class TestOptionsValidation:
    def test_on_abort_mode_checked(self):
        with pytest.raises(SimulationError):
            _options(on_abort="explode")

    def test_budget_bounds_checked(self):
        with pytest.raises(SimulationError):
            _options(max_rescues=-1)
        with pytest.raises(SimulationError):
            _options(rescue_ramp_steps=0)
        with pytest.raises(SimulationError):
            _options(max_steps=0)
        with pytest.raises(SimulationError):
            _options(max_wall_time=0.0)
        with pytest.raises(SimulationError):
            _options(rescue_gmin_ladder=(1e-3, -1.0))


class TestConvergenceErrorContext:
    def test_context_fields_round_trip_through_pickle(self):
        error = ConvergenceError(
            "died",
            iterations=7,
            residual=0.25,
            time=1e-6,
            dt=1e-9,
            phase="step",
            failed_samples=[2, 5],
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.iterations == 7
        assert clone.residual == 0.25
        assert clone.context() == {
            "iterations": 7,
            "residual": 0.25,
            "time": 1e-6,
            "dt": 1e-9,
            "phase": "step",
            "failed_samples": [2, 5],
        }

    def test_injected_step_failure_is_enriched(self):
        options = _options()
        options.newton.fail_hook = fail_step_forever
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient(build_oscillator(), options)
        context = excinfo.value.context()
        assert context["phase"] == "step"
        assert context["time"] >= T_FAIL
        assert context["dt"] == pytest.approx(DT)


class TestFixedGridRescue:
    def test_rescue_recovers_the_run(self):
        healthy = run_transient(build_oscillator(), _options())
        options = _options(rescue=True)
        options.newton.fail_hook = FailUntilRescued()
        rescued = run_transient(build_oscillator(), options)
        assert rescued.stats["rescues"] == 1
        assert sum(rescued.stats["rescue_stages"].values()) >= 1
        assert rescued.t[-1] == pytest.approx(T_STOP)
        # The rescue ladder lands on the same step solutions the
        # healthy Newton finds (within solver tolerance).
        np.testing.assert_allclose(rescued.x, healthy.x, rtol=1e-5, atol=1e-7)

    def test_without_rescue_the_seed_contract_raises(self):
        options = _options()
        options.newton.fail_hook = CountedStepFailures(1)
        with pytest.raises(ConvergenceError):
            run_transient(build_oscillator(), options)

    def test_rescue_failure_partial_result(self):
        options = _options(rescue=True, on_abort="partial")
        options.newton.fail_hook = fail_all_forever
        result = run_transient(build_oscillator(), options)
        stats = result.stats
        assert stats["completed"] is False
        assert stats["abort_reason"] == "newton"
        assert 0.0 < stats["t_abort"] < T_STOP
        assert result.t[-1] <= stats["t_abort"] + DT
        assert "abort_error" in stats

    def test_rescue_failure_raise_mode(self):
        options = _options(rescue=True)
        options.newton.fail_hook = fail_all_forever
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient(build_oscillator(), options)
        assert excinfo.value.context()["phase"] == "rescue"

    def test_max_rescues_budget(self):
        options = _options(rescue=True, max_rescues=1, on_abort="partial")
        options.newton.fail_hook = CountedStepFailures(2)
        result = run_transient(build_oscillator(), options)
        assert result.stats["abort_reason"] == "max_rescues"
        assert result.stats["rescues"] == 1

    def test_rescue_works_on_linear_circuits_too(self):
        options = _options(rescue=True)
        options.newton.fail_hook = FailUntilRescued()
        rescued = run_transient(build_rc(), options)
        healthy = run_transient(build_rc(), _options())
        assert rescued.stats["rescues"] == 1
        np.testing.assert_allclose(rescued.x, healthy.x, rtol=1e-6, atol=1e-9)


class TestBudgets:
    def test_max_steps_partial(self):
        options = _options(max_steps=10, on_abort="partial")
        result = run_transient(build_oscillator(), options)
        assert result.stats["abort_reason"] == "max_steps"
        assert result.stats["completed"] is False
        assert result.stats["steps"] == 10
        assert result.stats["t_abort"] == pytest.approx(10 * DT)

    def test_max_steps_raise(self):
        options = _options(max_steps=10)
        with pytest.raises(SimulationError, match="max_steps"):
            run_transient(build_oscillator(), options)

    def test_max_wall_time_partial(self):
        options = _options(max_wall_time=1e-12, on_abort="partial")
        result = run_transient(build_oscillator(), options)
        assert result.stats["abort_reason"] == "max_wall_time"
        assert result.stats["completed"] is False

    def test_adaptive_max_steps_partial(self):
        options = _options(
            step_control="adaptive", max_steps=5, on_abort="partial"
        )
        result = run_transient(build_oscillator(), options)
        assert result.stats["abort_reason"] == "max_steps"
        assert result.stats["t_abort"] < T_STOP


class TestAdaptiveRescue:
    def test_escalates_to_dt_min_then_rescues(self):
        options = _options(step_control="adaptive", rescue=True)
        hook = FailUntilRescued()
        options.newton.fail_hook = hook
        result = run_transient(build_oscillator(), options)
        # The controller had to walk dt down to the floor before the
        # rescue fired (the hook fails *every* step solve until then).
        assert result.stats["rescues"] == 1
        assert hook.rescued
        assert result.t[-1] == pytest.approx(T_STOP)
        healthy = run_transient(
            build_oscillator(), _options(step_control="adaptive")
        )
        # Same physics, different grids: compare the final oscillator
        # state loosely.
        assert result.x[-1] == pytest.approx(healthy.x[-1], rel=0.05, abs=1e-3)

    def test_rescue_dead_at_floor_partial(self):
        options = _options(
            step_control="adaptive", rescue=True, on_abort="partial"
        )
        options.newton.fail_hook = fail_all_forever
        result = run_transient(build_oscillator(), options)
        assert result.stats["abort_reason"] == "newton_dt_min"
        assert result.stats["completed"] is False
        assert 0.0 < result.stats["t_abort"] < T_STOP

    def test_without_rescue_raises_at_floor(self):
        options = _options(step_control="adaptive")
        options.newton.fail_hook = fail_step_forever
        with pytest.raises(ConvergenceError):
            run_transient(build_oscillator(), options)


class TestZeroOverhead:
    """Healthy runs must not change when rescue/budgets are armed."""

    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_rescue_flag_is_bit_free_on_healthy_runs(self, step_control):
        plain = run_transient(
            build_oscillator(), _options(step_control=step_control)
        )
        armed = run_transient(
            build_oscillator(),
            _options(
                step_control=step_control,
                rescue=True,
                max_steps=10**9,
                max_wall_time=3600.0,
            ),
        )
        assert (
            armed.stats["newton_iterations"] == plain.stats["newton_iterations"]
        )
        assert armed.stats["steps"] == plain.stats["steps"]
        assert np.array_equal(armed.x, plain.x)
        assert armed.stats["rescues"] == 0


class TestBatchedQuarantine:
    def _samples(self, n=6, bad=(1, 4)):
        return [
            build_oscillator(
                1.0 + 0.02 * i, fault_id="bad" if i in bad else None
            )
            for i in range(n)
        ]

    def test_fixed_grid_survivors_finish(self):
        options = _options(quarantine=True)
        options.newton.fail_hook = fail_marked_after
        results = run_transient_batched(self._samples(), options)
        assert results[0].stats["quarantined_samples"] == [1, 4]
        for s, result in enumerate(results):
            if s in (1, 4):
                assert result.stats["quarantined"] is True
                record = result.stats["quarantine"]
                assert record["sample"] == s
                assert record["reason"] == "newton"
                assert record["time"] >= T_FAIL
            else:
                assert result.stats["quarantined"] is False
                assert result.t[-1] == pytest.approx(T_STOP)

    def test_fixed_grid_survivors_match_solo_runs(self):
        options = _options(quarantine=True)
        options.newton.fail_hook = fail_marked_after
        results = run_transient_batched(self._samples(), options)
        solo_options = _options()
        for s in (0, 2, 3, 5):
            solo = run_transient(build_oscillator(1.0 + 0.02 * s), solo_options)
            np.testing.assert_allclose(
                results[s].x, solo.x, rtol=1e-9, atol=1e-12
            )

    def test_quarantined_state_freezes(self):
        options = _options(quarantine=True)
        options.newton.fail_hook = fail_marked_after
        results = run_transient_batched(self._samples(), options)
        x = results[1].x
        death = results[1].stats["quarantine"]["time"]
        frozen = x[results[1].t >= death]
        assert np.all(frozen == frozen[0])

    def test_adaptive_grid_quarantine(self):
        options = _options(step_control="adaptive", quarantine=True)
        options.newton.fail_hook = fail_marked_after
        results = run_transient_batched(self._samples(), options)
        assert results[0].stats["quarantined_samples"] == [1, 4]
        assert results[1].stats["quarantine"]["reason"] == "newton_dt_min"
        assert results[0].t[-1] == pytest.approx(T_STOP)

    def test_all_quarantined_raises(self):
        options = _options(quarantine=True)
        options.newton.fail_hook = fail_marked_after
        circuits = [build_oscillator(1.0, fault_id="bad") for _ in range(3)]
        with pytest.raises(ConvergenceError):
            run_transient_batched(circuits, options)

    def test_all_quarantined_partial(self):
        options = _options(quarantine=True, on_abort="partial")
        options.newton.fail_hook = fail_marked_after
        circuits = [build_oscillator(1.0, fault_id="bad") for _ in range(3)]
        results = run_transient_batched(circuits, options)
        assert results[0].stats["abort_reason"] == "all_quarantined"
        assert results[0].stats["completed"] is False
        assert results[0].stats["quarantined_samples"] == [0, 1, 2]

    def test_without_quarantine_batch_raises(self):
        options = _options()
        options.newton.fail_hook = fail_marked_after
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient_batched(self._samples(), options)
        assert excinfo.value.failed_samples == [1, 4]

    def test_quarantine_flag_is_bit_free_on_healthy_batches(self):
        circuits = [build_oscillator(1.0 + 0.02 * i) for i in range(4)]
        plain = run_transient_batched(circuits, _options())
        armed = run_transient_batched(
            [build_oscillator(1.0 + 0.02 * i) for i in range(4)],
            _options(quarantine=True),
        )
        for a, b in zip(plain, armed):
            assert np.array_equal(a.x, b.x)
            assert (
                a.stats["newton_iterations"] == b.stats["newton_iterations"]
            )
        assert armed[0].stats["quarantined_samples"] == []
