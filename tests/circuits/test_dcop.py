"""Tests for the DC operating-point solver and sweeps."""

import numpy as np
import pytest

from repro.circuits import Circuit, NewtonOptions, dc_sweep, solve_dc
from repro.errors import ConvergenceError


class TestLinearSolve:
    def test_wheatstone_bridge(self):
        c = Circuit()
        c.voltage_source("V1", "top", "0", 10.0)
        c.resistor("R1", "top", "l", 1e3)
        c.resistor("R2", "l", "0", 2e3)
        c.resistor("R3", "top", "r", 2e3)
        c.resistor("R4", "r", "0", 1e3)
        c.resistor("Rb", "l", "r", 5e3)
        op = solve_dc(c)
        # Bridge arms: V(l) without bridge = 6.667, V(r) = 3.333;
        # with the bridge resistor current flows l -> r.
        assert op.voltage("l") > op.voltage("r")
        i_bridge = (op.voltage("l") - op.voltage("r")) / 5e3
        assert i_bridge > 0

    def test_floating_node_held_by_gmin(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 5.0)
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("Cf", "float", "0", 1e-12)
        op = solve_dc(c)
        assert abs(op.voltage("float")) < 1.0  # not NaN, not wild

    def test_voltages_dict(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 1.0)
        c.resistor("R1", "a", "0", 1e3)
        v = solve_dc(c).voltages()
        assert set(v) == {"a"}


class TestNonlinearSolve:
    def test_diode_stack_converges(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "a", 100.0)
        c.diode("D1", "a", "b")
        c.diode("D2", "b", "c")
        c.diode("D3", "c", "0")
        op = solve_dc(c)
        assert op.voltage("a") == pytest.approx(3 * 0.72, abs=0.3)

    def test_nonconvergent_raises_with_metadata(self):
        """An impossible tolerance must raise ConvergenceError."""
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "a", 100.0)
        c.diode("D1", "a", "0")
        options = NewtonOptions(
            max_iterations=1,
            abstol_v=0.0,
            reltol=0.0,
            gmin_steps=(),
            source_steps=1,
        )
        with pytest.raises(ConvergenceError):
            # One iteration from a cold start with zero tolerance and
            # no homotopy fallback cannot converge.
            solve_dc(c, options=options)


class TestDCSweep:
    def test_resistor_iv_line(self):
        c = Circuit()
        c.voltage_source("Vs", "a", "0", 0.0)
        c.resistor("R1", "a", "0", 1e3)
        sweep = dc_sweep(
            c,
            "Vs",
            np.linspace(-1, 1, 11),
            probes={"i": lambda op: -op.branch_current("Vs")},
        )
        assert np.allclose(sweep.trace("i"), sweep.values / 1e3)

    def test_diode_iv_curve(self):
        c = Circuit()
        c.voltage_source("Vs", "a", "0", 0.0)
        c.resistor("Rser", "a", "d", 10.0)
        c.diode("D1", "d", "0")
        sweep = dc_sweep(
            c,
            "Vs",
            np.linspace(-1, 1, 41),
            probes={"i": lambda op: -op.branch_current("Vs")},
        )
        i = sweep.trace("i")
        assert i[0] == pytest.approx(0.0, abs=1e-9)  # reverse
        assert i[-1] > 1e-3  # forward
        assert np.all(np.diff(i) >= -1e-12)  # monotonic

    def test_source_restored_after_sweep(self):
        c = Circuit()
        src = c.voltage_source("Vs", "a", "0", 7.0)
        c.resistor("R1", "a", "0", 1e3)
        dc_sweep(c, "Vs", [0.0, 1.0], probes={"v": lambda op: op.voltage("a")})
        assert src.value_at(0.0) == 7.0

    def test_sweeping_non_source_rejected(self):
        c = Circuit()
        c.voltage_source("Vs", "a", "0", 0.0)
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(ConvergenceError):
            dc_sweep(c, "R1", [0.0], probes={})
