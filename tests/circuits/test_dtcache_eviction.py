"""The DtCache LRU retire path under step-size churn.

The adaptive controller visits a handful of quantized step sizes, but
nothing *guarantees* a run stays under ``max_dt_entries`` — a long
breakpoint-heavy scenario can walk the whole dt ladder repeatedly.
These tests drive more distinct step sizes than the cache holds and
pin the eviction contract: the ``_retire`` hook fires, ``live_entries``
tracks exactly the survivors, factorization counts stay honest across
evictions, and evicted entries *release* their backend factorizations
instead of keeping LU memory alive.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, dc, sine
from repro.circuits.assembly import DtCache, TransientAssembly


def _circuit():
    c = Circuit("cache")
    c.voltage_source("vin", "in", "0", sine(1.0, 1e6, offset=2.0))
    c.resistor("r1", "in", "a", 100.0)
    c.capacitor("c1", "a", "0", 1e-9)
    c.inductor("l1", "a", "b", 1e-6)
    c.resistor("r2", "b", "0", 50.0)
    return c


class TestDtCachePolicy:
    def test_retire_fires_beyond_capacity(self):
        retired = []
        cache = DtCache(build=lambda dt: {"dt": dt}, retire=retired.append,
                        max_entries=8)
        dts = [1e-9 * 2**k for k in range(12)]
        for dt in dts:
            cache.get(dt)
        assert len(cache) == 8
        assert [e["dt"] for e in retired] == dts[:4]  # oldest first
        live = [e["dt"] for e in cache.live_entries()]
        assert live == dts[4:]

    def test_lru_order_protects_recently_used(self):
        cache = DtCache(build=lambda dt: {"dt": dt}, max_entries=2)
        a = cache.get(1.0)
        cache.get(2.0)
        assert cache.get(1.0) is a  # touch: 1.0 becomes most recent
        cache.get(3.0)  # evicts 2.0, not 1.0
        assert cache.get(1.0) is a
        assert cache.get(2.0) is not None  # rebuilt

    def test_ephemeral_slots_do_not_evict_grid(self):
        retired = []
        cache = DtCache(build=lambda dt: {"dt": dt}, retire=retired.append,
                        max_entries=2)
        cache.get(1.0)
        cache.get(2.0)
        cache.get(0.3, ephemeral=True)
        cache.get(0.15, ephemeral=True)
        assert len(cache) == 2 and not retired
        # A third ephemeral dt retires the previous scratch pair.
        cache.get(0.7, ephemeral=True)
        assert sorted(e["dt"] for e in retired) == [0.15, 0.3]


class TestAssemblyEviction:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_factorizations_counted_and_released(self, backend):
        if backend == "sparse":
            pytest.importorskip("scipy")
        assembly = TransientAssembly(
            _circuit(), 1e-9, "trap", 1e-12, max_dt_entries=8, backend=backend
        )
        dts = [1e-9 * 2**k for k in range(10)]  # > 8 distinct sizes
        factored = []
        for dt in dts:
            assembly.set_dt(dt)
            lu = assembly.lu()  # force a factorization per entry
            assert lu.solve(np.ones(assembly.size)).shape == (assembly.size,)
            factored.append(assembly._active)
        assert assembly.n_dt_entries == 8
        # The two oldest entries were evicted: their factorizations are
        # counted in the retired tally and the references released.
        assert assembly.retired_factorizations == 2
        assert assembly.lu_factorizations == 10
        for entry in factored[:2]:
            assert entry.lu is None and entry.rank1 is None
            assert entry.woodbury is None and entry.delta is None
        for entry in factored[2:]:
            assert entry.lu is not None
        live = assembly._cache.live_entries()
        assert len(live) == 8 and factored[0] not in live

    def test_revisiting_cached_dt_does_not_refactor(self):
        assembly = TransientAssembly(_circuit(), 1e-9, "trap", 1e-12)
        assembly.lu()
        before = assembly.lu_factorizations
        assembly.set_dt(2e-9)
        assembly.lu()
        assembly.set_dt(1e-9)  # cache hit
        assembly.lu()
        assert assembly.lu_factorizations == before + 1


class TestSetupKeying:
    """Entries are keyed by the full (dt, method, order) setup.

    The regression this pins: the build closure captures the
    assembly's method, so a dt-only key would happily serve a stale
    entry built for a *different* integrator after a live method
    switch."""

    def test_switching_method_cannot_reuse_stale_entry(self):
        assembly = TransientAssembly(_circuit(), 1e-9, "trap", 1e-12)
        trap_entry = assembly._active
        trap_G = np.array(assembly.G_base)
        assembly.set_method("be")
        assembly.set_dt(1e-9)
        assert assembly._active is not trap_entry
        # The capacitor companion conductance halves under BE; a
        # stale trap entry would keep the 2C/dt stamp.
        assert not np.allclose(np.array(assembly.G_base), trap_G)
        # Switching back is a cache hit on the original entry.
        assembly.set_method("trap")
        assembly.set_dt(1e-9)
        assert assembly._active is trap_entry

    def test_switching_order_cannot_reuse_stale_entry(self):
        assembly = TransientAssembly(_circuit(), 1e-9, "gear", 1e-12)
        assert assembly.order == 1  # startup: no history yet
        order1_entry = assembly._active
        order1_G = np.array(assembly.G_base)
        assembly.set_dt(1e-9, order=2)
        assert assembly._active is not order1_entry
        # BDF2's leading coefficient is 3/2 vs BE's 1.
        assert not np.allclose(np.array(assembly.G_base), order1_G)

    def test_same_setup_same_entry_across_methods_objects(self):
        assembly = TransientAssembly(_circuit(), 1e-9, "trap", 1e-12)
        entry = assembly._active
        assembly.set_dt(2e-9)
        assembly.set_dt(1e-9)
        assert assembly._active is entry

    def test_live_method_upgrade_preserves_history_and_drops_weights(self):
        """Switching to a deeper-history method mid-run must keep the
        committed history valid (no zeroed rows behind a stale h_len)
        and must not serve the previous method's memoized weights."""
        from repro.circuits import Gear

        assembly = TransientAssembly(_circuit(), 1e-9, "gear", 1e-12)
        x = np.zeros(assembly.size)
        for step, order in ((1, None), (2, 2), (3, 2)):
            if order is not None:
                assembly.set_dt(1e-9, order=order)
            rhs = assembly.step_rhs(step * 1e-9, {}, x)
            x = assembly.lu().solve(rhs)
            assembly.commit(x, step * 1e-9, {})
        r = assembly.reactive
        h_len = r.h_len
        assert h_len >= 2
        times_before = r.history_times()
        old_weights = r.step_weights(assembly._active.coeffs)

        assembly.set_method(Gear(max_order=3))
        # History survived the ring growth: same times, same fill.
        assert r.h_len == h_len
        assert r.history_times() == times_before
        assert not np.isnan(r.h_val[:h_len]).any()
        # The weight memo was dropped with the method; the new
        # method's order-3 weights are served, not the stale pair.
        assembly.set_dt(1e-9, order=3)
        new_weights = r.step_weights(assembly._active.coeffs)
        assert not np.array_equal(new_weights[0], old_weights[0])
        # ...and the upgraded assembly keeps integrating.
        rhs = assembly.step_rhs(4e-9, {}, x)
        x = assembly.lu().solve(rhs)
        assembly.commit(x, 4e-9, {})
        assert np.isfinite(x).all()
