"""The RLC ladder helper and the distributed sensing coil.

The ladder is the repo's first netlist family that outgrows the dense
backend, so beyond structural checks the tests pin the physics that
makes it a valid stand-in for the paper's coil: the distributed model
must keep the lumped tank's resonance (to the high-Q approximation)
and its driven steady-state amplitude, while exposing enough unknowns
to exercise the sparse path.
"""

import numpy as np
import pytest

from repro.analysis import oscillation_frequency
from repro.circuits import Circuit, TransientOptions, dc, run_transient
from repro.envelope import RLCTank
from repro.errors import ConfigurationError, NetlistError
from repro.sensor import DistributedCoil

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)


class TestRlcLadderHelper:
    def test_structure_and_junctions(self):
        c = Circuit("ladder")
        c.voltage_source("v1", "in", "0", dc(1.0))
        junctions = c.rlc_ladder("x_", "in", "out", 4, 1e-7, 0.1, 1e-11)
        assert junctions[0] == "in" and junctions[-1] == "out"
        assert len(junctions) == 5
        # 4 inductors + 4 resistors + 3 internal shunt caps.
        assert "x_L4" in c and "x_R1" in c and "x_C3" in c
        assert "x_C4" not in c
        # nodes: in, out, 4 mids, 3 internal junctions (+ source br,
        # + 4 inductor branches).
        assert c.prepare() == 9 + 5

    def test_single_segment(self):
        c = Circuit("one")
        c.voltage_source("v1", "in", "0", dc(1.0))
        junctions = c.rlc_ladder("x_", "in", "out", 1, 1e-7, 0.1, 1e-11)
        assert junctions == ["in", "out"]

    def test_rejects_zero_segments(self):
        c = Circuit("bad")
        with pytest.raises(NetlistError, match="at least one segment"):
            c.rlc_ladder("x_", "a", "b", 0, 1e-7, 0.1, 1e-11)


class TestDistributedCoil:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=0)
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=10, parasitic_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=10).build_circuit(drive_current=0.0)

    def test_segment_values_conserve_totals(self):
        coil = DistributedCoil(TANK, n_segments=50)
        assert coil.segment_inductance * 50 == pytest.approx(TANK.inductance)
        assert coil.segment_resistance * 50 == pytest.approx(
            TANK.series_resistance
        )
        assert coil.junction_capacitance * 49 == pytest.approx(
            0.05 * TANK.capacitance
        )

    def test_unknown_count_matches_prepared_circuit(self):
        for n in (1, 10, 67):
            coil = DistributedCoil(TANK, n_segments=n)
            assert coil.build_circuit().prepare() == coil.unknown_count

    def test_crosses_sparse_threshold(self):
        from repro.circuits.backend import SPARSE_AUTO_THRESHOLD

        coil = DistributedCoil(TANK, n_segments=67)
        assert coil.unknown_count >= 200 >= SPARSE_AUTO_THRESHOLD

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_driven_resonance_matches_lumped_tank(self, backend):
        """The distributed coil must still *be* the paper's coil."""
        if backend == "sparse":
            pytest.importorskip("scipy")
        coil = DistributedCoil(TANK, n_segments=40)
        circuit = coil.build_circuit(drive_current=1e-3)
        cycles = 60
        result = run_transient(
            circuit,
            TransientOptions(
                t_stop=cycles / TANK.frequency,
                dt=1.0 / (TANK.frequency * 40),
                use_dc_operating_point=False,
                record_nodes=("lc1", "lc2"),
                backend=backend,
            ),
        )
        wave = result.waveform("lc1")
        t_stop = cycles / TANK.frequency
        freq = oscillation_frequency(wave.window(0.5 * t_stop, t_stop))
        # Driven at the lumped resonance; the distributed line answers
        # at the drive frequency, and the response must be resonant
        # (amplitude far above the off-resonance drive * |Z|).
        assert freq == pytest.approx(TANK.frequency, rel=0.02)
        assert wave.y[-400:].max() > 0.05
