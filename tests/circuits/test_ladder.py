"""The RLC ladder helper and the distributed sensing coil.

The ladder is the repo's first netlist family that outgrows the dense
backend, so beyond structural checks the tests pin the physics that
makes it a valid stand-in for the paper's coil: the distributed model
must keep the lumped tank's resonance (to the high-Q approximation)
and its driven steady-state amplitude, while exposing enough unknowns
to exercise the sparse path.
"""

import numpy as np
import pytest

from repro.analysis import oscillation_frequency
from repro.circuits import Circuit, TransientOptions, dc, run_transient
from repro.envelope import RLCTank
from repro.errors import ConfigurationError, NetlistError
from repro.sensor import DistributedCoil

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)


class TestRlcLadderHelper:
    def test_structure_and_junctions(self):
        c = Circuit("ladder")
        c.voltage_source("v1", "in", "0", dc(1.0))
        junctions = c.rlc_ladder("x_", "in", "out", 4, 1e-7, 0.1, 1e-11)
        assert junctions[0] == "in" and junctions[-1] == "out"
        assert len(junctions) == 5
        # 4 inductors + 4 resistors + 3 internal shunt caps.
        assert "x_L4" in c and "x_R1" in c and "x_C3" in c
        assert "x_C4" not in c
        # nodes: in, out, 4 mids, 3 internal junctions (+ source br,
        # + 4 inductor branches).
        assert c.prepare() == 9 + 5

    def test_single_segment(self):
        c = Circuit("one")
        c.voltage_source("v1", "in", "0", dc(1.0))
        junctions = c.rlc_ladder("x_", "in", "out", 1, 1e-7, 0.1, 1e-11)
        assert junctions == ["in", "out"]

    def test_rejects_zero_segments(self):
        c = Circuit("bad")
        with pytest.raises(NetlistError, match="at least one segment"):
            c.rlc_ladder("x_", "a", "b", 0, 1e-7, 0.1, 1e-11)


class TestDistributedCoil:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=0)
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=10, parasitic_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DistributedCoil(TANK, n_segments=10).build_circuit(drive_current=0.0)

    def test_segment_values_conserve_totals(self):
        coil = DistributedCoil(TANK, n_segments=50)
        assert coil.segment_inductance * 50 == pytest.approx(TANK.inductance)
        assert coil.segment_resistance * 50 == pytest.approx(
            TANK.series_resistance
        )
        assert coil.junction_capacitance * 49 == pytest.approx(
            0.05 * TANK.capacitance
        )

    def test_unknown_count_matches_prepared_circuit(self):
        for n in (1, 10, 67):
            coil = DistributedCoil(TANK, n_segments=n)
            assert coil.build_circuit().prepare() == coil.unknown_count

    def test_crosses_sparse_threshold(self):
        from repro.circuits.backend import SPARSE_AUTO_THRESHOLD

        coil = DistributedCoil(TANK, n_segments=67)
        assert coil.unknown_count >= 200 >= SPARSE_AUTO_THRESHOLD

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_driven_resonance_matches_lumped_tank(self, backend):
        """The distributed coil must still *be* the paper's coil."""
        if backend == "sparse":
            pytest.importorskip("scipy")
        coil = DistributedCoil(TANK, n_segments=40)
        circuit = coil.build_circuit(drive_current=1e-3)
        cycles = 60
        result = run_transient(
            circuit,
            TransientOptions(
                t_stop=cycles / TANK.frequency,
                dt=1.0 / (TANK.frequency * 40),
                use_dc_operating_point=False,
                record_nodes=("lc1", "lc2"),
                backend=backend,
            ),
        )
        wave = result.waveform("lc1")
        t_stop = cycles / TANK.frequency
        freq = oscillation_frequency(wave.window(0.5 * t_stop, t_stop))
        # Driven at the lumped resonance; the distributed line answers
        # at the drive frequency, and the response must be resonant
        # (amplitude far above the off-resonance drive * |Z|).
        assert freq == pytest.approx(TANK.frequency, rel=0.02)
        assert wave.y[-400:].max() > 0.05


class TestCoilMesh:
    def test_netlist_structure(self):
        c = Circuit("mesh")
        grid = c.coil_mesh("m_", 3, 4, 1e-7, 0.1, 1e-12)
        assert len(grid) == 3 and all(len(row) == 4 for row in grid)
        assert grid[0][0] == "m_n0_0" and grid[2][3] == "m_n2_3"
        # E = nx*(ny-1) + ny*(nx-1) edges, one L + one R + one mid
        # junction each; one shunt cap per grid node.
        edges = 3 * 3 + 4 * 2
        assert "m_C2_3" in c and "m_Lh0_0" in c and "m_Rv1_2" in c
        # unknowns: nx*ny grid nodes + E mids + E inductor branches.
        assert c.prepare() == 3 * 4 + 2 * edges

    def test_rejects_degenerate_grids(self):
        c = Circuit("bad")
        with pytest.raises(NetlistError):
            c.coil_mesh("m_", 0, 4, 1e-7, 0.1, 1e-12)
        with pytest.raises(NetlistError):
            c.coil_mesh("m_", 1, 1, 1e-7, 0.1, 1e-12)

    def test_coilmesh_unknown_count_matches_prepared_circuit(self):
        from repro.sensor import CoilMesh

        for nx, ny in ((2, 2), (4, 3), (6, 6)):
            mesh = CoilMesh(TANK, nx=nx, ny=ny)
            assert mesh.build_circuit().prepare() == mesh.unknown_count

    def test_coilmesh_conserves_tank_totals(self):
        from repro.sensor import CoilMesh

        mesh = CoilMesh(TANK, nx=5, ny=7)
        e = mesh.n_edges
        assert mesh.segment_inductance * e == pytest.approx(TANK.inductance)
        assert mesh.segment_resistance * e == pytest.approx(
            TANK.series_resistance
        )
        assert mesh.node_capacitance * 35 == pytest.approx(
            0.05 * TANK.capacitance
        )

    def test_coilmesh_validation(self):
        from repro.sensor import CoilMesh

        with pytest.raises(ConfigurationError):
            CoilMesh(TANK, nx=1, ny=5)
        with pytest.raises(ConfigurationError):
            CoilMesh(TANK, nx=4, ny=4, parasitic_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CoilMesh(TANK, nx=4, ny=4).build_circuit(drive="square")

    def test_mesh_array_same_topology(self):
        from repro.sensor import CoilMesh, coil_mesh_array

        mesh = CoilMesh(TANK, nx=3, ny=3)
        circuits = coil_mesh_array(mesh, 3, spread=0.2)
        sizes = {c.prepare() for c in circuits}
        assert sizes == {mesh.unknown_count}
        with pytest.raises(ConfigurationError):
            coil_mesh_array(mesh, 0)
        with pytest.raises(ConfigurationError):
            coil_mesh_array(mesh, 2, spread=0.7)
