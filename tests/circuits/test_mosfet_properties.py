"""Property-based tests of the MOSFET model's physical invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, MosfetParams, solve_dc

NMOS = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.0, i_sat_body=1e-30)
NMOS_CLM = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.03, i_sat_body=1e-30)
PMOS = MosfetParams(polarity=-1, beta=2e-3, vt0=0.5, lam=0.0, i_sat_body=1e-30)


def channel_current(params, vg, vd, vs, vb=0.0):
    circuit = Circuit()
    circuit.voltage_source("Vg", "g", "0", vg)
    circuit.voltage_source("Vd", "d", "0", vd)
    circuit.voltage_source("Vs", "s", "0", vs)
    circuit.voltage_source("Vb", "b", "0", vb)
    device = circuit.mosfet("M1", "d", "g", "s", "b", params)
    op = solve_dc(circuit)
    return device.channel_current(op.x)


@settings(max_examples=40)
@given(
    vg=st.floats(0.0, 3.0),
    vd=st.floats(0.0, 3.0),
    vs=st.floats(0.0, 3.0),
)
def test_property_source_drain_antisymmetry(vg, vd, vs):
    """A symmetric device: swapping D and S negates the current."""
    forward = channel_current(NMOS, vg, vd, vs)
    reverse = channel_current(NMOS, vg, vs, vd)
    assert forward == pytest.approx(-reverse, abs=1e-12)


@settings(max_examples=40)
@given(
    vg=st.floats(0.0, 3.0),
    vd=st.floats(0.0, 3.0),
)
def test_property_nmos_pmos_mirror(vg, vd):
    """PMOS with negated terminal voltages mirrors the NMOS exactly
    (for lam = 0 both polarities share one square law)."""
    i_n = channel_current(NMOS, vg, vd, 0.0, 0.0)
    i_p = channel_current(PMOS, -vg, -vd, 0.0, 0.0)
    assert i_p == pytest.approx(-i_n, abs=1e-12)


@settings(max_examples=40)
@given(
    vg=st.floats(0.6, 3.0),
    vd1=st.floats(0.0, 3.0),
    vd2=st.floats(0.0, 3.0),
)
def test_property_monotonic_in_vds(vg, vd1, vd2):
    """With lam >= 0, channel current never decreases with vds."""
    lo, hi = sorted((vd1, vd2))
    i_lo = channel_current(NMOS_CLM, vg, lo, 0.0)
    i_hi = channel_current(NMOS_CLM, vg, hi, 0.0)
    assert i_hi >= i_lo - 1e-12


@settings(max_examples=40)
@given(
    vd=st.floats(0.5, 3.0),
    vg1=st.floats(0.0, 3.0),
    vg2=st.floats(0.0, 3.0),
)
def test_property_monotonic_in_vgs(vd, vg1, vg2):
    """Channel current never decreases with gate drive."""
    lo, hi = sorted((vg1, vg2))
    i_lo = channel_current(NMOS, lo, vd, 0.0)
    i_hi = channel_current(NMOS, hi, vd, 0.0)
    assert i_hi >= i_lo - 1e-12
