"""The pluggable linear-algebra backend layer.

Three claims are pinned here:

* the triplet stamp stream finalizes *bit-identically* to direct
  dense stamping (dense backend = pre-refactor results), and the CSR
  finalization agrees cell for cell;
* ``backend="sparse"`` reproduces ``backend="dense"`` at rtol 1e-9 on
  every solve-strategy family — linear, rank-1 Sherman–Morrison,
  small-k Woodbury, and general Newton — on fixed and adaptive grids,
  plus the DC and AC analyses and the batched lockstep engine;
* scipy-less environments degrade gracefully: "auto" falls back to
  dense silently, an explicit "sparse" raises a clear error.
"""

import numpy as np
import pytest

import repro.circuits.backend as backend_mod
from repro.circuits import (
    Circuit,
    DenseBackend,
    MNASystem,
    SparseBackend,
    StampContext,
    TransientOptions,
    dc,
    resolve_backend,
    run_ac,
    run_transient,
    run_transient_batched,
    sine,
    solve_dc,
)
from repro.circuits.backend import SPARSE_AUTO_THRESHOLD
from repro.circuits.component import TripletSystem
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.errors import SimulationError

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)


def _stamp_all(circuit, system, gmin=1e-12, dt=1e-8, method="trap"):
    ctx = StampContext(
        system=system, x=np.zeros(circuit.size), dt=dt, method=method, gmin=gmin
    )
    for component in circuit:
        if component.supports_stamp_split and not component.is_nonlinear():
            component.stamp_static(ctx)
    for i in range(circuit.n_nodes):
        system.add_G(i, i, gmin)


def _mixed_circuit():
    c = Circuit("mixed")
    c.voltage_source("vin", "in", "0", sine(1.0, 1e6, offset=2.0))
    c.resistor("r1", "in", "a", 100.0)
    c.capacitor("c1", "a", "0", 1e-9)
    c.inductor("l1", "a", "b", 1e-6)
    c.resistor("r2", "b", "0", 50.0)
    c.vccs("g1", "b", "0", "a", "0", 1e-4)
    c.prepare()
    return c


class TestStampStream:
    def test_dense_finalization_bit_identical_to_direct_stamping(self):
        circuit = _mixed_circuit()
        dense = MNASystem(circuit.size)
        _stamp_all(circuit, dense)
        tri = TripletSystem(circuit.size)
        _stamp_all(circuit, tri)
        G = tri.pattern().dense(tri.values())
        assert np.array_equal(G, dense.G)  # bitwise, not approx

    def test_csr_finalization_matches_dense_cell_for_cell(self):
        pytest.importorskip("scipy")
        circuit = _mixed_circuit()
        tri = TripletSystem(circuit.size)
        _stamp_all(circuit, tri)
        pattern = tri.pattern()
        G = pattern.dense(tri.values())
        csr = SparseBackend().finalize(pattern, tri.values())
        assert np.array_equal(csr.toarray(), G)

    def test_pattern_value_split_across_dt(self):
        """Same structure, different values: one pattern serves both."""
        circuit = _mixed_circuit()
        streams = {}
        for dt in (1e-8, 1e-9):
            tri = TripletSystem(circuit.size)
            _stamp_all(circuit, tri, dt=dt)
            streams[dt] = tri
        pattern = streams[1e-8].pattern()
        assert pattern.matches(streams[1e-9])
        for dt, tri in streams.items():
            dense = MNASystem(circuit.size)
            _stamp_all(circuit, dense, dt=dt)
            assert np.array_equal(pattern.dense(tri.values()), dense.G)

    def test_triplet_rhs_and_ground_skipping(self):
        tri = TripletSystem(3)
        tri.add_G(-1, 0, 5.0)
        tri.add_G(0, -1, 5.0)
        tri.stamp_current(0, -1, 2.0)
        tri.stamp_conductance(0, 1, 0.5)
        assert tri.rhs[0] == -2.0
        G = tri.pattern().dense(tri.values())
        expected = np.array([[0.5, -0.5, 0.0], [-0.5, 0.5, 0.0], [0, 0, 0]])
        assert np.array_equal(G, expected)


class TestResolveBackend:
    def test_auto_threshold(self):
        pytest.importorskip("scipy")
        assert resolve_backend("auto", SPARSE_AUTO_THRESHOLD - 1).is_dense
        assert not resolve_backend("auto", SPARSE_AUTO_THRESHOLD).is_dense

    def test_explicit_names_and_instances(self):
        dense = resolve_backend("dense", 10_000)
        assert dense.is_dense
        assert resolve_backend(dense, 10_000) is dense
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend("cholesky", 8)

    def test_options_validate_backend(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            TransientOptions(t_stop=1e-6, dt=1e-9, backend="blocked")


class TestNoScipyDegradation:
    """The optional-scipy contract, mirrored from linsolve."""

    def test_explicit_sparse_raises_clearly(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        with pytest.raises(SimulationError, match="requires scipy"):
            resolve_backend("sparse", 1000)

    def test_auto_falls_back_to_dense(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        assert resolve_backend("auto", 100_000).is_dense

    def test_run_transient_explicit_sparse_raises(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_SCIPY", False)
        circuit = _mixed_circuit()
        options = TransientOptions(t_stop=1e-7, dt=1e-9, backend="sparse")
        with pytest.raises(SimulationError, match="requires scipy"):
            run_transient(circuit, options)


def _linear_circuit():
    c = Circuit("linear")
    c.voltage_source("vin", "in", "0", sine(1.0, 4e6, offset=1.0))
    c.resistor("rs", "in", "a", 50.0)
    c.rlc_ladder("lad_", "a", "out", 6, 1e-7, 0.2, 2e-10)
    c.resistor("rl", "out", "0", 1e3)
    return c


def _rank1_circuit():
    return OscillatorNetlist(TANK, vref=2.5).build(LIMITER)


def _woodbury_circuit():
    c = Circuit("woodbury")
    c.current_source("ib", "vdd", "0", dc(1e-3))
    c.resistor("r1", "vdd", "a", 1e3)
    c.resistor("r2", "a", "0", 2e3)
    c.capacitor("c1", "a", "0", 1e-9)
    c.capacitor("c2", "b", "0", 2e-9)
    c.resistor("r3", "a", "b", 500.0)
    for j, gain in enumerate((1e-3, 2e-3, 1.5e-3)):
        c.nonlinear_vccs(
            f"gm{j}", "b", "0", "a", "0",
            func=(lambda g: lambda v: g * np.tanh(v))(gain),
        )
    return c


def _general_circuit():
    c = Circuit("general")
    c.voltage_source("vin", "in", "0", sine(2.0, 2e6, offset=1.5))
    c.resistor("r1", "in", "a", 200.0)
    c.capacitor("c1", "a", "0", 1e-9)
    c.diode("d1", "a", "b")
    c.resistor("r2", "b", "0", 1e3)
    c.capacitor("c2", "b", "0", 5e-10)
    return c


#: family -> (builder, use_dc_operating_point).  The oscillator must
#: start from the deterministic t=0 kick, not the DC equilibrium: at
#: the equilibrium the startup seed *is* solver rounding noise, and
#: exponential growth amplifies any backend's last-ulp differences
#: into macroscopic (but physically meaningless) divergence.
FAMILIES = {
    "linear": (_linear_circuit, True),
    "rank1": (_rank1_circuit, False),
    "woodbury": (_woodbury_circuit, True),
    "general": (_general_circuit, True),
}


def _options(backend, step_control, use_dc=True):
    return TransientOptions(
        t_stop=4e-6,
        dt=6.25e-9,
        backend=backend,
        step_control=step_control,
        use_dc_operating_point=use_dc,
    )


class TestSparseMatchesDense:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_transient_equivalence(self, family, step_control):
        pytest.importorskip("scipy")
        build, use_dc = FAMILIES[family]
        dense = run_transient(build(), _options("dense", step_control, use_dc))
        sparse = run_transient(build(), _options("sparse", step_control, use_dc))
        assert dense.stats["strategy"] == sparse.stats["strategy"]
        assert sparse.stats["backend"] == "sparse"
        assert np.array_equal(dense.t, sparse.t)
        scale = max(float(np.abs(dense.x).max()), 1e-12)
        np.testing.assert_allclose(
            sparse.x, dense.x, rtol=1e-9, atol=1e-9 * scale
        )

    def test_solve_dc_equivalence(self):
        pytest.importorskip("scipy")
        for build in (_woodbury_circuit, _general_circuit):
            dense = solve_dc(build(), backend="dense")
            sparse = solve_dc(build(), backend="sparse")
            np.testing.assert_allclose(
                sparse.x, dense.x, rtol=1e-9, atol=1e-12
            )

    def test_run_ac_equivalence(self):
        pytest.importorskip("scipy")
        freqs = np.linspace(3e6, 5e6, 21)
        dense = run_ac(_rank1_circuit(), freqs, backend="dense")
        sparse = run_ac(_rank1_circuit(), freqs, backend="sparse")
        np.testing.assert_allclose(
            sparse.x, dense.x, rtol=1e-9, atol=1e-9 * np.abs(dense.x).max()
        )

    @pytest.mark.parametrize("step_control", ["fixed", "adaptive"])
    def test_batched_block_diagonal_equivalence(self, step_control):
        pytest.importorskip("scipy")
        def build(scale):
            tank = RLCTank.from_frequency_and_q(4e6, 15.0 * scale, 1e-6)
            limiter = TanhLimiter(gm=6e-3 * scale, i_max=2e-3)
            return OscillatorNetlist(tank, vref=2.5).build(limiter)

        scales = [1.0, 1.02, 0.97, 1.05]
        options = _options("dense", step_control)
        options.use_dc_operating_point = False
        dense = run_transient_batched([build(s) for s in scales], options)
        options_s = _options("sparse", step_control)
        options_s.use_dc_operating_point = False
        sparse = run_transient_batched([build(s) for s in scales], options_s)
        for rd, rs in zip(dense, sparse):
            assert rs.stats["backend"] == "sparse"
            assert rd.stats["newton_iterations"] == rs.stats["newton_iterations"]
            scale = max(float(np.abs(rd.x).max()), 1e-12)
            np.testing.assert_allclose(
                rs.x, rd.x, rtol=1e-9, atol=1e-9 * scale
            )

    def test_chord_explicit_sparse_rejected_auto_falls_back(self):
        pytest.importorskip("scipy")
        options = _options("sparse", "fixed")
        options.jacobian = "chord"
        with pytest.raises(SimulationError, match="chord"):
            run_transient(_general_circuit(), options)
        # An explicitly constructed backend *instance* is just as
        # explicit as the string: it must not be silently replaced.
        options_inst = _options(SparseBackend(), "fixed")
        options_inst.jacobian = "chord"
        with pytest.raises(SimulationError, match="chord"):
            run_transient(_general_circuit(), options_inst)
        options_auto = _options("auto", "fixed")
        options_auto.jacobian = "chord"
        result = run_transient(_general_circuit(), options_auto)
        assert result.stats["backend"] == "dense"


class TestSparseSingularDegradation:
    def test_singular_system_falls_back_to_lstsq(self):
        pytest.importorskip("scipy")
        # A floating node (current source into a capacitor-only node
        # with gmin) is near-singular; an *exactly* singular CSR must
        # degrade to the least-squares answer instead of raising.
        from repro.circuits.backend import SparseLU
        from scipy import sparse

        matrix = sparse.csr_matrix(np.zeros((3, 3)))
        lu = SparseLU(matrix)
        assert lu.is_singular
        solution = lu.solve(np.array([1.0, 0.0, 0.0]))
        assert np.all(np.isfinite(solution))
