"""Tests for controlled sources."""

import numpy as np
import pytest

from repro.circuits import Circuit, solve_dc
from repro.errors import NetlistError


class TestVCCS:
    def test_transconductance(self):
        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 2.0)
        c.vccs("G1", "0", "out", "ctl", "0", gm=1e-3)
        c.resistor("RL", "out", "0", 1e3)
        op = solve_dc(c)
        # 2 mA from 0 into out across 1k -> +2 V.
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)

    def test_negative_resistance_connection(self):
        """Cross-connected VCCS realizes a negative conductance."""
        c = Circuit()
        c.current_source("I1", "0", "a", 1e-3)
        c.resistor("R1", "a", "0", 1e3)
        c.vccs("G1", "a", "0", "a", "0", gm=-0.5e-3)
        op = solve_dc(c)
        # Effective conductance 1m - 0.5m = 0.5 mS -> 2 V.
        assert op.voltage("a") == pytest.approx(2.0, rel=1e-6)


class TestVCVS:
    def test_gain(self):
        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 0.5)
        c.vcvs("E1", "out", "0", "ctl", "0", mu=10.0)
        c.resistor("RL", "out", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(5.0, rel=1e-9)

    def test_differential_output(self):
        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 1.0)
        c.vcvs("E1", "p", "n", "ctl", "0", mu=2.0)
        c.resistor("Rp", "p", "0", 1e3)
        c.resistor("Rn", "n", "0", 1e3)
        op = solve_dc(c)
        assert op.differential("p", "n") == pytest.approx(2.0, rel=1e-9)


class TestNonlinearVCCS:
    def test_limited_output(self):
        imax = 1e-3

        def f(v):
            return float(np.clip(5e-3 * v, -imax, imax))

        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 10.0)  # deep limiting
        c.nonlinear_vccs("G1", "0", "out", "ctl", "0", f)
        c.resistor("RL", "out", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-3)

    def test_linear_region(self):
        def f(v):
            return float(np.clip(5e-3 * v, -1, 1))

        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 0.1)
        c.nonlinear_vccs("G1", "0", "out", "ctl", "0", f)
        c.resistor("RL", "out", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(0.5, rel=1e-3)

    def test_analytic_derivative_used(self):
        calls = {"d": 0}

        def f(v):
            return 1e-3 * np.tanh(v)

        def df(v):
            calls["d"] += 1
            return 1e-3 / np.cosh(v) ** 2

        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 0.3)
        c.nonlinear_vccs("G1", "0", "out", "ctl", "0", f, dfunc=df)
        c.resistor("RL", "out", "0", 1e3)
        solve_dc(c)
        assert calls["d"] > 0

    def test_output_current_helper(self):
        def f(v):
            return 2e-3 * v

        c = Circuit()
        c.voltage_source("Vc", "ctl", "0", 1.0)
        g = c.nonlinear_vccs("G1", "0", "out", "ctl", "0", f)
        c.resistor("RL", "out", "0", 1e3)
        op = solve_dc(c)
        assert g.output_current(op.x) == pytest.approx(2e-3, rel=1e-6)

    def test_requires_callable(self):
        with pytest.raises(NetlistError):
            Circuit().nonlinear_vccs("G1", "a", "b", "c", "d", 42)
