"""Tests for small-signal AC analysis."""

import numpy as np
import pytest

from repro.circuits import Circuit, run_ac
from repro.errors import AnalysisError


class TestRCFilter:
    def test_pole_frequency(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9)
        f_pole = 1 / (2 * np.pi * 1e3 * 1e-9)
        res = run_ac(c, [f_pole])
        assert abs(res.response("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-6)

    def test_rolloff_20db_per_decade(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9)
        f_pole = 1 / (2 * np.pi * 1e3 * 1e-9)
        res = run_ac(c, [f_pole * 100, f_pole * 1000])
        m = res.magnitude("out")
        assert m[0] / m[1] == pytest.approx(10.0, rel=1e-2)


class TestRLCResonance:
    def make_tank(self, l=100e-6, cap=1e-9, rs=10.0):
        c = Circuit()
        c.current_source("I1", "0", "t", 0.0, ac_magnitude=1e-3)
        c.inductor("L1", "t", "m", l)
        c.resistor("Rs", "m", "0", rs)
        c.capacitor("C1", "t", "0", cap)
        return c

    def test_resonance_frequency(self):
        c = self.make_tank()
        f0 = 1 / (2 * np.pi * np.sqrt(100e-6 * 1e-9))
        res = run_ac(c, np.linspace(0.7 * f0, 1.3 * f0, 1201))
        assert res.resonance_frequency("t") == pytest.approx(f0, rel=2e-3)

    def test_quality_factor(self):
        c = self.make_tank()
        f0 = 1 / (2 * np.pi * np.sqrt(100e-6 * 1e-9))
        q_expected = np.sqrt(100e-6 / 1e-9) / 10.0  # Z0 / Rs ≈ 31.6
        res = run_ac(c, np.linspace(0.7 * f0, 1.3 * f0, 2401))
        assert res.quality_factor("t") == pytest.approx(q_expected, rel=0.02)

    def test_peak_impedance_is_rp(self):
        c = self.make_tank()
        f0 = 1 / (2 * np.pi * np.sqrt(100e-6 * 1e-9))
        res = run_ac(c, np.linspace(0.9 * f0, 1.1 * f0, 2401))
        rp = 100e-6 / (1e-9 * 10.0)  # L/(C*Rs)
        peak_v = res.magnitude("t").max()
        assert peak_v / 1e-3 == pytest.approx(rp, rel=0.02)


class TestValidation:
    def test_empty_frequencies(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 0.0, ac_magnitude=1.0)
        c.resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalysisError):
            run_ac(c, [])

    def test_negative_frequency(self):
        c = Circuit()
        c.voltage_source("V1", "a", "0", 0.0, ac_magnitude=1.0)
        c.resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalysisError):
            run_ac(c, [-1.0])

    def test_nonlinear_linearized_at_op(self):
        """A diode biased forward shows its small-signal conductance."""
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0, ac_magnitude=1.0)
        c.resistor("R1", "in", "a", 1e3)
        c.diode("D1", "a", "0")
        res = run_ac(c, [1e3])
        # rd = nVt/Id ≈ 0.02585/4.3mA ≈ 6 ohm << 1k: output tiny.
        assert abs(res.response("a")[0]) < 0.05
