"""Unit tests for the shared dense-solver utilities."""

import numpy as np
import pytest

from repro.circuits.linsolve import ReusableLU, damp_voltage_delta, solve_dense


class TestSolveDense:
    def test_regular_system(self):
        G = np.array([[2.0, 1.0], [1.0, 3.0]])
        rhs = np.array([3.0, 4.0])
        np.testing.assert_allclose(G @ solve_dense(G, rhs), rhs)

    def test_singular_falls_back_to_lstsq(self):
        G = np.array([[1.0, 1.0], [1.0, 1.0]])
        rhs = np.array([2.0, 2.0])
        x = solve_dense(G, rhs)
        assert np.all(np.isfinite(x))
        np.testing.assert_allclose(G @ x, rhs)


class TestDampVoltageDelta:
    def test_no_damping_below_limit(self):
        delta = np.array([0.1, -0.2, 5.0])  # third entry is a branch current
        damped, max_v = damp_voltage_delta(delta, n_nodes=2, max_step=0.5)
        np.testing.assert_array_equal(damped, delta)
        assert max_v == 0.2

    def test_branch_currents_do_not_trigger_damping(self):
        """The historical transient bug: clamping on branch currents."""
        delta = np.array([0.1, 100.0])
        damped, max_v = damp_voltage_delta(delta, n_nodes=1, max_step=0.5)
        np.testing.assert_array_equal(damped, delta)
        assert max_v == 0.1

    def test_uniform_scaling_when_voltage_exceeds(self):
        delta = np.array([2.0, -1.0, 8.0])
        damped, max_v = damp_voltage_delta(delta, n_nodes=2, max_step=0.5)
        assert max_v == 0.5
        np.testing.assert_allclose(damped, delta * 0.25)

    def test_empty_voltage_block(self):
        delta = np.array([3.0])
        damped, max_v = damp_voltage_delta(delta, n_nodes=0, max_step=0.5)
        np.testing.assert_array_equal(damped, delta)
        assert max_v == 0.0


class TestReusableLU:
    def test_solves_match_dense(self):
        rng = np.random.default_rng(7)
        G = rng.normal(size=(6, 6)) + 6.0 * np.eye(6)
        lu = ReusableLU(G)
        for _ in range(3):
            rhs = rng.normal(size=6)
            np.testing.assert_allclose(
                lu.solve(rhs), np.linalg.solve(G, rhs), rtol=1e-12, atol=1e-14
            )

    def test_large_system_path(self):
        rng = np.random.default_rng(11)
        n = 80  # above the explicit-inverse cutoff
        G = rng.normal(size=(n, n)) + n * np.eye(n)
        rhs = rng.normal(size=n)
        lu = ReusableLU(G)
        np.testing.assert_allclose(
            lu.solve(rhs), np.linalg.solve(G, rhs), rtol=1e-10, atol=1e-12
        )

    def test_refactor_counts(self):
        G = np.eye(3)
        lu = ReusableLU(G)
        assert lu.n_factorizations == 1
        lu.factor(2.0 * G)
        assert lu.n_factorizations == 2
        np.testing.assert_allclose(lu.solve(np.ones(3)), 0.5 * np.ones(3))

    def test_singular_matrix_degrades_gracefully(self):
        G = np.array([[1.0, 1.0], [1.0, 1.0]])
        lu = ReusableLU(G)
        x = lu.solve(np.array([2.0, 2.0]))
        assert np.all(np.isfinite(x))
        np.testing.assert_allclose(G @ x, [2.0, 2.0])

    def test_solve_before_factor_raises(self):
        with pytest.raises(ValueError):
            ReusableLU().solve(np.ones(2))

    def test_captures_matrix_by_value(self):
        G = np.eye(2)
        lu = ReusableLU(G)
        G[0, 0] = 100.0  # later mutation must not affect the cache
        np.testing.assert_allclose(lu.solve(np.array([1.0, 1.0])), [1.0, 1.0])
