"""Tests for the cycle-skipping envelope transient engine (Fig 16).

The paper's envelope claim: the startup envelope of the driven LC
oscillator is reproduced by resolving only a small number of carrier
cycles and advancing the rest with the describing-function amplitude
ODE.  These tests pin the engine against the carrier-resolved golden
run, the ``skip="off"`` bit-identity contract, the re-anchor
shrink-on-mismatch control loop, and warm-start accept/reject.
"""

import numpy as np
import pytest

from repro.circuits import (
    EnvelopeOptions,
    TransientOptions,
    run_transient,
    run_transient_envelope,
)
from repro.core import OscillatorNetlist
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter
from repro.errors import SimulationError

F = 4e6
T = 1.0 / F


def _tank():
    return RLCTank.from_frequency_and_q(F, 15.0, 1e-6)


def _limiter(i_max=2e-3):
    return TanhLimiter(gm=6e-3, i_max=i_max)


def _circuit(i_max=2e-3):
    return OscillatorNetlist(_tank(), vref=2.5).build(_limiter(i_max))


def _model(i_max=2e-3):
    return EnvelopeModel(_tank(), _limiter(i_max))


def _options(cycles):
    return TransientOptions(
        t_stop=cycles * T,
        dt=T / 40,
        method="trap",
        use_dc_operating_point=False,
        record_nodes=("lc1", "lc2"),
    )


def _envelope(**kw):
    kw.setdefault("model", _model())
    return EnvelopeOptions(period=T, nodes=("lc1", "lc2"), **kw)


def _settled_amplitude(result, t_stop):
    window = result.differential("lc1", "lc2").window(t_stop - 2 * T, t_stop)
    return 0.5 * window.peak_to_peak()


class TestFig16Equivalence:
    def test_envelope_matches_carrier_within_1pct_at_10x(self):
        options = _options(400)
        gold = run_transient(_circuit(), options)
        env = run_transient_envelope(_circuit(), options, _envelope())
        e = env.stats["envelope"]
        # >= 10x fewer resolved cycles than the carrier-resolved run.
        assert e["resolved_cycles"] * 10 <= e["total_cycles"]
        a_gold = _settled_amplitude(gold, options.t_stop)
        a_env = e["final"]["amplitude"]
        assert abs(a_env - a_gold) / a_gold <= 0.01
        # Provenance covers every record and the segments tile the run.
        assert len(e["provenance"]) == len(env.t)
        assert set(e["provenance"]) == {"resolved", "skipped"}
        kinds = {seg["kind"] for seg in e["segments"]}
        assert kinds == {"resolved", "skipped"}
        assert e["resolved_cycles"] + e["skipped_cycles"] == pytest.approx(
            e["total_cycles"]
        )

    def test_skipped_landings_track_gold_envelope(self):
        options = _options(400)
        gold = run_transient(_circuit(), options)
        env = run_transient_envelope(_circuit(), options, _envelope())
        gold_env = np.abs(gold.differential("lc1", "lc2").y)
        e = env.stats["envelope"]
        # Every skip-landing sample stays inside the gold envelope
        # (plus the skip tolerance): the predictor never runs away.
        d = env.differential("lc1", "lc2")
        for t_i, x_i, src in zip(env.t, d.y, e["provenance"]):
            if src != "skipped":
                continue
            k = int(np.searchsorted(gold.t, t_i))
            lo, hi = max(0, k - 80), min(len(gold_env), k + 80)
            assert abs(x_i) <= gold_env[lo:hi].max() * 1.10


class TestSkipOffBitIdentity:
    def test_skip_off_matches_plain_engine_bitwise(self):
        options = _options(60)
        ref = run_transient(_circuit(), options)
        off = run_transient_envelope(_circuit(), options, _envelope(skip="off"))
        np.testing.assert_array_equal(off.t, ref.t)
        np.testing.assert_allclose(off.x, ref.x, rtol=0, atol=0)
        e = off.stats["envelope"]
        assert e["skip"] == "off"
        assert all(p == "resolved" for p in e["provenance"])
        assert len(e["segments"]) == 1


class TestReAnchorControl:
    def test_wrong_predictor_shrinks_skip(self):
        # A deliberately wrong describing function (2x the limiter
        # current) predicts a settled amplitude ~2x too high: every
        # correction burst must flag the mismatch and shrink the skip
        # length instead of letting it grow.
        options = _options(200)
        wrong = EnvelopeModel(_tank(), _limiter(i_max=4e-3))
        env = run_transient_envelope(
            _circuit(), options, _envelope(model=wrong)
        )
        e = env.stats["envelope"]
        history = e["skip_history"]
        assert history, "no skips were attempted"
        mismatched = [h for h in history if h["mismatch"] > 0.02]
        assert mismatched, "wrong predictor never flagged a mismatch"
        # Shrink events follow mismatches; the skip ladder cannot grow
        # past the initial length while the predictor keeps failing.
        assert any(
            later["skip"] < earlier["skip"]
            for earlier, later in zip(history, history[1:])
        )
        settled = [h for h in history if h["mismatch"] > 0.02]
        assert min(h["skip"] for h in settled) <= 8

    def test_exact_predictor_grows_skip(self):
        options = _options(400)
        env = run_transient_envelope(_circuit(), options, _envelope())
        history = env.stats["envelope"]["skip_history"]
        assert max(h["skip"] for h in history) > 8


class TestWarmStart:
    def test_warm_start_accepted_saves_resolved_cycles(self):
        options = _options(200)
        cold = run_transient_envelope(_circuit(), options, _envelope())
        final = dict(cold.stats["envelope"]["final"])
        warm = run_transient_envelope(
            _circuit(), options, _envelope(warm_start=final)
        )
        ew = warm.stats["envelope"]
        assert ew["warm_start"] == "accepted"
        assert (
            ew["resolved_cycles"] < cold.stats["envelope"]["resolved_cycles"]
        )
        a_cold = cold.stats["envelope"]["final"]["amplitude"]
        assert ew["final"]["amplitude"] == pytest.approx(a_cold, rel=0.01)

    def test_bad_warm_start_rejected_cold_fallback(self):
        # A warm skip with no amplitude regime attached is tried
        # immediately — mid-startup, where a settled-regime skip
        # length cannot hold.  The correction burst must reject it and
        # fall back to the cold schedule without losing accuracy.
        options = _options(200)
        gold = run_transient(_circuit(), options)
        warm = run_transient_envelope(
            _circuit(), options, _envelope(warm_start={"skip": 256})
        )
        e = warm.stats["envelope"]
        assert e["warm_start"] == "rejected"
        a_gold = _settled_amplitude(gold, options.t_stop)
        assert abs(e["final"]["amplitude"] - a_gold) / a_gold <= 0.015

    def test_malformed_warm_start_raises(self):
        options = _options(60)
        with pytest.raises(SimulationError):
            run_transient_envelope(
                _circuit(), options, _envelope(warm_start={"skip": "many"})
            )


class TestValidation:
    def test_requires_fixed_grid(self):
        options = _options(60)
        options.step_control = "adaptive"
        with pytest.raises(SimulationError):
            run_transient_envelope(_circuit(), options, _envelope())

    def test_period_must_be_integer_cycles(self):
        options = _options(60)
        options.dt = T / 39.5
        with pytest.raises(SimulationError):
            run_transient_envelope(_circuit(), options, _envelope())
