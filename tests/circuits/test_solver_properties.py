"""Property-based tests of the MNA solver on random passive networks.

Physics gives us strong invariants that hold for *any* resistive
network: the maximum principle (node voltages bounded by the source),
superposition, reciprocity, and passivity (the source never absorbs
power from a passive network).  Hypothesis generates the networks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, solve_dc

# A ladder is encoded by alternating series/shunt resistances.
resistances = st.lists(
    st.floats(10.0, 1e5), min_size=2, max_size=8
)


def build_ladder(values, v_in=5.0):
    """R-ladder: series elements with shunts to ground at each node."""
    circuit = Circuit("ladder")
    circuit.voltage_source("Vs", "n0", "0", v_in)
    previous = "n0"
    for i, value in enumerate(values):
        node = f"n{i + 1}"
        circuit.resistor(f"Rs{i}", previous, node, value)
        circuit.resistor(f"Rp{i}", node, "0", value * 2.0)
        previous = node
    return circuit, [f"n{i + 1}" for i in range(len(values))]


@settings(max_examples=40)
@given(values=resistances)
def test_maximum_principle(values):
    """All node voltages of a resistive divider network lie inside
    [0, V_source]."""
    circuit, nodes = build_ladder(values)
    op = solve_dc(circuit)
    for node in nodes:
        v = op.voltage(node)
        assert -1e-9 <= v <= 5.0 + 1e-9


@settings(max_examples=40)
@given(values=resistances)
def test_voltages_decrease_along_ladder(values):
    """With shunts everywhere, voltage falls monotonically."""
    circuit, nodes = build_ladder(values)
    op = solve_dc(circuit)
    voltages = [5.0] + [op.voltage(n) for n in nodes]
    assert all(a >= b - 1e-9 for a, b in zip(voltages, voltages[1:]))


@settings(max_examples=40)
@given(values=resistances)
def test_passivity(values):
    """The source delivers power into a passive network (its branch
    current is negative in SPICE convention)."""
    circuit, _nodes = build_ladder(values)
    op = solve_dc(circuit)
    assert op.branch_current("Vs") < 1e-12


@settings(max_examples=25)
@given(values=resistances, scale=st.floats(0.1, 10.0))
def test_linearity(values, scale):
    """Scaling the source scales every node voltage (superposition)."""
    circuit, nodes = build_ladder(values, v_in=5.0)
    op1 = solve_dc(circuit)
    circuit2, nodes2 = build_ladder(values, v_in=5.0 * scale)
    op2 = solve_dc(circuit2)
    for n in nodes:
        assert op2.voltage(n) == pytest.approx(scale * op1.voltage(n), rel=1e-6)


@settings(max_examples=25)
@given(
    r12=st.floats(100.0, 1e4),
    r1=st.floats(100.0, 1e4),
    r2=st.floats(100.0, 1e4),
)
def test_reciprocity(r12, r1, r2):
    """Transfer resistance is symmetric: V2/I1 == V1/I2 for a passive
    two-port."""

    def transfer(inject_at, measure_at):
        circuit = Circuit("twoport")
        circuit.resistor("R12", "a", "b", r12)
        circuit.resistor("R1", "a", "0", r1)
        circuit.resistor("R2", "b", "0", r2)
        circuit.current_source("I", "0", inject_at, 1e-3)
        op = solve_dc(circuit)
        return op.voltage(measure_at)

    assert transfer("a", "b") == pytest.approx(transfer("b", "a"), rel=1e-9)
