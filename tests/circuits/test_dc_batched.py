"""Stacked-Newton batched DC solve vs the per-sample reference.

The contract under test: ``solve_dc_batched(circuits)[s]`` matches
``solve_dc(circuits[s])`` — solution vectors at rtol 1e-9 (the
implementation is in fact bit-exact, which the sharded campaign layer
relies on for bit-identical shard merges) *and* per-sample Newton
iteration counts, including ragged batches where samples converge at
different iterations and the active-set Newton keeps stepping only
the stragglers.
"""

import numpy as np
import pytest

from repro.circuits import (
    BatchedOperatingPoints,
    Circuit,
    NewtonOptions,
    dc,
    solve_dc,
    solve_dc_batched,
)
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.envelope.describing import tanh_limiter_pair
from repro.errors import ConvergenceError


def build_linear(r):
    circuit = Circuit("lin")
    circuit.voltage_source("V", "in", "0", dc(2.5))
    circuit.resistor("R1", "in", "a", r)
    circuit.resistor("R2", "a", "0", 1e3)
    circuit.current_source("I", "a", "0", 1e-4)
    return circuit


def build_oscillator(gm_scale):
    tank = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def build_tanh_vccs(gm, vectorized=True):
    """One tanh VCCS; gm spans decades so Newton counts go ragged."""
    circuit = Circuit("k1")
    circuit.voltage_source("V", "in", "0", dc(0.4))
    circuit.resistor("R", "in", "a", 100.0)
    circuit.resistor("RL", "a", "0", 1e3)
    circuit.resistor("Ro", "o", "0", 500.0)
    circuit.nonlinear_vccs(
        "G",
        "o",
        "0",
        "a",
        "0",
        lambda v, g=gm: 1e-3 * np.tanh(g * v / 1e-3),
        vector_pair=tanh_limiter_pair if vectorized else None,
        vector_params=(gm, 1e-3) if vectorized else (),
    )
    return circuit


def build_diode(i_sat):
    """Diode: not a NonlinearVCCS, so the lockstep gate rejects the
    batch and the wholesale per-sample fallback must carry it."""
    circuit = Circuit("d")
    circuit.voltage_source("V", "in", "0", dc(2.0))
    circuit.resistor("R", "in", "a", 1e3)
    circuit.diode("D", "a", "0", i_sat=i_sat)
    return circuit


def assert_dc_equivalent(builders, options=None):
    per_sample = [solve_dc(build(), options=options) for build in builders]
    batched = solve_dc_batched(
        [build() for build in builders], options=options
    )
    assert isinstance(batched, BatchedOperatingPoints)
    assert len(batched) == len(per_sample)
    for s, reference in enumerate(per_sample):
        np.testing.assert_allclose(
            batched.x[s], reference.x, rtol=1e-9, atol=1e-15
        )
        assert int(batched.iterations[s]) == reference.iterations
    return per_sample, batched


class TestEquivalence:
    def test_linear_single_solve(self):
        per, bat = assert_dc_equivalent(
            [lambda r=r: build_linear(r) for r in (100.0, 470.0, 2.2e3)]
        )
        assert bat.iterations.tolist() == [1, 1, 1]

    def test_nonlinear_vectorized(self):
        assert_dc_equivalent(
            [lambda g=g: build_oscillator(g) for g in (0.8, 1.0, 1.2, 1.5)]
        )

    def test_nonlinear_scalar_linearize(self):
        """No vector_pair: the stacked Newton loops devices scalar-wise
        but still matches per-sample exactly."""
        assert_dc_equivalent(
            [
                lambda g=g: build_tanh_vccs(g, vectorized=False)
                for g in (1e-3, 5e-3, 2e-2)
            ]
        )

    def test_ragged_iteration_counts(self):
        """Samples converging at different Newton iterations: the
        active-set solve reports each sample's own count."""
        gms = (1e-4, 2e-3, 2e-2, 0.5)
        per, bat = assert_dc_equivalent(
            [lambda g=g: build_tanh_vccs(g) for g in gms]
        )
        counts = bat.iterations.tolist()
        assert len(set(counts)) > 1  # genuinely ragged
        assert counts == [op.iterations for op in per]

    def test_batch_composition_invariance(self):
        """A sample's solution is bit-identical no matter which batch
        it is solved in — the property shard-merge bit-identity rests
        on (each sample's Newton path, damping and per-block solve are
        independent of its batch-mates)."""
        gms = (1e-4, 2e-3, 2e-2, 0.5)
        whole = solve_dc_batched([build_tanh_vccs(g) for g in gms])
        front = solve_dc_batched([build_tanh_vccs(g) for g in gms[:2]])
        back = solve_dc_batched([build_tanh_vccs(g) for g in gms[2:]])
        np.testing.assert_array_equal(whole.x[:2], front.x)
        np.testing.assert_array_equal(whole.x[2:], back.x)
        assert whole.iterations.tolist() == (
            front.iterations.tolist() + back.iterations.tolist()
        )

    def test_per_sample_fallback_for_unsupported_devices(self):
        """Diodes cannot lockstep; the wholesale fallback still returns
        a BatchedOperatingPoints matching per-sample solves."""
        assert_dc_equivalent(
            [lambda i=i: build_diode(i) for i in (1e-14, 1e-12)]
        )


class TestApi:
    def test_op_accessor_returns_operating_points(self):
        circuits = [build_linear(r) for r in (100.0, 220.0)]
        batched = solve_dc_batched(circuits)
        op = batched.op(1)
        assert op.circuit is batched.circuits[1]
        assert op.iterations == int(batched.iterations[1])
        reference = solve_dc(build_linear(220.0))
        assert op.voltage("a") == pytest.approx(reference.voltage("a"))

    def test_unconverged_sample_reruns_and_raises_like_per_sample(self):
        """A sample the stacked Newton cannot converge re-runs through
        the scalar path from the original seed — and propagates the
        same ConvergenceError the per-sample solve would raise."""
        options = NewtonOptions(max_iterations=2)
        with pytest.raises(ConvergenceError):
            solve_dc(build_tanh_vccs(0.5), options=options)
        with pytest.raises(ConvergenceError):
            solve_dc_batched(
                [build_tanh_vccs(g) for g in (1e-4, 0.5)], options=options
            )
