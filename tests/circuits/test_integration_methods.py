"""The pluggable integration-method layer.

Three tiers of coverage:

* the method objects themselves — coefficient tables, startup policy,
  polynomial exactness of the variable-step BDF weights (the
  fixed-leading-coefficient + Lagrange-interpolation construction must
  be exact on polynomials of the formula's degree, uniform grid or
  not);
* engine integration — BDF2/Gear fixed-grid runs against analytic
  solutions and against the reference engine on fine uniform grids,
  order ramping, solver-strategy parity (the rank-1/Woodbury/sparse
  fast paths must reproduce full Newton under a multistep method);
* guard rails — the reference engine and generic-state components
  refuse multistep methods loudly.
"""

import numpy as np
import pytest

from repro.circuits import (
    BDF2,
    BackwardEuler,
    Capacitor,
    Circuit,
    Gear,
    TransientOptions,
    Trapezoidal,
    pulse,
    resolve_method,
    run_transient,
    run_transient_reference,
    sine,
)
from repro.envelope import RLCTank, TanhLimiter
from repro.core import OscillatorNetlist
from repro.errors import SimulationError


class TestResolveAndTables:
    def test_known_names(self):
        assert resolve_method("trap").name == "trap"
        assert resolve_method("be").name == "be"
        assert resolve_method("bdf2").name == "bdf2"
        gear = resolve_method("gear")
        assert gear.name == "gear" and gear.max_order == 2
        assert resolve_method("gear", max_order=3).max_order == 3

    def test_instances_pass_through(self):
        m = Gear(max_order=3)
        assert resolve_method(m) is m

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError):
            resolve_method("rk4")

    def test_gear_max_order_bounds(self):
        with pytest.raises(SimulationError):
            Gear(max_order=4)
        with pytest.raises(SimulationError):
            Gear(max_order=0)

    def test_one_step_coefficients(self):
        trap = Trapezoidal()
        co = trap.base_coeffs(2)
        assert (co.lead, co.wv0, co.wd0) == (2.0, -1.0, -1.0)
        assert co.one_step
        assert trap.lte_order(2) == 2
        assert not trap.is_multistep
        be = BackwardEuler()
        co = be.base_coeffs(1)
        assert (co.lead, co.wv0, co.wd0) == (1.0, -1.0, 0.0)
        assert be.lte_order(1) == 1

    def test_gear_uniform_weights_match_classic_bdf(self):
        gear = Gear(max_order=3)
        dt = 1e-6
        # Exactly uniform history: interpolation nodes coincide with
        # the uniform offsets, so the classic tables fall out.
        times = (3 * dt, 2 * dt, 1 * dt, 0.0)
        wv, wd = gear.step_weights(dt, 2, times)
        np.testing.assert_allclose(wv[:2], [-2.0 / 1.5, 0.5 / 1.5])
        np.testing.assert_allclose(wv[2:], 0.0, atol=1e-12)
        assert not any(wd)
        wv, wd = gear.step_weights(dt, 3, times)
        lead = 11.0 / 6.0
        np.testing.assert_allclose(
            wv[:3], [-3.0 / lead, 1.5 / lead, (-1.0 / 3.0) / lead]
        )
        np.testing.assert_allclose(wv[3:], 0.0, atol=1e-12)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_weights_exact_on_polynomials_nonuniform(self, order):
        """The composite formula differentiates polynomials of the
        method's order exactly, on an arbitrary non-uniform history."""
        gear = Gear(max_order=3)
        rng = np.random.default_rng(42 + order)
        t0 = 1.0e-5
        gaps = rng.uniform(0.3e-6, 1.7e-6, size=3)
        times = (t0, t0 - gaps[0], t0 - gaps[0] - gaps[1],
                 t0 - gaps.sum())[: order + 1]
        dt = 0.9e-6
        t_new = t0 + dt
        wv, wd = gear.step_weights(dt, order, times)
        lead = {1: 1.0, 2: 1.5, 3: 11.0 / 6.0}[order]
        for degree in range(order + 1):
            p = np.polynomial.Polynomial(rng.uniform(-1, 1, degree + 1))
            dp = p.deriv()
            approx = (lead / dt) * (
                p(t_new) + sum(w * p(t) for w, t in zip(wv, times))
            )
            scale = max(abs(dp(t_new)), 1.0)
            assert abs(approx - dp(t_new)) < 1e-6 * scale, (
                f"order {order}, degree {degree}"
            )

    def test_startup_policy(self):
        gear = Gear(max_order=3)
        assert gear.usable_order(3, 1) == 1
        assert gear.usable_order(3, 2) == 2
        assert gear.usable_order(3, 3) == 3
        assert gear.usable_order(3, 10) == 3
        assert gear.usable_order(2, 10) == 2
        # Fixed-order methods never ramp.
        assert Trapezoidal().usable_order(2, 1) == 2
        assert BackwardEuler().usable_order(1, 100) == 1
        # BDF2 targets order 2 but still ramps through startup.
        bdf2 = BDF2()
        assert bdf2.usable_order(2, 1) == 1
        assert bdf2.usable_order(5, 10) == 2

    def test_history_depth(self):
        gear = Gear(max_order=3)
        assert gear.history_depth(1) == 1
        assert gear.history_depth(2) == 3
        assert gear.history_depth(3) == 4
        assert Trapezoidal().history_depth(2) == 1
        assert gear.is_multistep and BDF2().is_multistep
        assert not BackwardEuler().is_multistep

    def test_error_constants(self):
        assert Trapezoidal().error_constant(2) == pytest.approx(-1.0 / 12.0)
        assert BackwardEuler().error_constant(1) == pytest.approx(0.5)
        assert Gear(3).error_constant(2) == pytest.approx(-2.0 / 9.0)
        assert Gear(3).error_constant(3) == pytest.approx(-3.0 / 22.0)


class TestOptionsValidation:
    def test_method_names(self):
        TransientOptions(t_stop=1e-3, dt=1e-6, method="bdf2")
        TransientOptions(t_stop=1e-3, dt=1e-6, method="gear", max_order=3)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, method="rk4")

    def test_max_order_requires_gear(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, method="trap", max_order=3)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, method="gear", max_order=7)

    def test_method_instance_accepted(self):
        o = TransientOptions(t_stop=1e-3, dt=1e-6, method=Gear(max_order=3))
        assert o.resolved_method().max_order == 3


def _rc_step_circuit():
    c = Circuit()
    c.voltage_source("V1", "in", "0", lambda t: 1.0)
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-7, ic=0.0)
    return c


def _rlc_decay_circuit():
    """Series RLC ringing down hard from an initial capacitor voltage.

    Strongly damped (alpha ~ 0.9 w0): the envelope dies within a few
    carrier periods — the stiff-decay regime the BDF members exist
    for.  Analytic solution of v_C for the underdamped series RLC
    with v_C(0) = V0, i_L(0) = 0.
    """
    c = Circuit()
    c.resistor("R1", "a", "b", 1800.0)
    c.inductor("L1", "b", "c", 1e-3, ic=0.0)
    c.capacitor("C1", "c", "0", 1e-9, ic=1.0)
    c.resistor("Rg", "a", "0", 1e-3)  # ties the loop to ground
    return c


def _rlc_decay_analytic(t):
    R, L, C, V0 = 1800.0 + 1e-3, 1e-3, 1e-9, 1.0
    alpha = R / (2 * L)
    w0 = 1.0 / np.sqrt(L * C)
    wd = np.sqrt(w0 ** 2 - alpha ** 2)
    return V0 * np.exp(-alpha * t) * (
        np.cos(wd * t) + (alpha / wd) * np.sin(wd * t)
    )


class TestFixedGridAccuracy:
    def test_bdf2_second_order_convergence(self):
        errs = []
        for dt in (2e-6, 1e-6, 5e-7):
            o = TransientOptions(
                t_stop=2e-4, dt=dt, method="bdf2", use_dc_operating_point=False
            )
            r = run_transient(_rc_step_circuit(), o)
            exact = 1.0 - np.exp(-r.t / 1e-4)
            errs.append(np.abs(r.waveform("out").y - exact).max())
        # Halving dt should cut the error ~4x (allow startup slack).
        assert errs[0] / errs[1] > 3.0
        assert errs[1] / errs[2] > 3.0

    def test_gear3_third_order_convergence(self):
        # Sine-driven RC with a known closed form; errors measured
        # past 5 time constants so the (low-order) startup-ramp error
        # has decayed and the formula's own order shows.
        w = 2 * np.pi * 2e4
        tau = 1e-4

        def analytic(t):
            D = 1 + (w * tau) ** 2
            A, B = 1 / D, -w * tau / D
            return A * np.sin(w * t) + B * np.cos(w * t) - B * np.exp(-t / tau)

        def late_error(method, dt, **kw):
            c = Circuit()
            c.voltage_source("V1", "in", "0", sine(1.0, 2e4))
            c.resistor("R1", "in", "out", 1e3)
            c.capacitor("C1", "out", "0", 1e-7, ic=0.0)
            o = TransientOptions(
                t_stop=6e-4, dt=dt, method=method,
                use_dc_operating_point=False, **kw
            )
            r = run_transient(c, o)
            late = r.t > 5e-4
            return np.abs(r.waveform("out").y - analytic(r.t))[late].max()

        errs = [late_error("gear", dt, max_order=3) for dt in (2e-6, 1e-6, 5e-7)]
        # Third order: halving dt cuts the error ~8x.
        assert errs[0] / errs[1] > 6.0
        assert errs[1] / errs[2] > 6.0
        # ... and sits well below BDF2 at the same step.
        assert errs[1] < 0.25 * late_error("bdf2", 1e-6)

    def test_fixed_grid_order_ramp_reported(self):
        o = TransientOptions(
            t_stop=1e-5, dt=1e-7, method="gear", max_order=3,
            use_dc_operating_point=False,
        )
        r = run_transient(_rc_step_circuit(), o)
        hist = r.stats["order_histogram"]
        assert hist[1] == 1 and hist[2] == 1  # startup ramp
        assert hist[3] == r.stats["steps"] - 2

    def test_bdf2_matches_reference_engine_on_fine_grid(self):
        """Converged-solution equivalence: BDF2 on a fine uniform grid
        lands on the same waveform the (trapezoidal) reference engine
        converges to, at rtol 1e-6 of signal scale."""
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9, ic=0.0)
        options_ref = TransientOptions(
            t_stop=2e-5, dt=2e-9, use_dc_operating_point=False
        )
        reference = run_transient_reference(c, options_ref)
        options_bdf = TransientOptions(
            t_stop=2e-5, dt=2e-9, method="bdf2", use_dc_operating_point=False
        )
        bdf = run_transient(c, options_bdf)
        scale = np.abs(reference.waveform("out").y).max()
        # Compare past one RC time constant: the O(dt^2) error BDF2's
        # order-1 startup ramp injects at t=0 decays with the circuit
        # pole, after which both engines sit on the converged waveform.
        settled = reference.t > 1e-6
        np.testing.assert_allclose(
            bdf.waveform("out").y[settled],
            reference.waveform("out").y[settled],
            rtol=1e-6,
            atol=1e-6 * scale,
        )


class TestSolverStrategyParity:
    """The rank-1/Woodbury fast paths and full Newton must agree under
    a multistep method exactly as they do under trap."""

    TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
    LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)

    def _options(self, jacobian="auto"):
        return TransientOptions(
            t_stop=20 / self.TANK.frequency,
            dt=1.0 / (self.TANK.frequency * 40),
            method="bdf2",
            use_dc_operating_point=False,
            jacobian=jacobian,
        )

    def test_rank1_matches_full_newton(self):
        netlist = OscillatorNetlist(self.TANK, vref=2.5)
        fast = run_transient(netlist.build(self.LIMITER), self._options())
        full = run_transient(netlist.build(self.LIMITER), self._options("full"))
        assert fast.stats["strategy"] == "rank1"
        assert full.stats["strategy"] == "general"
        scale = np.abs(full.x).max()
        np.testing.assert_allclose(
            fast.x, full.x, rtol=1e-9, atol=1e-9 * scale
        )

    def test_sparse_backend_matches_dense(self):
        pytest.importorskip("scipy")
        netlist = OscillatorNetlist(self.TANK, vref=2.5)
        o_dense = self._options()
        o_dense.backend = "dense"
        o_sparse = self._options()
        o_sparse.backend = "sparse"
        dense = run_transient(netlist.build(self.LIMITER), o_dense)
        sparse = run_transient(netlist.build(self.LIMITER), o_sparse)
        assert sparse.stats["backend"] == "sparse"
        scale = np.abs(dense.x).max()
        np.testing.assert_allclose(
            sparse.x, dense.x, rtol=1e-9, atol=1e-9 * scale
        )


class TestStiffDecayAdaptive:
    @pytest.mark.parametrize("method,kw", [
        ("bdf2", {}),
        ("gear", {}),
        ("gear", {"max_order": 3}),
    ])
    def test_adaptive_matches_analytic_rlc_decay(self, method, kw):
        t_stop = 4e-6
        o = TransientOptions(
            t_stop=t_stop, dt=2e-9, method=method,
            step_control="adaptive", use_dc_operating_point=False,
            dt_min=1e-11, dt_max=5e-8, lte_reltol=1e-4, lte_abstol=1e-7,
            **kw,
        )
        r = run_transient(_rlc_decay_circuit(), o)
        exact = _rlc_decay_analytic(r.t)
        # The recorded t=0 sample is the engine's pre-ic zero vector
        # (ic enters through the integrator state); compare from the
        # first integrated point on.
        err = np.abs(r.waveform("c").y - exact)[1:].max()
        assert err < 5e-3  # 1 V initial scale
        assert r.stats["accepted_steps"] > 10
        assert r.stats["order_histogram"]  # multistep stats present

    def test_gear_adaptive_nonlinear_rectifier_matches_fine_trap(self):
        """General-Newton + adaptive stepping + multistep history on a
        nonlinear (diode) circuit: the converged waveform must agree
        with a fine fixed-grid trapezoidal run."""

        def rectifier():
            c = Circuit()
            c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
            c.diode("D1", "in", "out")
            c.resistor("RL", "out", "0", 10e3)
            c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
            return c

        adaptive = run_transient(
            rectifier(),
            TransientOptions(
                t_stop=60e-6, dt=0.2e-6, method="gear",
                step_control="adaptive", use_dc_operating_point=False,
                dt_max=2e-6, lte_reltol=1e-4,
            ),
        )
        fine = run_transient(
            rectifier(),
            TransientOptions(
                t_stop=60e-6, dt=0.05e-6, use_dc_operating_point=False
            ),
        )
        assert adaptive.stats["strategy"] == "general"
        wa = adaptive.waveform("out")
        wf = fine.waveform("out")
        err = np.max(np.abs(wa.y - wf.resample(wa.t).y))
        assert err < 0.02  # 2 V scale signal: within 1 %


class TestHistoryRollback:
    """A rejected multistep trial step must restore the committed
    history *exactly* — values, derivatives, times, and fill level."""

    def _assembly(self):
        from repro.circuits.assembly import TransientAssembly

        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9, ic=0.0)
        c.inductor("L1", "out", "tail", 1e-3, ic=0.0)
        c.resistor("R2", "tail", "0", 50.0)
        c.prepare()
        return TransientAssembly(c, 1e-8, "bdf2", 1e-12)

    @staticmethod
    def _full_state(assembly):
        r = assembly.reactive
        return (
            r.v.copy(), r.i.copy(), r.t_now,
            r.h_val[: r.h_len].copy(), r.h_der[: r.h_len].copy(),
            r.h_t[: r.h_len].copy(), r.h_len,
        )

    def _commit_step(self, assembly, time, x):
        rhs = assembly.step_rhs(time, {}, x)
        x_new = assembly.lu().solve(rhs)
        assembly.commit(x_new, time, {})
        return x_new

    def test_snapshot_restore_round_trip_exact(self):
        assembly = self._assembly()
        x = np.zeros(assembly.size)
        # Build up real multistep history on a non-uniform grid.
        x = self._commit_step(assembly, 1e-8, x)
        assembly.set_dt(0.5e-8, order=2)
        x = self._commit_step(assembly, 1.5e-8, x)
        x = self._commit_step(assembly, 2.0e-8, x)
        states = {}
        snapshot = assembly.snapshot_state(states)
        before = self._full_state(assembly)
        assert before[6] >= 2  # genuine multistep history in play

        # A trial step (different dt, so different weights) advances
        # the state and pushes history...
        assembly.set_dt(0.25e-8, order=2)
        self._commit_step(assembly, 2.25e-8, x)
        after = self._full_state(assembly)
        assert after[2] != before[2]

        # ...and restore undoes every part of it bit-for-bit.
        assembly.restore_state(snapshot, states)
        restored = self._full_state(assembly)
        for a, b in zip(before, restored):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b

    def test_adaptive_run_with_rejections_is_consistent(self):
        """End-to-end: an adaptive BDF2 run whose controller rejects
        trial steps must still land on the fine fixed-grid waveform
        (a corrupted rollback would show up as a systematic error)."""
        def circuit():
            c = Circuit()
            c.voltage_source(
                "V1", "in", "0",
                # A pulse makes the controller reject around the edges.
                pulse(0.0, 1.0, delay=2e-5, rise=1e-7, fall=1e-7, width=2e-5),
            )
            c.resistor("R1", "in", "out", 1e3)
            c.capacitor("C1", "out", "0", 1e-7)
            return c

        adaptive = run_transient(
            circuit(),
            TransientOptions(
                t_stop=1e-4, dt=1e-6, method="bdf2",
                step_control="adaptive", use_dc_operating_point=False,
                dt_max=5e-6, lte_reltol=1e-4,
            ),
        )
        fine = run_transient(
            circuit(),
            TransientOptions(t_stop=1e-4, dt=5e-8,
                             use_dc_operating_point=False),
        )
        wa = adaptive.waveform("out")
        wf = fine.waveform("out")
        err = np.abs(wa.y - wf.resample(wa.t).y).max()
        assert err < 5e-3


class TestStatsPassthrough:
    def test_transient_result_carries_order_stats(self):
        o = TransientOptions(
            t_stop=4e-6, dt=2e-9, method="gear", max_order=3,
            step_control="adaptive", use_dc_operating_point=False,
            dt_min=1e-11, dt_max=5e-8,
        )
        r = run_transient(_rlc_decay_circuit(), o)
        stats = r.stats
        assert sum(stats["order_histogram"].values()) == stats["accepted_steps"]
        assert stats["accepted_by_order"] == stats["order_histogram"]
        assert set(stats["rejected_by_order"]) <= {1, 2, 3}
        assert "order_raises" in stats and "order_lowers" in stats
        assert stats["final_order"] in (1, 2, 3)


class TestGuards:
    def test_transient_context_rejects_typoed_method_name(self):
        from repro.circuits import StampContext

        with pytest.raises(SimulationError, match="bdf22"):
            StampContext(system=None, x=np.zeros(2), dt=1e-9, method="bdf22")
        # DC contexts carry no coefficients and stay permissive.
        StampContext(system=None, x=np.zeros(2))

    def test_transient_context_rejects_bare_multistep_name(self):
        from repro.circuits import StampContext
        from repro.errors import NetlistError

        # Valid multistep names need engine-installed coefficients; a
        # bare context must fail loudly, not crash later on coeffs.
        with pytest.raises(NetlistError, match="gear"):
            StampContext(system=None, x=np.zeros(2), dt=1e-9, method="gear")

    def test_same_name_custom_method_gets_its_own_cache_entries(self):
        from repro.circuits.assembly import TransientAssembly

        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9, ic=0.0)
        c.prepare()
        assembly = TransientAssembly(c, 1e-8, Gear(max_order=2), 1e-12)
        entry = assembly._active

        class ScaledGear(Gear):
            """A method that (wrongly) shares the name 'gear'."""

            def base_coeffs(self, order):
                co = super().base_coeffs(order)
                co.lead = co.lead * 2.0
                return co

        assembly.set_method(ScaledGear(max_order=2), order=assembly.order)
        assembly.set_dt(1e-8)
        assert assembly._active is not entry  # name collision is moot

    def test_reference_engine_rejects_multistep(self):
        with pytest.raises(SimulationError):
            run_transient_reference(
                _rc_step_circuit(),
                TransientOptions(t_stop=1e-5, dt=1e-7, method="bdf2",
                                 use_dc_operating_point=False),
            )

    def test_generic_state_component_rejects_multistep(self):
        class OddCap(Capacitor):
            """A Capacitor subclass outside the vectorized fast path
            (it does not re-declare the stamp split)."""

        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "out", 1e3)
        c.add(OddCap("C1", "out", "0", 1e-9, ic=0.0))
        with pytest.raises(SimulationError, match="C1"):
            run_transient(
                c,
                TransientOptions(t_stop=1e-5, dt=1e-7, method="bdf2",
                                 use_dc_operating_point=False),
            )
        # The same netlist still runs under the one-step methods.
        run_transient(
            c,
            TransientOptions(t_stop=1e-5, dt=1e-7, method="trap",
                             use_dc_operating_point=False),
        )
