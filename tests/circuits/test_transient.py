"""Tests for the transient engine beyond the basic RC/LR cases."""

import numpy as np
import pytest

from repro.analysis import oscillation_frequency
from repro.circuits import (
    Circuit,
    TransientOptions,
    run_transient,
    sine,
)
from repro.errors import NetlistError, SimulationError


class TestOptionsValidation:
    def test_bad_times(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=0.0, dt=1e-6)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-6, dt=1e-3)

    def test_bad_method(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, method="euler")

    def test_bad_stride(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, record_stride=0)


class TestLCRing:
    def test_frequency_accuracy(self):
        c = Circuit()
        c.inductor("L1", "a", "0", 10e-6, ic=1e-3)
        c.capacitor("C1", "a", "0", 1e-9, ic=0.0)
        f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
        res = run_transient(
            c,
            TransientOptions(
                t_stop=20 / f0, dt=1 / (f0 * 80), use_dc_operating_point=False
            ),
        )
        measured = oscillation_frequency(res.waveform("a"))
        assert measured == pytest.approx(f0, rel=2e-3)

    def test_damped_decay_rate(self):
        """Series RLC rings down with tau = 2L/R."""
        c = Circuit()
        c.inductor("L1", "a", "m", 10e-6, ic=1e-3)
        c.resistor("R1", "m", "0", 5.0)
        c.capacitor("C1", "a", "0", 1e-9, ic=0.0)
        f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
        res = run_transient(
            c,
            TransientOptions(
                t_stop=30 / f0, dt=1 / (f0 * 80), use_dc_operating_point=False
            ),
        )
        v = res.waveform("a")
        tau = 2 * 10e-6 / 5.0  # 4 us
        a_early = v.window(0, 3 / f0).peak_to_peak()
        t_late = 20 / f0
        a_late = v.window(t_late, t_late + 3 / f0).peak_to_peak()
        expected_ratio = np.exp(-t_late / tau)
        assert a_late / a_early == pytest.approx(expected_ratio, rel=0.1)


class TestDrivenCircuits:
    def test_sine_drive_amplitude(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e6))
        c.resistor("R1", "in", "out", 1e3)
        c.resistor("R2", "out", "0", 1e3)
        res = run_transient(
            c, TransientOptions(t_stop=5e-6, dt=5e-9, use_dc_operating_point=False)
        )
        assert res.waveform("out").max() == pytest.approx(0.5, rel=1e-3)

    def test_record_stride(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "0", 1e3)
        res_full = run_transient(
            c, TransientOptions(t_stop=1e-3, dt=1e-5, use_dc_operating_point=False)
        )
        res_strided = run_transient(
            c,
            TransientOptions(
                t_stop=1e-3, dt=1e-5, record_stride=10, use_dc_operating_point=False
            ),
        )
        assert len(res_strided.t) < len(res_full.t)

    def test_start_from_dc_operating_point(self):
        """With use_dc_operating_point the run starts settled."""
        c = Circuit()
        c.voltage_source("V1", "in", "0", 2.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6)
        res = run_transient(c, TransientOptions(t_stop=1e-3, dt=1e-5))
        w = res.waveform("out")
        assert np.allclose(w.y, 2.0, atol=1e-6)


class TestNonlinearTransient:
    def test_diode_rectifier(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
        c.diode("D1", "in", "out")
        c.resistor("RL", "out", "0", 10e3)
        c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
        res = run_transient(
            c,
            TransientOptions(t_stop=100e-6, dt=0.1e-6, use_dc_operating_point=False),
        )
        w = res.waveform("out")
        # Peak detector holds near peak minus a diode drop.
        assert 1.0 < w.max() < 2.0
        # Never goes significantly negative.
        assert w.min() > -0.1


def _divider():
    c = Circuit()
    c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
    c.resistor("R1", "in", "out", 1e3)
    c.resistor("R2", "out", "0", 1e3)
    return c


def _rectifier():
    c = Circuit()
    c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
    c.diode("D1", "in", "out")
    c.resistor("RL", "out", "0", 10e3)
    c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
    return c


class TestWaveformAccess:
    def test_unknown_node_raises_simulation_error(self):
        res = run_transient(
            _divider(),
            TransientOptions(t_stop=1e-5, dt=1e-7, use_dc_operating_point=False),
        )
        with pytest.raises(SimulationError):
            res.waveform("no_such_node")

    def test_ground_is_a_zero_trace(self):
        res = run_transient(
            _divider(),
            TransientOptions(t_stop=1e-5, dt=1e-7, use_dc_operating_point=False),
        )
        assert np.all(res.waveform("0").y == 0.0)
        # differential against ground keeps working.
        np.testing.assert_array_equal(
            res.differential("out", "0").y, res.waveform("out").y
        )


class TestResultEdgeCases:
    """TransientResult access rules at the recording boundaries."""

    def _options(self, **kw):
        return TransientOptions(
            t_stop=1e-5, dt=1e-7, use_dc_operating_point=False, **kw
        )

    def test_ground_waveform_on_subset_recording(self):
        """Ground stays a synthesized zero trace even when only a
        subset of nodes was recorded."""
        res = run_transient(_divider(), self._options(record_nodes=("out",)))
        w = res.waveform("0")
        assert np.all(w.y == 0.0)
        assert len(w) == len(res.t)
        np.testing.assert_array_equal(
            res.differential("out", "0").y, res.waveform("out").y
        )

    def test_branch_current_available_on_full_recording(self):
        res = run_transient(_divider(), self._options())
        i = res.branch_current("V1")
        # Divider: 1 V across 2 kOhm, source sinks at n+ (SPICE sign).
        assert np.max(np.abs(i.y)) == pytest.approx(1.0 / 2e3, rel=1e-6)

    def test_branch_current_of_branchless_component_raises(self):
        res = run_transient(_divider(), self._options())
        with pytest.raises(SimulationError):
            res.branch_current("R1")

    def test_record_nodes_with_branch_current_raises_not_garbage(self):
        """record_nodes drops branch columns; asking for one must be
        an error, never a silently wrong column."""
        res = run_transient(
            _divider(), self._options(record_nodes=("out", "in"))
        )
        with pytest.raises(SimulationError):
            res.branch_current("V1")
        # The recorded node columns still resolve by name, not index.
        full = run_transient(_divider(), self._options())
        np.testing.assert_allclose(
            res.waveform("in").y, full.waveform("in").y, rtol=0, atol=0
        )

    def test_fixed_stats_contents(self):
        res = run_transient(_divider(), self._options())
        stats = res.stats
        assert stats["strategy"] == "linear"
        assert stats["step_control"] == "fixed"
        assert stats["steps"] == 100
        assert stats["newton_iterations"] == 0  # cached LU, no Newton
        assert stats["lu_refactorizations"] == 1

    def test_adaptive_stats_contents(self):
        res = run_transient(
            _divider(),
            self._options(step_control="adaptive", dt_max=1e-6),
        )
        stats = res.stats
        assert stats["step_control"] == "adaptive"
        assert stats["accepted_steps"] == stats["steps"]
        assert stats["rejected_steps"] >= 0
        assert stats["breakpoints_hit"] == 0
        assert stats["dt_cache_entries"] >= 1
        assert stats["newton_iterations"] == 0


class TestRecordNodes:
    def _options(self, **kw):
        return TransientOptions(
            t_stop=1e-5, dt=1e-7, use_dc_operating_point=False, **kw
        )

    def test_subset_matches_full_recording(self):
        full = run_transient(_divider(), self._options())
        subset = run_transient(
            _divider(), self._options(record_nodes=("out",))
        )
        assert subset.x.shape[1] == 1
        np.testing.assert_array_equal(subset.t, full.t)
        np.testing.assert_allclose(
            subset.waveform("out").y, full.waveform("out").y, rtol=0, atol=0
        )

    def test_unrecorded_node_raises(self):
        res = run_transient(_divider(), self._options(record_nodes=("out",)))
        with pytest.raises(SimulationError):
            res.waveform("in")

    def test_branch_current_unavailable(self):
        res = run_transient(_divider(), self._options(record_nodes=("out",)))
        with pytest.raises(SimulationError):
            res.branch_current("V1")

    def test_unknown_record_node_rejected(self):
        with pytest.raises(NetlistError):
            run_transient(
                _divider(), self._options(record_nodes=("missing",))
            )

    def test_ground_record_node_rejected(self):
        with pytest.raises(SimulationError):
            run_transient(_divider(), self._options(record_nodes=("0",)))


class TestRecordPreallocation:
    def test_stride_not_dividing_step_count(self):
        """10 steps at stride 3 record t = {0, 3, 6, 9}*dt."""
        dt = 1e-6
        res = run_transient(
            _divider(),
            TransientOptions(
                t_stop=10e-6,
                dt=dt,
                record_stride=3,
                use_dc_operating_point=False,
            ),
        )
        assert res.t.shape == (4,)
        assert res.x.shape[0] == 4
        np.testing.assert_allclose(res.t, np.array([0, 3, 6, 9]) * dt)

    def test_stride_equal_to_step_count(self):
        res = run_transient(
            _divider(),
            TransientOptions(
                t_stop=10e-6,
                dt=1e-6,
                record_stride=10,
                use_dc_operating_point=False,
            ),
        )
        assert res.t.shape == (2,)  # t = 0 and the final step

    def test_stride_larger_than_step_count(self):
        res = run_transient(
            _divider(),
            TransientOptions(
                t_stop=10e-6,
                dt=1e-6,
                record_stride=40,
                use_dc_operating_point=False,
            ),
        )
        assert res.t.shape == (1,)  # only the initial condition


class TestStampSplitSafety:
    def test_subclass_overriding_stamp_is_not_frozen(self):
        """A subclass that overrides stamp() without re-declaring
        supports_stamp_split must take the full-restamp path — the
        parent's static/dynamic split no longer describes it."""
        from repro.circuits import Resistor

        class TimeVaryingResistor(Resistor):
            def stamp(self, ctx):
                g = self.conductance * (1.0 + ctx.time * 1e5)
                ctx.system.stamp_conductance(self._n[0], self._n[1], g)

        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "out", 1e3)
        c.add(TimeVaryingResistor("R2", "out", "0", 1e3))
        res = run_transient(
            c,
            TransientOptions(t_stop=10e-6, dt=1e-6, use_dc_operating_point=False),
        )
        # R2 is restamped every step, so the divider ratio drifts:
        # at t = k*dt its conductance is g0*(1 + 0.1*k).
        assert res.stats["strategy"] == "linear-restamp"
        y = res.waveform("out").y
        assert y[1] == pytest.approx(1.0 / 2.1, rel=1e-9)  # t = 1 us
        assert y[-1] == pytest.approx(1.0 / 3.0, rel=1e-9)  # t = 10 us

    def test_linear_non_split_circuit_is_never_damped(self):
        """Seed behaviour: a linear circuit solves in one undamped
        step even when a component skipped the stamp split — a 120 V
        source edge must not trip Newton damping/ConvergenceError."""
        from repro.circuits import Resistor, pulse

        class PlainResistor(Resistor):
            def stamp(self, ctx):  # opts out of the split
                super().stamp(ctx)

        c = Circuit()
        c.voltage_source("V1", "in", "0", pulse(0.0, 120.0, delay=1e-6, width=1e-3))
        c.add(PlainResistor("R1", "in", "out", 1e3))
        c.resistor("R2", "out", "0", 1e3)
        res = run_transient(
            c,
            TransientOptions(t_stop=5e-6, dt=1e-7, use_dc_operating_point=False),
        )
        assert res.stats["strategy"] == "linear-restamp"
        # One solve per step, no Newton iteration pile-up.
        assert res.stats["newton_iterations"] == res.stats["steps"]
        assert res.waveform("out").y[-1] == pytest.approx(60.0, rel=1e-9)

    def test_base_matrix_cache_is_frozen(self):
        from repro.circuits.assembly import TransientAssembly

        c = _divider()
        c.prepare()
        assembly = TransientAssembly(c, 1e-7, "trap", 1e-12)
        with pytest.raises(ValueError):
            assembly.G_base[0, 0] = 1.0


class TestJacobianModes:
    def test_stats_report_strategy(self):
        res = run_transient(
            _divider(),
            TransientOptions(t_stop=1e-5, dt=1e-7, use_dc_operating_point=False),
        )
        assert res.stats["strategy"] == "linear"
        assert res.stats["steps"] == 100

    def test_invalid_mode_rejected(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, jacobian="newton-krylov")

    def test_chord_matches_full_newton(self):
        options = TransientOptions(
            t_stop=60e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        baseline = run_transient(_rectifier(), options)
        chord_options = TransientOptions(
            t_stop=60e-6,
            dt=0.1e-6,
            use_dc_operating_point=False,
            jacobian="chord",
        )
        chord = run_transient(_rectifier(), chord_options)
        assert chord.stats["strategy"] == "chord"
        # Chord Newton converges linearly, so each step lands within
        # the Newton tolerance rather than quadratically inside it;
        # sub-mV agreement on a ~2 V waveform is the expected bound.
        np.testing.assert_allclose(
            chord.waveform("out").y,
            baseline.waveform("out").y,
            rtol=1e-4,
            atol=1e-4,
        )

    def test_chord_refactors_on_slow_convergence(self):
        """The diode turning on invalidates the frozen Jacobian; the
        engine must notice the stalled convergence and refactorize."""
        chord = run_transient(
            _rectifier(),
            TransientOptions(
                t_stop=60e-6,
                dt=0.1e-6,
                use_dc_operating_point=False,
                jacobian="chord",
            ),
        )
        assert chord.stats["lu_refactorizations"] > 1
        # ... but far less often than full Newton assembles Jacobians.
        assert (
            chord.stats["lu_refactorizations"]
            < chord.stats["newton_iterations"] / 2
        )
