"""Tests for the transient engine beyond the basic RC/LR cases."""

import numpy as np
import pytest

from repro.analysis import oscillation_frequency
from repro.circuits import (
    Circuit,
    TransientOptions,
    run_transient,
    sine,
)
from repro.errors import SimulationError


class TestOptionsValidation:
    def test_bad_times(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=0.0, dt=1e-6)
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-6, dt=1e-3)

    def test_bad_method(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, method="euler")

    def test_bad_stride(self):
        with pytest.raises(SimulationError):
            TransientOptions(t_stop=1e-3, dt=1e-6, record_stride=0)


class TestLCRing:
    def test_frequency_accuracy(self):
        c = Circuit()
        c.inductor("L1", "a", "0", 10e-6, ic=1e-3)
        c.capacitor("C1", "a", "0", 1e-9, ic=0.0)
        f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
        res = run_transient(
            c,
            TransientOptions(
                t_stop=20 / f0, dt=1 / (f0 * 80), use_dc_operating_point=False
            ),
        )
        measured = oscillation_frequency(res.waveform("a"))
        assert measured == pytest.approx(f0, rel=2e-3)

    def test_damped_decay_rate(self):
        """Series RLC rings down with tau = 2L/R."""
        c = Circuit()
        c.inductor("L1", "a", "m", 10e-6, ic=1e-3)
        c.resistor("R1", "m", "0", 5.0)
        c.capacitor("C1", "a", "0", 1e-9, ic=0.0)
        f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
        res = run_transient(
            c,
            TransientOptions(
                t_stop=30 / f0, dt=1 / (f0 * 80), use_dc_operating_point=False
            ),
        )
        v = res.waveform("a")
        tau = 2 * 10e-6 / 5.0  # 4 us
        a_early = v.window(0, 3 / f0).peak_to_peak()
        t_late = 20 / f0
        a_late = v.window(t_late, t_late + 3 / f0).peak_to_peak()
        expected_ratio = np.exp(-t_late / tau)
        assert a_late / a_early == pytest.approx(expected_ratio, rel=0.1)


class TestDrivenCircuits:
    def test_sine_drive_amplitude(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e6))
        c.resistor("R1", "in", "out", 1e3)
        c.resistor("R2", "out", "0", 1e3)
        res = run_transient(
            c, TransientOptions(t_stop=5e-6, dt=5e-9, use_dc_operating_point=False)
        )
        assert res.waveform("out").max() == pytest.approx(0.5, rel=1e-3)

    def test_record_stride(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "0", 1e3)
        res_full = run_transient(
            c, TransientOptions(t_stop=1e-3, dt=1e-5, use_dc_operating_point=False)
        )
        res_strided = run_transient(
            c,
            TransientOptions(
                t_stop=1e-3, dt=1e-5, record_stride=10, use_dc_operating_point=False
            ),
        )
        assert len(res_strided.t) < len(res_full.t)

    def test_start_from_dc_operating_point(self):
        """With use_dc_operating_point the run starts settled."""
        c = Circuit()
        c.voltage_source("V1", "in", "0", 2.0)
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6)
        res = run_transient(c, TransientOptions(t_stop=1e-3, dt=1e-5))
        w = res.waveform("out")
        assert np.allclose(w.y, 2.0, atol=1e-6)


class TestNonlinearTransient:
    def test_diode_rectifier(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
        c.diode("D1", "in", "out")
        c.resistor("RL", "out", "0", 10e3)
        c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
        res = run_transient(
            c,
            TransientOptions(t_stop=100e-6, dt=0.1e-6, use_dc_operating_point=False),
        )
        w = res.waveform("out")
        # Peak detector holds near peak minus a diode drop.
        assert 1.0 < w.max() < 2.0
        # Never goes significantly negative.
        assert w.min() > -0.1
