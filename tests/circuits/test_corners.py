"""Tests for process/temperature corners."""

import pytest

from repro.circuits import MosfetParams
from repro.circuits.corners import (
    FAST_COLD,
    FAST_HOT,
    SLOW_COLD,
    SLOW_HOT,
    TYPICAL,
    ProcessCorner,
)
from repro.errors import ConfigurationError

BASE = MosfetParams(polarity=+1, beta=2e-3, vt0=0.5, lam=0.02, i_sat_body=1e-13)


class TestScaling:
    def test_typical_is_identity_like(self):
        scaled = TYPICAL.scale(BASE)
        assert scaled.vt0 == pytest.approx(BASE.vt0)
        assert scaled.beta == pytest.approx(BASE.beta, rel=1e-3)
        assert scaled.i_sat_body == pytest.approx(BASE.i_sat_body)

    def test_hot_lowers_vt_and_beta(self):
        hot = ProcessCorner("hot", temperature_c=125.0)
        scaled = hot.scale(BASE)
        assert scaled.vt0 == pytest.approx(0.5 - 98e-3, abs=1e-6)
        assert scaled.beta < BASE.beta

    def test_cold_raises_vt_and_beta(self):
        cold = ProcessCorner("cold", temperature_c=-40.0)
        scaled = cold.scale(BASE)
        assert scaled.vt0 > BASE.vt0
        assert scaled.beta > BASE.beta

    def test_leakage_doubles_every_10K(self):
        hot = ProcessCorner("hot", temperature_c=_t(BASE) + 20.0)
        scaled = hot.scale(BASE)
        assert scaled.i_sat_body == pytest.approx(4e-13, rel=1e-6)

    def test_process_shift(self):
        slow = ProcessCorner("slow", vt_process_shift=0.08, beta_process_scale=0.85)
        scaled = slow.scale(BASE)
        assert scaled.vt0 == pytest.approx(0.58)
        assert scaled.beta == pytest.approx(0.85 * 2e-3, rel=1e-3)

    def test_polarity_preserved(self):
        pmos = MosfetParams(polarity=-1, beta=1e-3, vt0=0.65)
        assert SLOW_HOT.scale(pmos).polarity == -1

    def test_vt_floor(self):
        """vt never scales below a small positive floor."""
        extreme = ProcessCorner("x", temperature_c=175.0, vt_process_shift=-0.4)
        assert extreme.scale(BASE).vt0 >= 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessCorner("bad", temperature_c=300.0)
        with pytest.raises(ConfigurationError):
            ProcessCorner("bad", beta_process_scale=0.0)


def _t(_params):
    return 27.0


class TestSupplyLossAcrossCorners:
    """The §8 isolation must hold over the automotive range."""

    @pytest.mark.parametrize(
        "corner", [TYPICAL, SLOW_COLD, SLOW_HOT, FAST_COLD, FAST_HOT],
        ids=lambda c: c.name,
    )
    def test_fig11_isolation_holds(self, corner):
        from repro.core.output_stage import run_supply_loss_sweep

        result = run_supply_loss_sweep("fig11", n_points=31, corner=corner)
        # Operating-amplitude loading stays negligible at every corner.
        assert abs(result.current_at(1.35)) < 250e-6
        assert abs(result.current_at(-1.35)) < 250e-6
        # Worst case over the full ±3 V stays comfortably sub-5 mA.
        assert result.max_loading_current() < 2e-3
