"""Tests for the junction diode model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits import Circuit, solve_dc
from repro.circuits.diode import VT_300K, junction_iv
from repro.errors import NetlistError


class TestJunctionIV:
    def test_zero_bias(self):
        i, g = junction_iv(0.0, 1e-14)
        assert i == pytest.approx(0.0)
        assert g > 0

    def test_forward_exponential(self):
        i1, _ = junction_iv(0.6, 1e-14)
        i2, _ = junction_iv(0.6 + VT_300K * math.log(10), 1e-14)
        assert i2 / i1 == pytest.approx(10.0, rel=1e-3)

    def test_reverse_saturation(self):
        i, _ = junction_iv(-5.0, 1e-14)
        assert i == pytest.approx(-1e-14, rel=1e-3)

    def test_no_overflow_at_huge_bias(self):
        i, g = junction_iv(100.0, 1e-14)
        assert math.isfinite(i) and math.isfinite(g)

    @given(st.floats(-2.0, 3.0))
    def test_property_monotonic_and_continuous(self, v):
        """i(v) is increasing; the linear tail is C1 continuous."""
        h = 1e-6
        i_lo, g = junction_iv(v - h, 1e-14)
        i_hi, _ = junction_iv(v + h, 1e-14)
        assert i_hi >= i_lo
        # Finite-difference slope matches the reported conductance.
        fd = (i_hi - i_lo) / (2 * h)
        assert fd == pytest.approx(g, rel=1e-2, abs=1e-18)


class TestDiodeInCircuit:
    def test_forward_drop(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "a", 1e3)
        c.diode("D1", "a", "0")
        op = solve_dc(c)
        assert 0.55 < op.voltage("a") < 0.8

    def test_reverse_blocks(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", -5.0)
        c.resistor("R1", "in", "a", 1e3)
        c.diode("D1", "a", "0")
        op = solve_dc(c)
        assert op.voltage("a") == pytest.approx(-5.0, abs=1e-3)

    def test_current_helper(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", 5.0)
        c.resistor("R1", "in", "a", 1e3)
        d = c.diode("D1", "a", "0")
        op = solve_dc(c)
        i_r = (5.0 - op.voltage("a")) / 1e3
        assert d.current(op.x) == pytest.approx(i_r, rel=1e-3)

    def test_invalid_parameters(self):
        with pytest.raises(NetlistError):
            Circuit().diode("D1", "a", "b", i_sat=0.0)

    def test_full_wave_rectifier(self):
        """Two diodes rectify a differential pair of sources."""
        c = Circuit()
        c.voltage_source("Vp", "p", "0", 2.0)
        c.voltage_source("Vn", "n", "0", -2.0)
        c.diode("Dp", "p", "out")
        c.diode("Dn", "n", "out")
        c.resistor("RL", "out", "0", 10e3)
        op = solve_dc(c)
        # Only the positive side conducts.
        assert op.voltage("out") == pytest.approx(2.0 - 0.65, abs=0.15)
