"""Golden equivalence: the incremental-stamping engine must reproduce
the seed (full-restamp) engine's waveforms to float tolerance.

The Fig 16 startup is the reference workload: the bench tank, the
tanh-limited driver, carrier resolution, both integration methods.
The reference engine lives in :mod:`repro.circuits.reference` and is
the preserved pre-optimization implementation.
"""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    TransientOptions,
    run_transient,
    run_transient_reference,
    sine,
)
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)


def _fig16_options(method):
    return TransientOptions(
        t_stop=80 / TANK.frequency,
        dt=1.0 / (TANK.frequency * 40),
        method=method,
        use_dc_operating_point=False,
    )


def _assert_waveforms_match(res_a, res_b, nodes, rtol=1e-9):
    assert np.array_equal(res_a.t, res_b.t)
    for node in nodes:
        y_a = res_a.waveform(node).y
        y_b = res_b.waveform(node).y
        scale = float(np.max(np.abs(y_b)))
        np.testing.assert_allclose(
            y_a, y_b, rtol=rtol, atol=rtol * scale, err_msg=f"node {node}"
        )


class TestFig16Golden:
    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_startup_waveform_parity(self, method):
        netlist = OscillatorNetlist(TANK, vref=2.5)
        reference = run_transient_reference(
            netlist.build(LIMITER), _fig16_options(method)
        )
        optimized = run_transient(netlist.build(LIMITER), _fig16_options(method))
        # The Fig 1 oscillator must hit the cached-Jacobian fast path.
        assert optimized.stats["strategy"] == "rank1"
        _assert_waveforms_match(optimized, reference, ["lc1", "lc2", "mid"])

    def test_rank1_matches_forced_full_newton(self):
        netlist = OscillatorNetlist(TANK, vref=2.5)
        options = _fig16_options("trap")
        fast = run_transient(netlist.build(LIMITER), options)
        options_full = _fig16_options("trap")
        options_full.jacobian = "full"
        full = run_transient(netlist.build(LIMITER), options_full)
        assert full.stats["strategy"] == "general"
        _assert_waveforms_match(fast, full, ["lc1", "lc2"])


class TestLinearAndGeneralGolden:
    def _rc_filter(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-9, ic=0.0)
        c.inductor("L1", "out", "tail", 1e-3)
        c.resistor("R2", "tail", "0", 50.0)
        return c

    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_linear_circuit_parity(self, method):
        options = TransientOptions(
            t_stop=50e-6, dt=50e-9, method=method, use_dc_operating_point=False
        )
        reference = run_transient_reference(self._rc_filter(), options)
        optimized = run_transient(self._rc_filter(), options)
        assert optimized.stats["strategy"] == "linear"
        _assert_waveforms_match(optimized, reference, ["in", "out", "tail"])

    def _rectifier(self):
        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(2.0, 1e5))
        c.diode("D1", "in", "out")
        c.resistor("RL", "out", "0", 10e3)
        c.capacitor("CL", "out", "0", 1e-6, ic=0.0)
        return c

    def test_general_newton_parity(self):
        """A diode (not a lone VCCS) exercises the general strategy."""
        options = TransientOptions(
            t_stop=60e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        reference = run_transient_reference(self._rectifier(), options)
        optimized = run_transient(self._rectifier(), options)
        assert optimized.stats["strategy"] == "general"
        _assert_waveforms_match(optimized, reference, ["in", "out"])


class TestWoodburyGolden:
    """2-4 NonlinearVCCS devices: the rank-k Woodbury fast path must
    match both the seed engine and forced full Newton."""

    def _cascade(self, n_stages=3):
        import numpy as np

        c = Circuit()
        c.voltage_source("V1", "in", "0", sine(1.0, 1e5))
        c.resistor("R1", "in", "a", 1e3)
        c.resistor("R2", "a", "0", 2e3)
        c.capacitor("Ca", "a", "0", 1e-9)
        nodes = ["a", "b", "c", "d"]
        for k in range(n_stages):
            src, dst = nodes[k], nodes[k + 1]
            c.resistor(f"RL{k}", dst, "0", 1e3)
            c.nonlinear_vccs(
                f"G{k}", dst, "0", src, "0",
                (lambda scale: (lambda v: scale * np.tanh(v)))(1e-3 * (k + 1)),
            )
        return c

    @pytest.mark.parametrize("n_stages", [2, 3])
    def test_matches_reference_engine(self, n_stages):
        options = TransientOptions(
            t_stop=40e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        reference = run_transient_reference(self._cascade(n_stages), options)
        optimized = run_transient(self._cascade(n_stages), options)
        assert optimized.stats["strategy"] == "woodbury"
        _assert_waveforms_match(
            optimized, reference, ["a", "b", "c"], rtol=1e-8
        )

    def test_matches_forced_full_newton(self):
        options = TransientOptions(
            t_stop=40e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        fast = run_transient(self._cascade(), options)
        options_full = TransientOptions(
            t_stop=40e-6, dt=0.1e-6, use_dc_operating_point=False, jacobian="full"
        )
        full = run_transient(self._cascade(), options_full)
        assert fast.stats["strategy"] == "woodbury"
        assert full.stats["strategy"] == "general"
        _assert_waveforms_match(fast, full, ["a", "b", "c", "d"])

    def test_single_factorization_per_run(self):
        options = TransientOptions(
            t_stop=40e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        fast = run_transient(self._cascade(), options)
        assert fast.stats["lu_refactorizations"] == 1

    def test_five_devices_fall_back_to_general(self):
        c = self._cascade(3)
        c.nonlinear_vccs("G90", "a", "0", "d", "0", lambda v: 1e-4 * v)
        c.nonlinear_vccs("G91", "b", "0", "d", "0", lambda v: 1e-4 * v)
        options = TransientOptions(
            t_stop=5e-6, dt=0.1e-6, use_dc_operating_point=False
        )
        res = run_transient(c, options)
        assert res.stats["strategy"] == "general"
