"""Tests for hierarchical subcircuits."""

import pytest

from repro.circuits import Circuit, solve_dc
from repro.circuits.subcircuit import CellBuilder, SubcircuitDefinition
from repro.errors import NetlistError


def divider_cell(cell: CellBuilder) -> None:
    cell.circuit.resistor(cell.name("R1"), cell.port("in"), cell.node("mid"), 1e3)
    cell.circuit.resistor(cell.name("R2"), cell.node("mid"), cell.port("out"), 1e3)


DIVIDER = SubcircuitDefinition("div", ports=("in", "out"), build=divider_cell)


class TestInstantiation:
    def test_two_instances_are_isolated(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", "0", 4.0)
        DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "0"})
        DIVIDER.instantiate(circuit, "X2", {"in": "a", "out": "0"})
        op = solve_dc(circuit)
        assert op.voltage("X1.mid") == pytest.approx(2.0, rel=1e-9)
        assert op.voltage("X2.mid") == pytest.approx(2.0, rel=1e-9)
        # Internal nodes are distinct.
        assert "X1.R1" in circuit and "X2.R1" in circuit

    def test_cascaded_cells(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", "0", 8.0)
        DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "b"})
        circuit.resistor("RL", "b", "0", 2e3)
        op = solve_dc(circuit)
        # 1k + 1k in series, then 2k load: V(b) = 8 * 2/(2+2) = 4.
        assert op.voltage("b") == pytest.approx(4.0, rel=1e-6)

    def test_ground_passthrough_inside_cell(self):
        def grounded(cell: CellBuilder) -> None:
            cell.circuit.resistor(cell.name("R"), cell.port("p"), cell.node("0"), 1e3)

        definition = SubcircuitDefinition("g", ports=("p",), build=grounded)
        circuit = Circuit()
        circuit.voltage_source("V1", "a", "0", 1.0)
        definition.instantiate(circuit, "X1", {"p": "a"})
        op = solve_dc(circuit)
        assert op.branch_current("V1") == pytest.approx(-1e-3, rel=1e-9)

    def test_builder_returned_for_probing(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", "0", 2.0)
        cell = DIVIDER.instantiate(circuit, "X9", {"in": "a", "out": "0"})
        assert cell.node("mid") == "X9.mid"
        assert cell.name("R1") == "X9.R1"


class TestValidation:
    def test_missing_port(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            DIVIDER.instantiate(circuit, "X1", {"in": "a"})

    def test_extra_port(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "0", "zz": "b"})

    def test_unknown_port_access(self):
        def bad(cell: CellBuilder) -> None:
            cell.port("nope")

        definition = SubcircuitDefinition("bad", ports=("p",), build=bad)
        circuit = Circuit()
        with pytest.raises(NetlistError):
            definition.instantiate(circuit, "X1", {"p": "a"})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(NetlistError):
            SubcircuitDefinition("d", ports=("a", "a"), build=lambda c: None)

    def test_empty_names(self):
        with pytest.raises(NetlistError):
            SubcircuitDefinition("", ports=("a",), build=lambda c: None)
        circuit = Circuit()
        with pytest.raises(NetlistError):
            DIVIDER.instantiate(circuit, "", {"in": "a", "out": "0"})

    def test_duplicate_instance_names_collide(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", "0", 1.0)
        DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "0"})
        with pytest.raises(NetlistError):
            DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "0"})
