"""Position-sensor application (paper §1, Fig 9).

The regulated oscillator excites the sensor coil; the rotor modulates
the coupling into two receiving coils; the receiver compares the
received amplitudes ratiometrically to estimate the rotor angle.

The demo sweeps the rotor and shows that the position estimate is
accurate and *independent of the oscillation amplitude* (which the
digital loop only holds within the regulation window).

Run:  python examples/position_sensor_demo.py
"""

import math

from repro import OscillatorConfig, OscillatorDriverSystem, RLCTank
from repro.analysis import render_table
from repro.sensor import CouplingProfile, PositionReceiver, ReceivingCoilPair


def main() -> None:
    # 1. Run the oscillator to get the actual regulated amplitude.
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    system = OscillatorDriverSystem(OscillatorConfig(tank=tank))
    trace = system.run(0.03)
    excitation = trace.final_amplitude
    print(f"Regulated excitation amplitude: {excitation:.3f} V peak "
          f"(code {trace.final_code})\n")

    # 2. Sweep the rotor and decode position from the received pair.
    profile = CouplingProfile(k_max=0.2, theta_range=math.pi / 3)
    coils = ReceivingCoilPair(profile)
    receiver = PositionReceiver(profile)

    rows = []
    for theta_deg in (-55, -30, -10, 0, 15, 40, 58):
        theta = math.radians(theta_deg)
        a1, a2 = coils.received_amplitudes(theta, excitation)
        estimate = math.degrees(receiver.estimate_angle(a1, a2))
        rows.append(
            (
                f"{theta_deg:+d}",
                f"{a1*1e3:.1f} mV",
                f"{a2*1e3:.1f} mV",
                f"{estimate:+.2f}",
                f"{estimate - theta_deg:+.2e}",
            )
        )
    print(render_table(
        ["angle (deg)", "RX1 amplitude", "RX2 amplitude", "estimate (deg)", "error"],
        rows,
        title="Rotor sweep (ratiometric decoding)",
    ))

    # 3. Amplitude independence: the estimate is unchanged anywhere in
    # the regulation window.
    theta = math.radians(25.0)
    estimates = []
    for amplitude_scale in (0.95, 1.0, 1.05):  # the window span
        a1, a2 = coils.received_amplitudes(theta, excitation * amplitude_scale)
        estimates.append(receiver.estimate_angle(a1, a2))
    spread = max(estimates) - min(estimates)
    print(f"\nEstimate spread over the regulation window: {spread:.2e} rad "
          "(ratiometric -> zero)")


if __name__ == "__main__":
    main()
