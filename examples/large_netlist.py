"""Simulating a distributed sensing coil: the sparse backend at work.

Every netlist in the paper is lumped — the sensing coil is one ``L``
plus one ``Rs`` between the LC pins.  Physically it is a winding:
inductance and loss distributed along hundreds of turns, with
inter-winding capacitance to the surrounding structure.
:class:`repro.sensor.DistributedCoil` scales the lumped tank into an
N-segment RLC transmission line (``L/N`` + ``Rs/N`` per segment,
shunt parasitics at every junction, the pin capacitors still lumped
at the ends), which keeps the fundamental resonance while exposing
the line modes — and grows the MNA system to ``3N + 1`` unknowns.

That growth is what the pluggable linear-algebra backend
(:mod:`repro.circuits.backend`) exists for:

* ``backend="dense"`` — the historical path: dense matrices,
  :class:`~repro.circuits.linsolve.ReusableLU`.  Unbeatable below
  ~100 unknowns, O(n^2) per step beyond.
* ``backend="sparse"`` — the same stamp stream finalized as CSR and
  factored once per step size by ``scipy.sparse.linalg.splu``; every
  step then costs one near-linear sparse solve.
* ``backend="auto"`` (the default everywhere) — dense below the
  measured crossover, sparse above; you only ever *need* to name a
  backend in comparisons like this one.

Run:  python examples/large_netlist.py

Typical output (shared CI box): at 250 segments (751 unknowns) the
sparse backend finishes the same 40-cycle transient ~7x faster than
dense, with waveforms matching at rtol 1e-9; ``backend="auto"``
picks sparse on its own.
"""

import time

import numpy as np

from repro.circuits import TransientOptions, run_transient
from repro.envelope import RLCTank
from repro.sensor import DistributedCoil

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
CYCLES = 40


def run(n_segments: int, backend: str):
    coil = DistributedCoil(TANK, n_segments=n_segments)
    circuit = coil.build_circuit(drive_current=1e-3)
    options = TransientOptions(
        t_stop=CYCLES / TANK.frequency,
        dt=1.0 / (TANK.frequency * 40),
        use_dc_operating_point=False,
        record_nodes=("lc1", "lc2"),  # campaigns never pay for 3N+1 columns
        backend=backend,
    )
    start = time.perf_counter()
    result = run_transient(circuit, options)
    return time.perf_counter() - start, result


def main() -> None:
    print(f"{'N':>5} {'unknowns':>9} {'dense':>9} {'sparse':>9} "
          f"{'speedup':>8}  auto picks")
    for n_segments in (25, 60, 150, 250):
        coil = DistributedCoil(TANK, n_segments=n_segments)
        dense_s, dense = run(n_segments, "dense")
        sparse_s, sparse = run(n_segments, "sparse")
        _, auto = run(n_segments, "auto")
        scale = float(np.abs(dense.x).max())
        np.testing.assert_allclose(
            sparse.x, dense.x, rtol=1e-9, atol=1e-9 * scale
        )
        print(
            f"{n_segments:>5} {coil.unknown_count:>9} {dense_s:>8.3f}s "
            f"{sparse_s:>8.3f}s {dense_s / sparse_s:>7.2f}x  "
            f"{auto.stats['backend']}"
        )
    print("\nwaveforms agree at rtol 1e-9 on every row; 'auto' needs no tuning")


if __name__ == "__main__":
    main()
