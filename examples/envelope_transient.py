"""Multi-rate envelope-following transient: skip the carrier, keep the story.

The paper's expensive scenarios are hundreds to thousands of carrier
cycles whose interesting content is the *envelope* — the oscillator
startup of Fig 16, the supply-loss ring-down, minute-scale polling
sequences.  This walk-through exercises the three layers that make
those near-free:

1. **Per-phase method switching** (``TransientOptions(phases=...)``):
   partition an adaptive run at known stimulus boundaries — trap with
   a fine dt through the carrier-resolved phase, L-stable Gear with a
   coarse dt through the decay/settle phase — switched live, with the
   multistep history bootstrapped at the boundary.
2. **Cycle-skipping envelope integration**
   (:func:`~repro.circuits.run_transient_envelope`): resolve a few
   anchor cycles, then let the ``envelope/`` describing-function
   amplitude ODE advance the state by N periods at a time; every skip
   is re-anchored by a short correction burst whose measured-vs-
   predicted amplitude mismatch controls N adaptively.
3. **Warm-started envelope campaigns**
   (:func:`~repro.campaigns.run_envelope_campaign`): nearby Monte-
   Carlo draws settle to nearby envelopes, so the campaign visits the
   draws in nearest-neighbour order and seeds each run's skip
   schedule from the previous sample's settled state, with automatic
   cold fallback when a warm start is rejected.

Run it::

    PYTHONPATH=src python examples/envelope_transient.py

Knobs worth playing with:

* ``EnvelopeOptions(tolerance=...)`` — the skip-acceptance residual.
  Loose (0.05) lets the skip length grow almost monotonically;
  tight (0.005) buys envelope accuracy with more correction bursts.
  ``skip="off"`` is the escape hatch: bit-identical to the plain
  engine, with provenance metadata still attached.
* ``resolve_cycles`` / ``correct_cycles`` — the anchor and correction
  burst lengths.  Longer bursts measure the amplitude better (the
  engine reads it off the last resolved cycle), shorter ones skip
  sooner.
* ``skip_initial`` / ``skip_max`` / ``grow`` / ``shrink`` — the skip
  ladder.  The defaults double on sustained accuracy and quarter on a
  mismatch, the classic TR-BDF economy.
* ``PhaseSchedule.carrier_then_settle(t_split, ...)`` — move the
  split point: too early and Gear integrates live carrier (expensive
  at its worse error constant), too late and trap resolves dead tail.
"""

import time

import numpy as np

from repro.campaigns import run_envelope_campaign
from repro.circuits import (
    EnvelopeOptions,
    PhaseSchedule,
    TransientOptions,
    run_transient,
    run_transient_envelope,
)
from repro.core import OscillatorNetlist, supply_loss_tank_circuit
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter

F = 4e6
T = 1.0 / F
Q = 15.0
L = 1e-6


def tank():
    return RLCTank.from_frequency_and_q(F, Q, L)


def build_oscillator(i_max):
    return OscillatorNetlist(tank(), vref=2.5).build(
        TanhLimiter(gm=6e-3, i_max=i_max)
    )


def envelope_for(i_max, **kw):
    model = EnvelopeModel(tank(), TanhLimiter(gm=6e-3, i_max=i_max))
    return EnvelopeOptions(period=T, nodes=("lc1", "lc2"), model=model, **kw)


# -- 1. per-phase method switching on the supply-loss scenario ---------------

print("== phase schedule: trap carrier, Gear decay (supply loss) ==")
T_FAULT = 40 * T
schedule = PhaseSchedule.carrier_then_settle(
    T_FAULT,
    carrier_dt=T / 40,
    settle_dt=T / 4,
    settle_method="gear",
    max_order=3,
)
circuit = supply_loss_tank_circuit(F, T_FAULT)
phased = run_transient(
    circuit,
    TransientOptions(
        t_stop=400 * T,
        dt=T / 40,
        step_control="adaptive",
        phases=schedule,
    ),
)
for switch in phased.stats["phases"]:
    print(
        f"  switched to {switch['method']}(order<={switch['order']}) at "
        f"t={switch['t'] * F:.1f} cycles, dt={switch['dt']:.2e}, "
        f"bootstrapped={switch['bootstrapped']}"
    )
print(f"  accepted steps: {phased.stats['accepted_steps']}")

# -- 2. cycle-skipping envelope integration (Fig 16 startup) ------------------

print("\n== cycle-skipping envelope vs carrier-resolved (400 cycles) ==")
options = TransientOptions(
    t_stop=400 * T,
    dt=T / 40,
    method="trap",
    use_dc_operating_point=False,
    record_nodes=("lc1", "lc2"),
)

t0 = time.perf_counter()
gold = run_transient(build_oscillator(2e-3), options)
wall_gold = time.perf_counter() - t0

for tolerance in (0.05, 0.02, 0.005):
    t0 = time.perf_counter()
    env = run_transient_envelope(
        build_oscillator(2e-3), options, envelope_for(2e-3, tolerance=tolerance)
    )
    wall = time.perf_counter() - t0
    e = env.stats["envelope"]
    a_gold = 0.5 * gold.differential("lc1", "lc2").window(
        options.t_stop - 2 * T, options.t_stop
    ).peak_to_peak()
    err = abs(e["final"]["amplitude"] - a_gold) / a_gold
    print(
        f"  tolerance={tolerance:<6}: resolved {e['resolved_cycles']:.0f}/"
        f"{e['total_cycles']:.0f} cycles, amplitude err {err * 100:.2f}%, "
        f"wall {wall * 1e3:.0f} ms (carrier: {wall_gold * 1e3:.0f} ms)"
    )

# -- 3. a 64-sample warm-started polling campaign -----------------------------

print("\n== 64-sample warm-started envelope campaign (polling draws) ==")
# A keyless-entry polling sequence re-simulates the same startup over
# per-poll drive-strength draws; nearby draws chain warm.
rng = np.random.default_rng(7)
draws = 2e-3 * (1.0 + 0.05 * rng.standard_normal(64))
campaign_options = TransientOptions(
    t_stop=200 * T,
    dt=T / 40,
    method="trap",
    use_dc_operating_point=False,
    record_nodes=("lc1", "lc2"),
)

t0 = time.perf_counter()
results = run_envelope_campaign(
    list(draws), build_oscillator, campaign_options, envelope_for, params=list(draws)
)
wall = time.perf_counter() - t0

stats = [r.stats["envelope"] for r in results]
accepted = sum(1 for s in stats if s["warm_start"] == "accepted")
rejected = sum(1 for s in stats if s["warm_start"] == "rejected")
resolved = sum(s["resolved_cycles"] for s in stats)
total = sum(s["total_cycles"] for s in stats)
print(f"  warm starts accepted: {accepted}, rejected: {rejected}")
print(
    f"  resolved {resolved:.0f}/{total:.0f} cycles "
    f"({total / max(resolved, 1):.1f}x skip economy), wall {wall:.2f} s"
)
amps = np.array([s["final"]["amplitude"] for s in stats])
print(
    f"  settled amplitude across draws: {amps.mean():.4f} "
    f"+/- {amps.std():.4f} V"
)
