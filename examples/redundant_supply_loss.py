"""Redundant dual-oscillator system losing one supply (paper §8).

Two systems with mutually-coupled excitation coils run side by side;
at t = 25 ms system 2 loses its Vdd.  What happens to system 1 depends
entirely on the *output stage topology* of the dead chip:

* the paper's Fig 11 bulk-switched driver presents ~10 kohm — system 1
  barely notices;
* a standard CMOS driver (Fig 10a) clamps the tank through its bulk
  diodes — at larger operating amplitudes system 1 collapses.

Run:  python examples/redundant_supply_loss.py
"""

from repro import OscillatorConfig, RLCTank
from repro.analysis import format_si
from repro.core.output_stage import run_supply_loss_sweep
from repro.sensor import DualSystemScenario, effective_load_resistance


def main() -> None:
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)

    for target_pp, label in ((2.7, "paper operating point"), (4.0, "stress amplitude")):
        target_peak = target_pp / 2.0
        print(f"\n=== Operating amplitude {target_pp} Vpp ({label}) ===")
        for topology in ("fig11", "fig10a"):
            sweep = run_supply_loss_sweep(topology)
            r_pins = effective_load_resistance(sweep, target_peak)
            scenario = DualSystemScenario(
                config=OscillatorConfig(
                    tank=tank, target_peak_amplitude=target_peak
                ),
                topology=topology,
                coupling=0.6,
                fault_time=0.025,
                t_stop=0.05,
                sweep=sweep,
            )
            outcome = scenario.run()
            failures = sorted(k.value for k in outcome.trace.failures) or ["none"]
            print(
                f"  dead chip = {topology}: pins look like "
                f"{format_si(r_pins, 'ohm'):>10}, live system "
                f"{'SURVIVES' if outcome.survived else 'FAILS':8} "
                f"(amplitude {outcome.amplitude_before:.2f} -> "
                f"{outcome.amplitude_after:.2f} V pk, "
                f"failures: {', '.join(failures)})"
            )

    print(
        "\nThe Fig 11 driver keeps the redundant pair independent — the"
        "\npaper's safety-critical requirement; a standard driver does not."
    )


if __name__ == "__main__":
    main()
