"""Carrier-resolution startup (paper Fig 16) on the MNA simulator.

Runs the Fig 1 netlist — coil + Rs + Cosc1/Cosc2 around Vref, driven
by the current-limited transconductor — from a tiny seed current and
watches the oscillation build up, then cross-checks the result against
the averaged envelope model.

Run:  python examples/startup_transient.py
"""

import numpy as np

from repro.analysis import envelope_by_peaks, oscillation_frequency, render_series
from repro.core import OscillatorNetlist
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter


def main() -> None:
    tank = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
    limiter = TanhLimiter(gm=6e-3, i_max=2e-3)
    netlist = OscillatorNetlist(tank, vref=2.5)

    t_stop = 80 / tank.frequency
    print(f"Simulating {t_stop*1e6:.0f} us ({80} carrier cycles) at "
          f"{tank.frequency/1e6:.0f} MHz ...")
    result = netlist.run_startup(code=0, t_stop=t_stop, limiter=limiter)

    diff = result.differential
    envelope = envelope_by_peaks(diff)
    print(render_series(
        envelope.t * 1e6,
        envelope.y,
        x_label="t (us)",
        y_label="envelope (V pk)",
        title="Fig 16: oscillation envelope during startup",
        max_points=20,
    ))

    f = oscillation_frequency(diff.window(0.5 * t_stop, t_stop))
    predicted = EnvelopeModel(tank, limiter).steady_state()
    print(f"\ncarrier frequency : {f/1e6:.3f} MHz (tank: {tank.frequency/1e6:.3f})")
    print(f"final amplitude   : {envelope.y[-1]:.3f} V pk "
          f"(envelope model predicts {predicted:.3f})")
    print(f"agreement         : {abs(envelope.y[-1]/predicted-1)*100:.1f} %")


if __name__ == "__main__":
    main()
