"""Adaptive time stepping on a stiff-then-slow transient.

The supply-loss scenario of paper §8, seen from the live tank: a
forced 4 MHz carrier, the drive collapses at the fault instant, the
tank rings down into the dead driver's ~10 kohm pins, and then a long
quiet tail follows.  A fixed step sized for the carrier pays
carrier-resolution cost over the whole record; the LTE controller
walks the quiet tail in steps ~100x larger at the same shape-level
accuracy.

Step-control knobs on :class:`repro.circuits.TransientOptions`:

``step_control``      "fixed" (default) or "adaptive".
``dt``                initial step (adaptive) / the grid (fixed).
``dt_min, dt_max``    hard step bounds; the controller moves on the
                      quantized grid dt_max/2^k between them, so the
                      per-step-size assembly caches are never
                      thrashed.  Keep dt_max at ~T_carrier/10 when an
                      envelope will be extracted from the result.
``lte_reltol``        accepted local error per step, relative to the
``lte_abstol``        live signal amplitude, plus an absolute floor
                      (volts) that lets tiny startup seeds take large
                      steps.
``lte_safety``        classic controller safety factor (default 0.9).
``max_step_growth``   growth clamp per accepted step (default 2.0).
``breakpoints``       extra forced step boundaries; pulse/pwl/delayed
                      sine stimuli contribute theirs automatically so
                      the integrator never steps across an edge.

Run:  python examples/adaptive_transient.py
"""

import time

import numpy as np

from repro.analysis import render_series
from repro.circuits import TransientOptions, run_transient
from repro.core import supply_loss_tank_circuit

F0 = 4e6
T = 1.0 / F0
T_FAULT = 40 * T
T_STOP = 400 * T


def build_supply_loss_circuit():
    """Driven tank whose excitation dies at T_FAULT (a §8 supply loss).

    The library builder annotates the composite stimulus with a
    breakpoint at the fault instant, so the adaptive engine lands a
    step boundary exactly on the discontinuity — do the same (attach
    ``func.breakpoints = lambda t_stop: (...)``) to any custom
    stimulus with a kink or edge.
    """
    return supply_loss_tank_circuit(F0, T_FAULT)


def main() -> None:
    fixed_options = TransientOptions(
        t_stop=T_STOP,
        dt=T / 40,
        use_dc_operating_point=False,
    )
    adaptive_options = TransientOptions(
        t_stop=T_STOP,
        dt=T / 40,          # initial step: carrier resolution
        step_control="adaptive",
        dt_min=T / 640,     # breakpoint restarts may dip this low
        dt_max=8 * T,       # the quiet tail strides over 8 cycles/step
        lte_reltol=1e-3,
        lte_abstol=1e-6,
        use_dc_operating_point=False,
    )

    t0 = time.perf_counter()
    fixed = run_transient(build_supply_loss_circuit(), fixed_options)
    t_fixed = time.perf_counter() - t0
    t0 = time.perf_counter()
    adaptive = run_transient(build_supply_loss_circuit(), adaptive_options)
    t_adaptive = time.perf_counter() - t0

    wave = adaptive.differential("lc1", "lc2")
    print(render_series(
        wave.t * 1e6,
        wave.y,
        x_label="t (us)",
        y_label="V(LC1-LC2) (V)",
        title="Supply loss at t = 10 us: carrier, ring-down, quiet tail",
        max_points=24,
    ))

    stats = adaptive.stats
    dts = np.diff(wave.t)
    print(f"\nfixed grid    : {fixed.stats['steps']} steps, {t_fixed*1e3:.0f} ms")
    print(
        f"adaptive grid : {stats['accepted_steps']} accepted + "
        f"{stats['rejected_steps']} rejected steps, {t_adaptive*1e3:.0f} ms "
        f"({t_fixed / t_adaptive:.1f}x)"
    )
    print(
        f"step range    : {stats['min_dt']*1e9:.1f} ns .. "
        f"{stats['max_dt']*1e9:.0f} ns "
        f"({stats['max_dt']/stats['min_dt']:.0f}x dynamic range, "
        f"{stats['dt_cache_entries']} cached step sizes)"
    )
    print(
        f"grid density  : {np.sum(wave.t < T_FAULT)} samples before the "
        f"fault, {np.sum(wave.t >= 2 * T_FAULT)} in the tail "
        f"(breakpoints hit: {stats['breakpoints_hit']})"
    )


if __name__ == "__main__":
    main()
