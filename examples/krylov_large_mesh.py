"""The Krylov backend on a 10k-unknown sensing-coil mesh.

The 2-D :class:`repro.sensor.CoilMesh` replicates an RLC tank cell per
node — at nx=50 that is a 12k-unknown MNA system, deep in the regime
where ``scipy.sparse.linalg.splu`` dominates transient wall time.  The
sparse backend refactors on every dt-cache entry build (and rebuild,
once the adaptive ladder cycles the LRU cache); the Krylov backend
instead keeps a small pool of *stale* LU factorizations and solves
every other system iteratively against the nearest one, so the
factorization count stays roughly flat no matter how long the run is.

Backend selection on :class:`repro.circuits.TransientOptions`:

``backend="dense"``    the historical dense path (small netlists).
``backend="sparse"``   CSR assembly + ``splu`` per dt entry.
``backend="krylov"``   GMRES/BiCGStab preconditioned by the stale-LU
                       anchor pool; solves that *are* an anchor take
                       a direct bit-exact path.
``backend="auto"``     dense below ~100 unknowns, then sparse, then
                       krylov above ``KRYLOV_AUTO_THRESHOLD`` (20k)
                       unknowns — no tuning needed.

Stale-preconditioner knobs on
:class:`repro.circuits.backend.KrylovBackend` (construct the backend
yourself and pass the instance as ``backend=`` to reach them):

``pool_size``           stale-LU anchor slots (default 12 ~ the
                        adaptive dt ladder's hot-matrix working set;
                        a too-narrow pool thrashes).
``refresh_iterations``  preconditioner applies a solve may need
                        before the *next* solve of that matrix
                        anchors a fresh LU on it (default 4).
``tol``                 preconditioned-residual convergence target
                        (default 1e-8; waveforms match the direct
                        backends at ~1e-7 or better).
``method``              "gmres" (default) or "bicgstab".

Run:  python examples/krylov_large_mesh.py [nx]
"""

import sys
import time

import numpy as np

from repro.circuits import TransientOptions, run_transient
from repro.circuits.backend import KrylovBackend
from repro.envelope import RLCTank
from repro.sensor import CoilMesh

#: One 4 MHz-class LC cell; the mesh replicates it per node.
TANK = RLCTank(inductance=10e-6, capacitance=1e-9, series_resistance=2.0)
PERIODS = 8


def run(mesh: CoilMesh, backend):
    f0 = mesh.tank.frequency
    options = TransientOptions(
        t_stop=PERIODS * 8.0 / f0,
        dt=0.05 / f0,
        step_control="adaptive",
        backend=backend,
    )
    start = time.perf_counter()
    result = run_transient(mesh.build_circuit(drive="pulse"), options)
    return time.perf_counter() - start, result


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    mesh = CoilMesh(tank=TANK, nx=nx, ny=nx)
    print(
        f"{nx}x{nx} coil mesh: {mesh.unknown_count} unknowns, "
        f"{PERIODS} drive periods, adaptive stepping\n"
    )

    sparse_s, sparse = run(mesh, "sparse")
    krylov_s, krylov = run(mesh, "krylov")

    scale = float(np.abs(sparse.x).max())
    # Compare on the shared time points — an iterative solve may
    # legitimately flip one adaptive accept decision.
    _, i_s, i_k = np.intersect1d(
        np.round(sparse.t * mesh.tank.frequency, 9),
        np.round(krylov.t * mesh.tank.frequency, 9),
        return_indices=True,
    )
    diff = float(np.abs(sparse.x[i_s] - krylov.x[i_k]).max()) / scale
    counters = krylov.stats["krylov"]
    print(f"sparse  {sparse_s:7.2f}s  "
          f"{sparse.stats['lu_refactorizations']:>4} LU factorizations")
    print(f"krylov  {krylov_s:7.2f}s  "
          f"{krylov.stats['lu_refactorizations']:>4} LU factorizations  "
          f"({counters['solves']} solves, {counters['iterations']} "
          f"preconditioner applies)")
    print(f"\nspeedup {sparse_s / krylov_s:.2f}x, "
          f"waveforms agree to {diff:.1e} relative")

    # The knobs in action: a single-anchor pool on the same workload
    # thrashes — every dt-cache entry evicts the previous anchor.
    tight = KrylovBackend(pool_size=1)
    tight_s, _ = run(mesh, tight)
    print(f"\npool_size=1 (for contrast): {tight_s:.2f}s, "
          f"{tight.n_refreshes} refreshes vs {counters['refreshes']} "
          "with the default pool")


if __name__ == "__main__":
    main()
