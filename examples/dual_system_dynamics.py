"""Dynamic behaviour of the redundant dual-oscillator pair (§8).

Runs both regulated oscillators in one co-simulation with their coil
coupling active, then checks the physics that makes the redundancy
work: injection locking (Adler) for the "same frequency" requirement
and the loop's reaction when one supply dies mid-flight.

Run:  python examples/dual_system_dynamics.py
"""

import numpy as np

from repro import OscillatorConfig, RLCTank
from repro.envelope import InjectionLocking
from repro.envelope.locking import frequency_mismatch_from_tolerances
from repro.envelope.phase_noise import LeesonModel
from repro.sensor import DualCoSimulation


def main() -> None:
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    make = lambda: OscillatorConfig(tank=tank)

    # 1. Can the pair actually run "at the same frequency" (§8)?
    lock = InjectionLocking(tank, injection_ratio=0.6)
    budget = lock.max_tolerable_detuning()
    parts = frequency_mismatch_from_tolerances(0.004, 0.004)
    print(f"Injection lock range : ±{budget*100:.2f} % of f0 (k=0.6, Q=30)")
    print(f"0.4% L + 0.4% C parts: ±{parts*100:.2f} % detuning -> "
          f"{'LOCKED' if lock.locks(parts) else 'BEATS'}")

    # 2. Both systems up, then system 2 loses its supply at 20 ms.
    co = DualCoSimulation(
        config_1=make(), config_2=make(), coupling=0.3, kill_2_at=0.02
    )
    trace = co.run(0.05)
    i_kill = int(np.searchsorted(trace.t, 0.02))
    print(f"\nCo-simulation (coupling 0.3, system 2 dies at 20 ms):")
    print(f"  codes while coupled      : {trace.code_1[i_kill-1]} / "
          f"{trace.code_2[i_kill-1]} (solo would need more)")
    print(f"  survivor amplitude dip   : "
          f"{trace.amplitude_1[i_kill-1]:.3f} -> "
          f"{trace.amplitude_1[i_kill+20]:.3f} V pk")
    print(f"  survivor recovers to     : {trace.amplitude_1[-1]:.3f} V pk "
          f"at code {trace.code_1[-1]} (loop compensated "
          f"{trace.code_1[-1] - trace.code_1[i_kill-1]:+d} codes)")
    print(f"  dead system amplitude    : {trace.amplitude_2[-1]:.4f} V")

    # 3. Spectral purity at the regulated amplitude.
    noise = LeesonModel(tank, amplitude_peak=1.35)
    print(f"\nLeeson phase noise at 10 kHz offset: "
          f"{noise.phase_noise_dbc(10e3):.1f} dBc/Hz "
          f"(corner {noise.leeson_corner/1e3:.0f} kHz)")


if __name__ == "__main__":
    main()
