"""Walking the supply-loss quiet tail: trap vs BDF2 vs variable-order Gear.

The §8 supply-loss scenario is stiff-then-slow: a forced carrier until
the fault, a ring-down over a few dozen cycles, then a long quiet tail
where nothing happens — and where the integrator's *stability* matters
more than its local accuracy:

* **Trapezoidal** is A-stable but not L-stable: on the LC tank's
  near-imaginary eigenvalues its amplification factor has magnitude
  ~1, so the residual ring never damps numerically.  The adaptive
  controller must keep resolving that phantom carrier until its
  amplitude falls below the LTE floor — and at a tight accuracy
  target that is a long, expensive walk.
* **BDF2 / Gear** damp hard at large ``omega*dt`` (BDF2 is L-stable):
  once the tail is genuinely quiet the numerical solution collapses
  to the true near-zero decay and the step controller can stride.
  The variable-order Gear member additionally climbs to third order
  wherever the history supports it, taking ~1.9x larger steps than a
  second-order formula at the same tolerance.

Run it::

    PYTHONPATH=src python examples/stiff_tail_gear.py

Expected shape of the output: trap and the BDF members agree on the
pre-fault amplitude to well under a percent, gear's quiet tail is
*exactly* zero (damped below double precision) while trap carries a
phantom ring around the LTE floor, and gear's accepted-step count is
less than half of trap's at the same tolerances — the ratio the
``supply_loss_gear`` workload of ``benchmarks/run_perf.py`` gates.

Knobs worth playing with:

* ``method="gear", max_order=2`` — pure BDF2: still kills the phantom
  tail, but pays ~1.4x more steps than trap on the *live* carrier
  (its error constant is worse), which is why the third-order tier is
  where the step economy flips.
* ``order_control=True`` — the controller starts at first order and
  earns its way up (watch ``order_raises``/``order_histogram`` in the
  stats); ``False`` ramps straight to the highest order the committed
  history supports.
* ``lte_reltol`` — at loose tolerances (1e-3) the carrier is cheap for
  everyone and trap's better error constant wins; the BDF step
  economy appears as the target tightens (1e-5 and beyond).
"""

import numpy as np

from repro.circuits import TransientOptions, run_transient
from repro.core import supply_loss_tank_circuit

F0 = 4e6
T = 1.0 / F0
T_FAULT = 40 * T
T_STOP = 400 * T


def run(method: str, **method_kw) -> dict:
    circuit = supply_loss_tank_circuit(F0, T_FAULT, q=40.0, inductance=1e-6)
    options = TransientOptions(
        t_stop=T_STOP,
        dt=T / 40,
        method=method,
        step_control="adaptive",
        use_dc_operating_point=False,
        dt_min=T / 81920,
        dt_max=8 * T,
        lte_reltol=1e-6,
        lte_abstol=1e-9,
        **method_kw,
    )
    result = run_transient(circuit, options)
    wave = result.differential("lc1", "lc2")
    tail = np.abs(wave.window(300 * T, T_STOP).y).max()
    return {
        "accepted": result.stats["accepted_steps"],
        "rejected": result.stats["rejected_steps"],
        "tail_residual_V": tail,
        "order_histogram": result.stats.get("order_histogram", {}),
    }


def main() -> None:
    runs = {
        "trap": run("trap"),
        "bdf2": run("bdf2"),
        "gear (1-2, order control)": run("gear"),
        "gear (1-3)": run("gear", max_order=3, order_control=False),
    }
    width = max(len(name) for name in runs)
    print(f"supply-loss decay, {T_STOP / T:.0f} cycles, lte_reltol=1e-6\n")
    print(f"{'method':<{width}}  accepted  rejected  quiet-tail residual  orders")
    for name, stats in runs.items():
        hist = ",".join(
            f"{order}:{count}" for order, count in stats["order_histogram"].items()
        ) or "-"
        print(
            f"{name:<{width}}  {stats['accepted']:8d}  {stats['rejected']:8d}"
            f"  {stats['tail_residual_V']:17.2e}  {hist}"
        )
    ratio = runs["trap"]["accepted"] / runs["gear (1-3)"]["accepted"]
    print(
        f"\ntrap / gear(1-3) accepted-step ratio: {ratio:.2f}x "
        "(the supply_loss_gear bench gates this at >= 2x)"
    )


if __name__ == "__main__":
    main()
