"""Explore the exponential-PWL DAC design space (paper §3, Fig 3/4).

Shows why the paper's 7-bit segmented law works: near-constant
relative step over a 0:1984 current range, the equivalence to an
11-bit linear DAC, and what silicon mismatch does to it (the measured
Fig 13/14 non-monotonicity at code 96) — plus a Monte-Carlo estimate
of how often such a code appears at these matching sigmas.

Run:  python examples/dac_design_explorer.py
"""

import numpy as np

from repro.analysis import format_si, render_table
from repro.core import ExponentialPWLDAC, HardwareDAC, LinearDAC
from repro.core.constants import I_LSB
from repro.core.design_equations import delta_for_range, pwl_approximation_error
from repro.mc import MismatchProfile, run_monte_carlo


def main() -> None:
    ideal = ExponentialPWLDAC()

    # 1. The law itself.
    print("7-bit PWL exponential DAC:")
    print(f"  full scale       : {format_si(ideal.full_scale(), 'A')} "
          f"({ideal.factor(127)} x {format_si(I_LSB, 'A')})")
    steps = ideal.relative_steps(start_code=17)
    print(f"  rel step (>16)   : {steps.min()*100:.2f} % .. {steps.max()*100:.2f} %")
    delta = delta_for_range(1984 / 16, 111)
    print(f"  ideal exp delta  : {delta*100:.2f} % per code (Eq 6)")
    err = pwl_approximation_error()
    print(f"  PWL vs exp error : within ±{max(abs(e) for e in err)*100:.1f} %")

    # 2. The linear alternative.
    lin = LinearDAC(bits=11, i_lsb=I_LSB)
    print(f"\n11-bit linear DAC over the same range:")
    lsteps = lin.relative_steps(start_code=17)
    print(f"  rel step         : {lsteps.min()*100:.3f} % .. {lsteps.max()*100:.1f} % "
          "(useless at low codes)")

    # 3. Mismatch: the measured-like silicon.
    real = HardwareDAC(mismatch=MismatchProfile.measured_like())
    print(f"\nMeasured-like silicon (Fig 13/14):")
    print(f"  non-monotonic codes : {real.non_monotonic_codes()}")
    print(f"  worst rel step      : {real.max_relative_step()*100:.2f} % "
          "(< 8.1 % window -> regulation unaffected)")

    # 4. Monte Carlo: how often is a part non-monotonic at all?
    def has_reversal(profile: MismatchProfile) -> float:
        dac = HardwareDAC(mismatch=profile)
        return float(bool(dac.non_monotonic_codes()))

    mc = run_monte_carlo(has_reversal, n_samples=200, metric_name="non-monotonic")
    print(f"\nMonte Carlo ({mc.n} parts at default sigmas): "
          f"{mc.fraction_true()*100:.0f} % of parts have >=1 non-monotonic code")
    print("The regulation loop tolerates all of them (window > max step).")


if __name__ == "__main__":
    main()
