"""The numerical health layer, end to end.

A simulator's worst answer is a *wrong-looking-right* one: a netlist
typo held up by gmin, a NaN from a bad device model silently smeared
across the waveform, an ill-conditioned system with three trustworthy
digits presented as twelve.  The health layer turns each of those
into a structured, inspectable record, on three levels:

1. **Preflight lint** — ``preflight="warn"`` (or ``"raise"``) on any
   analysis runs :func:`repro.circuits.check_netlist` before the
   first solve: dangling nodes, islands with no DC path to ground,
   voltage-source loops, a gmin=0 singularity probe, extreme
   parameter spreads, out-of-range breakpoints.  Findings are
   :class:`~repro.circuits.Diagnostic` records; error-severity ones
   abort under ``"raise"``.

2. **Runtime guards** — ``TransientOptions(guards=True)`` checks
   every step solution for NaN/Inf and estimates the condition
   number of each new factorization (a few triangular solves against
   the cached LU — never a refactorization).  A poisoned run aborts
   with ``phase="health"`` instead of returning garbage; in the
   batched engine with ``quarantine=True`` only the guilty sample is
   masked out while the rest of the batch finishes.

3. **Post-step certification** — ``TransientOptions(certify=True)``
   recomputes the accepted step's residual from an independent
   assembly, checks reactive charge/flux consistency and the time
   grid, and files :class:`~repro.circuits.HealthReport` records in
   ``stats["health"]``.  Campaigns aggregate them per sample
   (``MonteCarloResult.health``).

Healthy runs pay nothing but arithmetic: armed results are
bit-identical to unarmed ones (``benchmarks/run_perf.py --check``
gates exactly that).

Run:  python examples/health_checks.py
"""

import warnings

import numpy as np

from repro.campaigns import BatchOptions
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import (
    Circuit,
    TransientOptions,
    check_netlist,
    dc,
    run_transient,
    sine,
)
from repro.errors import ConvergenceError, PreflightError


def build_healthy():
    circuit = Circuit("rc")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, 1e5))
    circuit.resistor("R", "in", "out", 1e3)
    circuit.capacitor("C", "out", "0", 1e-9)
    return circuit


OPTIONS = TransientOptions(t_stop=1e-6, dt=1e-9, step_control="fixed")


def demo_preflight() -> None:
    print("1. preflight lint")

    # A typo'd netlist: the load returns to 'vss' — a brand-new node
    # this library does *not* alias to ground — and an AC-coupled
    # divider has no DC path at all.  Both solve "fine" through gmin;
    # preflight names them instead.
    circuit = Circuit("typo")
    circuit.voltage_source("Vin", "in", "0", dc(1.0))
    circuit.resistor("R1", "in", "mid", 1e3)
    circuit.resistor("R2", "mid", "vss", 1e3)  # meant "0"
    circuit.capacitor("Cc", "in", "flt1", 1e-9)
    circuit.resistor("R3", "flt1", "flt2", 1e3)
    circuit.capacitor("Cc2", "flt2", "0", 1e-9)
    for diag in check_netlist(circuit, analysis="dc"):
        print(f"   [{diag.severity}] {diag.code}: nodes {diag.nodes}")

    # Error-severity findings abort under preflight="raise": two
    # voltage sources in parallel overdetermine KVL.
    loop = Circuit("loop")
    loop.voltage_source("V1", "a", "0", dc(1.0))
    loop.voltage_source("V2", "a", "0", dc(2.0))
    loop.resistor("R", "a", "0", 1e3)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_transient(
                loop,
                TransientOptions(t_stop=1e-6, dt=1e-9, preflight="raise"),
            )
    except PreflightError as exc:
        print(f"   preflight='raise' aborted: {exc}")


T_NAN = 5e-7


def nan_after(t):
    """A broken device model: returns NaN past 0.5 us."""
    return float("nan") if t > T_NAN else 1e-3


def build_poisoned():
    circuit = Circuit("poisoned")
    circuit.resistor("R", "out", "0", 1e3)
    circuit.capacitor("C", "out", "0", 1e-9)
    circuit.current_source("I", "0", "out", nan_after)
    return circuit


def demo_guards() -> None:
    print("2. runtime guards")

    # Unguarded, the NaN propagates silently into the waveform:
    silent = run_transient(build_poisoned(), OPTIONS)
    print(f"   unguarded run 'succeeds' with "
          f"{int(np.isnan(silent.x).sum())} NaN entries in the waveform")

    # Guarded, the run aborts at the poisoned step, structured:
    armed = TransientOptions(
        t_stop=1e-6, dt=1e-9, guards=True, on_abort="partial"
    )
    partial = run_transient(build_poisoned(), armed)
    print(f"   guarded run aborts: reason="
          f"{partial.stats['abort_reason']!r} at t={partial.t[-1]:.2e}s, "
          f"partial waveform finite: {bool(np.isfinite(partial.x).all())}")
    try:
        run_transient(
            build_poisoned(),
            TransientOptions(t_stop=1e-6, dt=1e-9, guards=True),
        )
    except ConvergenceError as exc:
        print(f"   (on_abort='raise' gives phase={exc.phase!r}: {exc})")


def demo_certification_and_campaign() -> None:
    print("3. certification + campaign quarantine")

    armed = TransientOptions(
        t_stop=1e-6,
        dt=1e-9,
        step_control="fixed",
        guards=True,
        certify=True,
        quarantine=True,
        on_abort="partial",
    )

    # 8-sample campaign, sample 3 poisoned: the batched engine
    # quarantines it alone, the other 7 certify every step.  All
    # samples share one topology (the lockstep engine stacks
    # homogeneous netlists); only the poisoned source differs.
    def build(task):
        circuit = Circuit(f"s{task}")
        circuit.resistor("R", "out", "0", 1e3 * (1.0 + 0.01 * task))
        circuit.capacitor("C", "out", "0", 1e-9)
        circuit.current_source(
            "I", "0", "out", nan_after if task == 3 else 1e-3
        )
        return circuit

    results = run_transient_campaign(
        list(range(8)), build, armed, BatchOptions(batch_mode="vectorized")
    )
    for s, result in enumerate(results):
        if result.stats.get("quarantined"):
            record = result.stats["quarantine"]
            reports = result.stats["health"]
            print(f"   sample {s}: QUARANTINED reason={record['reason']!r} "
                  f"at t={record['time']:.2e}s, {len(reports)} health "
                  f"report(s), first: {reports[0].kind!r}")
        else:
            print(f"   sample {s}: {result.stats['certified_steps']} steps "
                  f"certified, {len(result.stats['health'])} reports")

    # Bit-identity: arming the layer changes nothing on healthy runs.
    plain = run_transient(build_healthy(), OPTIONS)
    checked = run_transient(
        build_healthy(),
        TransientOptions(
            t_stop=1e-6, dt=1e-9, step_control="fixed",
            guards=True, certify=True,
        ),
    )
    print(f"   healthy armed run bit-identical: "
          f"{bool(np.array_equal(plain.x, checked.x))}")


def main() -> None:
    demo_preflight()
    demo_guards()
    demo_certification_and_campaign()


if __name__ == "__main__":
    main()
