"""A 256-sample Monte-Carlo campaign, sharded across cores.

PR 3 made campaigns *vectorized*: one lockstep time loop over stacked
``(S, n, n)`` systems.  This example shows the next multiplier —
``BatchOptions(batch_mode="sharded")`` cuts the stacked campaign into
sub-batches dispatched across a process pool, each shard running the
same lockstep engine and streaming its fixed-grid records into one
shared-memory block at global per-sample offsets.

Two properties make the mode safe to reach for by default (and the
``"auto"`` policy does, on multi-core machines):

* **Bit-identical merges.**  Every per-sample solve in the lockstep
  engine — the block-diagonal LU, the per-sample Newton masks, the
  stacked-Newton DC seed — is independent of batch membership, so a
  fixed-grid campaign merges back bit-identical to the unsharded run
  no matter how it was cut.  This example verifies that for every
  shard size it walks.
* **Graceful degradation.**  With one worker (or one core) the shards
  run sequentially in-process: same merges, no pool, no shared
  memory, and wall time within noise of the single-batch run.

The second knob, ``stiffness_bins``, matters on *adaptive* grids: a
lockstep shard integrates one shared grid sized by its stiffest
member, so a single fast-time-constant outlier drags a whole shard to
its dt.  A probe step ranks samples by first-step LTE ratio
(:func:`repro.circuits.probe_stiffness_ratios`), samples are clustered
into stiffness quantile bins (:func:`repro.circuits.stiffness_bins`),
and shards are cut within bins — so the benign samples share coarse
grids and only the stiff bin pays for fine ones.

Run:  python examples/parallel_campaign.py
"""

import os
import time

import numpy as np

from repro.campaigns import BatchOptions
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import Circuit, TransientOptions, sine
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter

N_SAMPLES = 256
F0 = 4e6
T0 = 1.0 / F0
CYCLES = 20

OPTIONS = TransientOptions(
    t_stop=CYCLES * T0,
    dt=T0 / 40,
    method="trap",
    use_dc_operating_point=False,
    record_nodes=("lc1", "lc2"),
)


def build_startup_sample(index):
    """One seeded mismatch draw -> the Fig 1 startup netlist."""
    rng = np.random.default_rng(4242 + index)
    gm_scale = 1.0 + 0.05 * rng.standard_normal()
    q_scale = 1.0 + 0.03 * rng.standard_normal()
    tank = RLCTank.from_frequency_and_q(F0, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def build_mixed_stiffness_sample(index):
    """Mostly-benign RC samples with a sprinkling of fast outliers
    (50x the drive frequency, so LTE control forces a 50x finer
    grid) — the workload shape where stiffness clustering pays: in
    index order every shard would catch one outlier and integrate
    its fine grid."""
    rng = np.random.default_rng(9000 + index)
    fast = index % 8 == 0
    freq = (50e6 if fast else 1e6) * rng.uniform(0.95, 1.05)
    circuit = Circuit("mixed")
    circuit.voltage_source("Vin", "in", "0", sine(1.0, freq))
    circuit.resistor("R", "in", "out", 1e3)
    circuit.capacitor("C", "out", "0", 1e-10)
    return circuit


def amplitude(result):
    return float(np.max(np.abs(result.waveform("lc1").y - result.waveform("lc2").y)))


def walk_shard_sizes() -> None:
    tasks = list(range(N_SAMPLES))
    print(f"machine: {os.cpu_count()} core(s)")
    print(f"\n-- {N_SAMPLES}-sample startup MC, fixed grid "
          f"({CYCLES} cycles x 40 pts) --")

    start = time.perf_counter()
    reference = run_transient_campaign(
        tasks, build_startup_sample, OPTIONS,
        BatchOptions(batch_mode="vectorized"),
    )
    base_wall = time.perf_counter() - start
    print(f"single lockstep batch:          {base_wall:6.2f}s  (1 shard)")

    for shard_size in (32, 64, 128):
        start = time.perf_counter()
        sharded = run_transient_campaign(
            tasks, build_startup_sample, OPTIONS,
            BatchOptions(
                batch_mode="sharded",
                shard_size=shard_size,
                max_workers="auto",
            ),
        )
        wall = time.perf_counter() - start
        identical = all(
            np.array_equal(a.x, b.x) for a, b in zip(reference, sharded)
        )
        stats = sharded[0].stats
        print(
            f"sharded (shard_size={shard_size:3d}):     {wall:6.2f}s  "
            f"({stats['n_shards']} shards x {stats['shard_workers']} "
            f"worker(s), bit-identical={identical})"
        )
        assert identical, "fixed-grid shard merge must be bit-identical"

    p05, p95 = np.quantile([amplitude(r) for r in reference], [0.05, 0.95])
    print(f"startup amplitude p05={p05:.4f} V  p95={p95:.4f} V")


def walk_stiffness_bins() -> None:
    n = 64
    tasks = list(range(n))
    options = TransientOptions(
        t_stop=2e-6, dt=1e-9, step_control="adaptive"
    )
    print(f"\n-- {n}-sample mixed-stiffness MC, adaptive grid --")
    print("(lockstep shards integrate their worst member's grid: "
          "clustering keeps benign samples off the stiff outliers' dt)")
    for bins in (1, 4, 8):
        start = time.perf_counter()
        results = run_transient_campaign(
            tasks, build_mixed_stiffness_sample, options,
            BatchOptions(
                batch_mode="sharded",
                shard_size=8,
                stiffness_bins=bins,
                max_workers="auto",
            ),
        )
        wall = time.perf_counter() - start
        # One grid per shard: count each shard's accepted steps once.
        steps_by_shard = {}
        for result in results:
            steps_by_shard[result.stats["shard"]] = result.stats["steps"]
        grid_steps = sum(steps_by_shard.values())
        label = "unclustered" if bins == 1 else f"{bins} stiffness bins"
        print(
            f"{label:>18s}:  {grid_steps:6d} accepted shard-steps, "
            f"{wall:5.2f}s"
        )


def main() -> None:
    walk_shard_sizes()
    walk_stiffness_bins()


if __name__ == "__main__":
    main()
