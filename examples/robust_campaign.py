"""Fault-tolerant campaign execution, end to end.

Large campaigns fail in boring ways: one mismatch draw refuses to
converge, a worker process dies, the job gets killed at 80%.  The
fault-tolerance layer turns each of those from "lose the campaign"
into a structured, resumable outcome, on three levels:

1. **Per-run rescue** — when Newton fails at the dt floor,
   ``TransientOptions(rescue=True)`` walks a continuation ladder on
   the failing *step* (gmin ramp, then source ramp) before giving
   up; budgets (``max_steps``, ``max_wall_time``, ``max_rescues``)
   bound the worst case, and ``on_abort="partial"`` returns the
   waveform up to the abort instead of raising.

2. **Per-sample quarantine** — in the lockstep batched engine
   (``quarantine=True``), a sample that exhausts rescue is masked
   out of the batch: its state freezes, the survivors finish
   normally, and the campaign front-end re-runs quarantined samples
   solo through the rescue ladder.  8 bad draws no longer cost you
   the other 56.

3. **Campaign resilience** — ``run_batch`` grows
   ``on_error="skip"|"retry"`` (structured
   :class:`~repro.errors.TaskFailure` records in the failed slots),
   :class:`repro.campaigns.RetryPolicy` backoff with an optional
   per-attempt task ``adjust`` hook, and periodic checkpointing with
   ``resume_from=`` so a killed campaign re-runs only what's missing.

The healthy path is untouched: with no failures, rescue and
quarantine add *zero* Newton solves and results stay bit-identical
(``benchmarks/run_perf.py --check`` gates exactly that).

Faults here are injected deterministically through the test-only
``NewtonOptions.fail_hook`` so the demo is reproducible without
hunting for a genuinely divergent netlist.

Run:  python examples/robust_campaign.py
"""

import os
import tempfile

import numpy as np

from repro.campaigns import BatchOptions, RetryPolicy, TaskFailure, run_batch
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import TransientOptions, run_transient
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.errors import ConvergenceError

F0 = 4e6
T0 = 1.0 / F0

N_SAMPLES = 32
FAULTY = frozenset({3, 11, 17, 22})


def build_sample(index):
    """Seeded mismatch draw: deterministic gm/Q spread per index."""
    rng = np.random.default_rng(1000 + index)
    tank = RLCTank.from_frequency_and_q(
        F0, 15.0 * (1.0 + 0.03 * rng.standard_normal()), 1e-6
    )
    circuit = OscillatorNetlist(tank, vref=2.5).build(
        TanhLimiter(gm=6e-3 * (1.0 + 0.05 * rng.standard_normal()), i_max=2e-3)
    )
    circuit.mc_index = index
    return circuit


class TransientFault:
    """Deterministic divergence: step solves fail from ``t_on`` until
    the rescue ladder intervenes (so per-run rescue *works*)."""

    def __init__(self, t_on):
        self.t_on = t_on
        self.active = True

    def __call__(self, time, phase, circuit):
        if phase == "rescue":
            self.active = False  # the ladder's solve succeeds
            return False
        return self.active and time >= self.t_on


def persistent_fault(time, phase, circuit):
    """Divergence that rescue cannot fix, but only for FAULTY draws —
    the quarantine demo's 4 bad samples."""
    return getattr(circuit, "mc_index", -1) in FAULTY and time >= 5e-7


def demo_rescue_ladder():
    print("== 1. per-run rescue ladder ==")
    options = TransientOptions(
        t_stop=4 * T0, dt=T0 / 40, method="trap",
        use_dc_operating_point=False, rescue=True,
    )
    options.newton.fail_hook = TransientFault(t_on=1.0 * T0)
    result = run_transient(build_sample(0), options)
    print(f"   transient hit an injected Newton failure at t={T0:.3e} s")
    print(f"   rescues taken: {result.stats['rescues']} "
          f"(stages: {result.stats['rescue_stages']})")
    print(f"   run completed to t_stop: t[-1] = {result.t[-1]:.3e} s")

    # The same fault without rescue is fatal — but the error now
    # carries structured context for the post-mortem.
    plain = TransientOptions(
        t_stop=4 * T0, dt=T0 / 40, method="trap",
        use_dc_operating_point=False,
    )
    plain.newton.fail_hook = TransientFault(t_on=1.0 * T0)
    try:
        run_transient(build_sample(0), plain)
    except ConvergenceError as exc:
        print(f"   without rescue: ConvergenceError, context={exc.context()}")


def demo_quarantine():
    print("== 2. lockstep quarantine (32 samples, 4 divergent) ==")
    options = TransientOptions(
        t_stop=8 * T0, dt=T0 / 40, method="trap",
        use_dc_operating_point=False,
        quarantine=True, rescue=True,
    )
    options.newton.fail_hook = persistent_fault
    results = run_transient_campaign(
        list(range(N_SAMPLES)), build_sample, options,
        BatchOptions(batch_mode="vectorized"),
    )
    healthy = [r for r in results if not r.stats.get("quarantined")]
    quarantined = [r for r in results if r.stats.get("quarantined")]
    print(f"   {len(healthy)} healthy waveforms, "
          f"{len(quarantined)} quarantined")
    print(f"   quarantined samples: {results[0].stats['quarantined_samples']}")
    record = quarantined[0].stats["quarantine"]
    print(f"   first record: sample {record['sample']} died at "
          f"t={record['time']:.3e} s ({record['reason']}); solo rerun: "
          f"{quarantined[0].stats.get('rescue_failed', 'recovered')}")


def flaky_metric(task):
    """A worker that fails for small tasks unless retried with the
    rescue knob — stands in for 'enable rescue only on retry'."""
    if isinstance(task, dict):
        index, rescued = task["index"], task["rescue"]
    else:
        index, rescued = task, False
    if index % 5 == 0 and index != 0 and not rescued:
        raise ValueError(f"task {index} diverged (rescue off)")
    return index * index


def adjust_for_retry(task, attempt):
    index = task["index"] if isinstance(task, dict) else task
    return {"index": index, "rescue": attempt >= 2}


def demo_retry_and_resume():
    print("== 3. retry/backoff + checkpoint/resume ==")
    options = BatchOptions(
        on_error="retry",
        retry=RetryPolicy(max_attempts=2, adjust=adjust_for_retry),
    )
    results = run_batch(flaky_metric, range(12), options)
    print(f"   retry mode: {sum(isinstance(r, TaskFailure) for r in results)} "
          f"failures after per-task retries (adjust hook healed them all)")

    # Checkpoint/resume: the first pass "crashes" on half the tasks;
    # the resumed pass re-runs only what's missing.
    path = os.path.join(tempfile.mkdtemp(), "campaign.pkl")

    def fragile(task):
        if task >= 6:
            raise ValueError(f"task {task} lost its worker")
        return task * 10

    first = run_batch(
        fragile, range(12),
        BatchOptions(on_error="skip", checkpoint_path=path),
    )
    failed = [r.index for r in first if isinstance(r, TaskFailure)]
    print(f"   first pass: tasks {failed} failed; successes checkpointed")

    reran = []

    def healed(task):
        reran.append(task)
        return task * 10

    resumed = run_batch(healed, range(12), resume_from=path)
    print(f"   resume re-ran only {reran}; "
          f"full results intact: {resumed == [t * 10 for t in range(12)]}")


def main() -> None:
    demo_rescue_ladder()
    demo_quarantine()
    demo_retry_and_resume()


if __name__ == "__main__":
    main()
