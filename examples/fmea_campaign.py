"""FMEA campaign (paper §7): inject every external error condition.

For each fault in the catalog — open coil, pin shorts, degraded coil,
missing capacitors, supply loss — a fresh system is run to steady
state, the fault is injected, and the raised on-chip detections are
compared with the expectation.  Ends with the coverage table the
safety assessment would file.

Run:  python examples/fmea_campaign.py
"""

from repro import OscillatorConfig, RLCTank
from repro.faults import FaultCampaign, coverage_summary, coverage_table


def make_config() -> OscillatorConfig:
    tank = RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)
    return OscillatorConfig(tank=tank)


def main() -> None:
    campaign = FaultCampaign(
        config_factory=make_config,
        injection_time=0.02,  # after the loop has settled
        t_stop=0.04,
    )
    result = campaign.run()

    print(coverage_table(result))
    print()
    print(coverage_summary(result))

    # The §9 reaction: on a hard failure the driver is forced to the
    # maximum output current and the outputs go to their safe state.
    open_coil = result.result_for("open-coil")
    print(
        f"\nReaction check (open coil): final code = {open_coil.final_code} "
        f"(maximum), detection latency = "
        f"{open_coil.detection_latency*1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
