"""Quickstart: regulate an LC sensor tank to 2.7 Vpp.

Builds the complete oscillator driver system around a 4 MHz, Q = 30
sensor coil, runs 50 ms of operation (startup at POR code 105, NVM
preset, then 1 ms regulation), and prints what the paper's Fig 15/16
would show on a scope.

Run:  python examples/quickstart.py
"""

from repro import OscillatorConfig, OscillatorDriverSystem, RLCTank
from repro.analysis import format_si


def main() -> None:
    # The external resonance network: the sensor's excitation coil.
    tank = RLCTank.from_frequency_and_q(
        frequency=4e6, quality_factor=30.0, inductance=1e-6
    )
    print(f"Tank: f0 = {tank.frequency/1e6:.1f} MHz, Q = {tank.quality_factor:.0f}, "
          f"Rp = {tank.parallel_resistance:.0f} ohm")

    config = OscillatorConfig(tank=tank, target_peak_amplitude=1.35)  # 2.7 Vpp
    print(f"NVM preset derived from Eq 4: code {config.derived_nvm_code()}")

    system = OscillatorDriverSystem(config)
    trace = system.run(0.05)

    print("\nAfter 50 ms:")
    print(f"  amplitude        : {trace.final_amplitude:.3f} V peak "
          f"({2*trace.final_amplitude:.2f} Vpp, target 2.70 Vpp)")
    print(f"  regulation code  : {trace.final_code}")
    print(f"  supply current   : {format_si(trace.mean_supply_current, 'A')}")
    print(f"  failures raised  : {sorted(k.value for k in trace.failures) or 'none'}")

    # The regulation history: how the loop walked to the target.
    actions = [e.action.value for e in trace.regulation_events[:12]]
    print(f"  first regulation actions: {actions}")


if __name__ == "__main__":
    main()
