"""A 256-sample Monte-Carlo startup campaign, solved as one batch.

The paper's startup claims are statistical: over mismatch, how fast
does the oscillation build, and what amplitude does it reach?  Per
sample this is a small MNA transient — which is exactly why running a
campaign sample by sample is wasteful: S Python time loops over
~dozen-unknown systems whose arithmetic is nearly free.

The batched lockstep engine stacks the whole campaign instead —
``G_base[S, n, n]`` systems, one time loop, batched linear algebra,
per-sample Newton convergence masks — and the campaign front-end
wires it into :func:`repro.mc.run_monte_carlo` through two policies:

* the metric is a :class:`repro.campaigns.TransientMetricSpec`
  (build circuit / shared options / evaluate result), so the campaign
  layer can *see* the simulation instead of calling an opaque
  function;
* ``BatchOptions(batch_mode="vectorized")`` requests lockstep
  execution (with automatic per-sample fallback for netlists the
  batched engine cannot stack).

Because the whole batch shares one time grid, streaming full
waveforms costs one stacked array — the spec's ``waveform`` extractor
keeps them, and ``MonteCarloResult.envelope_quantiles`` turns 256
trajectories into amplitude percentile *bands* (the envelope spread
picture a scalar summary cannot give).

Run:  python examples/batched_mc.py
"""

import time

import numpy as np

from repro.campaigns import BatchOptions, TransientMetricSpec
from repro.circuits import TransientOptions
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.mc import run_monte_carlo

N_SAMPLES = 256
F0 = 4e6
CYCLES = 20


def build_startup_circuit(profile):
    """One mismatch draw -> the Fig 1 startup netlist.

    Mismatch enters as driver-gm and tank-Q spread; the netlist
    topology is identical for every draw, which is what lets the
    lockstep engine stack the campaign.
    """
    gm_scale = 1.0 + profile.gm_stage_errors[0]
    q_scale = 1.0 + profile.prescale_errors[0]
    tank = RLCTank.from_frequency_and_q(F0, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def startup_amplitude(profile, result):
    return float(
        np.max(np.abs(result.waveform("lc1").y - result.waveform("lc2").y))
    )


METRIC = TransientMetricSpec(
    name="startup_amplitude",
    build=build_startup_circuit,
    # One shared grid for the whole campaign = the lockstep grid.
    options=TransientOptions(
        t_stop=CYCLES / F0,
        dt=1.0 / (F0 * 40),
        method="trap",
        use_dc_operating_point=False,
        record_nodes=("lc1", "lc2"),
    ),
    evaluate=startup_amplitude,
    # Keep the differential waveform per sample: the campaign streams
    # trajectories, not just scalars.
    waveform=lambda result: result.differential("lc1", "lc2"),
)


def main() -> None:
    start = time.perf_counter()
    result = run_monte_carlo(
        METRIC,
        N_SAMPLES,
        base_seed=4242,
        batch=BatchOptions(batch_mode="vectorized"),
    )
    elapsed = time.perf_counter() - start

    print(
        f"{N_SAMPLES}-sample lockstep startup campaign "
        f"({CYCLES} carrier cycles) in {elapsed:.2f}s"
    )
    print(result.summary())
    print(
        f"amplitude quantiles: p05={result.quantile(0.05):.4f} V  "
        f"p50={result.quantile(0.50):.4f} V  "
        f"p95={result.quantile(0.95):.4f} V"
    )

    # Envelope percentile bands over time, from the streamed waveforms.
    t, bands = result.envelope_quantiles((0.05, 0.50, 0.95))
    print("\nenvelope spread (V) during startup:")
    print(f"{'cycle':>6s} {'p05':>8s} {'p50':>8s} {'p95':>8s}")
    for cycle in (2, 5, 10, 15, 20):
        index = np.searchsorted(t, cycle / F0, side="right") - 1
        p05, p50, p95 = bands[0][index], bands[1][index], bands[2][index]
        print(f"{cycle:6d} {p05:8.4f} {p50:8.4f} {p95:8.4f}")

    spread = bands[2][-1] - bands[0][-1]
    print(
        f"\nterminal envelope spread (p95 - p05): {spread * 1e3:.1f} mV "
        f"({spread / bands[1][-1]:.1%} of median)"
    )


if __name__ == "__main__":
    main()
