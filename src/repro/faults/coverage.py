"""Detection-coverage reporting for FMEA campaigns."""

from __future__ import annotations

from typing import List

from ..analysis.tables import render_table
from .campaign import CampaignResult

__all__ = ["coverage_table", "coverage_summary"]


def coverage_table(campaign: CampaignResult) -> str:
    """Render the per-fault detection matrix as an ASCII table."""
    rows: List[List[str]] = []
    for result in campaign.results:
        spec = result.spec
        expected = (
            spec.expected_detection.value
            if spec.expected_detection is not None
            else "(system level)"
        )
        raised = ", ".join(sorted(k.value for k in result.detections)) or "-"
        latency = result.detection_latency
        rows.append(
            [
                spec.name,
                expected,
                raised,
                "yes" if result.correctly_detected else "NO",
                f"{latency * 1e3:.1f} ms" if latency is not None else "-",
            ]
        )
    return render_table(
        ["fault", "expected", "raised", "correct", "latency"],
        rows,
        title="FMEA detection coverage (paper §7)",
    )


def coverage_summary(campaign: CampaignResult) -> str:
    """One-line summary: coverage fraction and false-positive check."""
    return (
        f"coverage: {campaign.coverage * 100:.0f}% of on-chip-detectable "
        f"faults; baseline false-positive free: "
        f"{'yes' if campaign.false_positive_free else 'NO'}"
    )
