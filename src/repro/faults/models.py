"""Fault catalog for the FMEA campaign (§7).

Each :class:`FaultSpec` names an external error condition from the
paper, a mutator that applies it to a running
:class:`~repro.core.oscillator_system.OscillatorDriverSystem`, and the
detection the chip is expected to raise.  Faults whose detection
happens at the *complete system* level (supply monitoring, coil-to-
receiver shorts) carry ``system_level=True`` and no on-chip
expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..core.oscillator_system import OscillatorDriverSystem
from ..core.safety import FailureKind
from ..envelope.tank import RLCTank
from ..errors import FaultError

__all__ = ["FaultSpec", "standard_fault_catalog", "fault_by_name"]


@dataclass(frozen=True)
class FaultSpec:
    """One row of the FMEA table.

    ``recover``/``recovery_delay`` model *intermittent* faults: the
    mutator is applied at the injection time and the recovery callable
    ``recovery_delay`` seconds later.  Detections must latch — a fault
    that healed itself still has to leave the system in its safe state.
    """

    name: str
    description: str
    mutate: Callable[[OscillatorDriverSystem], None]
    expected_detection: Optional[FailureKind]
    paper_ref: str
    system_level: bool = False
    recover: Optional[Callable[[OscillatorDriverSystem], None]] = None
    recovery_delay: float = 0.0

    @property
    def on_chip_detectable(self) -> bool:
        return self.expected_detection is not None

    @property
    def intermittent(self) -> bool:
        return self.recover is not None


def _kill(system: OscillatorDriverSystem) -> None:
    system.plant.kill_oscillation()


def _lose_supply(system: OscillatorDriverSystem) -> None:
    system.plant.lose_supply()


def _scale_tank(
    l_scale: float, rs_scale: float, c_scale: float = 1.0
) -> Callable[[OscillatorDriverSystem], None]:
    def mutate(system: OscillatorDriverSystem) -> None:
        tank = system.plant.tank
        system.plant.set_tank(
            RLCTank(
                tank.inductance * l_scale,
                tank.capacitance * c_scale,
                tank.series_resistance * rs_scale,
            )
        )

    return mutate


def _asymmetry(split: float) -> Callable[[OscillatorDriverSystem], None]:
    def mutate(system: OscillatorDriverSystem) -> None:
        system.plant.set_amplitude_split(split)

    return mutate


def standard_fault_catalog() -> Tuple[FaultSpec, ...]:
    """The external error conditions evaluated in §7."""
    return (
        FaultSpec(
            name="open-coil",
            description="Open connection to the sensor coil",
            mutate=_kill,
            expected_detection=FailureKind.MISSING_OSCILLATION,
            paper_ref="§7 'Missing oscillations': open connection to the coil",
        ),
        FaultSpec(
            name="lc1-short-to-ground",
            description="LC1 pin shorted to ground",
            mutate=_kill,
            expected_detection=FailureKind.MISSING_OSCILLATION,
            paper_ref="§7 'Missing oscillations': short to ground",
        ),
        FaultSpec(
            name="lc1-short-to-supply",
            description="LC1 pin shorted to the supply",
            mutate=_kill,
            expected_detection=FailureKind.MISSING_OSCILLATION,
            paper_ref="§7 'Missing oscillations': short to supply",
        ),
        FaultSpec(
            name="coil-shorted-turns",
            description="Short in the coil: inductance down, losses up",
            mutate=_scale_tank(l_scale=0.6, rs_scale=1.5),
            expected_detection=FailureKind.LOW_AMPLITUDE,
            paper_ref="§7 'Low amplitude': a short in the coil",
        ),
        FaultSpec(
            name="increased-series-resistance",
            description="Corroded contact: series resistance x 2.5",
            mutate=_scale_tank(l_scale=1.0, rs_scale=2.5),
            expected_detection=FailureKind.LOW_AMPLITUDE,
            paper_ref="§7 'Low amplitude': increased serial resistance",
        ),
        FaultSpec(
            name="missing-cosc1",
            description="External capacitor Cosc1 missing",
            mutate=_asymmetry(1.6),
            expected_detection=FailureKind.ASYMMETRY,
            paper_ref="§7 'Asymmetry': Cosc1 or Cosc2 missing or defective",
        ),
        FaultSpec(
            name="cosc2-degraded",
            description="External capacitor Cosc2 at half value",
            mutate=_asymmetry(0.7),
            expected_detection=FailureKind.ASYMMETRY,
            paper_ref="§7 'Asymmetry': Cosc1 or Cosc2 missing or defective",
        ),
        FaultSpec(
            name="supply-loss",
            description="This system's Vdd lost (redundant partner case)",
            mutate=_lose_supply,
            expected_detection=None,
            paper_ref="§8: handled by the output stage + system-level monitor",
            system_level=True,
        ),
        FaultSpec(
            name="tank-detuned",
            description="Capacitor drift: resonance moves, amplitude intact",
            mutate=_scale_tank(l_scale=1.0, rs_scale=1.0, c_scale=0.7),
            expected_detection=None,
            paper_ref="§7 last para: frequency plausibility is a system-level check",
            system_level=True,
        ),
        _intermittent_contact_spec(),
    )


def _intermittent_contact_spec(rs_scale: float = 2.5, burst: float = 8e-3) -> FaultSpec:
    """A cracked solder joint: Rs bursts up for ``burst`` seconds.

    The detection must latch: after the joint re-seats, the system
    stays in its safe state (max code) — intermittent faults are the
    classic FMEA trap for unlatched monitors.
    """
    stash = {}

    def mutate(system: OscillatorDriverSystem) -> None:
        stash["tank"] = system.plant.tank
        _scale_tank(l_scale=1.0, rs_scale=rs_scale)(system)

    def recover(system: OscillatorDriverSystem) -> None:
        if "tank" in stash:
            system.plant.set_tank(stash.pop("tank"))

    return FaultSpec(
        name="intermittent-contact",
        description=f"Cracked solder joint: Rs x{rs_scale} for {burst * 1e3:.0f} ms",
        mutate=mutate,
        expected_detection=FailureKind.LOW_AMPLITUDE,
        paper_ref="§7 'Low amplitude': increased serial resistance (transient)",
        recover=recover,
        recovery_delay=burst,
    )


def fault_by_name(name: str) -> FaultSpec:
    """Look up a fault in the standard catalog."""
    for spec in standard_fault_catalog():
        if spec.name == name:
            return spec
    raise FaultError(f"unknown fault {name!r}")
