"""FMEA campaign runner: inject every fault, record every detection.

For each fault in the catalog a fresh system is built, run fault-free
until the loop settles, the fault is injected, and the run continues.
The campaign records which on-chip detection latched and how long it
took — the reproduction of the §7 FMEA evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..campaigns import BatchOptions, run_batch
from ..core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from ..core.safety import FailureKind
from ..errors import FaultError
from .models import FaultSpec, standard_fault_catalog

__all__ = ["FaultResult", "CampaignResult", "FaultCampaign"]


@dataclass(frozen=True)
class FaultResult:
    """Outcome of one fault injection."""

    spec: FaultSpec
    detections: dict
    injection_time: float
    final_code: int
    final_amplitude: float

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    @property
    def correctly_detected(self) -> bool:
        """Expected detection raised (system-level faults: no on-chip
        flag expected, so 'correct' means silent)."""
        if self.spec.expected_detection is None:
            return True
        return self.spec.expected_detection in self.detections

    @property
    def detection_latency(self) -> Optional[float]:
        """Time from injection to the expected flag, if raised."""
        kind = self.spec.expected_detection
        if kind is None or kind not in self.detections:
            return None
        return self.detections[kind] - self.injection_time


@dataclass
class CampaignResult:
    """All fault results plus the fault-free baseline."""

    results: List[FaultResult]
    baseline_failures: dict

    @property
    def n_faults(self) -> int:
        return len(self.results)

    @property
    def n_correct(self) -> int:
        return sum(1 for r in self.results if r.correctly_detected)

    @property
    def coverage(self) -> float:
        """Fraction of on-chip-detectable faults correctly detected."""
        detectable = [r for r in self.results if r.spec.on_chip_detectable]
        if not detectable:
            return 1.0
        return sum(1 for r in detectable if r.correctly_detected) / len(detectable)

    @property
    def false_positive_free(self) -> bool:
        return not self.baseline_failures

    def result_for(self, name: str) -> FaultResult:
        for result in self.results:
            if result.spec.name == name:
                return result
        raise FaultError(f"no result for fault {name!r}")


@dataclass
class FaultCampaign:
    """Configuration of the FMEA run.

    Parameters
    ----------
    config_factory:
        Builds a fresh :class:`OscillatorConfig` per fault (systems are
        stateful; never share them between injections).
    injection_time:
        When the fault strikes (after the loop has settled).
    t_stop:
        Total simulated time per fault.
    batch:
        Execution policy for the per-fault runs (shared campaign
        engine).  The default runs sequentially; process parallelism
        pickles the bound ``run_single`` — i.e. this whole campaign,
        ``config_factory`` and catalog included — so every field must
        then be picklable (module-level functions, no lambdas).
        ``batch_mode="vectorized"`` is accepted and degrades to the
        sequential loop: the fault simulation core is behavioural
        (event-driven, not MNA), so there is no stacked-array lockstep
        for it.  A failing injection raises
        :class:`~repro.errors.BatchTaskError` naming the fault's index
        in the catalog.
    """

    config_factory: Callable[[], OscillatorConfig]
    injection_time: float = 0.03
    t_stop: float = 0.06
    catalog: Sequence[FaultSpec] = field(default_factory=standard_fault_catalog)
    batch: Optional[BatchOptions] = None

    def __post_init__(self) -> None:
        if not 0 < self.injection_time < self.t_stop:
            raise FaultError("need 0 < injection_time < t_stop")

    def run_single(self, spec: FaultSpec) -> FaultResult:
        """Inject one fault into a fresh system.

        Intermittent faults also schedule their recovery; detections
        must latch through it.
        """
        system = OscillatorDriverSystem(self.config_factory())
        schedule = [(self.injection_time, spec.mutate)]
        if spec.recover is not None:
            schedule.append(
                (self.injection_time + spec.recovery_delay, spec.recover)
            )
        trace = system.run(self.t_stop, faults=schedule)
        return FaultResult(
            spec=spec,
            detections=dict(trace.failures),
            injection_time=self.injection_time,
            final_code=trace.final_code,
            final_amplitude=trace.final_amplitude,
        )

    def run(self) -> CampaignResult:
        """Run the fault-free baseline plus every catalog fault."""
        baseline = OscillatorDriverSystem(self.config_factory())
        baseline_trace = baseline.run(self.t_stop)
        results = run_batch(self.run_single, self.catalog, self.batch)
        return CampaignResult(
            results=results, baseline_failures=dict(baseline_trace.failures)
        )
