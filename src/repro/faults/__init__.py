"""FMEA fault catalog, injection campaign and coverage reporting."""

from .campaign import CampaignResult, FaultCampaign, FaultResult
from .coverage import coverage_summary, coverage_table
from .models import FaultSpec, fault_by_name, standard_fault_catalog

__all__ = [
    "CampaignResult",
    "FaultCampaign",
    "FaultResult",
    "coverage_summary",
    "coverage_table",
    "FaultSpec",
    "fault_by_name",
    "standard_fault_catalog",
]
