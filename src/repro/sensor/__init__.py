"""Position-sensor application substrate (Fig 9)."""

from .coils import (
    CoilMesh,
    CouplingProfile,
    DistributedCoil,
    ReceivingCoilPair,
    coil_mesh_array,
    tank_with_parallel_load,
)
from .receiver import PositionReceiver
from .dual_cosim import DualCoSimulation, DualTrace
from .redundant import (
    DualSystemOutcome,
    DualSystemScenario,
    effective_load_resistance,
)

__all__ = [
    "CoilMesh",
    "coil_mesh_array",
    "CouplingProfile",
    "DistributedCoil",
    "ReceivingCoilPair",
    "tank_with_parallel_load",
    "PositionReceiver",
    "DualCoSimulation",
    "DualTrace",
    "DualSystemOutcome",
    "DualSystemScenario",
    "effective_load_resistance",
]
