"""Position-sensor application substrate (Fig 9)."""

from .coils import (
    CouplingProfile,
    DistributedCoil,
    ReceivingCoilPair,
    tank_with_parallel_load,
)
from .receiver import PositionReceiver
from .dual_cosim import DualCoSimulation, DualTrace
from .redundant import (
    DualSystemOutcome,
    DualSystemScenario,
    effective_load_resistance,
)

__all__ = [
    "CouplingProfile",
    "DistributedCoil",
    "ReceivingCoilPair",
    "tank_with_parallel_load",
    "PositionReceiver",
    "DualCoSimulation",
    "DualTrace",
    "DualSystemOutcome",
    "DualSystemScenario",
    "effective_load_resistance",
]
