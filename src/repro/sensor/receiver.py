"""Receiver: amplitude comparison to position (§1).

"This harmonic signal is coupled into receiving coils and the
amplitudes of the received signals are compared and then used to
determine position of the sensor."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .coils import CouplingProfile

__all__ = ["PositionReceiver"]


@dataclass(frozen=True)
class PositionReceiver:
    """Ratiometric amplitude comparator.

    Ratiometric processing makes the estimate independent of the
    absolute excitation amplitude (which the oscillator regulates only
    to within the window width).
    """

    profile: CouplingProfile
    #: Minimum summed amplitude for a valid reading (diagnostics).
    min_signal: float = 1e-3

    def normalized_difference(self, a1: float, a2: float) -> float:
        """``(a1 - a2) / (a1 + a2)`` with validity check."""
        if a1 < 0 or a2 < 0:
            raise ConfigurationError("amplitudes must be non-negative")
        total = a1 + a2
        if total < self.min_signal:
            raise ConfigurationError(
                f"received signal too small ({total:g} < {self.min_signal:g})"
            )
        return (a1 - a2) / total

    def estimate_angle(self, a1: float, a2: float) -> float:
        """Invert the coupling profile: amplitudes -> angle (radians)."""
        ratio = self.normalized_difference(a1, a2)
        ratio = max(-1.0, min(1.0, ratio))
        return math.asin(ratio * math.sin(self.profile.theta_range))

    def signal_valid(self, a1: float, a2: float) -> bool:
        """Sum-of-amplitudes plausibility check (system-level FMEA)."""
        return (a1 + a2) >= self.min_signal
