"""Redundant dual-oscillator system (Fig 9, §8).

Two complete oscillator systems with mutually-coupled excitation coils
run at the same frequency.  The safety claim reproduced here: if one
system loses its supply or ground, it must not load the other, which
keeps working.  Whether that holds depends on the *output stage
topology* of the dead system — the paper's Fig 11 driver passes, the
standard Fig 10a driver fails.

The dead system's pins present the DC loading measured by
:func:`repro.core.output_stage.run_supply_loss_sweep`; its effective
shunt resistance at the live system's operating amplitude is reflected
through the coil coupling into the live tank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.oscillator_system import (
    OscillatorConfig,
    OscillatorDriverSystem,
    SystemTrace,
)
from ..core.output_stage import SupplyLossResult, run_supply_loss_sweep
from ..errors import ConfigurationError
from .coils import tank_with_parallel_load

__all__ = ["DualSystemScenario", "DualSystemOutcome", "effective_load_resistance"]


def effective_load_resistance(
    sweep: SupplyLossResult, amplitude_peak: float, n: int = 256
) -> float:
    """Equivalent shunt resistance of the dead system's pins.

    The live tank swings ``v(t) = A sin(wt)`` across the dead pins;
    the average power they absorb is the cycle integral of ``v * i(v)``
    over the measured DC characteristic (the loading of Fig 10a is
    one-sided, so a single-point secant would miss it).  The power is
    expressed as an equivalent parallel resistance
    ``R = A^2 / (2 P)``.  An ideal topology absorbs ~nothing —
    infinite resistance.
    """
    if amplitude_peak <= 0:
        raise ConfigurationError("amplitude must be positive")
    import numpy as np

    theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    v = amplitude_peak * np.sin(theta)
    i = np.interp(v, sweep.v_diff, sweep.i_lc1)
    power = float(np.mean(v * i))
    if power < 1e-12:
        return math.inf
    return amplitude_peak * amplitude_peak / (2.0 * power)


@dataclass
class DualSystemOutcome:
    """Result of a supply-loss scenario on the live system."""

    trace: SystemTrace
    amplitude_before: float
    amplitude_after: float
    load_resistance: float
    survived: bool

    @property
    def amplitude_drop(self) -> float:
        """Relative amplitude sag caused by the dead system."""
        if self.amplitude_before == 0:
            return 1.0
        return 1.0 - self.amplitude_after / self.amplitude_before


@dataclass
class DualSystemScenario:
    """System 2 loses its supply while system 1 keeps running.

    Parameters
    ----------
    config:
        The live system's configuration.
    topology:
        Output stage of the *dead* system ("fig10a", "fig10b", "fig11").
    coupling:
        Coupling coefficient between the two excitation coils; the dead
        system's shunt resistance is reflected by ``1/k^2``.
    fault_time / t_stop:
        When the supply is lost, and how long to simulate.
    """

    config: OscillatorConfig
    topology: str = "fig11"
    coupling: float = 0.3
    fault_time: float = 0.025
    t_stop: float = 0.05
    sweep: Optional[SupplyLossResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.coupling <= 1:
            raise ConfigurationError("coupling must be in (0, 1]")
        if not 0 < self.fault_time < self.t_stop:
            raise ConfigurationError("need 0 < fault_time < t_stop")

    def run(self) -> DualSystemOutcome:
        """Simulate the live system through the partner's supply loss."""
        if self.sweep is None:
            self.sweep = run_supply_loss_sweep(self.topology)
        amplitude = self.config.target_peak_amplitude
        r_pins = effective_load_resistance(self.sweep, amplitude)
        r_reflected = (
            math.inf if math.isinf(r_pins) else r_pins / (self.coupling**2)
        )
        base_tank = self.config.tank

        def partner_dies(system: OscillatorDriverSystem) -> None:
            if math.isinf(r_reflected):
                return
            system.plant.set_tank(
                tank_with_parallel_load(base_tank, r_reflected)
            )

        system = OscillatorDriverSystem(self.config)
        trace = system.run(self.t_stop, faults=[(self.fault_time, partner_dies)])
        wave = trace.amplitude_waveform()
        before = wave.value_at(self.fault_time * 0.98)
        after = trace.final_amplitude
        # Survival: still oscillating near target and no failure latched.
        survived = (
            after > 0.5 * self.config.target_peak_amplitude
            and not trace.any_failure
        )
        return DualSystemOutcome(
            trace=trace,
            amplitude_before=before,
            amplitude_after=after,
            load_resistance=r_pins,
            survived=survived,
        )
