"""Dynamic co-simulation of the redundant dual-oscillator pair (Fig 9).

:class:`DualSystemScenario` treats the dead partner as a static load;
this module steps *both* regulated oscillators through time with their
mutual coil coupling active, which exposes the dynamic effects:

* a running partner injects energy through the coupling, so the second
  system starts faster than it would alone (its "seed" is the
  partner's field, not thermal noise);
* in steady state both regulate independently to their own targets
  (the injection is a small perturbation inside the window);
* when one supply dies, the survivor sees (a) the loss of the
  injection and (b) the dead chip's pin loading — with the Fig 11
  output stage the dip stays inside the regulation window.

Injection model (first order, in-phase locked operation — see
:mod:`repro.envelope.locking` for when that holds): the partner's
field adds a fundamental current ``k * A_other / Z0`` to the tank's
energy balance, where ``Z0`` is the tank's characteristic impedance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from ..errors import ConfigurationError, SimulationError

__all__ = ["DualCoSimulation", "DualTrace"]


@dataclass
class DualTrace:
    """Time series of both systems."""

    t: np.ndarray
    amplitude_1: np.ndarray
    amplitude_2: np.ndarray
    code_1: np.ndarray
    code_2: np.ndarray

    def amplitude(self, index: int) -> np.ndarray:
        if index == 1:
            return self.amplitude_1
        if index == 2:
            return self.amplitude_2
        raise ConfigurationError("system index must be 1 or 2")

    def startup_time(self, index: int, fraction: float = 0.9) -> float:
        """Time the given system first reaches ``fraction`` of its
        final amplitude."""
        amp = self.amplitude(index)
        target = fraction * float(amp[-1])
        above = np.where(amp >= target)[0]
        if above.size == 0:
            raise SimulationError("system never reached the target")
        return float(self.t[above[0]])


@dataclass
class DualCoSimulation:
    """Two regulated oscillators with mutual excitation-coil coupling.

    Parameters
    ----------
    config_1 / config_2:
        Configurations of the two systems (may differ: slightly
        detuned tanks, different presets...).
    coupling:
        Coupling coefficient between the excitation coils.
    enable_2_at:
        System 2 is enabled this long after system 1 (0 = together).
    kill_2_at:
        If set, system 2 loses its supply at this time.
    """

    config_1: OscillatorConfig
    config_2: OscillatorConfig
    coupling: float = 0.3
    enable_2_at: float = 0.0
    kill_2_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 <= self.coupling < 1:
            raise ConfigurationError("coupling must be in [0, 1)")
        if self.enable_2_at < 0:
            raise ConfigurationError("enable_2_at must be >= 0")

    def run(self, t_stop: float) -> DualTrace:
        """Co-simulate both systems to ``t_stop``.

        Implementation: both systems run on the same sub-step grid;
        after each sub-step the partner injection is applied as an
        amplitude nudge derived from the injected fundamental current
        ``k * A_other / Z0`` acting for one sub-step on the tank
        energy.
        """
        if t_stop <= 0:
            raise SimulationError("t_stop must be positive")
        sys1 = OscillatorDriverSystem(self.config_1)
        sys2 = OscillatorDriverSystem(self.config_2)
        # Schedules for system 2: delayed enable via initial dead time,
        # optional supply kill.
        if self.kill_2_at is not None:
            if not self.enable_2_at < self.kill_2_at < t_stop:
                raise ConfigurationError("kill_2_at must be inside the run")

        dt = self.config_1.regulation_period / self.config_1.substeps_per_tick
        n_steps = int(round(t_stop / dt))
        t_axis = np.arange(n_steps + 1) * dt

        # Drive the two systems step by step through their public
        # fault-scheduling interface by running them in one-sub-step
        # slices would be slow; instead replicate the envelope coupling
        # explicitly using the systems' own advance methods.
        a1 = self.config_1.seed_amplitude
        a2 = 0.0  # system 2 dark until enabled
        sys1.startup.enable(0.0)
        sys1.monitors.arm(0.0)
        sys2_enabled = False
        sys2_alive = True

        amp1 = np.empty(n_steps + 1)
        amp2 = np.empty(n_steps + 1)
        code1 = np.empty(n_steps + 1, dtype=int)
        code2 = np.empty(n_steps + 1, dtype=int)
        amp1[0], amp2[0] = a1, a2
        code1[0] = sys1.startup.code_at(0.0)
        code2[0] = 0

        reg1_started = False
        reg2_started = False
        next_tick_1 = self.config_1.regulation_period
        next_tick_2 = math.inf
        c1 = code1[0]
        c2 = 0

        for step in range(1, n_steps + 1):
            t = step * dt
            # Enable / kill events for system 2.
            if not sys2_enabled and t >= self.enable_2_at:
                sys2.startup.enable(t)
                sys2.monitors.arm(t)
                sys2_enabled = True
                next_tick_2 = t + self.config_2.regulation_period
                # Seeded by the partner's field, not just noise.
                a2 = max(
                    self.config_2.seed_amplitude, self.coupling * a1 * 0.1
                )
            if (
                self.kill_2_at is not None
                and sys2_alive
                and t >= self.kill_2_at
            ):
                sys2.plant.lose_supply()
                sys2_alive = False

            # Codes from each system's startup/loop state.
            c1 = sys1.loop.code if reg1_started else sys1.startup.code_at(t)
            if sys2_enabled:
                c2 = sys2.loop.code if reg2_started else sys2.startup.code_at(t)

            # Envelope advance with mutual injection, applied as the
            # quasi-static equilibrium shift (the envelope relaxes much
            # faster than a sub-step, so explicit-Euler coupling would
            # be unstable; see _injection_offset).
            off_1 = self._injection_offset(sys1, a2, dt)
            off_2 = self._injection_offset(sys2, a1, dt) if sys2_alive else 0.0
            a1 = sys1._advance_envelope(a1, c1, dt) + off_1
            if sys2_enabled:
                a2 = sys2._advance_envelope(a2, c2, dt) + off_2
            a1 = max(a1, 0.0)
            a2 = max(a2, 0.0)

            # Detector + regulation ticks, per system.
            sys1.detector.update(a1, dt)
            sys1.monitors.observe_oscillation(t, a1)
            if t + 1e-15 >= next_tick_1:
                reg1_started = True
                sys1.monitors.observe_tick(t, sys1.detector.output)
                if sys1.monitors.any_failure:
                    sys1.loop.set_code(sys1.reaction.forced_code())
                else:
                    sys1.loop.tick(t, sys1.detector.output)
                next_tick_1 += self.config_1.regulation_period
            if sys2_enabled and sys2_alive:
                sys2.detector.update(a2, dt)
                sys2.monitors.observe_oscillation(t, a2)
                if t + 1e-15 >= next_tick_2:
                    reg2_started = True
                    sys2.monitors.observe_tick(t, sys2.detector.output)
                    if sys2.monitors.any_failure:
                        sys2.loop.set_code(sys2.reaction.forced_code())
                    else:
                        sys2.loop.tick(t, sys2.detector.output)
                    next_tick_2 += self.config_2.regulation_period

            amp1[step], amp2[step] = a1, a2
            code1[step], code2[step] = c1, c2

        return DualTrace(
            t=t_axis, amplitude_1=amp1, amplitude_2=amp2, code_1=code1, code_2=code2
        )

    def _injection_offset(
        self, system: OscillatorDriverSystem, a_other: float, dt: float
    ) -> float:
        """Quasi-static amplitude shift contributed by the partner.

        First-order in-phase-locked model: the partner acts like an
        extra fundamental current ``I_inj = k * A_other / Rp`` in the
        energy balance, which (with the driver deep in limiting, where
        ``dI1/dA ≈ 0``) shifts the envelope equilibrium by
        ``Rp * I_inj = k * A_other``.  Because the envelope relaxes
        with the ring time constant — much shorter than a regulation
        sub-step — the shift is applied as the relaxed offset rather
        than an explicit-Euler rate (which would be numerically
        unstable at this step size).  The reactive, Z0-scale part of
        the coupling only pulls the *frequency* and is handled by
        :mod:`repro.envelope.locking`.
        """
        if a_other <= 0.0 or self.coupling == 0.0:
            return 0.0
        tau = system.plant.tank.ring_down_tau()
        relax = -math.expm1(-dt / tau)
        return self.coupling * a_other * relax
