"""Coupled-coil model of the position sensor (Fig 9).

The excitation coil (the oscillator coil) couples into two receiving
coils; a rotor modulates the coupling coefficients with its angle.
Receiving-coil voltage amplitudes are ``k_i(theta) * A_osc``; the
receiver compares them to extract position (§1).

Mutual coupling between the two *excitation* coils of a redundant
dual-oscillator system is modelled by reflecting the other system's
loading impedance into the tank (:func:`tank_with_parallel_load`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..envelope.tank import RLCTank
from ..errors import ConfigurationError

__all__ = ["CouplingProfile", "ReceivingCoilPair", "tank_with_parallel_load"]


@dataclass(frozen=True)
class CouplingProfile:
    """Angle-dependent coupling of the rotor.

    The two receiving coils see complementary couplings::

        k1(theta) = k_max * (1 + sin(theta)) / 2
        k2(theta) = k_max * (1 - sin(theta)) / 2

    over the mechanical range ``±theta_range`` — a standard inductive
    position-sensor characteristic: the *sum* is angle-independent
    (useful for diagnostics) and the normalized *difference* is
    monotonic in the angle.
    """

    k_max: float = 0.2
    theta_range: float = math.pi / 3.0

    def __post_init__(self) -> None:
        if not 0 < self.k_max <= 1:
            raise ConfigurationError("k_max must be in (0, 1]")
        if not 0 < self.theta_range <= math.pi / 2.0:
            raise ConfigurationError("theta_range must be in (0, pi/2]")

    def couplings(self, theta: float) -> Tuple[float, float]:
        """(k1, k2) at mechanical angle ``theta`` (radians)."""
        if abs(theta) > self.theta_range:
            raise ConfigurationError(
                f"angle {theta:g} outside ±{self.theta_range:g} rad"
            )
        s = math.sin(theta) / math.sin(self.theta_range)
        k1 = self.k_max * (1.0 + s) / 2.0
        k2 = self.k_max * (1.0 - s) / 2.0
        return k1, k2


@dataclass(frozen=True)
class ReceivingCoilPair:
    """The two receiving coils seen from the excitation coil."""

    profile: CouplingProfile

    def received_amplitudes(self, theta: float, excitation_peak: float) -> Tuple[float, float]:
        """Peak voltages induced in the two receiving coils."""
        if excitation_peak < 0:
            raise ConfigurationError("excitation amplitude must be >= 0")
        k1, k2 = self.profile.couplings(theta)
        return k1 * excitation_peak, k2 * excitation_peak


def tank_with_parallel_load(tank: RLCTank, r_parallel: float) -> RLCTank:
    """A tank whose Rp is loaded by an extra parallel resistance.

    Used to reflect the other system's pin loading (through the mutual
    coil coupling) into this system's resonance network.  The loaded
    ``Rp' = Rp || r_parallel`` is converted back to an equivalent
    series resistance at the same L and C.
    """
    if r_parallel <= 0:
        raise ConfigurationError("r_parallel must be positive")
    rp = tank.parallel_resistance
    rp_loaded = rp * r_parallel / (rp + r_parallel)
    xl = tank.omega0 * tank.inductance
    # Invert the exact series->parallel transform: Rp = (Rs^2 + XL^2)/Rs.
    # Solve Rs^2 - Rp*Rs + XL^2 = 0 for the low-loss root.
    disc = rp_loaded * rp_loaded - 4.0 * xl * xl
    if disc < 0:
        # Loading so heavy the tank stops being a resonator; report the
        # critically-damped equivalent.
        rs_loaded = rp_loaded / 2.0
    else:
        rs_loaded = (rp_loaded - math.sqrt(disc)) / 2.0
    return RLCTank(tank.inductance, tank.capacitance, rs_loaded)
