"""Coupled-coil model of the position sensor (Fig 9).

The excitation coil (the oscillator coil) couples into two receiving
coils; a rotor modulates the coupling coefficients with its angle.
Receiving-coil voltage amplitudes are ``k_i(theta) * A_osc``; the
receiver compares them to extract position (§1).

Mutual coupling between the two *excitation* coils of a redundant
dual-oscillator system is modelled by reflecting the other system's
loading impedance into the tank (:func:`tank_with_parallel_load`).

Beyond the lumped abstraction, :class:`DistributedCoil` scales the
same sensing coil into an N-segment RLC transmission-line netlist —
the coil's inductance and loss spread along the winding, its
inter-winding capacitance shunted at every junction — which is the
first workload family in this library whose MNA system grows into
the sparse linear-algebra backend's territory (hundreds-to-thousands
of unknowns; see :mod:`repro.circuits.backend`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..circuits.netlist import Circuit
from ..circuits.sources import sine
from ..envelope.tank import RLCTank
from ..errors import ConfigurationError

__all__ = [
    "CouplingProfile",
    "ReceivingCoilPair",
    "DistributedCoil",
    "tank_with_parallel_load",
]


@dataclass(frozen=True)
class CouplingProfile:
    """Angle-dependent coupling of the rotor.

    The two receiving coils see complementary couplings::

        k1(theta) = k_max * (1 + sin(theta)) / 2
        k2(theta) = k_max * (1 - sin(theta)) / 2

    over the mechanical range ``±theta_range`` — a standard inductive
    position-sensor characteristic: the *sum* is angle-independent
    (useful for diagnostics) and the normalized *difference* is
    monotonic in the angle.
    """

    k_max: float = 0.2
    theta_range: float = math.pi / 3.0

    def __post_init__(self) -> None:
        if not 0 < self.k_max <= 1:
            raise ConfigurationError("k_max must be in (0, 1]")
        if not 0 < self.theta_range <= math.pi / 2.0:
            raise ConfigurationError("theta_range must be in (0, pi/2]")

    def couplings(self, theta: float) -> Tuple[float, float]:
        """(k1, k2) at mechanical angle ``theta`` (radians)."""
        if abs(theta) > self.theta_range:
            raise ConfigurationError(
                f"angle {theta:g} outside ±{self.theta_range:g} rad"
            )
        s = math.sin(theta) / math.sin(self.theta_range)
        k1 = self.k_max * (1.0 + s) / 2.0
        k2 = self.k_max * (1.0 - s) / 2.0
        return k1, k2


@dataclass(frozen=True)
class ReceivingCoilPair:
    """The two receiving coils seen from the excitation coil."""

    profile: CouplingProfile

    def received_amplitudes(self, theta: float, excitation_peak: float) -> Tuple[float, float]:
        """Peak voltages induced in the two receiving coils."""
        if excitation_peak < 0:
            raise ConfigurationError("excitation amplitude must be >= 0")
        k1, k2 = self.profile.couplings(theta)
        return k1 * excitation_peak, k2 * excitation_peak


@dataclass(frozen=True)
class DistributedCoil:
    """The sensing coil as an N-segment RLC transmission line.

    The lumped tank models the coil as one ``L`` + ``Rs`` between the
    LC pins; physically the inductance and loss are distributed along
    the winding, with inter-winding (parasitic) capacitance to the
    surrounding structure.  This generator splits the coil into
    ``n_segments`` series L-R cells (``L/N``, ``Rs/N`` each) with a
    shunt capacitor at every internal junction carrying an equal share
    of ``parasitic_fraction * C``; the pin capacitors of the lumped
    tank stay lumped at the two ends, so the fundamental resonance
    remains (to the high-Q approximation) the tank's own while the
    netlist gains the transmission-line modes a lumped model cannot
    show.

    ``unknown_count`` grows as ``3 N + 1``: an N-segment coil at
    N >= ~55 crosses the dense/sparse auto threshold, which is exactly
    what this family exists to exercise (the
    ``ladder_transient_dense_vs_sparse`` benchmark workload).
    """

    tank: RLCTank
    n_segments: int
    #: Total inter-winding capacitance as a fraction of one pin cap.
    parasitic_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ConfigurationError("n_segments must be >= 1")
        if not 0.0 < self.parasitic_fraction < 1.0:
            raise ConfigurationError("parasitic_fraction must be in (0, 1)")

    @property
    def segment_inductance(self) -> float:
        return self.tank.inductance / self.n_segments

    @property
    def segment_resistance(self) -> float:
        return self.tank.series_resistance / self.n_segments

    @property
    def junction_capacitance(self) -> float:
        """Shunt capacitance per internal junction (N - 1 of them)."""
        total = self.parasitic_fraction * self.tank.capacitance
        return total / max(self.n_segments - 1, 1)

    @property
    def unknown_count(self) -> int:
        """MNA unknowns of :meth:`build_circuit`'s netlist.

        ``2N + 1`` nodes (pins plus internal junctions) + ``N``
        inductor branches.
        """
        return 3 * self.n_segments + 1

    def build_circuit(self, drive_current: float = 1e-3) -> Circuit:
        """Drivable netlist: sine current drive at the tank resonance.

        The oscillator's Gm stage is a current drive, so the
        excitation is a current source into the LC1 pin at the lumped
        tank's resonance frequency; both pin capacitors of the lumped
        model appear at the ends (LC2 returned to ground, as in the
        single-ended test benches), with the distributed coil between
        them.  The netlist is linear — one factorization serves the
        whole run — which makes it the cleanest dense-vs-sparse
        backend comparison: identical step count, identical RHS work,
        only the linear algebra differs.
        """
        if drive_current <= 0:
            raise ConfigurationError("drive_current must be positive")
        circuit = Circuit(
            f"distributed sensing coil, {self.n_segments} segments"
        )
        circuit.current_source(
            "idrive", "0", "lc1", sine(drive_current, self.tank.frequency)
        )
        circuit.capacitor("cosc1", "lc1", "0", self.tank.capacitance)
        circuit.rlc_ladder(
            "coil_",
            "lc1",
            "lc2",
            self.n_segments,
            self.segment_inductance,
            self.segment_resistance,
            self.junction_capacitance,
        )
        circuit.capacitor("cosc2", "lc2", "0", self.tank.capacitance)
        # LC2 is the driven-to-ground pin in the single-ended benches.
        circuit.resistor("rload", "lc2", "0", 1e6)
        return circuit


def tank_with_parallel_load(tank: RLCTank, r_parallel: float) -> RLCTank:
    """A tank whose Rp is loaded by an extra parallel resistance.

    Used to reflect the other system's pin loading (through the mutual
    coil coupling) into this system's resonance network.  The loaded
    ``Rp' = Rp || r_parallel`` is converted back to an equivalent
    series resistance at the same L and C.
    """
    if r_parallel <= 0:
        raise ConfigurationError("r_parallel must be positive")
    rp = tank.parallel_resistance
    rp_loaded = rp * r_parallel / (rp + r_parallel)
    xl = tank.omega0 * tank.inductance
    # Invert the exact series->parallel transform: Rp = (Rs^2 + XL^2)/Rs.
    # Solve Rs^2 - Rp*Rs + XL^2 = 0 for the low-loss root.
    disc = rp_loaded * rp_loaded - 4.0 * xl * xl
    if disc < 0:
        # Loading so heavy the tank stops being a resonator; report the
        # critically-damped equivalent.
        rs_loaded = rp_loaded / 2.0
    else:
        rs_loaded = (rp_loaded - math.sqrt(disc)) / 2.0
    return RLCTank(tank.inductance, tank.capacitance, rs_loaded)
