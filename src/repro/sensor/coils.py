"""Coupled-coil model of the position sensor (Fig 9).

The excitation coil (the oscillator coil) couples into two receiving
coils; a rotor modulates the coupling coefficients with its angle.
Receiving-coil voltage amplitudes are ``k_i(theta) * A_osc``; the
receiver compares them to extract position (§1).

Mutual coupling between the two *excitation* coils of a redundant
dual-oscillator system is modelled by reflecting the other system's
loading impedance into the tank (:func:`tank_with_parallel_load`).

Beyond the lumped abstraction, :class:`DistributedCoil` scales the
same sensing coil into an N-segment RLC transmission-line netlist —
the coil's inductance and loss spread along the winding, its
inter-winding capacitance shunted at every junction — which is the
first workload family in this library whose MNA system grows into
the sparse linear-algebra backend's territory (hundreds-to-thousands
of unknowns; see :mod:`repro.circuits.backend`).  :class:`CoilMesh`
generalizes the same idea to two dimensions — a planar winding
spread over an ``nx x ny`` surface grid of coupled L-R segments —
reaching the 10k–100k-unknown territory of the Krylov backend, and
:func:`coil_mesh_array` spreads a mesh into a same-topology
multi-coil array for the batched campaign engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..circuits.netlist import Circuit
from ..circuits.sources import pulse, sine
from ..envelope.tank import RLCTank
from ..errors import ConfigurationError

__all__ = [
    "CouplingProfile",
    "ReceivingCoilPair",
    "DistributedCoil",
    "CoilMesh",
    "coil_mesh_array",
    "tank_with_parallel_load",
]


@dataclass(frozen=True)
class CouplingProfile:
    """Angle-dependent coupling of the rotor.

    The two receiving coils see complementary couplings::

        k1(theta) = k_max * (1 + sin(theta)) / 2
        k2(theta) = k_max * (1 - sin(theta)) / 2

    over the mechanical range ``±theta_range`` — a standard inductive
    position-sensor characteristic: the *sum* is angle-independent
    (useful for diagnostics) and the normalized *difference* is
    monotonic in the angle.
    """

    k_max: float = 0.2
    theta_range: float = math.pi / 3.0

    def __post_init__(self) -> None:
        if not 0 < self.k_max <= 1:
            raise ConfigurationError("k_max must be in (0, 1]")
        if not 0 < self.theta_range <= math.pi / 2.0:
            raise ConfigurationError("theta_range must be in (0, pi/2]")

    def couplings(self, theta: float) -> Tuple[float, float]:
        """(k1, k2) at mechanical angle ``theta`` (radians)."""
        if abs(theta) > self.theta_range:
            raise ConfigurationError(
                f"angle {theta:g} outside ±{self.theta_range:g} rad"
            )
        s = math.sin(theta) / math.sin(self.theta_range)
        k1 = self.k_max * (1.0 + s) / 2.0
        k2 = self.k_max * (1.0 - s) / 2.0
        return k1, k2


@dataclass(frozen=True)
class ReceivingCoilPair:
    """The two receiving coils seen from the excitation coil."""

    profile: CouplingProfile

    def received_amplitudes(self, theta: float, excitation_peak: float) -> Tuple[float, float]:
        """Peak voltages induced in the two receiving coils."""
        if excitation_peak < 0:
            raise ConfigurationError("excitation amplitude must be >= 0")
        k1, k2 = self.profile.couplings(theta)
        return k1 * excitation_peak, k2 * excitation_peak


@dataclass(frozen=True)
class DistributedCoil:
    """The sensing coil as an N-segment RLC transmission line.

    The lumped tank models the coil as one ``L`` + ``Rs`` between the
    LC pins; physically the inductance and loss are distributed along
    the winding, with inter-winding (parasitic) capacitance to the
    surrounding structure.  This generator splits the coil into
    ``n_segments`` series L-R cells (``L/N``, ``Rs/N`` each) with a
    shunt capacitor at every internal junction carrying an equal share
    of ``parasitic_fraction * C``; the pin capacitors of the lumped
    tank stay lumped at the two ends, so the fundamental resonance
    remains (to the high-Q approximation) the tank's own while the
    netlist gains the transmission-line modes a lumped model cannot
    show.

    ``unknown_count`` grows as ``3 N + 1``: an N-segment coil at
    N >= ~55 crosses the dense/sparse auto threshold, which is exactly
    what this family exists to exercise (the
    ``ladder_transient_dense_vs_sparse`` benchmark workload).
    """

    tank: RLCTank
    n_segments: int
    #: Total inter-winding capacitance as a fraction of one pin cap.
    parasitic_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ConfigurationError("n_segments must be >= 1")
        if not 0.0 < self.parasitic_fraction < 1.0:
            raise ConfigurationError("parasitic_fraction must be in (0, 1)")

    @property
    def segment_inductance(self) -> float:
        return self.tank.inductance / self.n_segments

    @property
    def segment_resistance(self) -> float:
        return self.tank.series_resistance / self.n_segments

    @property
    def junction_capacitance(self) -> float:
        """Shunt capacitance per internal junction (N - 1 of them)."""
        total = self.parasitic_fraction * self.tank.capacitance
        return total / max(self.n_segments - 1, 1)

    @property
    def unknown_count(self) -> int:
        """MNA unknowns of :meth:`build_circuit`'s netlist.

        ``2N + 1`` nodes (pins plus internal junctions) + ``N``
        inductor branches.
        """
        return 3 * self.n_segments + 1

    def build_circuit(self, drive_current: float = 1e-3) -> Circuit:
        """Drivable netlist: sine current drive at the tank resonance.

        The oscillator's Gm stage is a current drive, so the
        excitation is a current source into the LC1 pin at the lumped
        tank's resonance frequency; both pin capacitors of the lumped
        model appear at the ends (LC2 returned to ground, as in the
        single-ended test benches), with the distributed coil between
        them.  The netlist is linear — one factorization serves the
        whole run — which makes it the cleanest dense-vs-sparse
        backend comparison: identical step count, identical RHS work,
        only the linear algebra differs.
        """
        if drive_current <= 0:
            raise ConfigurationError("drive_current must be positive")
        circuit = Circuit(
            f"distributed sensing coil, {self.n_segments} segments"
        )
        circuit.current_source(
            "idrive", "0", "lc1", sine(drive_current, self.tank.frequency)
        )
        circuit.capacitor("cosc1", "lc1", "0", self.tank.capacitance)
        circuit.rlc_ladder(
            "coil_",
            "lc1",
            "lc2",
            self.n_segments,
            self.segment_inductance,
            self.segment_resistance,
            self.junction_capacitance,
        )
        circuit.capacitor("cosc2", "lc2", "0", self.tank.capacitance)
        # LC2 is the driven-to-ground pin in the single-ended benches.
        circuit.resistor("rload", "lc2", "0", 1e6)
        return circuit


@dataclass(frozen=True)
class CoilMesh:
    """The sensing coil as a 2-D ``nx x ny`` surface mesh.

    :class:`DistributedCoil` strings the winding out in one dimension;
    physically a planar sensing coil is a *surface*, its inductance
    and loss spread over a two-dimensional grid of coupled segments
    with distributed capacitance to the surrounding structure at every
    point of the surface.  This generator splits the lumped tank over
    a ``Circuit.coil_mesh`` grid: each of the ``E`` edges carries
    ``L/E`` and ``Rs/E`` (so the total series inductance and loss seen
    corner-to-corner stay of the tank's order), and each grid node
    shunts an equal share of ``parasitic_fraction * C``.

    ``unknown_count`` grows as ``~5 * nx * ny``: a 46x46 mesh crosses
    10k unknowns and a 100x100 mesh lands at ~50k, which is the
    workload family the stale-LU Krylov backend
    (:class:`~repro.circuits.backend.KrylovBackend`) exists for.
    """

    tank: RLCTank
    nx: int
    ny: int
    #: Total distributed capacitance as a fraction of one pin cap.
    parasitic_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ConfigurationError("coil mesh needs nx >= 2 and ny >= 2")
        if not 0.0 < self.parasitic_fraction < 1.0:
            raise ConfigurationError("parasitic_fraction must be in (0, 1)")

    @property
    def n_edges(self) -> int:
        return self.nx * (self.ny - 1) + self.ny * (self.nx - 1)

    @property
    def segment_inductance(self) -> float:
        return self.tank.inductance / self.n_edges

    @property
    def segment_resistance(self) -> float:
        return self.tank.series_resistance / self.n_edges

    @property
    def node_capacitance(self) -> float:
        """Shunt capacitance per grid node."""
        total = self.parasitic_fraction * self.tank.capacitance
        return total / (self.nx * self.ny)

    @property
    def unknown_count(self) -> int:
        """MNA unknowns of :meth:`build_circuit`'s netlist.

        ``nx*ny`` grid nodes + per edge one mid junction and one
        inductor branch, plus the drive pin.
        """
        return self.nx * self.ny + 2 * self.n_edges + 1

    def build_circuit(
        self,
        drive_current: float = 1e-3,
        drive: str = "sine",
        pulse_period: float = 0.0,
    ) -> Circuit:
        """Drivable netlist: current drive into one corner of the mesh.

        ``drive="sine"`` excites at the lumped tank's resonance — the
        linear single-factorization workload, the cleanest backend
        wall-clock comparison.  ``drive="pulse"`` is a repetitive
        scan-pulse train (period ``pulse_period``, default eight
        periods of the tank resonance): every edge is a stimulus
        breakpoint, so an adaptive run truncates steps onto the edges
        and churns through one-shot dt-cache entries — the
        refactorization-bound regime the stale-LU Krylov backend
        amortizes.
        """
        if drive_current <= 0:
            raise ConfigurationError("drive_current must be positive")
        if drive not in ("sine", "pulse"):
            raise ConfigurationError("drive must be 'sine' or 'pulse'")
        circuit = Circuit(
            f"coil mesh {self.nx}x{self.ny} ({self.unknown_count} unknowns)"
        )
        if drive == "sine":
            stimulus = sine(drive_current, self.tank.frequency)
        else:
            period = pulse_period or 8.0 / self.tank.frequency
            stimulus = pulse(
                0.0,
                drive_current,
                delay=0.1 * period,
                rise=0.02 * period,
                fall=0.02 * period,
                width=0.4 * period,
                period=period,
            )
        circuit.current_source("idrive", "0", "pin", stimulus)
        circuit.capacitor("cpin", "pin", "0", self.tank.capacitance)
        grid = circuit.coil_mesh(
            "mesh_",
            self.nx,
            self.ny,
            self.segment_inductance,
            self.segment_resistance,
            self.node_capacitance,
        )
        # Feed the corner, load the opposite corner.
        circuit.resistor("rfeed", "pin", grid[0][0], self.segment_resistance)
        circuit.resistor("rload", grid[self.nx - 1][self.ny - 1], "0", 1e6)
        return circuit


def coil_mesh_array(
    mesh: CoilMesh,
    n_coils: int,
    spread: float = 0.05,
    drive_current: float = 1e-3,
    drive: str = "sine",
) -> List[Circuit]:
    """Same-topology multi-coil array: one netlist per coil position.

    Manufacturing spread moves each coil's element values a
    deterministic few percent from nominal (coil ``k`` scales L, Rs,
    and C by ``1 + spread * sin``-spaced offsets), so the list feeds
    the batched/sharded campaign engines directly: identical
    structure, per-sample values — the regime the per-sample
    stale-preconditioner block solver
    (:class:`~repro.circuits.backend.KrylovBlockDiag`) amortizes.
    """
    if n_coils < 1:
        raise ConfigurationError("n_coils must be >= 1")
    if not 0.0 <= spread < 0.5:
        raise ConfigurationError("spread must be in [0, 0.5)")
    circuits = []
    for k in range(n_coils):
        # Deterministic, well-spread offsets in [-spread, spread].
        phase = 2.0 * math.pi * (k + 0.5) / n_coils
        scale_l = 1.0 + spread * math.sin(phase)
        scale_c = 1.0 + spread * math.cos(phase)
        scale_r = 1.0 + spread * math.sin(2.0 * phase)
        tank = RLCTank(
            mesh.tank.inductance * scale_l,
            mesh.tank.capacitance * scale_c,
            mesh.tank.series_resistance * scale_r,
        )
        varied = CoilMesh(tank, mesh.nx, mesh.ny, mesh.parasitic_fraction)
        # One scanner drives the whole array: the pulse train's timing
        # comes from the *nominal* tank so every coil shares the same
        # stimulus breakpoints (spread moves the elements, not the
        # scan clock).
        circuits.append(
            varied.build_circuit(
                drive_current=drive_current,
                drive=drive,
                pulse_period=8.0 / mesh.tank.frequency,
            )
        )
    return circuits


def tank_with_parallel_load(tank: RLCTank, r_parallel: float) -> RLCTank:
    """A tank whose Rp is loaded by an extra parallel resistance.

    Used to reflect the other system's pin loading (through the mutual
    coil coupling) into this system's resonance network.  The loaded
    ``Rp' = Rp || r_parallel`` is converted back to an equivalent
    series resistance at the same L and C.
    """
    if r_parallel <= 0:
        raise ConfigurationError("r_parallel must be positive")
    rp = tank.parallel_resistance
    rp_loaded = rp * r_parallel / (rp + r_parallel)
    xl = tank.omega0 * tank.inductance
    # Invert the exact series->parallel transform: Rp = (Rs^2 + XL^2)/Rs.
    # Solve Rs^2 - Rp*Rs + XL^2 = 0 for the low-loss root.
    disc = rp_loaded * rp_loaded - 4.0 * xl * xl
    if disc < 0:
        # Loading so heavy the tank stops being a resonator; report the
        # critically-damped equivalent.
        rs_loaded = rp_loaded / 2.0
    else:
        rs_loaded = (rp_loaded - math.sqrt(disc)) / 2.0
    return RLCTank(tank.inductance, tank.capacitance, rs_loaded)
