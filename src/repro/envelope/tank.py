"""Analytic model of the external LC resonance network (Fig 1).

Topology: the sensor coil ``L`` with all losses lumped into a series
resistance ``Rs`` is connected between the LC1 and LC2 pins; equal
capacitors ``C = Cosc1 = Cosc2`` go from each pin to an AC ground
(Vref).  Differentially the two capacitors appear in series, so the
tank seen by the driver is ``L + Rs`` in parallel with ``C/2``.

Derived quantities (documented convention, see DESIGN.md):

* ``omega0 = sqrt(2 / (L C))`` — resonance (high-Q approximation),
* ``Q = omega0 L / Rs``,
* ``Rp = (Rs^2 + (omega0 L)^2) / Rs ≈ 2 L / (C Rs)`` — equivalent
  parallel loss resistance at resonance,
* loss power at peak differential amplitude ``A``: ``A^2 / (2 Rp)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RLCTank"]


@dataclass(frozen=True)
class RLCTank:
    """External resonance network parameters (all SI units)."""

    inductance: float
    capacitance: float  # each of Cosc1 / Cosc2
    series_resistance: float

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ConfigurationError("inductance must be positive")
        if self.capacitance <= 0:
            raise ConfigurationError("capacitance must be positive")
        if self.series_resistance <= 0:
            raise ConfigurationError("series_resistance must be positive")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_frequency_and_q(
        cls, frequency: float, quality_factor: float, inductance: float
    ) -> "RLCTank":
        """Build a tank with given resonance frequency, Q, and coil L."""
        if frequency <= 0 or quality_factor <= 0 or inductance <= 0:
            raise ConfigurationError("frequency, Q, and L must be positive")
        omega0 = 2.0 * math.pi * frequency
        capacitance = 2.0 / (omega0 * omega0 * inductance)
        series_resistance = omega0 * inductance / quality_factor
        return cls(inductance, capacitance, series_resistance)

    # -- derived quantities ----------------------------------------------------

    @property
    def differential_capacitance(self) -> float:
        """Capacitance seen differentially across the coil (C/2)."""
        return 0.5 * self.capacitance

    @property
    def omega0(self) -> float:
        """Angular resonance frequency (rad/s)."""
        return math.sqrt(2.0 / (self.inductance * self.capacitance))

    @property
    def frequency(self) -> float:
        """Resonance frequency in Hz."""
        return self.omega0 / (2.0 * math.pi)

    @property
    def quality_factor(self) -> float:
        """Unloaded quality factor ``omega0 L / Rs``."""
        return self.omega0 * self.inductance / self.series_resistance

    @property
    def parallel_resistance(self) -> float:
        """Exact series-to-parallel transformed loss resistance at omega0."""
        xl = self.omega0 * self.inductance
        rs = self.series_resistance
        return (rs * rs + xl * xl) / rs

    @property
    def characteristic_impedance(self) -> float:
        """``sqrt(L / C_diff)`` — peak-energy impedance scale of the tank."""
        return math.sqrt(self.inductance / self.differential_capacitance)

    # -- energies and powers -------------------------------------------------------

    def stored_energy(self, peak_amplitude: float) -> float:
        """Total stored energy for a peak differential voltage ``A``."""
        if peak_amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        c = self.differential_capacitance
        return 0.5 * c * peak_amplitude * peak_amplitude

    def loss_power(self, peak_amplitude: float) -> float:
        """Average power dissipated in Rs at peak amplitude ``A``."""
        if peak_amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        return peak_amplitude * peak_amplitude / (2.0 * self.parallel_resistance)

    def ring_down_tau(self) -> float:
        """Amplitude decay time constant of the unloaded tank.

        ``A(t) = A0 exp(-t / tau)`` with ``tau = 2 Q / omega0``
        (equivalently ``2 Rp C_diff``).
        """
        return 2.0 * self.quality_factor / self.omega0

    def scaled(self, q_factor_scale: float) -> "RLCTank":
        """A tank with the same L, C but Q scaled by ``q_factor_scale``.

        Used for the paper's "quality factor can vary two decades"
        sweeps: scaling Q means scaling Rs inversely.
        """
        if q_factor_scale <= 0:
            raise ConfigurationError("q_factor_scale must be positive")
        return RLCTank(
            self.inductance,
            self.capacitance,
            self.series_resistance / q_factor_scale,
        )
