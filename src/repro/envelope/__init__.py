"""Averaged (envelope) oscillator models: tank math, describing
functions of saturating drivers, and amplitude dynamics."""

from .describing import (
    HardLimiter,
    K_SQUARE_WAVE,
    LimiterCharacteristic,
    TanhLimiter,
    delivered_power,
    effective_gm,
    fundamental_current,
    k_factor,
    mean_abs_current,
)
from .phase_noise import LeesonModel
from .locking import InjectionLocking, frequency_mismatch_from_tolerances
from .dynamics import EnvelopeModel, small_signal_growth_rate, steady_state_amplitude
from .tank import RLCTank

__all__ = [
    "HardLimiter",
    "K_SQUARE_WAVE",
    "LimiterCharacteristic",
    "TanhLimiter",
    "delivered_power",
    "effective_gm",
    "fundamental_current",
    "k_factor",
    "mean_abs_current",
    "LeesonModel",
    "InjectionLocking",
    "frequency_mismatch_from_tolerances",
    "EnvelopeModel",
    "small_signal_growth_rate",
    "steady_state_amplitude",
    "RLCTank",
]
