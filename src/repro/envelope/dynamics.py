"""Averaged (envelope) dynamics of the driven LC oscillator.

Energy-balance averaging over one carrier cycle gives the amplitude
ODE::

    dA/dt = (I1(A) - A / Rp) / (2 C_diff)

where ``A`` is the peak differential tank voltage, ``I1`` the in-phase
fundamental of the limited driver current, ``Rp`` the tank's parallel
loss resistance, and ``C_diff = C/2`` the differential capacitance.
This reduces the 2–5 MHz problem to the millisecond time scale of the
regulation loop, and is cross-validated against the full MNA transient
in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import brentq

from ..analysis.waveform import Waveform
from ..errors import ConfigurationError, SimulationError
from .describing import LimiterCharacteristic, fundamental_current
from .tank import RLCTank

__all__ = ["EnvelopeModel", "steady_state_amplitude", "small_signal_growth_rate"]

#: Default seed amplitude representing thermal noise / kick at enable.
DEFAULT_SEED_AMPLITUDE = 1e-4


def small_signal_growth_rate(tank: RLCTank, gm: float) -> float:
    """Exponential growth (or decay) rate of a small amplitude.

    ``A(t) = A0 * exp(lambda t)`` with
    ``lambda = (gm - 1/Rp) / (2 C_diff)``.  Positive iff the lumped
    differential transconductance exceeds the critical value ``1/Rp``.
    """
    if gm <= 0:
        raise ConfigurationError("gm must be positive")
    return (gm - 1.0 / tank.parallel_resistance) / (2.0 * tank.differential_capacitance)


def steady_state_amplitude(
    tank: RLCTank,
    limiter: LimiterCharacteristic,
    bracket_scale: float = 1e3,
) -> float:
    """Steady-state peak amplitude: solve ``I1(A) = A / Rp``.

    Returns 0 if the oscillation condition is not met (gm below
    critical).  For a hard limiter deep in limiting the result
    approaches ``(4/pi) Rp IM``, i.e. an RMS value of
    ``k * Rp * IM`` with ``k = 2 sqrt(2)/pi`` (the paper's Eq 4).
    """
    rp = tank.parallel_resistance
    if limiter.gm <= 1.0 / rp:
        return 0.0

    def balance(a: float) -> float:
        return fundamental_current(limiter, a) - a / rp

    a_low = limiter.corner_voltage * 1e-6
    a_high = max((4.0 / math.pi) * rp * limiter.i_max * 2.0, limiter.corner_voltage * bracket_scale)
    f_high = balance(a_high)
    # Expand the bracket if needed (very low-Q tanks).
    expansions = 0
    while f_high > 0 and expansions < 60:
        a_high *= 2.0
        f_high = balance(a_high)
        expansions += 1
    if f_high > 0:
        raise SimulationError("could not bracket the steady-state amplitude")
    return float(brentq(balance, a_low, a_high, xtol=1e-12, rtol=1e-10))


@dataclass
class EnvelopeModel:
    """Averaged amplitude dynamics of the driven tank.

    Parameters
    ----------
    tank:
        The external RLC network.
    limiter:
        Driver I–V characteristic (gm and current limit IM).
    seed_amplitude:
        Initial amplitude used when starting "from noise".
    """

    tank: RLCTank
    limiter: LimiterCharacteristic
    seed_amplitude: float = DEFAULT_SEED_AMPLITUDE

    def __post_init__(self) -> None:
        if self.seed_amplitude <= 0:
            raise ConfigurationError("seed_amplitude must be positive")

    # -- single-rate API -------------------------------------------------------

    def derivative(self, amplitude: float) -> float:
        """dA/dt at the given peak amplitude."""
        a = max(amplitude, 0.0)
        i1 = fundamental_current(self.limiter, a)
        rp = self.tank.parallel_resistance
        return (i1 - a / rp) / (2.0 * self.tank.differential_capacitance)

    def steady_state(self) -> float:
        """Steady-state peak amplitude (0 if it cannot oscillate)."""
        return steady_state_amplitude(self.tank, self.limiter)

    def advance(
        self,
        a0: float,
        duration: float,
        max_step: Optional[float] = None,
    ) -> float:
        """Amplitude after ``duration`` starting from ``a0``.

        Deterministic fixed-step RK4 on the scalar envelope ODE — the
        cycle-skipping transient engine calls this once per skip, so
        it must be cheap and bit-reproducible (no adaptive solver
        heuristics).  ``max_step`` caps the RK4 substep; the default
        resolves the interval with 64 substeps.
        """
        if duration <= 0:
            return max(float(a0), 0.0)
        n = 64
        if max_step is not None and max_step > 0:
            n = max(n, int(math.ceil(duration / max_step)))
        h = duration / n
        a = max(float(a0), 0.0)
        for _ in range(n):
            k1 = self.derivative(a)
            k2 = self.derivative(a + 0.5 * h * k1)
            k3 = self.derivative(a + 0.5 * h * k2)
            k4 = self.derivative(a + h * k3)
            a = max(a + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4), 0.0)
        return a

    def simulate(
        self,
        t_stop: float,
        a0: Optional[float] = None,
        max_step: Optional[float] = None,
        n_points: int = 500,
    ) -> Waveform:
        """Integrate the envelope ODE from ``a0`` (default: seed) to t_stop."""
        if t_stop <= 0:
            raise SimulationError("t_stop must be positive")
        start = self.seed_amplitude if a0 is None else float(a0)
        if start < 0:
            raise SimulationError("initial amplitude must be non-negative")

        def rhs(_t: float, y: np.ndarray) -> np.ndarray:
            return np.array([self.derivative(float(y[0]))])

        t_eval = np.linspace(0.0, t_stop, n_points)
        solution = solve_ivp(
            rhs,
            (0.0, t_stop),
            [start],
            t_eval=t_eval,
            max_step=max_step if max_step is not None else t_stop / 50.0,
            rtol=1e-7,
            atol=1e-12,
        )
        if not solution.success:
            raise SimulationError(f"envelope integration failed: {solution.message}")
        return Waveform(solution.t, np.maximum(solution.y[0], 0.0), name="envelope")

    def startup_time(self, fraction: float = 0.9, a0: Optional[float] = None) -> float:
        """Time to reach ``fraction`` of the steady-state amplitude."""
        if not 0 < fraction < 1:
            raise SimulationError("fraction must be in (0, 1)")
        target_amp = fraction * self.steady_state()
        if target_amp <= 0:
            raise SimulationError("oscillator does not start (gm below critical)")
        # Estimate the horizon from the small-signal growth rate.
        rate = small_signal_growth_rate(self.tank, self.limiter.gm)
        start = self.seed_amplitude if a0 is None else a0
        if rate <= 0:
            raise SimulationError("oscillator does not start (gm below critical)")
        horizon = 5.0 * (math.log(max(target_amp / start, 2.0)) / rate + self.tank.ring_down_tau())
        wave = self.simulate(horizon, a0=a0, n_points=2000)
        above = np.where(wave.y >= target_amp)[0]
        if above.size == 0:
            raise SimulationError("startup did not reach the target within the horizon")
        idx = int(above[0])
        if idx == 0:
            return 0.0
        # Linear interpolation for sub-sample accuracy.
        t0, t1 = wave.t[idx - 1], wave.t[idx]
        y0, y1 = wave.y[idx - 1], wave.y[idx]
        return float(t0 + (target_amp - y0) / (y1 - y0) * (t1 - t0))
