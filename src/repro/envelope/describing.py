"""Describing-function analysis of saturating driver characteristics.

The paper regulates amplitude by limiting the driver output current at
``±IM`` (Fig 2).  For a sinusoidal tank voltage ``v(t) = A sin(w t)``
the driver delivers a distorted current whose *fundamental, in-phase*
component is what sustains the oscillation; harmonics are filtered by
the high-Q tank.  This module computes:

* ``fundamental_current(A)`` — in-phase fundamental amplitude ``I1``,
* ``effective_gm(A) = I1 / A`` — the large-signal transconductance,
* ``k_factor(A)`` — the paper's ``k`` (Eq 3/4), defined through
  ``P_delivered = k * V_rms * IM``; for a fully-limited (square)
  current ``k = 2 sqrt(2) / pi ≈ 0.90``, matching the paper's
  "k ≈ 0.9 for linear approximation",
* ``mean_abs_current(A)`` — cycle-average of |i|, the dominant term of
  the driver supply-current model (§9).

:class:`HardLimiter` (the paper's Fig 2 characteristic) has closed
forms for all of these, which keeps the millisecond-scale regulation
simulation fast; other characteristics fall back to quadrature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "LimiterCharacteristic",
    "HardLimiter",
    "TanhLimiter",
    "hard_limiter_pair",
    "tanh_limiter_pair",
    "K_SQUARE_WAVE",
    "fundamental_current",
    "effective_gm",
    "k_factor",
    "delivered_power",
    "mean_abs_current",
]

#: k for a perfectly square (hard-limited) driver current, ``2*sqrt(2)/pi``.
K_SQUARE_WAVE = 2.0 * math.sqrt(2.0) / math.pi


@dataclass(frozen=True)
class LimiterCharacteristic:
    """Base class: a memoryless driver I–V characteristic ``i = f(v)``.

    Attributes
    ----------
    gm:
        Small-signal transconductance around v = 0.
    i_max:
        Output current limit ``IM`` (the regulated quantity).
    """

    gm: float
    i_max: float

    def __post_init__(self) -> None:
        if self.gm <= 0:
            raise ConfigurationError("gm must be positive")
        if self.i_max <= 0:
            raise ConfigurationError("i_max must be positive")

    @property
    def corner_voltage(self) -> float:
        """Voltage at which the linear region meets the limit."""
        return self.i_max / self.gm

    def __call__(self, v: float) -> float:
        raise NotImplementedError

    def value_and_slope(self, v: float) -> "tuple[float, float]":
        """``(i(v), di/dv)`` in one evaluation.

        Subclasses with a closed-form derivative override this; the
        MNA transient engine uses it to linearize the driver with a
        single characteristic evaluation per Newton iterate instead of
        three finite-difference ones.
        """
        raise NotImplementedError

    def sample(self, v: np.ndarray) -> np.ndarray:
        """Vectorized evaluation (default: loop over scalars)."""
        return np.asarray([self(float(x)) for x in np.asarray(v).ravel()])

    def vector_pair_spec(self):
        """Batchable characteristic family, or ``None``.

        Returns ``(family, params)`` where ``family(v, *params)`` is a
        module-level callable evaluating ``(i, di/dv)`` elementwise on
        numpy arrays — the contract of ``NonlinearVCCS.vector_pair``.
        Two limiters of the same family differ only in ``params``, so
        the batched transient engine can stack many Monte-Carlo
        instances of a driver and linearize them in one call.  The
        base class has no closed-form slope, hence no family.
        """
        return None

    # -- describing-function quantities (quadrature defaults) ----------------

    def fundamental(self, amplitude: float, n: int = 2048) -> float:
        """In-phase fundamental amplitude ``I1(A)`` (quadrature)."""
        if amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        if amplitude == 0.0:
            return 0.0
        theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
        s = np.sin(theta)
        i = self.sample(amplitude * s)
        dtheta = 2.0 * np.pi / n
        return float(np.sum(i * s) * dtheta / np.pi)

    def mean_abs(self, amplitude: float, n: int = 2048) -> float:
        """Cycle-average of |i(A sin θ)| (quadrature)."""
        if amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        if amplitude == 0.0:
            return 0.0
        theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
        i = self.sample(amplitude * np.sin(theta))
        return float(np.mean(np.abs(i)))


def hard_limiter_pair(v, gm, i_max):
    """Elementwise ``(i, di/dv)`` of a hard limiter (batchable family).

    Matches :meth:`HardLimiter.value_and_slope` bit for bit on scalars
    (same strict-inequality clipping convention).
    """
    i_lin = gm * np.asarray(v, dtype=float)
    limited = (i_lin > i_max) | (i_lin < -i_max)
    i = np.clip(i_lin, -i_max, i_max)
    slope = np.where(limited, 0.0, gm)
    return i, slope


def tanh_limiter_pair(v, gm, i_max):
    """Elementwise ``(i, di/dv)`` of a tanh limiter (batchable family)."""
    t = np.tanh(gm * np.asarray(v, dtype=float) / i_max)
    return i_max * t, gm * (1.0 - t * t)


class HardLimiter(LimiterCharacteristic):
    """Piece-wise-linear limiter of Fig 2: linear slope gm clipped at ±IM.

    ``fundamental`` and ``mean_abs`` use the classic clipped-sine
    closed forms (exact, fast).
    """

    def __call__(self, v: float) -> float:
        return float(np.clip(self.gm * v, -self.i_max, self.i_max))

    def value_and_slope(self, v: float) -> "tuple[float, float]":
        i = self.gm * v
        if i > self.i_max:
            return self.i_max, 0.0
        if i < -self.i_max:
            return -self.i_max, 0.0
        return i, self.gm

    def sample(self, v: np.ndarray) -> np.ndarray:
        return np.clip(self.gm * np.asarray(v, dtype=float), -self.i_max, self.i_max)

    def vector_pair_spec(self):
        return hard_limiter_pair, (self.gm, self.i_max)

    def fundamental(self, amplitude: float, n: int = 2048) -> float:
        if amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        if amplitude == 0.0:
            return 0.0
        v0 = self.corner_voltage
        if amplitude <= v0:
            return self.gm * amplitude
        theta_c = math.asin(v0 / amplitude)
        return (4.0 / math.pi) * (
            self.gm * amplitude * (0.5 * theta_c - 0.25 * math.sin(2.0 * theta_c))
            + self.i_max * math.cos(theta_c)
        )

    def mean_abs(self, amplitude: float, n: int = 2048) -> float:
        if amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        if amplitude == 0.0:
            return 0.0
        v0 = self.corner_voltage
        if amplitude <= v0:
            return (2.0 / math.pi) * self.gm * amplitude
        theta_c = math.asin(v0 / amplitude)
        return (2.0 / math.pi) * (
            self.gm * amplitude * (1.0 - math.cos(theta_c))
            + self.i_max * (0.5 * math.pi - theta_c)
        )


class TanhLimiter(LimiterCharacteristic):
    """Smooth limiter ``IM * tanh(gm v / IM)`` (differential-pair-like).

    Used for transient simulation where a C1-continuous characteristic
    improves Newton convergence; its describing function is within a
    few percent of the hard limiter once well into limiting.
    """

    def __call__(self, v: float) -> float:
        return float(self.i_max * math.tanh(self.gm * v / self.i_max))

    def value_and_slope(self, v: float) -> "tuple[float, float]":
        t = math.tanh(self.gm * v / self.i_max)
        return self.i_max * t, self.gm * (1.0 - t * t)

    def sample(self, v: np.ndarray) -> np.ndarray:
        return self.i_max * np.tanh(self.gm * np.asarray(v, dtype=float) / self.i_max)

    def vector_pair_spec(self):
        return tanh_limiter_pair, (self.gm, self.i_max)


def fundamental_current(limiter: LimiterCharacteristic, amplitude: float, n: int = 2048) -> float:
    """In-phase fundamental amplitude ``I1`` of the driver current.

    ``I1 = (1/pi) * ∫ f(A sin θ) sin θ dθ`` over one period.
    """
    return limiter.fundamental(amplitude, n=n)


def effective_gm(limiter: LimiterCharacteristic, amplitude: float, n: int = 2048) -> float:
    """Large-signal transconductance ``Gm_eff(A) = I1(A)/A``.

    Tends to ``gm`` for small amplitudes and falls off as ``~1/A`` once
    limiting dominates — this is the mechanism that stabilizes the
    oscillation amplitude.
    """
    if amplitude <= 0:
        return limiter.gm
    return limiter.fundamental(amplitude, n=n) / amplitude


def delivered_power(limiter: LimiterCharacteristic, amplitude: float, n: int = 2048) -> float:
    """Average power delivered to the tank at peak amplitude ``A``.

    Only the in-phase fundamental delivers net power into a high-Q
    resonant load: ``P = A * I1 / 2``.
    """
    return 0.5 * amplitude * limiter.fundamental(amplitude, n=n)


def mean_abs_current(limiter: LimiterCharacteristic, amplitude: float, n: int = 2048) -> float:
    """Cycle-average |i| — the driver's signal-path supply current."""
    return limiter.mean_abs(amplitude, n=n)


def k_factor(limiter: LimiterCharacteristic, amplitude: float, n: int = 2048) -> float:
    """The paper's ``k``: ``P_delivered = k * V_rms * IM`` (Eq 3).

    For a hard limiter deep in limiting this approaches
    :data:`K_SQUARE_WAVE` ≈ 0.9003.
    """
    if amplitude <= 0:
        raise ConfigurationError("k_factor needs a positive amplitude")
    v_rms = amplitude / math.sqrt(2.0)
    return delivered_power(limiter, amplitude, n=n) / (v_rms * limiter.i_max)
