"""Leeson-model phase-noise estimate for the LC oscillator.

The paper cites Hajimiri & Lee, "Design issues in CMOS differential LC
oscillators" [3]; while it reports no phase-noise figure, the driver's
design levers (tank Q, oscillation amplitude = signal power, limiting)
map directly onto Leeson's formula::

    L(df) = 10 log10( (2 F k T / P_sig) * (1 + (f0 / (2 Q df))^2) )

with ``P_sig = V_rms^2 / Rp`` the power dissipated in the tank and
``F`` an empirical noise factor of the active device.  This module
gives the standard engineering estimate used to sanity-check such a
driver — higher Q and higher regulated amplitude both lower the noise,
which is why the amplitude regulation indirectly also serves spectral
purity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .tank import RLCTank

__all__ = ["LeesonModel", "BOLTZMANN"]

BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class LeesonModel:
    """Phase-noise estimate of the driven tank.

    Parameters
    ----------
    tank:
        The resonance network (Q, Rp, f0).
    amplitude_peak:
        Regulated peak differential amplitude.
    noise_factor:
        Leeson's F (>= 1); 2..3 is typical for a hard-limited
        cross-coupled pair.
    temperature_k:
        Absolute temperature.
    """

    tank: RLCTank
    amplitude_peak: float
    noise_factor: float = 2.5
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.amplitude_peak <= 0:
            raise ConfigurationError("amplitude must be positive")
        if self.noise_factor < 1.0:
            raise ConfigurationError("noise factor must be >= 1")
        if self.temperature_k <= 0:
            raise ConfigurationError("temperature must be positive")

    @property
    def signal_power(self) -> float:
        """Power dissipated in the tank at the regulated amplitude."""
        v_rms = self.amplitude_peak / math.sqrt(2.0)
        return v_rms * v_rms / self.tank.parallel_resistance

    @property
    def leeson_corner(self) -> float:
        """Half bandwidth ``f0 / (2 Q)`` — the -20 dB/dec corner."""
        return self.tank.frequency / (2.0 * self.tank.quality_factor)

    def phase_noise_dbc(self, offset_hz: float) -> float:
        """L(df) in dBc/Hz at the given offset from the carrier."""
        if offset_hz <= 0:
            raise ConfigurationError("offset must be positive")
        thermal = 2.0 * self.noise_factor * BOLTZMANN * self.temperature_k
        corner = self.leeson_corner / offset_hz
        ratio = (thermal / self.signal_power) * (1.0 + corner * corner)
        return 10.0 * math.log10(ratio)

    def jitter_ppm(self, offset_hz: float, bandwidth_hz: float) -> float:
        """Crude integrated phase jitter over a band around ``offset``.

        Integrates the -20 dB/dec region analytically between
        ``offset`` and ``offset + bandwidth``; returned as RMS ppm of
        the carrier period.  Good enough for comparing design points.
        """
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        thermal = 2.0 * self.noise_factor * BOLTZMANN * self.temperature_k
        corner = self.leeson_corner
        # Integral of (corner/f)^2 df from f1 to f2 = corner^2 (1/f1 - 1/f2)
        f1 = offset_hz
        f2 = offset_hz + bandwidth_hz
        power = (thermal / self.signal_power) * (
            (bandwidth_hz) + corner * corner * (1.0 / f1 - 1.0 / f2)
        )
        # Phase variance (rad^2) -> rms radians -> ppm of a period.
        rms_rad = math.sqrt(2.0 * power)
        return rms_rad / (2.0 * math.pi) * 1e6
