"""Injection locking of coupled oscillators (Adler's equation).

Paper §8: in the redundant configuration "the two systems are running
at the same frequency" with mutually coupled excitation coils.  Two
free-running LC oscillators only share a frequency when the coupling
pulls them into injection lock; this module provides the classic Adler
analysis to check that the sensor's coupling and component tolerances
actually guarantee lock.

For an oscillator of resonance ``w0`` and quality ``Q`` receiving an
injected signal ``V_inj`` relative to its own swing ``V_osc``::

    lock range (one side):  w_L = (w0 / (2 Q)) * (V_inj / V_osc)
    locked phase offset:    sin(phi) = dw / w_L
    unlocked beat:          w_beat = sqrt(dw^2 - w_L^2)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .tank import RLCTank

__all__ = ["InjectionLocking", "frequency_mismatch_from_tolerances"]


def frequency_mismatch_from_tolerances(
    l_tolerance: float, c_tolerance: float
) -> float:
    """Worst-case relative frequency mismatch of two LC oscillators.

    ``w0 = sqrt(2/(L C))`` so a relative error ``dL`` and ``dC`` shift
    the frequency by approximately ``(dL + dC) / 2``; two units can be
    off in opposite directions, doubling it again.
    """
    if l_tolerance < 0 or c_tolerance < 0:
        raise ConfigurationError("tolerances must be >= 0")
    return l_tolerance + c_tolerance


@dataclass(frozen=True)
class InjectionLocking:
    """Adler-model analysis of one oscillator under injection.

    Parameters
    ----------
    tank:
        The oscillator's resonance network (supplies w0 and Q).
    injection_ratio:
        ``V_inj / V_osc`` — for coupled excitation coils running at
        similar amplitudes this is approximately the coupling
        coefficient ``k``.
    """

    tank: RLCTank
    injection_ratio: float

    def __post_init__(self) -> None:
        if not 0 < self.injection_ratio < 1:
            raise ConfigurationError("injection_ratio must be in (0, 1)")

    @property
    def lock_range(self) -> float:
        """One-sided lock range in rad/s."""
        return (
            self.tank.omega0
            / (2.0 * self.tank.quality_factor)
            * self.injection_ratio
        )

    @property
    def relative_lock_range(self) -> float:
        """Lock range as a fraction of the carrier frequency."""
        return self.lock_range / self.tank.omega0

    def locks(self, relative_detuning: float) -> bool:
        """Does an oscillator detuned by ``df/f0`` lock to the injection?"""
        delta_omega = abs(relative_detuning) * self.tank.omega0
        return delta_omega <= self.lock_range

    def locked_phase(self, relative_detuning: float) -> float:
        """Steady phase offset (radians) inside the lock range."""
        delta_omega = relative_detuning * self.tank.omega0
        ratio = delta_omega / self.lock_range
        if abs(ratio) > 1.0 + 1e-9:
            raise ConfigurationError(
                "detuning outside the lock range — no steady phase exists"
            )
        return math.asin(max(-1.0, min(1.0, ratio)))

    def beat_frequency(self, relative_detuning: float) -> float:
        """Average beat frequency (Hz) outside the lock range.

        Inside the lock range the beat is zero (the oscillators run
        synchronously).
        """
        delta_omega = abs(relative_detuning) * self.tank.omega0
        if delta_omega <= self.lock_range:
            return 0.0
        return math.sqrt(delta_omega**2 - self.lock_range**2) / (2.0 * math.pi)

    def max_tolerable_detuning(self) -> float:
        """Largest ``df/f0`` that still locks — the tolerance budget."""
        return self.relative_lock_range
