"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library errors without
catching programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistError",
    "ConvergenceError",
    "AnalysisError",
    "CodingError",
    "SimulationError",
    "FaultError",
    "ConfigurationError",
    "BatchTaskError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists.

    Examples: duplicate component names, references to undeclared
    nodes, components with a non-positive element value where one is
    required.
    """


class ConvergenceError(ReproError):
    """Raised when a nonlinear (Newton) solve fails to converge.

    Carries the iteration count and the final residual norm so the
    caller can decide whether to retry with different homotopy settings.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(ReproError):
    """Raised when a waveform measurement cannot be performed.

    Example: asking for the oscillation frequency of a waveform that
    contains no zero crossings.
    """


class CodingError(ReproError):
    """Raised for invalid DAC codes or control-bus words."""


class SimulationError(ReproError):
    """Raised when a behavioural simulation is configured inconsistently."""


class FaultError(ReproError):
    """Raised for unknown fault identifiers or invalid fault parameters."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are out of range."""


class BatchTaskError(ReproError):
    """Raised when a batch-campaign worker fails on one task.

    Wraps the worker's original exception (available as ``__cause__``)
    with the index and task that failed, so a mid-campaign error in a
    thousand-sample Monte-Carlo run identifies exactly which seed died
    instead of losing that information in a bare traceback.
    """

    def __init__(self, message: str, index: int, task: object = None):
        super().__init__(message)
        self.index = index
        self.task = task

    def __reduce__(self):
        # Exception pickling replays args, which hold only the
        # message; without this, a worker process raising
        # BatchTaskError would break the pool on unpickling.
        return type(self), (self.args[0], self.index, self.task)
