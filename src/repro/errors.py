"""Exception hierarchy (and failure records) for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library errors without
catching programming mistakes (``TypeError`` etc.).  The module also
holds :class:`TaskFailure`, the structured *record* of a failed batch
task that fault-tolerant campaigns return in place of a result — it
lives here with the exceptions it wraps so every layer can import it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ReproError",
    "NetlistError",
    "PreflightError",
    "ConvergenceError",
    "AnalysisError",
    "CodingError",
    "SimulationError",
    "FaultError",
    "ConfigurationError",
    "BatchTaskError",
]

# TaskFailure is deliberately not in __all__: it is a result *record*,
# not an exception, and ``__all__`` here is the exception hierarchy
# contract (everything in it derives from ReproError).  Import it
# explicitly, or via :mod:`repro.campaigns`, which re-exports it.


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists.

    Examples: duplicate component names, references to undeclared
    nodes, components with a non-positive element value where one is
    required.
    """


class PreflightError(NetlistError):
    """Raised by ``preflight="raise"`` when netlist lint finds errors.

    Carries the full diagnostic list (:class:`~repro.circuits.
    preflight.Diagnostic` records) as ``diagnostics`` so callers can
    inspect every finding, not just the error that aborted the run.
    """

    def __init__(self, message: str, diagnostics: Optional[List[object]] = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])

    def __reduce__(self):
        return type(self), (self.args[0], self.diagnostics)


class ConvergenceError(ReproError):
    """Raised when a nonlinear (Newton) solve fails to converge.

    Carries the iteration count and the final residual norm so the
    caller can decide whether to retry with different homotopy
    settings, plus — when raised from inside a transient engine —
    structured context identifying *where* the solve died: the step
    time, the step size, the solve phase (``"step"`` for an ordinary
    Newton step, ``"rescue"`` for a failed rescue-ladder stage), and
    in the batched lockstep engine the indices of the samples still
    unconverged.  :meth:`context` returns the populated fields as a
    plain dict for quarantine logs and
    :class:`TaskFailure` records.
    """

    def __init__(
        self,
        message: str,
        iterations: int = 0,
        residual: float = float("nan"),
        *,
        time: Optional[float] = None,
        dt: Optional[float] = None,
        phase: Optional[str] = None,
        failed_samples: Optional[List[int]] = None,
    ):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.time = time
        self.dt = dt
        self.phase = phase
        self.failed_samples = failed_samples

    def context(self) -> Dict[str, object]:
        """The populated structured fields as a plain dict."""
        items = {
            "iterations": self.iterations,
            "residual": self.residual,
            "time": self.time,
            "dt": self.dt,
            "phase": self.phase,
            "failed_samples": self.failed_samples,
        }
        return {key: value for key, value in items.items() if value is not None}

    def __reduce__(self):
        # Exception pickling replays positional args only; the keyword
        # context would silently drop crossing a process pool without
        # the state dict (applied to __dict__ on unpickling).
        return (
            type(self),
            (self.args[0], self.iterations, self.residual),
            {
                "time": self.time,
                "dt": self.dt,
                "phase": self.phase,
                "failed_samples": self.failed_samples,
            },
        )


class AnalysisError(ReproError):
    """Raised when a waveform measurement cannot be performed.

    Example: asking for the oscillation frequency of a waveform that
    contains no zero crossings.
    """


class CodingError(ReproError):
    """Raised for invalid DAC codes or control-bus words."""


class SimulationError(ReproError):
    """Raised when a behavioural simulation is configured inconsistently."""


class FaultError(ReproError):
    """Raised for unknown fault identifiers or invalid fault parameters."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are out of range."""


class BatchTaskError(ReproError):
    """Raised when a batch-campaign worker fails on one task.

    Wraps the worker's original exception (available as ``__cause__``)
    with the index and task that failed, so a mid-campaign error in a
    thousand-sample Monte-Carlo run identifies exactly which seed died
    instead of losing that information in a bare traceback.

    A live ``__cause__`` object cannot survive pickling back through a
    process pool (exception pickling replays constructor args only),
    so ``cause_text`` carries the worker's original traceback as a
    rendered string: attribution survives even when the exception
    object itself does not.
    """

    def __init__(
        self,
        message: str,
        index: int,
        task: object = None,
        cause_text: Optional[str] = None,
    ):
        super().__init__(message)
        self.index = index
        self.task = task
        self.cause_text = cause_text

    def __reduce__(self):
        # Exception pickling replays args, which hold only the
        # message; without this, a worker process raising
        # BatchTaskError would break the pool on unpickling — and
        # without cause_text in the replayed args, the chained
        # worker traceback would be lost in transit.
        return type(self), (self.args[0], self.index, self.task, self.cause_text)


@dataclass
class TaskFailure:
    """Structured record of one failed batch task.

    Fault-tolerant campaigns (``BatchOptions(on_error="skip")`` /
    ``"retry"``) return these *in place* of the failed tasks' results,
    so a 1000-sample run with 3 pathological samples yields 997
    results plus 3 records instead of one exception and nothing.  The
    record identifies what died (``index``, ``task``), why
    (``error``, with any structured :class:`ConvergenceError` context
    flattened into ``context``), and how hard the runner tried
    (``attempts``).
    """

    index: int
    task: object
    error: BaseException
    attempts: int = 1
    #: Structured failure context (time/dt/phase/failed samples for a
    #: ConvergenceError, rendered worker traceback for a pool failure).
    context: Dict[str, object] = field(default_factory=dict)
    #: Failure class: ``"error"`` for an exception raised by the task,
    #: ``"timeout"`` for a hung worker killed by the pool watchdog.
    kind: str = "error"

    @property
    def message(self) -> str:
        return str(self.error)

    def __bool__(self) -> bool:
        # A failure is falsy so campaign code can split results with
        # the natural `if result:` / `filter` idioms.
        return False
