"""Waveform containers and measurement utilities."""

from .waveform import Waveform
from .measurements import (
    StepEvent,
    amplitude_peak,
    amplitude_rms_of_sine,
    crossing_time,
    find_steps,
    oscillation_frequency,
    oscillation_period,
    settling_time,
    zero_crossings,
)
from .envelope_extract import envelope_by_peaks, envelope_by_rectify_filter
from .io import load_columns_csv, load_waveform_csv, save_columns_csv, save_waveform_csv
from .spectrum import HarmonicSpectrum, harmonic_spectrum, tank_harmonic_rejection, thd
from .tables import format_si, render_series, render_table

__all__ = [
    "Waveform",
    "StepEvent",
    "amplitude_peak",
    "amplitude_rms_of_sine",
    "crossing_time",
    "find_steps",
    "oscillation_frequency",
    "oscillation_period",
    "settling_time",
    "zero_crossings",
    "envelope_by_peaks",
    "envelope_by_rectify_filter",
    "load_columns_csv",
    "load_waveform_csv",
    "save_columns_csv",
    "save_waveform_csv",
    "HarmonicSpectrum",
    "harmonic_spectrum",
    "tank_harmonic_rejection",
    "thd",
    "format_si",
    "render_series",
    "render_table",
]
