"""Waveform container used by every simulator in the library.

A :class:`Waveform` is an immutable pair of equal-length numpy arrays
``(t, y)`` with strictly increasing time.  It supports arithmetic with
other waveforms sharing the same time base and with scalars, slicing by
time window, resampling, and simple calculus, which is all the
measurement layer (:mod:`repro.analysis.measurements`) needs.

The time axis is **not** assumed uniform: the adaptive transient
engine records on the accepted-step grid, so every operation here
(derivative, integral, mean, rms, resampling, windowing) is written
against the actual sample times.  Consumers that genuinely need a
uniform grid — FFT-style processing, fixed-rate export — should go
through :meth:`Waveform.resample_uniform` first.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

import numpy as np

from ..errors import AnalysisError

__all__ = ["Waveform"]

_Scalar = Union[int, float]


class Waveform:
    """A sampled real-valued signal ``y(t)``.

    Parameters
    ----------
    t:
        Sample times in seconds, strictly increasing.
    y:
        Sample values, same length as ``t``.
    name:
        Optional label used in error messages and table rendering.
    """

    __slots__ = ("_t", "_y", "name")

    def __init__(self, t: Iterable[float], y: Iterable[float], name: str = ""):
        t_arr = np.asarray(t, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if t_arr.ndim != 1 or y_arr.ndim != 1:
            raise AnalysisError("Waveform arrays must be one-dimensional")
        if t_arr.shape != y_arr.shape:
            raise AnalysisError(
                f"Waveform time/value length mismatch: {t_arr.size} vs {y_arr.size}"
            )
        if t_arr.size < 2:
            raise AnalysisError("Waveform needs at least two samples")
        if not np.all(np.diff(t_arr) > 0):
            raise AnalysisError("Waveform time axis must be strictly increasing")
        self._t = t_arr
        self._y = y_arr
        self.name = name

    # -- basic accessors -------------------------------------------------

    @property
    def t(self) -> np.ndarray:
        """Time axis (read-only view)."""
        view = self._t.view()
        view.flags.writeable = False
        return view

    @property
    def y(self) -> np.ndarray:
        """Value axis (read-only view)."""
        view = self._y.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._t.size

    @property
    def t_start(self) -> float:
        return float(self._t[0])

    @property
    def t_stop(self) -> float:
        return float(self._t[-1])

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Waveform{label} n={len(self)} t=[{self.t_start:.3e}, "
            f"{self.t_stop:.3e}] y=[{self._y.min():.3e}, {self._y.max():.3e}]>"
        )

    # -- construction helpers --------------------------------------------

    @classmethod
    def from_function(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        t_start: float,
        t_stop: float,
        n: int = 1001,
        name: str = "",
    ) -> "Waveform":
        """Sample ``func`` uniformly on ``[t_start, t_stop]``."""
        if t_stop <= t_start:
            raise AnalysisError("from_function requires t_stop > t_start")
        t = np.linspace(t_start, t_stop, n)
        return cls(t, np.asarray(func(t), dtype=float), name=name)

    # -- arithmetic --------------------------------------------------------

    def _binary(self, other: Union["Waveform", _Scalar], op) -> "Waveform":
        if isinstance(other, Waveform):
            if len(other) != len(self) or not np.allclose(other._t, self._t):
                raise AnalysisError(
                    "Waveform arithmetic requires an identical time base; "
                    "use resample() first"
                )
            return Waveform(self._t, op(self._y, other._y), name=self.name)
        return Waveform(self._t, op(self._y, float(other)), name=self.name)

    def __add__(self, other):
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return Waveform(self._t, float(other) - self._y, name=self.name)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __neg__(self):
        return Waveform(self._t, -self._y, name=self.name)

    def abs(self) -> "Waveform":
        """Full-wave rectified copy (|y|), as done by the amplitude detector."""
        return Waveform(self._t, np.abs(self._y), name=self.name)

    # -- slicing / resampling ----------------------------------------------

    def window(self, t_from: float, t_to: float) -> "Waveform":
        """Return the sub-waveform with ``t_from <= t <= t_to``."""
        if t_to <= t_from:
            raise AnalysisError("window() requires t_to > t_from")
        mask = (self._t >= t_from) & (self._t <= t_to)
        if int(mask.sum()) < 2:
            raise AnalysisError(
                f"window [{t_from:g}, {t_to:g}] contains fewer than 2 samples"
            )
        return Waveform(self._t[mask], self._y[mask], name=self.name)

    def resample(self, t_new: Iterable[float]) -> "Waveform":
        """Linear interpolation onto a new time axis."""
        t_arr = np.asarray(t_new, dtype=float)
        y_new = np.interp(t_arr, self._t, self._y)
        return Waveform(t_arr, y_new, name=self.name)

    @property
    def is_uniform(self) -> bool:
        """Whether the sample grid is (numerically) uniform."""
        dt = np.diff(self._t)
        return bool(np.allclose(dt, dt[0], rtol=1e-9, atol=0.0))

    def resample_uniform(self, n: int = 0) -> "Waveform":
        """Linear interpolation onto a uniform grid over the same span.

        ``n`` defaults to the current sample count, i.e. the average
        sample rate is preserved.  Use before any processing that
        assumes constant spacing (FFTs, decimating filters).
        """
        if n <= 0:
            n = len(self)
        if n < 2:
            raise AnalysisError("resample_uniform needs at least 2 samples")
        return self.resample(np.linspace(self.t_start, self.t_stop, n))

    def value_at(self, t: float) -> float:
        """Linearly-interpolated value at time ``t`` (clamped at the ends)."""
        return float(np.interp(t, self._t, self._y))

    # -- calculus ------------------------------------------------------------

    def derivative(self) -> "Waveform":
        """Numerical derivative dy/dt (second-order central differences)."""
        return Waveform(self._t, np.gradient(self._y, self._t), name=self.name)

    def integral(self) -> float:
        """Trapezoidal integral of y over the full time span."""
        return float(np.trapezoid(self._y, self._t))

    def mean(self) -> float:
        """Time-weighted average value."""
        return self.integral() / self.duration

    def rms(self) -> float:
        """Root-mean-square value (time weighted)."""
        return float(np.sqrt(np.trapezoid(self._y ** 2, self._t) / self.duration))

    def min(self) -> float:
        return float(self._y.min())

    def max(self) -> float:
        return float(self._y.max())

    def peak_to_peak(self) -> float:
        return self.max() - self.min()
