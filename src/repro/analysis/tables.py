"""ASCII rendering of result tables and series for the benchmark harness.

Every bench prints the rows/series of the paper's table or figure using
these helpers so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "format_si"]

_SI_PREFIXES = [
    (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an engineering SI prefix, e.g. ``12.5 uA``."""
    if value == 0.0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    max_points: int = 40,
) -> str:
    """Render an (x, y) series as a table, subsampling long series."""
    if len(x) != len(y):
        raise ValueError("series length mismatch")
    n = len(x)
    if n > max_points:
        stride = max(1, n // max_points)
        idx = list(range(0, n, stride))
        if idx[-1] != n - 1:
            idx.append(n - 1)
    else:
        idx = list(range(n))
    rows = [(f"{x[i]:.6g}", f"{y[i]:.6g}") for i in idx]
    return render_table([x_label, y_label], rows, title=title)
