"""Envelope extraction from carrier-resolution waveforms.

The amplitude-regulation loop works on the *envelope* of the 2–5 MHz
oscillation.  When a simulation produces the full carrier waveform
(e.g. the MNA transient of Fig 16), these helpers recover the envelope
so it can be compared against the averaged model of
:mod:`repro.envelope`.

Both extractors work on non-uniform grids: peak picking uses local
extrema of the recorded samples wherever they fall, and the
rectify-and-filter path computes its IIR coefficient from each
individual sample interval.  Peak-picking accuracy is bounded by the
sample density per carrier cycle, so adaptive transient runs cap
their step at a fraction of the carrier period (``dt_max``) when an
envelope is going to be extracted.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .waveform import Waveform

__all__ = ["envelope_by_peaks", "envelope_by_rectify_filter"]


def envelope_by_peaks(wave: Waveform, polarity: str = "both") -> Waveform:
    """Envelope from local extrema of the carrier.

    Parameters
    ----------
    wave:
        Carrier-resolution waveform (must contain several cycles).
    polarity:
        ``"upper"`` uses maxima, ``"lower"`` uses |minima|, ``"both"``
        (default) averages the two, which rejects a DC offset.
    """
    y = wave.y
    t = wave.t
    interior = np.arange(1, len(wave) - 1)
    is_max = (y[interior] >= y[interior - 1]) & (y[interior] > y[interior + 1])
    is_min = (y[interior] <= y[interior - 1]) & (y[interior] < y[interior + 1])
    max_idx = interior[is_max]
    min_idx = interior[is_min]
    if polarity == "upper":
        if max_idx.size < 2:
            raise AnalysisError("not enough maxima for an upper envelope")
        return Waveform(t[max_idx], y[max_idx], name=f"{wave.name}:env")
    if polarity == "lower":
        if min_idx.size < 2:
            raise AnalysisError("not enough minima for a lower envelope")
        return Waveform(t[min_idx], -y[min_idx], name=f"{wave.name}:env")
    if polarity != "both":
        raise AnalysisError(f"unknown polarity {polarity!r}")
    if max_idx.size < 2 or min_idx.size < 2:
        raise AnalysisError("not enough extrema for a two-sided envelope")
    upper = Waveform(t[max_idx], y[max_idx])
    lower = Waveform(t[min_idx], y[min_idx])
    t_common = t[max_idx]
    lower_on_common = lower.resample(t_common)
    env = 0.5 * (upper.y - lower_on_common.y)
    return Waveform(t_common, env, name=f"{wave.name}:env")


def envelope_by_rectify_filter(wave: Waveform, cutoff_hz: float) -> Waveform:
    """Envelope the way the chip does it: full-wave rectify then low-pass.

    A single-pole IIR low-pass (matched to the sample spacing) models the
    on-chip RC filter of Fig 8.  The result converges to
    ``2/pi * peak`` for a sine input — the same scale factor the real
    detector sees, so thresholds must be set accordingly.
    """
    if cutoff_hz <= 0:
        raise AnalysisError("cutoff_hz must be positive")
    t = wave.t
    rect = np.abs(wave.y)
    out = np.empty_like(rect)
    out[0] = rect[0]
    tau = 1.0 / (2.0 * np.pi * cutoff_hz)
    dt = np.diff(t)
    alpha = dt / (tau + dt)
    for i in range(1, len(rect)):
        out[i] = out[i - 1] + alpha[i - 1] * (rect[i] - out[i - 1])
    return Waveform(t, out, name=f"{wave.name}:rectlp")
