"""Spectral analysis: harmonics, THD, and emission metrics.

The paper's abstract claims "low EMC emissions".  The mechanism: the
driver current is limited (not square-switched) and the high-Q series
tank only lets the fundamental circulate in the coil — harmonics of
the driver current see the tank's off-resonance impedance and are
strongly attenuated.  These helpers quantify that on waveforms from
either simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .waveform import Waveform

__all__ = ["HarmonicSpectrum", "harmonic_spectrum", "thd", "tank_harmonic_rejection"]


@dataclass(frozen=True)
class HarmonicSpectrum:
    """Amplitudes of the fundamental and its harmonics."""

    fundamental_frequency: float
    #: amplitudes[k] is the amplitude of harmonic k+1 (index 0 = fundamental).
    amplitudes: Tuple[float, ...]

    @property
    def fundamental(self) -> float:
        return self.amplitudes[0]

    def harmonic(self, order: int) -> float:
        """Amplitude of the n-th harmonic (1 = fundamental)."""
        if not 1 <= order <= len(self.amplitudes):
            raise AnalysisError(
                f"harmonic order {order} outside 1..{len(self.amplitudes)}"
            )
        return self.amplitudes[order - 1]

    def thd(self) -> float:
        """Total harmonic distortion: sqrt(sum(h_k^2, k>=2)) / h_1."""
        if self.fundamental <= 0:
            raise AnalysisError("THD undefined: zero fundamental")
        higher = np.asarray(self.amplitudes[1:])
        return float(np.sqrt(np.sum(higher**2)) / self.fundamental)

    def relative_levels_db(self) -> Dict[int, float]:
        """Harmonic levels in dB relative to the fundamental."""
        out: Dict[int, float] = {}
        for k, amp in enumerate(self.amplitudes[1:], start=2):
            if amp <= 0:
                out[k] = float("-inf")
            else:
                out[k] = 20.0 * np.log10(amp / self.fundamental)
        return out


def harmonic_spectrum(
    wave: Waveform,
    fundamental: float,
    n_harmonics: int = 7,
) -> HarmonicSpectrum:
    """Fourier amplitudes of ``fundamental`` and its harmonics.

    Uses direct quadrature projection over an integer number of
    fundamental periods (robust against non-power-of-two sample counts
    and slightly incommensurate record lengths).
    """
    if fundamental <= 0:
        raise AnalysisError("fundamental must be positive")
    if n_harmonics < 1:
        raise AnalysisError("need at least one harmonic")
    period = 1.0 / fundamental
    n_periods = int(np.floor(wave.duration / period))
    if n_periods < 2:
        raise AnalysisError("waveform must span at least 2 fundamental periods")
    t_stop = wave.t_start + n_periods * period
    # Uniform resampling for clean quadrature.
    n_samples = max(64 * n_periods, 512)
    t = np.linspace(wave.t_start, t_stop, n_samples, endpoint=False)
    y = np.interp(t, wave.t, wave.y)
    y = y - np.mean(y)
    amplitudes = []
    omega = 2.0 * np.pi * fundamental
    for k in range(1, n_harmonics + 1):
        c = np.mean(y * np.cos(k * omega * t)) * 2.0
        s = np.mean(y * np.sin(k * omega * t)) * 2.0
        amplitudes.append(float(np.hypot(c, s)))
    return HarmonicSpectrum(
        fundamental_frequency=fundamental, amplitudes=tuple(amplitudes)
    )


def thd(wave: Waveform, fundamental: float, n_harmonics: int = 7) -> float:
    """Total harmonic distortion of a waveform."""
    return harmonic_spectrum(wave, fundamental, n_harmonics).thd()


def tank_harmonic_rejection(
    inductance: float,
    capacitance_diff: float,
    parallel_resistance: float,
    order: int,
) -> float:
    """|Z(k*w0)| / |Z(w0)| of the parallel tank — how much a harmonic
    current component is attenuated in voltage terms.

    At resonance the tank presents ``Rp``; at the k-th harmonic it is
    dominated by the capacitor, ``|Z| ≈ 1/(k w0 C) * k/(k^2-1)``
    (exact parallel-RLC formula used below).
    """
    if order < 1:
        raise AnalysisError("order must be >= 1")
    if inductance <= 0 or capacitance_diff <= 0 or parallel_resistance <= 0:
        raise AnalysisError("tank parameters must be positive")
    omega0 = 1.0 / np.sqrt(inductance * capacitance_diff)
    w = order * omega0
    y = (
        1.0 / parallel_resistance
        + 1j * w * capacitance_diff
        + 1.0 / (1j * w * inductance)
    )
    z = 1.0 / y
    return float(np.abs(z) / parallel_resistance)
