"""Scalar measurements on waveforms.

These are the measurements the paper's evaluation relies on: peak
amplitude, oscillation frequency (from zero crossings), settling time of
the regulated envelope, and counting of regulation steps.

All measurements are grid-agnostic: crossings are interpolated from
the actual sample times, periods average crossing-to-crossing
intervals, and settling/step detection index the recorded times
directly — waveforms from the adaptive (non-uniform-grid) transient
engine measure identically to fixed-grid ones.  The one caveat is
:func:`find_steps`, which compares *consecutive samples*: a
``min_delta`` chosen for a dense grid still works on a sparser one
(the step is still a jump between adjacent samples), but a slow ramp
coarsely sampled can exceed ``min_delta`` per sample — pick
``min_delta`` against the signal's step height, not its slew rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import AnalysisError
from .waveform import Waveform

__all__ = [
    "zero_crossings",
    "oscillation_frequency",
    "oscillation_period",
    "amplitude_peak",
    "amplitude_rms_of_sine",
    "settling_time",
    "StepEvent",
    "find_steps",
    "crossing_time",
]


def zero_crossings(wave: Waveform, level: float = 0.0, rising: Optional[bool] = None) -> np.ndarray:
    """Return interpolated times at which the waveform crosses ``level``.

    Parameters
    ----------
    wave:
        Input waveform.
    level:
        Crossing threshold.
    rising:
        ``True`` for rising-only, ``False`` for falling-only, ``None``
        (default) for both.
    """
    y = wave.y - level
    t = wave.t
    sign = np.sign(y)
    # Treat exact zeros as belonging to the previous sign so that each
    # crossing is counted exactly once.
    sign[sign == 0] = 1
    change = np.diff(sign)
    if rising is True:
        idx = np.where(change > 0)[0]
    elif rising is False:
        idx = np.where(change < 0)[0]
    else:
        idx = np.where(change != 0)[0]
    if idx.size == 0:
        return np.empty(0)
    # Linear interpolation between samples idx and idx+1.
    y0, y1 = y[idx], y[idx + 1]
    t0, t1 = t[idx], t[idx + 1]
    frac = y0 / (y0 - y1)
    return t0 + frac * (t1 - t0)


def oscillation_period(wave: Waveform, level: float = 0.0) -> float:
    """Average oscillation period from rising crossings of ``level``."""
    times = zero_crossings(wave, level=level, rising=True)
    if times.size < 2:
        raise AnalysisError(
            f"cannot measure period: only {times.size} rising crossings found"
        )
    return float(np.mean(np.diff(times)))


def oscillation_frequency(wave: Waveform, level: float = 0.0) -> float:
    """Average oscillation frequency in hertz."""
    return 1.0 / oscillation_period(wave, level=level)


def amplitude_peak(wave: Waveform, t_from: Optional[float] = None) -> float:
    """Peak amplitude ``(max - min)/2`` over the tail of the waveform.

    ``t_from`` restricts the measurement window; by default the last 20 %
    of the record is used, which skips the startup transient.
    """
    if t_from is None:
        t_from = wave.t_start + 0.8 * wave.duration
    tail = wave.window(t_from, wave.t_stop)
    return 0.5 * tail.peak_to_peak()


def amplitude_rms_of_sine(peak: float) -> float:
    """RMS of a sine with the given peak value (the paper's 'effective' V)."""
    return peak / np.sqrt(2.0)


def settling_time(
    wave: Waveform,
    final_value: Optional[float] = None,
    tolerance: float = 0.05,
) -> float:
    """Time after which the waveform stays within ``tolerance`` of final value.

    ``final_value`` defaults to the last sample.  Returns the time
    relative to the start of the waveform.  Raises if the waveform never
    settles (i.e. the last sample itself is outside the band, which
    cannot happen with the default ``final_value``).
    """
    y = wave.y
    t = wave.t
    if final_value is None:
        final_value = float(y[-1])
    band = tolerance * max(abs(final_value), np.finfo(float).tiny)
    outside = np.abs(y - final_value) > band
    if not outside.any():
        return 0.0
    last_outside = int(np.where(outside)[0][-1])
    if last_outside == len(wave) - 1:
        raise AnalysisError("waveform does not settle within the record")
    return float(t[last_outside + 1] - t[0])


def crossing_time(wave: Waveform, level: float, rising: bool = True) -> float:
    """First time the waveform crosses ``level`` in the given direction."""
    times = zero_crossings(wave, level=level, rising=rising)
    if times.size == 0:
        raise AnalysisError(f"waveform never crosses level {level:g}")
    return float(times[0])


@dataclass(frozen=True)
class StepEvent:
    """A detected discrete step in a staircase-like waveform."""

    time: float
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        if self.before == 0.0:
            raise AnalysisError("relative step undefined for zero baseline")
        return self.delta / self.before


def find_steps(wave: Waveform, min_delta: float) -> List[StepEvent]:
    """Detect steps larger than ``min_delta`` in a staircase waveform.

    Used to analyse the regulation-loop amplitude staircase (Fig 15).
    Consecutive samples whose difference exceeds ``min_delta`` are
    merged into a single event.
    """
    if min_delta <= 0:
        raise AnalysisError("min_delta must be positive")
    y = wave.y
    t = wave.t
    events: List[StepEvent] = []
    i = 0
    n = len(wave)
    while i < n - 1:
        if abs(y[i + 1] - y[i]) >= min_delta:
            j = i + 1
            while j < n - 1 and abs(y[j + 1] - y[j]) >= min_delta:
                j += 1
            events.append(StepEvent(time=float(t[i]), before=float(y[i]), after=float(y[j])))
            i = j
        else:
            i += 1
    return events
