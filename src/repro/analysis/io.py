"""CSV import/export of waveforms and multi-column traces.

Plain-text interchange so bench artifacts and simulated waveforms can
be inspected or post-processed outside Python (the library has no
plotting dependency by design).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from .waveform import Waveform

__all__ = ["save_waveform_csv", "load_waveform_csv", "save_columns_csv", "load_columns_csv"]

PathLike = Union[str, pathlib.Path]


def save_waveform_csv(wave: Waveform, path: PathLike) -> None:
    """Write a waveform as ``t,<name>`` CSV with a header row."""
    label = wave.name or "y"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["t", label])
        for t, y in zip(wave.t, wave.y):
            writer.writerow([repr(float(t)), repr(float(y))])


def load_waveform_csv(path: PathLike) -> Waveform:
    """Read a two-column CSV written by :func:`save_waveform_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) != 2:
            raise AnalysisError(f"{path}: expected a 2-column CSV with header")
        times: List[float] = []
        values: List[float] = []
        for row in reader:
            if len(row) != 2:
                raise AnalysisError(f"{path}: malformed row {row!r}")
            times.append(float(row[0]))
            values.append(float(row[1]))
    return Waveform(times, values, name=header[1])


def save_columns_csv(path: PathLike, columns: Dict[str, Sequence[float]]) -> None:
    """Write named, equal-length columns (e.g. a SystemTrace)."""
    if not columns:
        raise AnalysisError("no columns to save")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise AnalysisError(f"column length mismatch: {sorted(lengths)}")
    names = list(columns)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(lengths.pop()):
            writer.writerow([repr(float(columns[name][i])) for name in names])


def load_columns_csv(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a CSV written by :func:`save_columns_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            raise AnalysisError(f"{path}: empty CSV")
        data: List[List[float]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise AnalysisError(f"{path}: malformed row {row!r}")
            for i, cell in enumerate(row):
                data[i].append(float(cell))
    return {name: np.asarray(col) for name, col in zip(header, data)}
