"""Batch-campaign subsystem: one API for many independent runs.

The reproduction's expensive workloads are campaigns — the same
simulation executed over many samples (Monte-Carlo), faults (FMEA),
stimulus values (DC sweeps) or process corners.  This package owns
the execution of that shape:

* :class:`BatchOptions`, :func:`run_batch` — independent tasks, with
  sequential, process-parallel, or (for workers carrying a
  ``run_many`` hook) lockstep-vectorized scheduling, plus the
  fault-tolerance policy: ``on_error`` skip/retry modes backed by
  :class:`RetryPolicy`, structured :class:`~repro.errors.TaskFailure`
  records, and checkpoint/resume;
* :func:`run_chain` — warm-started (continuation) task chains;
* :func:`labelled_sweep`, :func:`corner_sweep` — batches keyed by a
  task label;
* :func:`run_transient_campaign`, :func:`transient_worker`,
  :class:`TransientMetricSpec` — the transient-campaign front-end
  (:mod:`repro.campaigns.vectorized`): lockstep stacked-array
  execution via the batched engine, and shared-memory waveform
  streaming for the process-parallel fallback.

See :mod:`repro.campaigns.runner` for the execution semantics.  The
core runner deliberately depends only on the standard library (plus
the shared error types) so every simulation layer can import it
without cycles; the transient front-end, which depends on the
circuits layer, is loaded lazily on first attribute access.
"""

from ..errors import TaskFailure
from .runner import (
    BatchOptions,
    RetryPolicy,
    nearest_neighbor_chain,
    run_batch,
    run_chain,
)
from .sweeps import corner_sweep, labelled_sweep

__all__ = [
    "BatchOptions",
    "RetryPolicy",
    "TaskFailure",
    "nearest_neighbor_chain",
    "run_batch",
    "run_chain",
    "corner_sweep",
    "labelled_sweep",
    "TransientMetricSpec",
    "run_envelope_campaign",
    "run_transient_campaign",
    "transient_worker",
]

#: Names served lazily from .vectorized — importing it eagerly would
#: cycle through repro.circuits (whose DC solver imports this
#: package's runner for continuation chains).
_VECTORIZED_EXPORTS = (
    "TransientMetricSpec",
    "run_envelope_campaign",
    "run_transient_campaign",
    "transient_worker",
)


def __getattr__(name):
    if name in _VECTORIZED_EXPORTS:
        from . import vectorized

        return getattr(vectorized, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
