"""Batch-campaign subsystem: one API for many independent runs.

The reproduction's expensive workloads are campaigns — the same
simulation executed over many samples (Monte-Carlo), faults (FMEA),
stimulus values (DC sweeps) or process corners.  This package owns
the execution of that shape:

* :class:`BatchOptions`, :func:`run_batch` — independent tasks, with
  optional ``concurrent.futures`` process parallelism;
* :func:`run_chain` — warm-started (continuation) task chains;
* :func:`labelled_sweep`, :func:`corner_sweep` — batches keyed by a
  task label.

See :mod:`repro.campaigns.runner` for the execution semantics.  The
package deliberately depends only on the standard library (plus the
shared error types) so every simulation layer can build on it.
"""

from .runner import BatchOptions, run_batch, run_chain
from .sweeps import corner_sweep, labelled_sweep

__all__ = [
    "BatchOptions",
    "run_batch",
    "run_chain",
    "corner_sweep",
    "labelled_sweep",
]
