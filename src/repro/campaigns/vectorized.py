"""Vectorized and streaming execution of transient campaigns.

:mod:`repro.campaigns.runner` schedules *opaque* workers; this module
is the campaign front-end for workers the library can see inside —
"build a circuit per task, run one transient, evaluate the result".
Knowing that shape unlocks two execution strategies a generic worker
cannot offer:

* **Lockstep vectorization** (``BatchOptions(batch_mode="vectorized")``)
  — all tasks' circuits are stacked into one batched transient run
  (:func:`~repro.circuits.batched.run_transient_batched`): one time
  loop, batched linear algebra, per-sample Newton masks.  Netlists
  the lockstep engine cannot stack fall back to the per-sample
  reference path automatically.
* **Shared-memory streaming** (process parallelism) — instead of
  pickling per-task results back through the executor, workers write
  their full waveform records into one preallocated
  ``multiprocessing.shared_memory`` block, so a campaign streams
  complete waveforms at the cost of scalars.

:func:`transient_worker` adapts the same build/run/evaluate triple to
the generic :func:`~repro.campaigns.run_batch` protocol (it carries
the ``run_many`` hook that ``batch_mode="vectorized"`` dispatches on),
which is how :func:`~repro.campaigns.corner_sweep` and every other
``run_batch``-shaped campaign opt into lockstep execution without new
plumbing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.waveform import Waveform
from ..circuits.batched import BatchIncompatible, run_transient_batched
from ..circuits.netlist import Circuit
from ..circuits.transient import (
    TransientOptions,
    TransientResult,
    _fixed_record_count,
    _resolve_recording,
    run_transient,
)
from ..errors import BatchTaskError, ConvergenceError, SimulationError
from .runner import (
    BatchOptions,
    _wrap_collective,
    drain_ordered,
    wrap_task_error,
)

__all__ = [
    "TransientMetricSpec",
    "run_transient_campaign",
    "transient_worker",
]


@dataclass(frozen=True)
class TransientMetricSpec:
    """A transient campaign metric split into its schedulable halves.

    A plain ``metric(task) -> float`` callable hides the simulation
    inside; expressing it as *build the circuit*, *shared run
    options*, *evaluate the result* lets the campaign layer choose the
    execution strategy (lockstep batch, shared-memory processes,
    plain loop).  For fixed-grid options every strategy computes the
    same statistics (lockstep is equivalence-pinned at rtol 1e-9);
    adaptive options lockstep only on explicit
    ``batch_mode="vectorized"``, because the shared worst-sample grid
    is a different discretization than per-sample adaptive grids.

    Parameters
    ----------
    name:
        Metric name carried into result summaries.
    build:
        ``task -> Circuit``.  Must be picklable (module-level) for
        process execution; closures are fine for lockstep/sequential.
    options:
        One :class:`~repro.circuits.transient.TransientOptions` shared
        by every task — the lockstep grid.  Anything that must vary
        per task belongs in the circuit, not the options.
    evaluate:
        ``(task, TransientResult) -> float``.
    waveform:
        Optional ``TransientResult -> Waveform`` extractor.  When set,
        campaigns that stream waveforms (e.g. :func:`~repro.mc.
        montecarlo.run_monte_carlo`) retain one waveform per task
        alongside the scalar values.
    """

    name: str
    build: Callable[[object], Circuit]
    options: TransientOptions
    evaluate: Callable[[object, TransientResult], float]
    waveform: Optional[Callable[[TransientResult], Waveform]] = None


def run_transient_campaign(
    tasks: Sequence[object],
    build: Callable[[object], Circuit],
    options: TransientOptions,
    batch: Optional[BatchOptions] = None,
) -> List[TransientResult]:
    """Run one transient per task; results in task order.

    The execution strategy follows ``batch.batch_mode``:

    * ``"vectorized"`` — the lockstep batched engine; netlists it
      cannot stack fall back to the sequential per-sample loop.
    * ``"auto"`` (default) — lockstep for **fixed-grid** runs (where
      the batched engine is equivalence-pinned to the per-sample path
      at rtol 1e-9), sequential otherwise; ``max_workers`` requesting
      processes goes parallel instead.  Adaptive runs never lockstep
      implicitly: the shared worst-sample grid is a *different,
      coarser-or-equal discretization* than each sample's own
      adaptive grid, so results legitimately differ at LTE-tolerance
      level — opting in must be explicit (``"vectorized"``).
    * ``"process"`` (or ``"auto"`` + ``max_workers > 1``) — process
      pool with the shared-memory record stream for fixed-grid runs
      (adaptive runs fall back to pickled records).
    * ``"sequential"`` — plain loop, no stacking.

    All per-sample paths wrap worker failures in
    :class:`~repro.errors.BatchTaskError` carrying the task index.

    With ``options.quarantine`` the lockstep path tolerates diverging
    samples (they are masked out and flagged ``quarantined`` in their
    stats while the rest of the batch finishes), and when
    ``options.rescue`` is *also* set each quarantined sample gets a
    solo second chance through the per-sample engine's rescue ladder
    — see :func:`_rerun_quarantined`.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    mode = batch.batch_mode if batch is not None else "auto"
    want_process = batch is not None and batch.parallel
    lockstep = mode == "vectorized" or (
        mode == "auto"
        and not want_process
        and options.step_control == "fixed"
    )
    if lockstep:
        circuits = _build_all(tasks, build)
        try:
            results = run_transient_batched(circuits, options)
        except BatchIncompatible:
            return _run_sequential(tasks, circuits, options)
        except Exception as exc:
            raise _wrap_collective(exc, tasks) from exc
        if options.quarantine and options.rescue:
            _rerun_quarantined(circuits, options, results)
        return results
    if want_process:
        return _run_process_streaming(tasks, build, options, batch)
    circuits = _build_all(tasks, build)
    return _run_sequential(tasks, circuits, options)


def transient_worker(
    build: Callable[[object], Circuit],
    options: TransientOptions,
    evaluate: Optional[Callable[[object, TransientResult], object]] = None,
) -> Callable[[object], object]:
    """Adapt a build/run/evaluate triple to the ``run_batch`` protocol.

    The returned worker runs one task per call like any other batch
    worker, and carries the ``run_many`` hook that
    ``BatchOptions(batch_mode="vectorized")`` dispatches on — so
    :func:`~repro.campaigns.run_batch`, :func:`~repro.campaigns.
    corner_sweep` and :func:`~repro.campaigns.labelled_sweep`
    campaigns built on it execute as one lockstep batch when the
    netlists allow, with per-task fallback when they do not.
    """

    def worker(task: object) -> object:
        result = run_transient(build(task), options)
        return evaluate(task, result) if evaluate is not None else result

    def run_many(tasks: Sequence[object]) -> List[object]:
        tasks = list(tasks)
        # run_many is only dispatched on an explicit vectorized
        # policy; forward that intent so adaptive-grid options
        # lockstep here too instead of degrading to "auto".
        results = run_transient_campaign(
            tasks, build, options, BatchOptions(batch_mode="vectorized")
        )
        if evaluate is None:
            return results
        values: List[object] = []
        for index, (task, result) in enumerate(zip(tasks, results)):
            try:
                values.append(evaluate(task, result))
            except Exception as exc:
                raise wrap_task_error(
                    exc, index, task, action="metric evaluation failed"
                ) from exc
        return values

    worker.run_many = run_many
    return worker


# -- fallback paths -----------------------------------------------------------


def _build_all(tasks: Sequence[object], build) -> List[Circuit]:
    circuits = []
    for index, task in enumerate(tasks):
        try:
            circuits.append(build(task))
        except Exception as exc:
            raise wrap_task_error(
                exc, index, task, action="circuit build failed"
            ) from exc
    return circuits


def _run_sequential(
    tasks: Sequence[object],
    circuits: Sequence[Circuit],
    options: TransientOptions,
) -> List[TransientResult]:
    results = []
    for index, circuit in enumerate(circuits):
        try:
            results.append(run_transient(circuit, options))
        except Exception as exc:
            raise wrap_task_error(
                exc, index, tasks[index], action="transient failed"
            ) from exc
    return results


def _rerun_quarantined(
    circuits: Sequence[Circuit],
    options: TransientOptions,
    results: List[TransientResult],
) -> None:
    """Give lockstep-quarantined samples a solo second chance.

    A quarantined sample was killed under the *shared* lockstep grid
    and batch discipline; alone — on its own grid, with the rescue
    ladder — it may well finish.  Each quarantined sample re-runs
    through the per-sample engine with rescue enabled: success
    replaces the frozen partial result (``quarantined`` flips to
    False, the original ``quarantine`` record stays for traceability
    alongside ``solo_rerun=True``); failure keeps the partial result
    and records why in ``stats["rescue_failed"]``.  Mutates
    ``results`` in place.
    """
    solo = replace(options, quarantine=False)
    for s, result in enumerate(results):
        if not result.stats.get("quarantined"):
            continue
        try:
            rerun = run_transient(circuits[s], solo)
        except (ConvergenceError, SimulationError) as exc:
            result.stats["rescue_failed"] = str(exc)
            continue
        if rerun.stats.get("completed") is False:
            # on_abort="partial" solo rerun that aborted again: the
            # quarantined lockstep result stands.
            result.stats["rescue_failed"] = str(
                rerun.stats.get("abort_error")
                or rerun.stats.get("abort_reason")
            )
            continue
        rerun.stats["quarantined"] = False
        rerun.stats["quarantine"] = result.stats.get("quarantine")
        rerun.stats["solo_rerun"] = True
        results[s] = rerun


# -- shared-memory streaming process pool ------------------------------------

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: dict = {}


def _stream_init(shm_name, shape, build, options) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER_STATE["shm"] = shm
    _WORKER_STATE["records"] = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _stream_worker(job: Tuple[int, object]):
    """Run one task, stream its records into the shared block.

    Returns only the small per-task payload (time grid, stats); the
    waveform matrix never crosses the process boundary as a pickle.
    Failures wrap child-side so the attribution stays exact even for
    chunked maps.
    """
    index, task = job
    try:
        build = _WORKER_STATE["build"]
        options = _WORKER_STATE["options"]
        result = run_transient(build(task), options)
        _WORKER_STATE["records"][index] = result.x
        return index, result.t, result.recorded_nodes, dict(result.stats)
    except BatchTaskError:
        raise
    except Exception as exc:
        raise wrap_task_error(
            exc, index, task, action="transient worker failed"
        ) from exc


def _pickled_init(build, options) -> None:
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _pickled_worker(job: Tuple[int, object]):
    index, task = job
    try:
        result = run_transient(
            _WORKER_STATE["build"](task), _WORKER_STATE["options"]
        )
        return (
            index,
            result.t,
            result.x,
            result.recorded_nodes,
            dict(result.stats),
        )
    except BatchTaskError:
        raise
    except Exception as exc:
        raise wrap_task_error(
            exc, index, task, action="transient worker failed"
        ) from exc


def _run_process_streaming(
    tasks: Sequence[object],
    build,
    options: TransientOptions,
    batch: BatchOptions,
) -> List[TransientResult]:
    """Per-task transients in worker processes, records via shared memory.

    Fixed-grid runs have a record count known up front, so one
    ``multiprocessing.shared_memory`` block of shape
    ``(n_tasks, n_records, n_columns)`` is preallocated and each
    worker writes its rows in place — campaigns stream full waveforms
    without pickling them.  Adaptive runs (record count unknown)
    fall back to pickled record arrays through the same pool.

    ``build``, ``options`` and the tasks must be picklable; circuits
    are rebuilt in the parent only to label the returned results.
    """
    circuits = _build_all(tasks, build)
    for circuit in circuits:
        # Workers prepare their own pickled copies; the parent-side
        # circuits label the returned results, so they need branch
        # numbering too (waveform/branch_current access).
        circuit.prepare()
    n_workers = batch.resolved_max_workers()
    # One shared block needs one record shape: fixed grid, and — when
    # recording full state vectors — homogeneous unknown counts.
    # Heterogeneous-topology campaigns (legal here, unlike lockstep)
    # use the pickled-record pool instead.
    streaming = options.step_control == "fixed" and (
        options.record_nodes is not None
        or all(c.size == circuits[0].size for c in circuits)
    )
    jobs = list(enumerate(tasks))

    if streaming:
        _indices, recorded_nodes, n_columns = _resolve_recording(
            circuits[0], options
        )
        shape = (len(tasks), _fixed_record_count(options), n_columns)
        shm = shared_memory.SharedMemory(
            create=True, size=int(np.prod(shape)) * 8
        )
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_stream_init,
                initargs=(shm.name, shape, build, options),
            ) as executor:
                payloads = _gather(
                    executor.map(_stream_worker, jobs, chunksize=batch.chunksize),
                    tasks,
                )
            records = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
            results = []
            for index, t, nodes, stats in payloads:
                results.append(
                    TransientResult(
                        circuit=circuits[index],
                        t=t,
                        x=np.array(records[index]),
                        recorded_nodes=nodes,
                        stats=stats,
                    )
                )
        finally:
            shm.close()
            shm.unlink()
        return results

    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_pickled_init,
        initargs=(build, options),
    ) as executor:
        payloads = _gather(
            executor.map(_pickled_worker, jobs, chunksize=batch.chunksize),
            tasks,
        )
    return [
        TransientResult(
            circuit=circuits[index],
            t=t,
            x=x,
            recorded_nodes=nodes,
            stats=stats,
        )
        for index, t, x, nodes, stats in payloads
    ]


def _gather(iterator, tasks):
    """Drain an executor map, wrapping failures with their task index."""
    return drain_ordered(iterator, tasks, action="transient worker failed")
