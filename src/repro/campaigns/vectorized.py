"""Vectorized and streaming execution of transient campaigns.

:mod:`repro.campaigns.runner` schedules *opaque* workers; this module
is the campaign front-end for workers the library can see inside —
"build a circuit per task, run one transient, evaluate the result".
Knowing that shape unlocks two execution strategies a generic worker
cannot offer:

* **Lockstep vectorization** (``BatchOptions(batch_mode="vectorized")``)
  — all tasks' circuits are stacked into one batched transient run
  (:func:`~repro.circuits.batched.run_transient_batched`): one time
  loop, batched linear algebra, per-sample Newton masks.  Netlists
  the lockstep engine cannot stack fall back to the per-sample
  reference path automatically.
* **Shared-memory streaming** (process parallelism) — instead of
  pickling per-task results back through the executor, workers write
  their full waveform records into one preallocated
  ``multiprocessing.shared_memory`` block, so a campaign streams
  complete waveforms at the cost of scalars.
* **Sharded lockstep** (``BatchOptions(batch_mode="sharded")``, and
  the ``"auto"`` choice for fixed-grid campaigns on multi-core
  machines) — the lockstep batch split into sub-batches dispatched
  across a process pool, each shard streaming its fixed-grid records
  into one shared block at global per-sample offsets.  Because every
  per-sample solve in the lockstep engine (block-diagonal LU,
  per-sample Newton masks, batched DC seed) is independent of batch
  membership, fixed-grid shard merges are bit-identical to the
  unsharded run; ``stiffness_bins`` additionally clusters samples of
  similar stiffness into the same shard so adaptive sharded runs are
  not dragged to one outlier's step size.

:func:`transient_worker` adapts the same build/run/evaluate triple to
the generic :func:`~repro.campaigns.run_batch` protocol (it carries
the ``run_many`` hook that ``batch_mode="vectorized"`` dispatches on),
which is how :func:`~repro.campaigns.corner_sweep` and every other
``run_batch``-shaped campaign opt into lockstep execution without new
plumbing.
"""

from __future__ import annotations

import atexit
import math
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.waveform import Waveform
from ..circuits.batched import (
    BatchIncompatible,
    probe_stiffness_ratios,
    run_transient_batched,
)
from ..circuits.envelope_transient import EnvelopeOptions, run_transient_envelope
from ..circuits.netlist import Circuit
from ..circuits.stepcontrol import stiffness_bins
from ..circuits.transient import (
    TransientOptions,
    TransientResult,
    _fixed_record_count,
    _resolve_recording,
    run_transient,
)
from ..errors import BatchTaskError, ConvergenceError, SimulationError, TaskFailure
from .runner import (
    BatchOptions,
    RetryPolicy,
    _attempt_task,
    _kill_pool,
    _wrap_collective,
    drain_ordered,
    nearest_neighbor_chain,
    wrap_task_error,
)

__all__ = [
    "TransientMetricSpec",
    "run_envelope_campaign",
    "run_transient_campaign",
    "transient_worker",
]


@dataclass(frozen=True)
class TransientMetricSpec:
    """A transient campaign metric split into its schedulable halves.

    A plain ``metric(task) -> float`` callable hides the simulation
    inside; expressing it as *build the circuit*, *shared run
    options*, *evaluate the result* lets the campaign layer choose the
    execution strategy (lockstep batch, shared-memory processes,
    plain loop).  For fixed-grid options every strategy computes the
    same statistics (lockstep is equivalence-pinned at rtol 1e-9);
    adaptive options lockstep only on explicit
    ``batch_mode="vectorized"``, because the shared worst-sample grid
    is a different discretization than per-sample adaptive grids.

    Parameters
    ----------
    name:
        Metric name carried into result summaries.
    build:
        ``task -> Circuit``.  Must be picklable (module-level) for
        process execution; closures are fine for lockstep/sequential.
    options:
        One :class:`~repro.circuits.transient.TransientOptions` shared
        by every task — the lockstep grid.  Anything that must vary
        per task belongs in the circuit, not the options.
    evaluate:
        ``(task, TransientResult) -> float``.
    waveform:
        Optional ``TransientResult -> Waveform`` extractor.  When set,
        campaigns that stream waveforms (e.g. :func:`~repro.mc.
        montecarlo.run_monte_carlo`) retain one waveform per task
        alongside the scalar values.
    """

    name: str
    build: Callable[[object], Circuit]
    options: TransientOptions
    evaluate: Callable[[object, TransientResult], float]
    waveform: Optional[Callable[[TransientResult], Waveform]] = None


def run_transient_campaign(
    tasks: Sequence[object],
    build: Callable[[object], Circuit],
    options: TransientOptions,
    batch: Optional[BatchOptions] = None,
) -> List[TransientResult]:
    """Run one transient per task; results in task order.

    The execution strategy follows ``batch.batch_mode``:

    * ``"vectorized"`` — the lockstep batched engine; netlists it
      cannot stack fall back to the sequential per-sample loop.
    * ``"sharded"`` — the lockstep engine split into sub-batches of
      ``batch.shard_size`` samples (default: the campaign divided
      evenly over the resolved worker count), dispatched across a
      shard-level process pool with records streamed through one
      shared-memory block at per-sample global offsets.  One worker
      (or one core) degrades gracefully to running the shards
      sequentially in-process.  Fixed-grid shard merges are
      **bit-identical** to the unsharded lockstep run — every
      per-sample solve (block-diagonal LU, per-sample Newton masks,
      batched DC seed) is independent of batch membership.  With
      ``batch.stiffness_bins > 1`` a probe step ranks samples by
      first-step LTE ratio and shards are cut within stiffness
      quantile bins — on *adaptive* grids (a deliberate, explicit
      choice: each shard then integrates its own worst-sample grid,
      a different discretization than the unsharded batch) this
      keeps one stiff outlier from dragging a shard of benign
      samples to its dt.
    * ``"auto"`` (default) — lockstep for **fixed-grid** runs (where
      the batched engine is equivalence-pinned to the per-sample path
      at rtol 1e-9) — sharded across cores when the machine has more
      than one (bit-identical, so the upgrade is safe), single-batch
      lockstep otherwise; sequential for adaptive runs;
      ``max_workers`` requesting processes goes parallel instead.
      Adaptive runs never lockstep implicitly: the shared
      worst-sample grid is a *different, coarser-or-equal
      discretization* than each sample's own adaptive grid, so
      results legitimately differ at LTE-tolerance level — opting in
      must be explicit (``"vectorized"`` or ``"sharded"``).
    * ``"process"`` (or ``"auto"`` + ``max_workers > 1``) — process
      pool with the shared-memory record stream for fixed-grid runs
      (adaptive runs fall back to pickled records).
    * ``"sequential"`` — plain loop, no stacking.

    All per-sample paths wrap worker failures in
    :class:`~repro.errors.BatchTaskError` carrying the task index.

    With ``options.quarantine`` the lockstep path tolerates diverging
    samples (they are masked out and flagged ``quarantined`` in their
    stats while the rest of the batch finishes), and when
    ``options.rescue`` is *also* set each quarantined sample gets a
    solo second chance through the per-sample engine's rescue ladder
    — see :func:`_rerun_quarantined`.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    mode = batch.batch_mode if batch is not None else "auto"
    want_process = batch is not None and batch.parallel
    sharded = mode == "sharded" or (
        mode == "auto"
        and not want_process
        and options.step_control == "fixed"
        and len(tasks) > 1
        and (os.cpu_count() or 1) > 1
    )
    if sharded:
        policy = batch if batch is not None else BatchOptions()
        if policy.batch_mode != "sharded":
            # "auto" promotion: re-key the policy so worker resolution
            # ("use the box") and validation follow the sharded rules.
            policy = replace(policy, batch_mode="sharded")
        return _run_sharded(tasks, build, options, policy)
    lockstep = mode == "vectorized" or (
        mode == "auto"
        and not want_process
        and options.step_control == "fixed"
    )
    if lockstep:
        circuits = _build_all(tasks, build)
        try:
            results = run_transient_batched(circuits, options)
        except BatchIncompatible:
            return _run_sequential(tasks, circuits, options)
        except Exception as exc:
            raise _wrap_collective(exc, tasks) from exc
        if options.quarantine and options.rescue:
            _rerun_quarantined(circuits, options, results)
        return results
    if want_process:
        return _run_process_streaming(tasks, build, options, batch)
    circuits = _build_all(tasks, build)
    return _run_sequential(tasks, circuits, options)


def transient_worker(
    build: Callable[[object], Circuit],
    options: TransientOptions,
    evaluate: Optional[Callable[[object, TransientResult], object]] = None,
    batch: Optional[BatchOptions] = None,
) -> Callable[[object], object]:
    """Adapt a build/run/evaluate triple to the ``run_batch`` protocol.

    The returned worker runs one task per call like any other batch
    worker, and carries the ``run_many`` hook that
    ``BatchOptions(batch_mode="vectorized")`` (or ``"sharded"``)
    dispatches on — so :func:`~repro.campaigns.run_batch`,
    :func:`~repro.campaigns.corner_sweep` and
    :func:`~repro.campaigns.labelled_sweep` campaigns built on it
    execute as one lockstep batch when the netlists allow, with
    per-task fallback when they do not.  ``batch`` overrides the
    policy ``run_many`` forwards to the campaign front-end — pass a
    ``BatchOptions(batch_mode="sharded", ...)`` to shard the lockstep
    batch over processes (the ``run_batch`` options only select *that*
    ``run_many`` is used, not how it executes internally).
    """

    def worker(task: object) -> object:
        result = run_transient(build(task), options)
        return evaluate(task, result) if evaluate is not None else result

    def run_many(tasks: Sequence[object]) -> List[object]:
        tasks = list(tasks)
        # run_many is only dispatched on an explicit vectorized (or
        # sharded) policy; forward that intent so adaptive-grid
        # options lockstep here too instead of degrading to "auto".
        policy = batch if batch is not None else BatchOptions(
            batch_mode="vectorized"
        )
        results = run_transient_campaign(tasks, build, options, policy)
        if evaluate is None:
            return results
        values: List[object] = []
        for index, (task, result) in enumerate(zip(tasks, results)):
            try:
                values.append(evaluate(task, result))
            except Exception as exc:
                raise wrap_task_error(
                    exc, index, task, action="metric evaluation failed"
                ) from exc
        return values

    worker.run_many = run_many
    return worker


# -- fallback paths -----------------------------------------------------------


def _build_all(tasks: Sequence[object], build) -> List[Circuit]:
    circuits = []
    for index, task in enumerate(tasks):
        try:
            circuits.append(build(task))
        except Exception as exc:
            raise wrap_task_error(
                exc, index, task, action="circuit build failed"
            ) from exc
    return circuits


def _run_sequential(
    tasks: Sequence[object],
    circuits: Sequence[Circuit],
    options: TransientOptions,
) -> List[TransientResult]:
    results = []
    for index, circuit in enumerate(circuits):
        try:
            results.append(run_transient(circuit, options))
        except Exception as exc:
            raise wrap_task_error(
                exc, index, tasks[index], action="transient failed"
            ) from exc
    return results


def _rerun_quarantined(
    circuits: Sequence[Circuit],
    options: TransientOptions,
    results: List[TransientResult],
) -> None:
    """Give lockstep-quarantined samples a solo second chance.

    A quarantined sample was killed under the *shared* lockstep grid
    and batch discipline; alone — on its own grid, with the rescue
    ladder — it may well finish.  Each quarantined sample re-runs
    through the per-sample engine with rescue enabled: success
    replaces the frozen partial result (``quarantined`` flips to
    False, the original ``quarantine`` record stays for traceability
    alongside ``solo_rerun=True``); failure keeps the partial result
    and records why in ``stats["rescue_failed"]``.  Mutates
    ``results`` in place.
    """
    solo = replace(options, quarantine=False)
    for s, result in enumerate(results):
        if not result.stats.get("quarantined"):
            continue
        try:
            rerun = run_transient(circuits[s], solo)
        except (ConvergenceError, SimulationError) as exc:
            result.stats["rescue_failed"] = str(exc)
            continue
        if rerun.stats.get("completed") is False:
            # on_abort="partial" solo rerun that aborted again: the
            # quarantined lockstep result stands.
            result.stats["rescue_failed"] = str(
                rerun.stats.get("abort_error")
                or rerun.stats.get("abort_reason")
            )
            continue
        rerun.stats["quarantined"] = False
        rerun.stats["quarantine"] = result.stats.get("quarantine")
        rerun.stats["solo_rerun"] = True
        results[s] = rerun


# -- shared-memory lifecycle --------------------------------------------------

#: Parent-side shared blocks created but not yet released.  The
#: streaming paths release their block in a ``finally``, but a block
#: can still outlive them — ``KeyboardInterrupt`` landing between
#: creation and the ``try``, or an exception raised *by* the release
#: itself — so an atexit backstop unlinks anything left over rather
#: than leaking ``/dev/shm`` segments past the interpreter.
_LIVE_SHM: dict = {}


def _create_shared_block(shape: Tuple[int, ...]) -> shared_memory.SharedMemory:
    """Create (and register for cleanup) one float64 record block."""
    shm = shared_memory.SharedMemory(
        create=True, size=int(np.prod(shape)) * 8
    )
    _LIVE_SHM[shm.name] = shm
    return shm


def _release_shared_block(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a block; safe to call twice."""
    _LIVE_SHM.pop(shm.name, None)
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


@atexit.register
def _reap_shared_blocks() -> None:  # pragma: no cover - teardown path
    for shm in list(_LIVE_SHM.values()):
        try:
            _release_shared_block(shm)
        except Exception:
            pass


# -- sharded lockstep execution -----------------------------------------------


def _plan_shards(
    circuits: Sequence[Circuit],
    options: TransientOptions,
    batch: BatchOptions,
    workers: int,
) -> List[List[int]]:
    """Cut the campaign into shards of global sample indices.

    With ``batch.stiffness_bins > 1`` the samples are first grouped
    into stiffness quantile bins by a lockstep probe step (cluster
    first), then each bin is chunked into shards (shard within
    clusters) — so no shard mixes a stiff outlier with benign
    samples.  A failed probe degrades to task order.  Shards always
    partition ``range(S)`` exactly, each in ascending sample order.
    """
    S = len(circuits)
    bins = [np.arange(S)]
    if batch.stiffness_bins > 1 and S > 1:
        ratios = probe_stiffness_ratios(circuits, options)
        if ratios is not None:
            bins = stiffness_bins(ratios, batch.stiffness_bins)
    shard_size = batch.shard_size or max(1, math.ceil(S / max(workers, 1)))
    shards: List[List[int]] = []
    for bin_indices in bins:
        for k in range(0, len(bin_indices), shard_size):
            shards.append([int(i) for i in bin_indices[k : k + shard_size]])
    return shards


def _run_one_shard(
    circuits: Sequence[Circuit],
    tasks: Sequence[object],
    indices: Sequence[int],
    options: TransientOptions,
) -> List[TransientResult]:
    """One shard through the lockstep engine — parent- or child-side.

    Mirrors the unsharded lockstep path exactly: netlists the engine
    cannot stack fall back to the per-sample loop (failures attributed
    to *global* task indices), and quarantined samples get their solo
    rescue rerun inside the shard.
    """
    try:
        results = run_transient_batched(circuits, options)
    except BatchIncompatible:
        results = []
        for local, circuit in enumerate(circuits):
            try:
                results.append(run_transient(circuit, options))
            except Exception as exc:
                raise wrap_task_error(
                    exc, indices[local], tasks[local], action="transient failed"
                ) from exc
        return results
    if options.quarantine and options.rescue:
        _rerun_quarantined(circuits, options, results)
    return results


def _globalize_quarantine(stats: dict, indices: Sequence[int]) -> None:
    """Remap shard-local sample indices in per-sample stats to global.

    Covers the quarantine records and the health layer's
    :class:`~repro.circuits.health.HealthReport` list, so a report
    filed against shard-local sample 2 names the campaign's global
    sample index by the time anyone reads the merged results.
    """
    record = stats.get("quarantine")
    if record and "sample" in record:
        record = dict(record)
        record["sample"] = int(indices[int(record["sample"])])
        stats["quarantine"] = record
    local_list = stats.get("quarantined_samples")
    if local_list:
        stats["quarantined_samples"] = [int(indices[int(s)]) for s in local_list]
    health = stats.get("health")
    if health:
        stats["health"] = [
            replace(report, sample=int(indices[int(report.sample)]))
            if getattr(report, "sample", None) is not None
            else report
            for report in health
        ]


def _stamp_shard(stats: dict, shard_no: int, n_shards: int, n_workers: int) -> None:
    stats["shard"] = shard_no
    stats["n_shards"] = n_shards
    stats["shard_workers"] = n_workers


def _shard_solo_fallback(
    indices: Sequence[int],
    tasks: Sequence[object],
    build,
    options: TransientOptions,
    batch: BatchOptions,
    results: List[object],
) -> None:
    """Recover a failed shard sample-by-sample (``on_error != "raise"``).

    A collective shard failure rarely implicates every member; each
    sample re-runs solo through the per-sample engine under the batch
    retry policy, so innocents recover (their slot gets a real result,
    flagged ``shard_fallback``) and persistent failures land as
    :class:`~repro.errors.TaskFailure` records in their own slots.
    """
    policy = batch.retry or RetryPolicy()

    def worker(task: object) -> TransientResult:
        return run_transient(build(task), options)

    for g in indices:
        result, failure = _attempt_task(worker, g, tasks[g], batch, policy)
        if failure is None:
            result.stats["shard_fallback"] = True
            results[g] = result
        else:
            results[g] = failure


def _run_sharded(
    tasks: Sequence[object],
    build,
    options: TransientOptions,
    batch: BatchOptions,
) -> List[object]:
    """Lockstep execution in sub-batches across a shard-level pool.

    The campaign is cut into shards (stiffness-clustered when asked)
    and each shard runs the existing vectorized lockstep engine.
    Fixed-grid records stream through *one* shared-memory block —
    every worker writes its samples' rows at their global offsets, so
    the waveforms never cross the process boundary as pickles.  With
    one worker (or one core) the shards run sequentially in-process:
    same merges, no pool, no shared memory.  Results always come back
    in task order; a failed shard either raises (``on_error="raise"``,
    attributed to the first failing sample's global index) or falls
    back to per-sample solo attempts whose failures become
    :class:`~repro.errors.TaskFailure` slots.
    """
    circuits = _build_all(tasks, build)
    S = len(tasks)
    workers = batch.resolved_max_workers()
    shards = _plan_shards(circuits, options, batch, workers)
    n_shards = len(shards)
    n_workers = max(1, min(workers, n_shards))
    if n_workers <= 1:
        results: List[object] = [None] * S
        for shard_no, indices in enumerate(shards):
            sub_circuits = [circuits[i] for i in indices]
            sub_tasks = [tasks[i] for i in indices]
            try:
                shard_results = _run_one_shard(
                    sub_circuits, sub_tasks, indices, options
                )
            except Exception as exc:
                if batch.on_error == "raise":
                    if isinstance(exc, BatchTaskError):
                        raise
                    samples = getattr(exc, "failed_samples", None)
                    g = (
                        int(indices[int(samples[0])])
                        if samples is not None and len(samples)
                        else -1
                    )
                    task = tasks[g] if 0 <= g < S else None
                    raise wrap_task_error(
                        exc, g, task, action="sharded batch failed"
                    ) from exc
                _shard_solo_fallback(
                    indices, tasks, build, options, batch, results
                )
                continue
            for local, g in enumerate(indices):
                result = shard_results[local]
                _globalize_quarantine(result.stats, indices)
                _stamp_shard(result.stats, shard_no, n_shards, 1)
                results[g] = result
        return results
    return _run_sharded_process(
        tasks, circuits, build, options, batch, shards, n_workers
    )


def _run_sharded_process(
    tasks: Sequence[object],
    circuits: Sequence[Circuit],
    build,
    options: TransientOptions,
    batch: BatchOptions,
    shards: List[List[int]],
    n_workers: int,
) -> List[object]:
    """The multi-worker sharded path: one pool, one shared block."""
    for circuit in circuits:
        # Workers rebuild their own circuits; the parent-side ones
        # label the merged results, so they need branch numbering too.
        circuit.prepare()
    S = len(tasks)
    n_shards = len(shards)
    jobs = [
        (shard_no, indices, [tasks[i] for i in indices])
        for shard_no, indices in enumerate(shards)
    ]
    # One shared block needs one record shape: fixed grid and — when
    # recording full state vectors — homogeneous unknown counts (the
    # BatchIncompatible per-sample fallback may legally mix sizes).
    streaming = options.step_control == "fixed" and (
        options.record_nodes is not None
        or all(c.size == circuits[0].size for c in circuits)
    )
    results: List[object] = [None] * S
    failed: List[tuple] = []

    def merge(payload, records) -> None:
        if payload[0] == "failed":
            failed.append(payload[1:])
            return
        _tag, shard_no, items = payload
        for item in items:
            if records is not None:
                g, t, nodes, stats = item
                x = np.array(records[g])
            else:
                g, t, x, nodes, stats = item
            _stamp_shard(stats, shard_no, n_shards, n_workers)
            results[g] = TransientResult(
                circuit=circuits[g],
                t=t,
                x=x,
                recorded_nodes=nodes,
                stats=stats,
            )

    if streaming:
        _indices, _nodes, n_columns = _resolve_recording(circuits[0], options)
        shape = (S, _fixed_record_count(options), n_columns)
        shm = _create_shared_block(shape)
        try:
            payloads = _drain_shard_pool(
                jobs,
                n_workers,
                (shm.name, shape, build, options),
                batch.task_timeout,
            )
            records = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
            for payload in payloads:
                merge(payload, records)
        finally:
            _release_shared_block(shm)
    else:
        payloads = _drain_shard_pool(
            jobs, n_workers, (None, None, build, options), batch.task_timeout
        )
        for payload in payloads:
            merge(payload, None)

    for shard_no, g, message, cause, *rest in failed:
        kind = rest[0] if rest else "error"
        indices = shards[shard_no]
        if batch.on_error == "raise":
            task = tasks[g] if 0 <= g < S else None
            raise BatchTaskError(
                f"sharded batch failed on task {g} ({task!r}): {message}",
                index=g,
                task=task,
                cause_text=cause,
            )
        if kind == "timeout":
            # A hung shard's samples must NOT re-run solo in the
            # parent — whatever hung the worker would hang us.  They
            # land as structured timeout failures instead.
            for g_i in indices:
                results[g_i] = TaskFailure(
                    index=g_i,
                    task=tasks[g_i],
                    error=TimeoutError(message),
                    attempts=1,
                    kind="timeout",
                )
            continue
        _shard_solo_fallback(indices, tasks, build, options, batch, results)
    return results


def _drain_shard_pool(
    jobs: List[tuple],
    n_workers: int,
    initargs: tuple,
    timeout: Optional[float],
) -> List[tuple]:
    """Run shard jobs through a pool, with an optional per-shard watchdog.

    Without ``BatchOptions.task_timeout`` this is a plain pool map.
    With it, every in-flight shard gets a deadline from the moment it
    is first observed *running* (queue time never counts); an overdue
    shard's pool is torn down — the only way to stop a hung child —
    the shard comes back as a ``("failed", ..., kind="timeout")``
    payload for the parent's ``on_error`` policy, and the surviving
    shards are resubmitted to a fresh pool.
    """

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_shard_init,
            initargs=initargs,
        )

    if timeout is None:
        with make_pool() as executor:
            return list(executor.map(_shard_worker, jobs))

    payloads: List[tuple] = [None] * len(jobs)  # type: ignore[list-item]
    queue = list(range(len(jobs)))
    wait_timeout = min(1.0, timeout / 4.0)
    while queue:
        rebuild = False
        executor = make_pool()
        try:
            pending = {executor.submit(_shard_worker, jobs[k]): k for k in queue}
            queue = []
            running_since: dict = {}
            while pending:
                done, _ = wait(
                    set(pending), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    k = pending.pop(future)
                    running_since.pop(future, None)
                    # _shard_worker never raises; result() only fails
                    # on pool breakage, which should propagate exactly
                    # as it would out of the map-based drain.
                    payloads[k] = future.result()
                for future in pending:
                    if future not in running_since and future.running():
                        running_since[future] = now
                overdue = [
                    (future, k)
                    for future, k in pending.items()
                    if future in running_since
                    and now - running_since[future] > timeout
                ]
                if overdue:
                    for future, k in overdue:
                        pending.pop(future)
                        shard_no = jobs[k][0]
                        payloads[k] = (
                            "failed",
                            shard_no,
                            -1,
                            f"shard watchdog fired after {timeout:.1f}s",
                            f"TimeoutError: shard {shard_no} exceeded "
                            f"task_timeout={timeout!r}s",
                            "timeout",
                        )
                    queue = list(pending.values())
                    rebuild = True
                    break
        finally:
            if rebuild:
                _kill_pool(executor)
            else:
                executor.shutdown(wait=True)
    return payloads


def _shard_init(shm_name, shape, build, options) -> None:
    if shm_name is not None:
        shm = shared_memory.SharedMemory(name=shm_name)
        _WORKER_STATE["shm"] = shm
        _WORKER_STATE["records"] = np.ndarray(
            shape, dtype=np.float64, buffer=shm.buf
        )
        # Detach cleanly at worker exit; the parent owns the unlink.
        atexit.register(shm.close)
    else:
        _WORKER_STATE.pop("records", None)
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _shard_worker(job):
    """Run one shard child-side; stream records, return small payloads.

    Never raises: a failed shard comes back as a ``("failed", ...)``
    payload (shard number, first failing local sample, message,
    rendered traceback) so sibling shards finish and the parent
    applies its ``on_error`` policy — an exception through the pool's
    map would abort the whole drain at the first failure.
    """
    shard_no, indices, tasks = job
    build = _WORKER_STATE["build"]
    options = _WORKER_STATE["options"]
    try:
        circuits = [build(task) for task in tasks]
        shard_results = _run_one_shard(circuits, tasks, indices, options)
    except Exception as exc:  # noqa: BLE001 — becomes a failure payload
        # Attribute to a *global* sample index when the error names
        # one: a per-sample fallback failure carries it directly, a
        # collective lockstep failure names its shard-local samples.
        g = -1
        if isinstance(exc, BatchTaskError):
            g = int(getattr(exc, "index", -1))
        else:
            samples = getattr(exc, "failed_samples", None)
            if samples is not None and len(samples):
                g = int(indices[int(samples[0])])
        cause = getattr(exc, "cause_text", None) or "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return ("failed", shard_no, g, f"{type(exc).__name__}: {exc}", cause)
    records = _WORKER_STATE.get("records")
    payloads = []
    for g, result in zip(indices, shard_results):
        _globalize_quarantine(result.stats, indices)
        if records is not None:
            records[g] = result.x
            payloads.append((g, result.t, result.recorded_nodes, dict(result.stats)))
        else:
            payloads.append(
                (g, result.t, result.x, result.recorded_nodes, dict(result.stats))
            )
    return ("ok", shard_no, payloads)


# -- shared-memory streaming process pool ------------------------------------

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: dict = {}


def _stream_init(shm_name, shape, build, options) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER_STATE["shm"] = shm
    _WORKER_STATE["records"] = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    # Detach cleanly at worker exit; the parent owns the unlink.
    atexit.register(shm.close)
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _stream_worker(job: Tuple[int, object]):
    """Run one task, stream its records into the shared block.

    Returns only the small per-task payload (time grid, stats); the
    waveform matrix never crosses the process boundary as a pickle.
    Failures wrap child-side so the attribution stays exact even for
    chunked maps.
    """
    index, task = job
    try:
        build = _WORKER_STATE["build"]
        options = _WORKER_STATE["options"]
        result = run_transient(build(task), options)
        _WORKER_STATE["records"][index] = result.x
        return index, result.t, result.recorded_nodes, dict(result.stats)
    except BatchTaskError:
        raise
    except Exception as exc:
        raise wrap_task_error(
            exc, index, task, action="transient worker failed"
        ) from exc


def _ragged_record_capacity(options: TransientOptions) -> int:
    """Per-sample record capacity for the ragged streaming block.

    Adaptive runs have no record count known up front; reserve 4x the
    fixed-grid count at the *initial* dt.  The adaptive controller
    shrinks below dt only transiently (near breakpoints or stiffness
    onsets), so a sample overflowing 4x is rare — and legal: its
    worker just falls back to pickling that one sample's arrays.
    """
    return 4 * (_fixed_record_count(options) + 2)


def _ragged_init(shm_name, shape, capacity, n_columns, build, options) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER_STATE["shm"] = shm
    _WORKER_STATE["records"] = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    atexit.register(shm.close)
    _WORKER_STATE["capacity"] = capacity
    _WORKER_STATE["n_columns"] = n_columns
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _ragged_worker(job: Tuple[int, object]):
    """Run one task, stream its ragged records into the shared block.

    Each sample owns one fixed-size slot laid out as
    ``[n_records, t[0:capacity], x.ravel()[0:capacity * n_columns]]``
    — a length header followed by the time grid and the row-major
    record matrix at fixed offsets, so per-sample record counts may
    differ (adaptive grids, envelope runs).  A result that outgrows
    the slot is returned as a pickled 5-tuple for that sample only;
    fits return the small 4-tuple payload like the fixed-grid path.
    """
    index, task = job
    try:
        build = _WORKER_STATE["build"]
        options = _WORKER_STATE["options"]
        result = run_transient(build(task), options)
        capacity = _WORKER_STATE["capacity"]
        n_columns = _WORKER_STATE["n_columns"]
        n = len(result.t)
        if n <= capacity and result.x.shape == (n, n_columns):
            slot = _WORKER_STATE["records"][index]
            slot[0] = float(n)
            slot[1 : 1 + n] = result.t
            flat = np.ascontiguousarray(result.x).ravel()
            slot[1 + capacity : 1 + capacity + n * n_columns] = flat
            return index, None, result.recorded_nodes, dict(result.stats)
        return (
            index,
            result.t,
            result.x,
            result.recorded_nodes,
            dict(result.stats),
        )
    except BatchTaskError:
        raise
    except Exception as exc:
        raise wrap_task_error(
            exc, index, task, action="transient worker failed"
        ) from exc


def _pickled_init(build, options) -> None:
    _WORKER_STATE["build"] = build
    _WORKER_STATE["options"] = options


def _pickled_worker(job: Tuple[int, object]):
    index, task = job
    try:
        result = run_transient(
            _WORKER_STATE["build"](task), _WORKER_STATE["options"]
        )
        return (
            index,
            result.t,
            result.x,
            result.recorded_nodes,
            dict(result.stats),
        )
    except BatchTaskError:
        raise
    except Exception as exc:
        raise wrap_task_error(
            exc, index, task, action="transient worker failed"
        ) from exc


def _run_process_streaming(
    tasks: Sequence[object],
    build,
    options: TransientOptions,
    batch: BatchOptions,
) -> List[TransientResult]:
    """Per-task transients in worker processes, records via shared memory.

    Fixed-grid runs have a record count known up front, so one
    ``multiprocessing.shared_memory`` block of shape
    ``(n_tasks, n_records, n_columns)`` is preallocated and each
    worker writes its rows in place — campaigns stream full waveforms
    without pickling them.  Adaptive runs (record count unknown per
    sample) stream through a *ragged* block instead: one fixed-size
    slot per sample holding a length header, the time grid, and the
    record matrix, sized by :func:`_ragged_record_capacity`; a sample
    overflowing its slot falls back to pickling just its own arrays.
    Only campaigns with no single record-column count (heterogeneous
    full-state recording) use the fully pickled pool.

    ``build``, ``options`` and the tasks must be picklable; circuits
    are rebuilt in the parent only to label the returned results.
    """
    circuits = _build_all(tasks, build)
    for circuit in circuits:
        # Workers prepare their own pickled copies; the parent-side
        # circuits label the returned results, so they need branch
        # numbering too (waveform/branch_current access).
        circuit.prepare()
    n_workers = batch.resolved_max_workers()
    # One shared block needs one record *width*: explicit record_nodes,
    # or — when recording full state vectors — homogeneous unknown
    # counts.  Heterogeneous-topology campaigns (legal here, unlike
    # lockstep) use the pickled-record pool instead.
    streaming = (
        options.record_nodes is not None
        or all(c.size == circuits[0].size for c in circuits)
    )
    jobs = list(enumerate(tasks))

    if streaming and options.step_control == "fixed":
        _indices, recorded_nodes, n_columns = _resolve_recording(
            circuits[0], options
        )
        shape = (len(tasks), _fixed_record_count(options), n_columns)
        shm = _create_shared_block(shape)
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_stream_init,
                initargs=(shm.name, shape, build, options),
            ) as executor:
                payloads = _gather(
                    executor.map(_stream_worker, jobs, chunksize=batch.chunksize),
                    tasks,
                )
            records = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
            results = []
            for index, t, nodes, stats in payloads:
                results.append(
                    TransientResult(
                        circuit=circuits[index],
                        t=t,
                        x=np.array(records[index]),
                        recorded_nodes=nodes,
                        stats=stats,
                    )
                )
        finally:
            _release_shared_block(shm)
        return results

    if streaming:
        _indices, recorded_nodes, n_columns = _resolve_recording(
            circuits[0], options
        )
        capacity = _ragged_record_capacity(options)
        # Slot layout: [n, t(capacity), x.ravel()(capacity * n_columns)].
        shape = (len(tasks), 1 + capacity * (1 + n_columns))
        shm = _create_shared_block(shape)
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_ragged_init,
                initargs=(shm.name, shape, capacity, n_columns, build, options),
            ) as executor:
                payloads = _gather(
                    executor.map(_ragged_worker, jobs, chunksize=batch.chunksize),
                    tasks,
                )
            records = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
            results = []
            for payload in payloads:
                if len(payload) == 5:  # overflowed its slot: pickled
                    index, t, x, nodes, stats = payload
                else:
                    index, _sentinel, nodes, stats = payload
                    slot = records[index]
                    n = int(slot[0])
                    t = np.array(slot[1 : 1 + n])
                    x = np.array(
                        slot[1 + capacity : 1 + capacity + n * n_columns]
                    ).reshape(n, n_columns)
                results.append(
                    TransientResult(
                        circuit=circuits[index],
                        t=t,
                        x=x,
                        recorded_nodes=nodes,
                        stats=stats,
                    )
                )
        finally:
            _release_shared_block(shm)
        return results

    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_pickled_init,
        initargs=(build, options),
    ) as executor:
        payloads = _gather(
            executor.map(_pickled_worker, jobs, chunksize=batch.chunksize),
            tasks,
        )
    return [
        TransientResult(
            circuit=circuits[index],
            t=t,
            x=x,
            recorded_nodes=nodes,
            stats=stats,
        )
        for index, t, x, nodes, stats in payloads
    ]


def _gather(iterator, tasks):
    """Drain an executor map, wrapping failures with their task index."""
    return drain_ordered(iterator, tasks, action="transient worker failed")


# -- warm-started envelope campaigns ------------------------------------------


def run_envelope_campaign(
    tasks: Sequence[object],
    build: Callable[[object], Circuit],
    options: TransientOptions,
    envelope,
    params: Optional[Sequence] = None,
    start: int = 0,
) -> List[TransientResult]:
    """Envelope-following transients over a campaign, warm-started.

    Runs :func:`~repro.circuits.envelope_transient.
    run_transient_envelope` once per task, visiting the tasks in
    greedy nearest-neighbour order over ``params`` (one scalar or
    parameter vector per task — typically the Monte-Carlo draws) so
    that each sample's settled envelope state
    (``stats["envelope"]["final"]``) seeds the next sample's skip
    schedule via ``EnvelopeOptions.warm_start``.  Nearby draws settle
    to nearby envelopes, so a warm-started sample starts skipping at
    the neighbour's converged skip length instead of re-climbing from
    ``skip_initial``.

    The chain is self-correcting: the engine's correction burst
    measures every skip against the describing-function prediction, so
    a warm start carried across a parameter cliff is *rejected*
    (``stats["envelope"]["warm_start"] == "rejected"``) and that
    sample falls back to the cold ``skip_initial`` schedule — a bad
    seed costs resolved cycles, never accuracy.

    ``envelope`` is either one shared
    :class:`~repro.circuits.envelope_transient.EnvelopeOptions` or a
    callable ``task -> EnvelopeOptions`` — campaigns whose draws
    perturb the tank or limiter need a per-task describing-function
    model, and only the task knows the draw.  Without ``params`` the
    tasks run in the given order, still chaining warm starts.  Results
    are returned in task order, each with
    ``stats["envelope"]["chain_rank"]`` recording its position in the
    visiting chain.  ``skip == "off"`` degrades to plain
    carrier-resolved runs (no warm state to carry).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    env_for = (
        envelope
        if callable(envelope) and not isinstance(envelope, EnvelopeOptions)
        else (lambda _task: envelope)
    )
    if params is not None:
        params = list(params)
        if len(params) != len(tasks):
            raise SimulationError(
                f"params has {len(params)} entries for {len(tasks)} tasks"
            )
        order = nearest_neighbor_chain(params, start=start)
    else:
        order = list(range(len(tasks)))
    results: List[Optional[TransientResult]] = [None] * len(tasks)
    warm: Optional[dict] = None
    for rank, g in enumerate(order):
        base = env_for(tasks[g])
        if not isinstance(base, EnvelopeOptions):
            raise SimulationError(
                "envelope must be an EnvelopeOptions or a callable "
                f"returning one, got {type(base).__name__}"
            )
        env = replace(base, warm_start=warm)
        try:
            result = run_transient_envelope(build(tasks[g]), options, env)
        except BatchTaskError:
            raise
        except Exception as exc:
            raise wrap_task_error(
                exc, g, tasks[g], action="envelope campaign task failed"
            ) from exc
        stats = result.stats.get("envelope")
        if isinstance(stats, dict):
            stats["chain_rank"] = rank
            final = stats.get("final")
            warm = dict(final) if isinstance(final, dict) else None
        else:
            warm = None
        results[g] = result
    return results
