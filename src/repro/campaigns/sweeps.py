"""Campaign adapters for common sweep shapes.

Thin, dependency-free helpers that express the library's recurring
sweep patterns in terms of the :mod:`~repro.campaigns.runner`
primitives, so benches and analyses share one vocabulary instead of
hand-rolled loops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from .runner import BatchOptions, run_batch

__all__ = ["labelled_sweep", "corner_sweep"]

T = TypeVar("T")
R = TypeVar("R")


def labelled_sweep(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    label: Callable[[T], str],
    options: Optional[BatchOptions] = None,
) -> Dict[str, R]:
    """Run a batch and key the results by a task label.

    Labels must be unique; duplicate labels would silently drop
    results, so they raise instead.
    """
    labels: List[str] = [label(task) for task in tasks]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate sweep labels: {labels}")
    results = run_batch(worker, tasks, options)
    return dict(zip(labels, results))


def corner_sweep(
    worker: Callable[[T], R],
    corners: Sequence[T],
    options: Optional[BatchOptions] = None,
) -> Dict[str, R]:
    """Evaluate ``worker`` at every process corner, keyed by name.

    Works with anything exposing a ``name`` attribute, which is what
    :class:`~repro.circuits.corners.ProcessCorner` provides.
    """
    return labelled_sweep(
        worker, corners, lambda corner: str(corner.name), options
    )
