"""Batched execution of many independent simulations.

Every campaign-shaped workload in this library — Monte-Carlo sampling
over mismatch draws, FMEA fault injection, DC continuation sweeps,
process-corner benches — reduces to *one worker applied to a list of
tasks*.  This module is the single execution engine for that shape, so
scaling decisions (process parallelism, chunking, warm starts) are
made in one place instead of being reimplemented per campaign:

* :func:`run_batch` — independent tasks, optionally fanned out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Results always come
  back in task order, so seeded campaigns stay reproducible no matter
  how they were scheduled.
* :func:`run_chain` — ordered tasks threaded through a *carry* (warm
  start): each worker call receives the previous call's carry, which
  is how continuation sweeps reuse the last operating point as the
  next initial guess.

Only the Python standard library is used here; the module sits below
every simulation layer so any of them can import it without cycles.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError

__all__ = ["BatchOptions", "run_batch", "run_chain"]

T = TypeVar("T")
R = TypeVar("R")
C = TypeVar("C")


@dataclass(frozen=True)
class BatchOptions:
    """Execution policy for :func:`run_batch`.

    Parameters
    ----------
    max_workers:
        ``None``, 0 or 1 run the batch sequentially in-process (the
        default — always correct, and on single-core containers also
        the fastest).  Larger values fan tasks out over that many
        worker processes; the worker and its tasks must then be
        picklable (module-level functions, no closures).
    chunksize:
        Tasks submitted per inter-process message in parallel mode;
        raise it when individual tasks are much cheaper than a pickle
        round-trip.
    """

    max_workers: Optional[int] = None
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 0:
            raise ConfigurationError("max_workers must be >= 0 or None")
        if self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")

    @property
    def parallel(self) -> bool:
        return bool(self.max_workers) and self.max_workers > 1


def run_batch(
    worker: Callable[[T], R],
    tasks: Iterable[T],
    options: Optional[BatchOptions] = None,
) -> List[R]:
    """Apply ``worker`` to every task; results in task order.

    The sequential path is a plain loop — no pickling, closures and
    stateful workers welcome.  The parallel path requires picklable
    workers/tasks and is worthwhile only when tasks are expensive and
    cores are actually available.
    """
    task_list = list(tasks)
    if options is None or not options.parallel or len(task_list) <= 1:
        return [worker(task) for task in task_list]
    with ProcessPoolExecutor(max_workers=options.max_workers) as executor:
        return list(
            executor.map(worker, task_list, chunksize=options.chunksize)
        )


def run_chain(
    worker: Callable[[T, Optional[C]], Tuple[R, C]],
    tasks: Sequence[T],
    carry: Optional[C] = None,
) -> List[R]:
    """Warm-started sequential campaign.

    ``worker(task, carry)`` returns ``(result, next_carry)``; the carry
    of each call seeds the next one (first call receives ``carry``).
    This is the execution shape of continuation: a DC sweep starting
    every point from the previous solution, a corner ladder reusing
    the last bias point, a parameter stepper walking a turn-on curve.
    """
    results: List[R] = []
    for task in tasks:
        result, carry = worker(task, carry)
        results.append(result)
    return results
