"""Batched execution of many independent simulations.

Every campaign-shaped workload in this library — Monte-Carlo sampling
over mismatch draws, FMEA fault injection, DC continuation sweeps,
process-corner benches — reduces to *one worker applied to a list of
tasks*.  This module is the single execution engine for that shape, so
scaling decisions (process parallelism, chunking, warm starts,
lockstep vectorization) are made in one place instead of being
reimplemented per campaign:

* :func:`run_batch` — independent tasks, scheduled by the
  :class:`BatchOptions` policy: sequential, fanned out over a
  ``concurrent.futures.ProcessPoolExecutor``, or — for workers that
  expose a vectorized ``run_many`` hook (see
  :func:`~repro.campaigns.vectorized.transient_worker`) — executed as
  one lockstep batch.  Results always come back in task order, so
  seeded campaigns stay reproducible no matter how they were
  scheduled.
* :func:`run_chain` — ordered tasks threaded through a *carry* (warm
  start): each worker call receives the previous call's carry, which
  is how continuation sweeps reuse the last operating point as the
  next initial guess.

A :func:`run_batch` worker exception is wrapped in
:class:`~repro.errors.BatchTaskError` carrying the failing task's
index (original exception chained as ``__cause__``), so a mid-campaign
failure identifies which task died no matter how the batch was
scheduled.  :func:`run_chain` deliberately propagates raw exceptions:
continuation chains back pre-existing typed-error contracts
(``dc_sweep`` documents :class:`~repro.errors.ConvergenceError`), and
a sequential chain's traceback already names its point.

Fault-tolerant campaigns opt in through :class:`BatchOptions`:
``on_error="skip"`` records a structured
:class:`~repro.errors.TaskFailure` in the failing task's slot instead
of aborting the batch; ``on_error="retry"`` re-attempts each failed
task under a :class:`RetryPolicy` (backoff delays, a per-attempt
``adjust`` hook that can e.g. enable transient rescue) before
recording the failure; ``checkpoint_path`` persists completed results
periodically so a killed campaign resumes with
``run_batch(..., resume_from=path)`` re-running only the missing
tasks.  A :class:`~concurrent.futures.process.BrokenProcessPool`
flushes the checkpoint before surfacing as a
:class:`~repro.errors.BatchTaskError` naming the in-flight task.

Only the Python standard library is used here; the module sits below
every simulation layer so any of them can import it without cycles
(the vectorized transient front-end lives one module up, in
:mod:`repro.campaigns.vectorized`).
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..errors import (
    BatchTaskError,
    ConfigurationError,
    ConvergenceError,
    TaskFailure,
)

__all__ = [
    "BatchOptions",
    "RetryPolicy",
    "nearest_neighbor_chain",
    "run_batch",
    "run_chain",
]

T = TypeVar("T")
R = TypeVar("R")
C = TypeVar("C")

_BATCH_MODES = ("auto", "sequential", "process", "vectorized", "sharded")
_ON_ERROR_MODES = ("raise", "skip", "retry")


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`run_batch` re-attempts a failed task.

    Parameters
    ----------
    max_attempts:
        Total attempts per task (first try included).
    delay, backoff:
        Seconds slept before attempt ``k+1`` is
        ``delay * backoff**(k-1)`` — exponential backoff, no sleep
        before the first retry when ``delay`` is 0 (the default;
        simulation failures are deterministic, so backoff only matters
        when the ``adjust`` hook changes the task between attempts or
        the failure is environmental).
    adjust:
        ``adjust(task, attempt) -> task`` transforms the *original*
        task for attempt number ``attempt`` (2, 3, ...).  This is the
        escalation hook: a transient campaign can re-run a failed
        sample with ``rescue=True``, a looser tolerance, or a smaller
        initial dt.  Must be picklable for process pools only if it is
        baked into tasks — the hook itself runs parent-side.
    """

    max_attempts: int = 3
    delay: float = 0.0
    backoff: float = 2.0
    adjust: Optional[Callable[[object, int], object]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.delay < 0:
            raise ConfigurationError("delay must be >= 0")
        if self.backoff < 1:
            raise ConfigurationError("backoff must be >= 1")

    def wait(self, attempt: int) -> float:
        """Seconds to sleep before attempt ``attempt + 1``."""
        return self.delay * self.backoff ** (attempt - 1)

    def task_for_attempt(self, task: object, attempt: int) -> object:
        if attempt <= 1 or self.adjust is None:
            return task
        return self.adjust(task, attempt)


@dataclass(frozen=True)
class BatchOptions:
    """Execution policy for :func:`run_batch`.

    Parameters
    ----------
    max_workers:
        ``None``, 0 or 1 run the batch sequentially in-process (the
        default — always correct, and on single-core containers also
        the fastest).  Larger values fan tasks out over that many
        worker processes; the worker and its tasks must then be
        picklable (module-level functions, no closures).  The string
        ``"auto"`` resolves to ``os.cpu_count()``.
    chunksize:
        Tasks submitted per inter-process message in parallel mode;
        raise it when individual tasks are much cheaper than a pickle
        round-trip.
    batch_mode:
        How the batch executes:

        * ``"auto"`` (default) — sequential unless ``max_workers``
          asks for processes (the historical behaviour).
        * ``"sequential"`` — force the in-process loop regardless of
          ``max_workers``.
        * ``"process"`` — force the process pool (``max_workers``
          defaults to ``"auto"`` if unset).
        * ``"vectorized"`` — lockstep execution: the whole task list
          is handed to the worker's ``run_many(tasks)`` hook (one
          stacked-array simulation instead of a Python loop — see
          :func:`~repro.campaigns.vectorized.transient_worker`).
          Workers without the hook fall back to the sequential loop,
          so the policy is always safe to request.
        * ``"sharded"`` — lockstep execution split into sub-batches
          ("shards") of ``shard_size`` samples, dispatched across
          ``max_workers`` processes; within :func:`run_batch` the mode
          behaves like ``"vectorized"`` (it dispatches on the same
          ``run_many`` hook), and the transient front-end
          (:func:`~repro.campaigns.vectorized.run_transient_campaign`)
          implements the actual sharding.  One worker (or one core)
          degrades gracefully to running the shards sequentially
          in-process; fixed-grid results are bit-identical to the
          unsharded lockstep run either way.
    on_error:
        What a task failure does to the rest of the batch:

        * ``"raise"`` (default) — abort with
          :class:`~repro.errors.BatchTaskError` (the historical
          behaviour).
        * ``"skip"`` — record a :class:`~repro.errors.TaskFailure` in
          that task's result slot; the batch finishes.
        * ``"retry"`` — re-attempt per ``retry`` (a default
          :class:`RetryPolicy` if unset), then record the
          :class:`~repro.errors.TaskFailure` if every attempt failed.
    retry:
        The :class:`RetryPolicy` used by ``on_error="retry"``.
    checkpoint_path:
        When set, completed task results are pickled to this path
        (atomically, every ``checkpoint_every`` completions and at
        the end) so a killed campaign can resume via
        ``run_batch(..., resume_from=checkpoint_path)``.  Failures are
        *not* checkpointed — a resume re-attempts them.
    checkpoint_every:
        Completions between checkpoint writes.
    shard_size:
        ``batch_mode="sharded"`` only: samples per sub-batch.  ``None``
        (default) divides the campaign evenly over the resolved worker
        count (``ceil(S / workers)``).
    stiffness_bins:
        ``batch_mode="sharded"`` only: when > 1, a lockstep probe step
        ranks samples by first-step LTE ratio
        (:func:`~repro.circuits.batched.probe_stiffness_ratios`) and
        shards are cut *within* this many stiffness quantile bins
        (:func:`~repro.circuits.stepcontrol.stiffness_bins`), so an
        adaptive shard's shared worst-sample grid answers to peers of
        similar stiffness.  1 (default) keeps task order.
    task_timeout:
        Watchdog deadline in seconds for pool-executed tasks (process
        and sharded modes).  A task observed *running* longer than
        this is presumed hung (a worker spinning in native code, a
        deadlocked import): its worker processes are killed, the pool
        is rebuilt, the unfinished peers are resubmitted, and the hung
        task records a :class:`~repro.errors.TaskFailure` with
        ``kind="timeout"`` (or retries, under ``on_error="retry"``).
        ``None`` (default) disables the watchdog.  Sequential
        in-process execution cannot be interrupted and ignores it.
    """

    max_workers: Optional[Union[int, str]] = None
    chunksize: int = 1
    batch_mode: str = "auto"
    on_error: str = "raise"
    retry: Optional[RetryPolicy] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 16
    shard_size: Optional[int] = None
    stiffness_bins: int = 1
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_error not in _ON_ERROR_MODES:
            raise ConfigurationError(
                f"on_error must be one of {_ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if isinstance(self.max_workers, str):
            if self.max_workers != "auto":
                raise ConfigurationError(
                    f"max_workers must be an int, None or 'auto', "
                    f"got {self.max_workers!r}"
                )
        elif self.max_workers is not None and self.max_workers < 0:
            raise ConfigurationError("max_workers must be >= 0, None or 'auto'")
        if self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        if self.batch_mode not in _BATCH_MODES:
            raise ConfigurationError(
                f"batch_mode must be one of {_BATCH_MODES}, "
                f"got {self.batch_mode!r}"
            )
        if self.batch_mode == "process" and self.max_workers == 0:
            raise ConfigurationError(
                "batch_mode='process' forces a pool; max_workers=0 "
                "(sequential) contradicts it — use None, 'auto' or >= 1"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1 or None")
        if self.stiffness_bins < 1:
            raise ConfigurationError("stiffness_bins must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError("task_timeout must be > 0 or None")

    def resolved_max_workers(self) -> int:
        """The concrete worker count this policy asks for."""
        if self.max_workers == "auto":
            return os.cpu_count() or 1
        if self.max_workers is None:
            # "process"/"sharded" with no explicit count: use the box.
            if self.batch_mode in ("process", "sharded"):
                return os.cpu_count() or 1
            return 1
        return int(self.max_workers)

    @property
    def parallel(self) -> bool:
        # "sharded" runs its own shard-level pool inside the transient
        # front-end; the generic per-task pool must not also engage.
        if self.batch_mode in ("sequential", "vectorized", "sharded"):
            return False
        if self.batch_mode == "process":
            # Forced: even a pool of one worker buys process isolation
            # (a crashing task kills a pool worker, not the campaign).
            return True
        return self.resolved_max_workers() > 1

    @property
    def vectorized(self) -> bool:
        # Both modes dispatch run_batch on the worker's run_many hook;
        # a sharded-aware hook (transient_worker(batch=...)) carries
        # the shard policy itself.
        return self.batch_mode in ("vectorized", "sharded")


def wrap_task_error(
    exc: BaseException,
    index: int,
    task: object,
    action: str = "batch worker failed",
) -> BatchTaskError:
    """Uniform :class:`BatchTaskError` construction for every path.

    One helper so the campaign layers (sequential loop, process
    drain, vectorized front-end) cannot drift in what they attach to
    a failure.  The rendered traceback of the original exception rides
    along as ``cause_text``: a live ``__cause__`` chain does not
    survive pickling back through a process pool, the string does.
    """
    cause_text = getattr(exc, "cause_text", None)
    if cause_text is None:
        cause_text = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    return BatchTaskError(
        f"{action} on task {index} ({task!r}): {exc}",
        index=index,
        task=task,
        cause_text=cause_text,
    )


def nearest_neighbor_chain(
    points: Sequence,
    start: int = 0,
) -> List[int]:
    """Greedy nearest-neighbour visiting order over parameter vectors.

    Warm-started campaigns (continuation chains, envelope-following
    Monte-Carlo) converge fastest when consecutive tasks are *similar*:
    each run seeds the next, and the seed is only as good as the
    parameter distance between neighbours.  This orders the tasks as a
    greedy chain — start at ``start``, repeatedly hop to the nearest
    unvisited point (Euclidean; ties broken by index for determinism).

    ``points`` holds one scalar or one fixed-length numeric sequence
    per task.  O(n^2) in pure Python, which is fine for campaign sizes
    (hundreds of samples around millisecond-to-seconds simulations).
    """
    pts: List[tuple] = []
    for p in points:
        if isinstance(p, (list, tuple)):
            pts.append(tuple(float(v) for v in p))
        else:
            try:
                pts.append(tuple(float(v) for v in p))
            except TypeError:
                pts.append((float(p),))
    n = len(pts)
    if n == 0:
        return []
    if not 0 <= start < n:
        raise ValueError(f"start index {start} out of range for {n} points")
    dim = len(pts[0])
    for i, p in enumerate(pts):
        if len(p) != dim:
            raise ValueError(
                f"point {i} has {len(p)} coordinates, expected {dim}"
            )
    order = [start]
    remaining = set(range(n))
    remaining.discard(start)
    current = start
    while remaining:
        here = pts[current]
        best = min(
            remaining,
            key=lambda j: (
                sum((a - b) ** 2 for a, b in zip(here, pts[j])),
                j,
            ),
        )
        order.append(best)
        remaining.discard(best)
        current = best
    return order


class _IndexedWorker:
    """Picklable worker wrapper that attributes failures child-side.

    A chunked ``executor.map`` surfaces a failed chunk's exception at
    the chunk's *first* drain position, so parent-side attribution is
    wrong whenever ``chunksize > 1``.  Wrapping inside the worker
    process — where the true ``(index, task)`` is in hand — makes the
    :class:`BatchTaskError` exact; it pickles back through the pool
    intact and the drain loop passes it through unchanged.
    """

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, job):
        index, task = job
        try:
            return self.worker(task)
        except BatchTaskError:
            raise
        except Exception as exc:
            raise wrap_task_error(exc, index, task) from exc


def drain_ordered(
    iterator,
    tasks: Sequence,
    action: str = "batch worker failed",
) -> List:
    """Drain results in task order, wrapping failures with their index.

    The one drain loop shared by every executor-backed campaign path.
    Workers that can, wrap child-side (exact attribution even with
    ``chunksize > 1``); this parent-side wrap is the backstop for
    pool-level failures (pickling errors, a broken pool), where the
    index is the drain position the failure surfaced at.
    """
    results = []
    for index, task in enumerate(tasks):
        try:
            results.append(next(iterator))
        except BatchTaskError:
            raise
        except Exception as exc:
            raise wrap_task_error(exc, index, task, action) from exc
    return results


def _wrap_collective(exc: BaseException, tasks: Sequence) -> BatchTaskError:
    """Wrap a failure of a whole lockstep batch.

    A vectorized solve fails collectively; when the underlying error
    names its failing samples (the batched engine's ConvergenceError
    carries ``failed_samples``), the first one becomes the index.
    Otherwise the index is ``-1``: not attributable to a single task.
    """
    samples = getattr(exc, "failed_samples", None)
    # Duck-typed attribute: guard against numpy arrays, whose bare
    # truthiness raises for more than one element.
    index = int(samples[0]) if samples is not None and len(samples) else -1
    task = tasks[index] if 0 <= index < len(tasks) else None
    return wrap_task_error(exc, index, task, action="vectorized batch failed")


# -- fault-tolerant execution -------------------------------------------------


def _failure_context(exc: BaseException) -> Dict[str, object]:
    """Structured context attached to a :class:`TaskFailure`."""
    context: Dict[str, object] = {}
    if isinstance(exc, ConvergenceError):
        context.update(exc.context())
    cause = exc.__cause__
    if isinstance(cause, ConvergenceError):
        context.update(cause.context())
    cause_text = getattr(exc, "cause_text", None)
    if cause_text:
        context["cause_text"] = cause_text
    return context


class _Checkpointer:
    """Periodic, atomic pickle of the completed-results map.

    The payload is ``{"version": 1, "n_tasks": N, "done": {index:
    result}}`` — successes only, so a resume re-attempts every task
    that failed or never ran.  Writes go through a temp file and
    ``os.replace`` so a kill mid-write leaves the previous checkpoint
    intact.
    """

    def __init__(self, path: Optional[str], n_tasks: int, done: Dict[int, object], every: int):
        self.path = path
        self.n_tasks = n_tasks
        self.done = done
        self.every = max(1, int(every))
        self._dirty = 0

    def tick(self) -> None:
        if self.path is None:
            return
        self._dirty += 1
        if self._dirty >= self.every:
            self.flush()

    def flush(self) -> None:
        if self.path is None or self._dirty == 0:
            return
        payload = {"version": 1, "n_tasks": self.n_tasks, "done": dict(self.done)}
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh)
        os.replace(tmp, self.path)
        self._dirty = 0


def _load_checkpoint(path: str, n_tasks: int) -> Dict[int, object]:
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(
            f"resume_from checkpoint {path!r} does not exist"
        ) from None
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise ConfigurationError(
            f"resume_from checkpoint {path!r} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise ConfigurationError(f"{path!r} is not a run_batch checkpoint")
    if payload.get("n_tasks") != n_tasks:
        raise ConfigurationError(
            f"checkpoint {path!r} was written for {payload.get('n_tasks')} "
            f"tasks; this batch has {n_tasks} — resuming would misalign "
            "results"
        )
    return {int(k): v for k, v in payload["done"].items()}


def _attempt_task(
    worker: Callable,
    index: int,
    task: object,
    options: "BatchOptions",
    policy: RetryPolicy,
):
    """All attempts of one task, in-process.

    Returns ``(result, None)`` on success, ``(None, TaskFailure)``
    when every attempt failed.
    """
    attempts = policy.max_attempts if options.on_error == "retry" else 1
    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        if attempt > 1 and policy.delay:
            time.sleep(policy.wait(attempt - 1))
        try:
            return worker(policy.task_for_attempt(task, attempt)), None
        except Exception as exc:  # noqa: BLE001 — failures become records
            last = exc
    return None, TaskFailure(
        index=index,
        task=task,
        error=last,
        attempts=attempts,
        context=_failure_context(last),
    )


def _pool_worker_init() -> None:  # pragma: no cover - runs in workers
    """Reset inherited signal handlers in forked pool workers.

    The parent maps SIGTERM onto :class:`KeyboardInterrupt` for its
    own graceful-checkpoint cleanup; a forked worker inheriting that
    handler would print a spurious traceback every time the watchdog
    (or the pool shutdown) terminates it.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers without waiting on hung tasks.

    ``shutdown(wait=True)`` joins workers, which never returns while
    one is hung — the whole point of the watchdog is not to wait.
    Terminating the processes first makes the non-blocking shutdown
    safe.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _drain_resilient_pool(
    worker: Callable,
    task_list: Sequence,
    missing: Sequence[int],
    options: "BatchOptions",
    policy: RetryPolicy,
    done: Dict[int, object],
    failures: Dict[int, TaskFailure],
    saver: _Checkpointer,
) -> None:
    """Submit-based process drain that survives individual failures.

    ``executor.map`` ties the whole drain to the first failure;
    per-task futures let completed results land (and checkpoint) no
    matter which tasks die, and failed tasks resubmit for their
    retries while the rest of the pool keeps working.  A broken pool
    flushes the checkpoint and raises a :class:`BatchTaskError`
    naming one in-flight task.

    With ``options.task_timeout`` set, a watchdog polls the in-flight
    futures: a task observed running past the deadline is presumed
    hung, its worker processes are killed (the only way to interrupt
    arbitrary native code), the pool is rebuilt, and the unfinished
    peers resubmit on the fresh pool.  The hung task records a
    ``kind="timeout"`` :class:`~repro.errors.TaskFailure` — or
    retries, when attempts remain.
    """
    indexed = _IndexedWorker(worker)
    attempts = {index: 1 for index in missing}
    timeout = options.task_timeout
    wait_timeout = None if timeout is None else min(1.0, timeout / 4.0)
    queue = list(missing)
    while queue:
        executor = ProcessPoolExecutor(
            max_workers=options.resolved_max_workers(),
            initializer=_pool_worker_init,
        )
        rebuild = False
        try:
            pending = {
                executor.submit(
                    indexed,
                    (
                        index,
                        policy.task_for_attempt(
                            task_list[index], attempts[index]
                        ),
                    ),
                ): index
                for index in queue
            }
            queue = []
            running_since: Dict[object, float] = {}
            while pending:
                ready, _ = concurrent.futures.wait(
                    pending,
                    timeout=wait_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in ready:
                    index = pending.pop(future)
                    running_since.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        done[index] = future.result()
                        saver.tick()
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        saver.flush()
                        in_flight = sorted([index] + list(pending.values()))
                        raise wrap_task_error(
                            exc,
                            index,
                            task_list[index],
                            action=(
                                "worker process pool broke with task(s) "
                                f"{in_flight} in flight"
                            ),
                        ) from exc
                    if (
                        options.on_error == "retry"
                        and attempts[index] < policy.max_attempts
                    ):
                        attempts[index] += 1
                        if policy.delay:
                            time.sleep(policy.wait(attempts[index] - 1))
                        retry_task = policy.task_for_attempt(
                            task_list[index], attempts[index]
                        )
                        pending[
                            executor.submit(indexed, (index, retry_task))
                        ] = index
                        continue
                    failure = TaskFailure(
                        index=index,
                        task=task_list[index],
                        error=exc,
                        attempts=attempts[index],
                        context=_failure_context(exc),
                    )
                    if options.on_error == "raise":
                        saver.flush()
                        raise exc
                    failures[index] = failure
                if timeout is None:
                    continue
                # -- watchdog: the deadline clock starts when a future
                # is first *observed* running, so queued tasks waiting
                # for a worker are never miscounted as hung.
                now = time.monotonic()
                overdue = []
                for future in pending:
                    if future in running_since:
                        if now - running_since[future] > timeout:
                            overdue.append(future)
                    elif future.running():
                        running_since[future] = now
                if not overdue:
                    continue
                for future in overdue:
                    index = pending.pop(future)
                    if (
                        options.on_error == "retry"
                        and attempts[index] < policy.max_attempts
                    ):
                        attempts[index] += 1
                        queue.append(index)
                        continue
                    error: BaseException = TimeoutError(
                        f"task {index} exceeded task_timeout="
                        f"{timeout}s; its worker was killed"
                    )
                    if options.on_error == "raise":
                        saver.flush()
                        rebuild = True
                        raise wrap_task_error(
                            error,
                            index,
                            task_list[index],
                            action="task watchdog fired",
                        ) from error
                    failures[index] = TaskFailure(
                        index=index,
                        task=task_list[index],
                        error=error,
                        attempts=attempts[index],
                        kind="timeout",
                    )
                # Unfinished peers die with the killed pool; resubmit
                # them on the fresh one without charging an attempt.
                queue.extend(pending.values())
                pending.clear()
                rebuild = True
                break
        finally:
            if rebuild:
                _kill_pool(executor)
            else:
                executor.shutdown(wait=True)


def _sigterm_to_interrupt(signum, frame):  # pragma: no cover - signal path
    """SIGTERM handler: surface as KeyboardInterrupt for one cleanup."""
    raise KeyboardInterrupt(f"terminated by signal {signum}")


def _run_batch_resilient(
    worker: Callable,
    task_list: Sequence,
    options: "BatchOptions",
    resume_from: Optional[str],
) -> List:
    """The fault-tolerant :func:`run_batch` body.

    SIGINT and SIGTERM are graceful here: the completed-results
    checkpoint is flushed before the interrupt propagates, and — when
    a checkpoint path is configured — the re-raised interrupt names
    the ``resume_from=`` path that picks the campaign back up.
    (SIGTERM is mapped onto :class:`KeyboardInterrupt` for the
    duration of the batch; restored afterwards.  Only the main thread
    can install signal handlers — elsewhere SIGTERM keeps its default
    behaviour and only SIGINT is graceful.)
    """
    n_tasks = len(task_list)
    done: Dict[int, object] = {}
    if resume_from is not None:
        done = _load_checkpoint(resume_from, n_tasks)
    save_path = options.checkpoint_path or resume_from
    saver = _Checkpointer(save_path, n_tasks, done, options.checkpoint_every)
    restore = None
    try:
        restore = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:  # pragma: no cover - non-main thread
        restore = None
    try:
        return _run_batch_resilient_body(worker, task_list, options, done, saver)
    except KeyboardInterrupt as exc:
        saver.flush()
        if save_path is not None:
            raise KeyboardInterrupt(
                f"batch interrupted with {len(done)}/{n_tasks} results "
                f"checkpointed; resume with run_batch(..., "
                f"resume_from={save_path!r})"
            ) from exc
        raise
    finally:
        if restore is not None:
            signal.signal(signal.SIGTERM, restore)


def _run_batch_resilient_body(
    worker: Callable,
    task_list: Sequence,
    options: "BatchOptions",
    done: Dict[int, object],
    saver: _Checkpointer,
) -> List:
    n_tasks = len(task_list)
    policy = options.retry or RetryPolicy()
    failures: Dict[int, TaskFailure] = {}
    missing = [index for index in range(n_tasks) if index not in done]

    collective_failed = False
    if options.vectorized and missing:
        run_many = getattr(worker, "run_many", None)
        if run_many is not None:
            subset = [task_list[index] for index in missing]
            try:
                results = list(run_many(subset))
            except Exception:  # noqa: BLE001 — fall back per task
                collective_failed = True
            else:
                if len(results) != len(subset):
                    raise ConfigurationError(
                        f"run_many returned {len(results)} results for "
                        f"{len(subset)} tasks; one result per task is "
                        "required to keep campaigns aligned"
                    )
                for index, result in zip(missing, results):
                    done[index] = result
                    saver.tick()
                missing = []

    if missing and options.parallel and not collective_failed:
        _drain_resilient_pool(
            worker, task_list, missing, options, policy, done, failures, saver
        )
    else:
        for index in missing:
            result, failure = _attempt_task(
                worker, index, task_list[index], options, policy
            )
            if failure is None:
                done[index] = result
                saver.tick()
                continue
            if options.on_error == "raise":
                saver.flush()
                error = failure.error
                if isinstance(error, BatchTaskError):
                    raise error
                raise wrap_task_error(error, index, task_list[index]) from error
            failures[index] = failure
    saver.flush()
    return [
        done[index] if index in done else failures[index]
        for index in range(n_tasks)
    ]


def run_batch(
    worker: Callable[[T], R],
    tasks: Iterable[T],
    options: Optional[BatchOptions] = None,
    resume_from: Optional[str] = None,
) -> List[R]:
    """Apply ``worker`` to every task; results in task order.

    The sequential path is a plain loop — no pickling, closures and
    stateful workers welcome.  The parallel path requires picklable
    workers/tasks and is worthwhile only when tasks are expensive and
    cores are actually available.  ``batch_mode="vectorized"`` hands
    the whole list to the worker's ``run_many`` hook when it has one.

    A worker exception (anything but :class:`BatchTaskError` itself)
    is re-raised as :class:`~repro.errors.BatchTaskError` carrying the
    failing task's index.  In-process paths chain the original as
    ``__cause__``; in process mode the original exception lives in the
    worker, so it appears in the error message and the remote
    traceback instead of as a live ``__cause__`` object.  A
    *collective* failure of a vectorized ``run_many`` batch carries
    the first failing sample's index when the underlying error names
    one (``failed_samples``), else ``-1``.

    Fault tolerance — engaged when ``options.on_error`` is not
    ``"raise"``, a ``checkpoint_path`` is set, or ``resume_from`` is
    given; the plain path below is otherwise byte-for-byte the
    historical one:

    * failed tasks come back as :class:`~repro.errors.TaskFailure`
      records in their result slots (always falsy, so truthy results
      filter with ``[r for r in results if r]``), after
      ``options.retry`` attempts under ``on_error="retry"``;
    * completed results checkpoint to ``options.checkpoint_path``;
      ``resume_from=path`` loads a checkpoint and re-runs only tasks
      without a stored result (failures are never stored, so a resume
      re-attempts them) while continuing to checkpoint to the same
      file unless ``checkpoint_path`` overrides it;
    * a vectorized batch that fails *collectively* falls back to the
      per-task loop so individual failures are attributed;
    * a broken process pool flushes the checkpoint, then raises a
      :class:`~repro.errors.BatchTaskError` naming the in-flight
      tasks.
    """
    task_list = list(tasks)
    fault_tolerant = resume_from is not None or (
        options is not None
        and (
            options.on_error != "raise"
            or options.checkpoint_path is not None
            or options.task_timeout is not None
        )
    )
    if fault_tolerant:
        return _run_batch_resilient(
            worker, task_list, options or BatchOptions(), resume_from
        )
    if options is not None and options.vectorized:
        run_many = getattr(worker, "run_many", None)
        if run_many is not None:
            try:
                results = list(run_many(task_list))
            except BatchTaskError:
                raise
            except Exception as exc:
                raise _wrap_collective(exc, task_list) from exc
            if len(results) != len(task_list):
                raise ConfigurationError(
                    f"run_many returned {len(results)} results for "
                    f"{len(task_list)} tasks; one result per task is "
                    "required to keep campaigns aligned"
                )
            return results
    force_process = options is not None and options.batch_mode == "process"
    if (
        options is None
        or not options.parallel
        or (len(task_list) <= 1 and not force_process)
    ):
        results: List[R] = []
        for index, task in enumerate(task_list):
            try:
                results.append(worker(task))
            except BatchTaskError:
                raise
            except Exception as exc:
                raise wrap_task_error(exc, index, task) from exc
        return results
    with ProcessPoolExecutor(max_workers=options.resolved_max_workers()) as executor:
        iterator = executor.map(
            _IndexedWorker(worker),
            list(enumerate(task_list)),
            chunksize=options.chunksize,
        )
        return drain_ordered(iterator, task_list)


def run_chain(
    worker: Callable[[T, Optional[C]], Tuple[R, C]],
    tasks: Sequence[T],
    carry: Optional[C] = None,
) -> List[R]:
    """Warm-started sequential campaign.

    ``worker(task, carry)`` returns ``(result, next_carry)``; the carry
    of each call seeds the next one (first call receives ``carry``).
    This is the execution shape of continuation: a DC sweep starting
    every point from the previous solution, a corner ladder reusing
    the last bias point, a parameter stepper walking a turn-on curve.

    Unlike :func:`run_batch`, failures propagate *raw*: continuation
    callers (``dc_sweep``, warm-started Monte-Carlo) document typed
    errors like :class:`~repro.errors.ConvergenceError`, and the
    sequential traceback already identifies the failing point.
    """
    results: List[R] = []
    for task in tasks:
        result, carry = worker(task, carry)
        results.append(result)
    return results
