"""Batched execution of many independent simulations.

Every campaign-shaped workload in this library — Monte-Carlo sampling
over mismatch draws, FMEA fault injection, DC continuation sweeps,
process-corner benches — reduces to *one worker applied to a list of
tasks*.  This module is the single execution engine for that shape, so
scaling decisions (process parallelism, chunking, warm starts,
lockstep vectorization) are made in one place instead of being
reimplemented per campaign:

* :func:`run_batch` — independent tasks, scheduled by the
  :class:`BatchOptions` policy: sequential, fanned out over a
  ``concurrent.futures.ProcessPoolExecutor``, or — for workers that
  expose a vectorized ``run_many`` hook (see
  :func:`~repro.campaigns.vectorized.transient_worker`) — executed as
  one lockstep batch.  Results always come back in task order, so
  seeded campaigns stay reproducible no matter how they were
  scheduled.
* :func:`run_chain` — ordered tasks threaded through a *carry* (warm
  start): each worker call receives the previous call's carry, which
  is how continuation sweeps reuse the last operating point as the
  next initial guess.

A :func:`run_batch` worker exception is wrapped in
:class:`~repro.errors.BatchTaskError` carrying the failing task's
index (original exception chained as ``__cause__``), so a mid-campaign
failure identifies which task died no matter how the batch was
scheduled.  :func:`run_chain` deliberately propagates raw exceptions:
continuation chains back pre-existing typed-error contracts
(``dc_sweep`` documents :class:`~repro.errors.ConvergenceError`), and
a sequential chain's traceback already names its point.

Only the Python standard library is used here; the module sits below
every simulation layer so any of them can import it without cycles
(the vectorized transient front-end lives one module up, in
:mod:`repro.campaigns.vectorized`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

from ..errors import BatchTaskError, ConfigurationError

__all__ = ["BatchOptions", "run_batch", "run_chain"]

T = TypeVar("T")
R = TypeVar("R")
C = TypeVar("C")

_BATCH_MODES = ("auto", "sequential", "process", "vectorized")


@dataclass(frozen=True)
class BatchOptions:
    """Execution policy for :func:`run_batch`.

    Parameters
    ----------
    max_workers:
        ``None``, 0 or 1 run the batch sequentially in-process (the
        default — always correct, and on single-core containers also
        the fastest).  Larger values fan tasks out over that many
        worker processes; the worker and its tasks must then be
        picklable (module-level functions, no closures).  The string
        ``"auto"`` resolves to ``os.cpu_count()``.
    chunksize:
        Tasks submitted per inter-process message in parallel mode;
        raise it when individual tasks are much cheaper than a pickle
        round-trip.
    batch_mode:
        How the batch executes:

        * ``"auto"`` (default) — sequential unless ``max_workers``
          asks for processes (the historical behaviour).
        * ``"sequential"`` — force the in-process loop regardless of
          ``max_workers``.
        * ``"process"`` — force the process pool (``max_workers``
          defaults to ``"auto"`` if unset).
        * ``"vectorized"`` — lockstep execution: the whole task list
          is handed to the worker's ``run_many(tasks)`` hook (one
          stacked-array simulation instead of a Python loop — see
          :func:`~repro.campaigns.vectorized.transient_worker`).
          Workers without the hook fall back to the sequential loop,
          so the policy is always safe to request.
    """

    max_workers: Optional[Union[int, str]] = None
    chunksize: int = 1
    batch_mode: str = "auto"

    def __post_init__(self) -> None:
        if isinstance(self.max_workers, str):
            if self.max_workers != "auto":
                raise ConfigurationError(
                    f"max_workers must be an int, None or 'auto', "
                    f"got {self.max_workers!r}"
                )
        elif self.max_workers is not None and self.max_workers < 0:
            raise ConfigurationError("max_workers must be >= 0, None or 'auto'")
        if self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        if self.batch_mode not in _BATCH_MODES:
            raise ConfigurationError(
                f"batch_mode must be one of {_BATCH_MODES}, "
                f"got {self.batch_mode!r}"
            )
        if self.batch_mode == "process" and self.max_workers == 0:
            raise ConfigurationError(
                "batch_mode='process' forces a pool; max_workers=0 "
                "(sequential) contradicts it — use None, 'auto' or >= 1"
            )

    def resolved_max_workers(self) -> int:
        """The concrete worker count this policy asks for."""
        if self.max_workers == "auto":
            return os.cpu_count() or 1
        if self.max_workers is None:
            # "process" mode with no explicit count means "use the box".
            return (os.cpu_count() or 1) if self.batch_mode == "process" else 1
        return int(self.max_workers)

    @property
    def parallel(self) -> bool:
        if self.batch_mode in ("sequential", "vectorized"):
            return False
        if self.batch_mode == "process":
            # Forced: even a pool of one worker buys process isolation
            # (a crashing task kills a pool worker, not the campaign).
            return True
        return self.resolved_max_workers() > 1

    @property
    def vectorized(self) -> bool:
        return self.batch_mode == "vectorized"


def wrap_task_error(
    exc: BaseException,
    index: int,
    task: object,
    action: str = "batch worker failed",
) -> BatchTaskError:
    """Uniform :class:`BatchTaskError` construction for every path.

    One helper so the campaign layers (sequential loop, process
    drain, vectorized front-end) cannot drift in what they attach to
    a failure.
    """
    return BatchTaskError(
        f"{action} on task {index} ({task!r}): {exc}",
        index=index,
        task=task,
    )


class _IndexedWorker:
    """Picklable worker wrapper that attributes failures child-side.

    A chunked ``executor.map`` surfaces a failed chunk's exception at
    the chunk's *first* drain position, so parent-side attribution is
    wrong whenever ``chunksize > 1``.  Wrapping inside the worker
    process — where the true ``(index, task)`` is in hand — makes the
    :class:`BatchTaskError` exact; it pickles back through the pool
    intact and the drain loop passes it through unchanged.
    """

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, job):
        index, task = job
        try:
            return self.worker(task)
        except BatchTaskError:
            raise
        except Exception as exc:
            raise wrap_task_error(exc, index, task) from exc


def drain_ordered(
    iterator,
    tasks: Sequence,
    action: str = "batch worker failed",
) -> List:
    """Drain results in task order, wrapping failures with their index.

    The one drain loop shared by every executor-backed campaign path.
    Workers that can, wrap child-side (exact attribution even with
    ``chunksize > 1``); this parent-side wrap is the backstop for
    pool-level failures (pickling errors, a broken pool), where the
    index is the drain position the failure surfaced at.
    """
    results = []
    for index, task in enumerate(tasks):
        try:
            results.append(next(iterator))
        except BatchTaskError:
            raise
        except Exception as exc:
            raise wrap_task_error(exc, index, task, action) from exc
    return results


def _wrap_collective(exc: BaseException, tasks: Sequence) -> BatchTaskError:
    """Wrap a failure of a whole lockstep batch.

    A vectorized solve fails collectively; when the underlying error
    names its failing samples (the batched engine's ConvergenceError
    carries ``failed_samples``), the first one becomes the index.
    Otherwise the index is ``-1``: not attributable to a single task.
    """
    samples = getattr(exc, "failed_samples", None)
    # Duck-typed attribute: guard against numpy arrays, whose bare
    # truthiness raises for more than one element.
    index = int(samples[0]) if samples is not None and len(samples) else -1
    task = tasks[index] if 0 <= index < len(tasks) else None
    return wrap_task_error(exc, index, task, action="vectorized batch failed")


def run_batch(
    worker: Callable[[T], R],
    tasks: Iterable[T],
    options: Optional[BatchOptions] = None,
) -> List[R]:
    """Apply ``worker`` to every task; results in task order.

    The sequential path is a plain loop — no pickling, closures and
    stateful workers welcome.  The parallel path requires picklable
    workers/tasks and is worthwhile only when tasks are expensive and
    cores are actually available.  ``batch_mode="vectorized"`` hands
    the whole list to the worker's ``run_many`` hook when it has one.

    A worker exception (anything but :class:`BatchTaskError` itself)
    is re-raised as :class:`~repro.errors.BatchTaskError` carrying the
    failing task's index.  In-process paths chain the original as
    ``__cause__``; in process mode the original exception lives in the
    worker, so it appears in the error message and the remote
    traceback instead of as a live ``__cause__`` object.  A
    *collective* failure of a vectorized ``run_many`` batch carries
    the first failing sample's index when the underlying error names
    one (``failed_samples``), else ``-1``.
    """
    task_list = list(tasks)
    if options is not None and options.vectorized:
        run_many = getattr(worker, "run_many", None)
        if run_many is not None:
            try:
                results = list(run_many(task_list))
            except BatchTaskError:
                raise
            except Exception as exc:
                raise _wrap_collective(exc, task_list) from exc
            if len(results) != len(task_list):
                raise ConfigurationError(
                    f"run_many returned {len(results)} results for "
                    f"{len(task_list)} tasks; one result per task is "
                    "required to keep campaigns aligned"
                )
            return results
    force_process = options is not None and options.batch_mode == "process"
    if (
        options is None
        or not options.parallel
        or (len(task_list) <= 1 and not force_process)
    ):
        results: List[R] = []
        for index, task in enumerate(task_list):
            try:
                results.append(worker(task))
            except BatchTaskError:
                raise
            except Exception as exc:
                raise wrap_task_error(exc, index, task) from exc
        return results
    with ProcessPoolExecutor(max_workers=options.resolved_max_workers()) as executor:
        iterator = executor.map(
            _IndexedWorker(worker),
            list(enumerate(task_list)),
            chunksize=options.chunksize,
        )
        return drain_ordered(iterator, task_list)


def run_chain(
    worker: Callable[[T, Optional[C]], Tuple[R, C]],
    tasks: Sequence[T],
    carry: Optional[C] = None,
) -> List[R]:
    """Warm-started sequential campaign.

    ``worker(task, carry)`` returns ``(result, next_carry)``; the carry
    of each call seeds the next one (first call receives ``carry``).
    This is the execution shape of continuation: a DC sweep starting
    every point from the previous solution, a corner ladder reusing
    the last bias point, a parameter stepper walking a turn-on curve.

    Unlike :func:`run_batch`, failures propagate *raw*: continuation
    callers (``dc_sweep``, warm-started Monte-Carlo) document typed
    errors like :class:`~repro.errors.ConvergenceError`, and the
    sequential traceback already identifies the failing point.
    """
    results: List[R] = []
    for task in tasks:
        result, carry = worker(task, carry)
        results.append(result)
    return results
