"""repro — reproduction of Horsky, "LC Oscillator Driver for Safety
Critical Applications" (DATE 2005).

The package is organized as:

* :mod:`repro.core` — the paper's contribution (exponential PWL DAC,
  current-limited Gm driver, digital amplitude regulation, safety
  monitors, supply-loss tolerant output stage);
* :mod:`repro.circuits` — a SPICE-like MNA circuit simulator;
* :mod:`repro.envelope` — tank math, describing functions, envelope ODE;
* :mod:`repro.digital` — event kernel, watchdog, NVM, POR;
* :mod:`repro.mc` — mismatch and Monte-Carlo;
* :mod:`repro.faults` — FMEA fault catalog and campaign;
* :mod:`repro.campaigns` — shared batch-campaign engine (sequential,
  warm-started, or process-parallel execution of many runs);
* :mod:`repro.sensor` — the position-sensor application (Fig 9);
* :mod:`repro.analysis` — waveforms and measurements.

Quickstart::

    from repro import OscillatorConfig, OscillatorDriverSystem, RLCTank

    tank = RLCTank.from_frequency_and_q(4e6, quality_factor=30,
                                        inductance=1e-6)
    system = OscillatorDriverSystem(OscillatorConfig(tank=tank))
    trace = system.run(0.05)
    print(trace.final_amplitude, trace.final_code)
"""

from .analysis import Waveform
from .campaigns import BatchOptions, run_batch, run_chain
from .core import (
    ExponentialPWLDAC,
    FailureKind,
    HardwareDAC,
    OscillatorConfig,
    OscillatorDriverSystem,
    OscillatorNetlist,
    encode,
    multiplication_factor,
    run_supply_loss_sweep,
)
from .envelope import (
    EnvelopeModel,
    HardLimiter,
    InjectionLocking,
    LeesonModel,
    RLCTank,
    TanhLimiter,
)
from .errors import ReproError
from .faults import FaultCampaign, standard_fault_catalog
from .mc import MismatchProfile
from .sensor import DualCoSimulation, DualSystemScenario, PositionReceiver

__version__ = "1.0.0"

__all__ = [
    "Waveform",
    "BatchOptions",
    "run_batch",
    "run_chain",
    "ExponentialPWLDAC",
    "FailureKind",
    "HardwareDAC",
    "OscillatorConfig",
    "OscillatorDriverSystem",
    "OscillatorNetlist",
    "encode",
    "multiplication_factor",
    "run_supply_loss_sweep",
    "EnvelopeModel",
    "InjectionLocking",
    "LeesonModel",
    "HardLimiter",
    "RLCTank",
    "TanhLimiter",
    "ReproError",
    "FaultCampaign",
    "standard_fault_catalog",
    "MismatchProfile",
    "DualCoSimulation",
    "DualSystemScenario",
    "PositionReceiver",
    "__version__",
]
