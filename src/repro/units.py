"""Unit constants and small helpers used across the library.

The library works internally in SI units (volts, amperes, seconds,
henries, farads).  These constants make the code that mirrors the
paper's numbers read like the paper, e.g. ``12.5 * UA`` for the DAC
LSB or ``5 * MHZ`` for the top oscillation frequency.
"""

from __future__ import annotations

import math

__all__ = [
    "FEMTO", "PICO", "NANO", "MICRO", "MILLI", "KILO", "MEGA", "GIGA",
    "UA", "MA", "MV", "UV", "NH", "UH", "MH", "PF", "NF", "UF",
    "NS", "US", "MS", "KHZ", "MHZ",
    "TWO_PI",
    "db", "from_db", "parallel", "clamp",
]

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

# Currents / voltages
UA = MICRO
MA = MILLI
MV = MILLI
UV = MICRO

# Inductance / capacitance
NH = NANO
UH = MICRO
MH = MILLI
PF = PICO
NF = NANO
UF = MICRO

# Time / frequency
NS = NANO
US = MICRO
MS = MILLI
KHZ = KILO
MHZ = MEGA

TWO_PI = 2.0 * math.pi


def db(ratio: float) -> float:
    """Return ``20*log10(ratio)`` (voltage/current decibels)."""
    if ratio <= 0.0:
        raise ValueError("db() requires a positive ratio")
    return 20.0 * math.log10(ratio)


def from_db(value_db: float) -> float:
    """Inverse of :func:`db`."""
    return 10.0 ** (value_db / 20.0)


def parallel(*values: float) -> float:
    """Parallel combination of resistances (or series of capacitances).

    ``parallel(r1, r2, ...) = 1 / (1/r1 + 1/r2 + ...)``.  Any value of
    ``inf`` is ignored (an open branch); a value of zero short-circuits
    the result to zero.
    """
    if not values:
        raise ValueError("parallel() requires at least one value")
    conductance = 0.0
    for value in values:
        if value == 0.0:
            return 0.0
        if math.isinf(value):
            continue
        conductance += 1.0 / value
    if conductance == 0.0:
        return math.inf
    return 1.0 / conductance


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp(): low ({low}) > high ({high})")
    return max(low, min(high, value))
