"""Layout-area budget of the realized oscillator (§9, Fig 12).

The die photo (Fig 12) cannot be reproduced computationally, but its
quantitative content can: "Layout area of the driver is 0.22 mm2 and
area of the full oscillator including all detection blocks and 2 bond
pads and ESD protections is 0.40 mm2."  This module keeps an auditable
block-level budget that must sum to the published totals — the kind of
floorplan bookkeeping the original project would have tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ConfigurationError
from .constants import LAYOUT_AREA_DRIVER_MM2, LAYOUT_AREA_FULL_MM2

__all__ = ["AreaBudget", "default_area_budget"]


@dataclass
class AreaBudget:
    """Block-level area bookkeeping in mm^2."""

    blocks: Dict[str, float] = field(default_factory=dict)
    #: Names of the blocks making up the "driver" subtotal of §9.
    driver_blocks: Tuple[str, ...] = ()

    def add(self, name: str, area_mm2: float, driver: bool = False) -> None:
        if area_mm2 <= 0:
            raise ConfigurationError(f"{name}: area must be positive")
        if name in self.blocks:
            raise ConfigurationError(f"duplicate block {name!r}")
        self.blocks[name] = float(area_mm2)
        if driver:
            self.driver_blocks = self.driver_blocks + (name,)

    @property
    def total(self) -> float:
        return sum(self.blocks.values())

    @property
    def driver_total(self) -> float:
        return sum(self.blocks[name] for name in self.driver_blocks)

    def fraction(self, name: str) -> float:
        try:
            return self.blocks[name] / self.total
        except KeyError:
            raise ConfigurationError(f"unknown block {name!r}") from None

    def check_against_paper(
        self, tolerance: float = 0.02
    ) -> Tuple[bool, str]:
        """Compare the budget against the published §9 numbers."""
        driver_err = abs(self.driver_total - LAYOUT_AREA_DRIVER_MM2)
        full_err = abs(self.total - LAYOUT_AREA_FULL_MM2)
        ok = driver_err <= tolerance and full_err <= tolerance
        message = (
            f"driver {self.driver_total:.3f} mm2 (paper "
            f"{LAYOUT_AREA_DRIVER_MM2}), full {self.total:.3f} mm2 "
            f"(paper {LAYOUT_AREA_FULL_MM2})"
        )
        return ok, message


def default_area_budget() -> AreaBudget:
    """A block split consistent with the Fig 12 die photo annotations.

    The driver (output stages, mirrors, prescaler, Gm blocks) accounts
    for 0.22 mm^2; detection (amplitude/asymmetry/clock comparators and
    filters), the digital loop, two bond pads and their ESD structures
    bring the oscillator to 0.40 mm^2.  The per-block numbers are
    estimates consistent with the published subtotals — only the two
    subtotals are measured facts.
    """
    budget = AreaBudget()
    budget.add("output-stages", 0.085, driver=True)
    budget.add("current-mirrors", 0.065, driver=True)
    budget.add("prescaler", 0.020, driver=True)
    budget.add("gm-blocks", 0.050, driver=True)
    budget.add("amplitude-detection", 0.045)
    budget.add("asymmetry-detection", 0.025)
    budget.add("clock-comparator-watchdog", 0.020)
    budget.add("digital-regulation", 0.030)
    budget.add("bond-pads-esd", 0.060)
    return budget
