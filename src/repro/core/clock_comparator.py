"""Fast clock comparator (paper §7, "Missing oscillations").

"A fast comparator is connected between the pins LC1 and LC2 to create
a clock signal.  A missing clock is detected by a time-out circuit."

This model extracts clock edges from a carrier-resolution differential
waveform (offset + hysteresis included) and feeds them to the
:class:`~repro.digital.watchdog.WatchdogTimer` — the carrier-level
companion of the behavioural amplitude check used by
:class:`~repro.core.safety.SafetyMonitors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.waveform import Waveform
from ..digital.watchdog import WatchdogTimer
from ..errors import ConfigurationError

__all__ = ["ClockComparator", "supervise_waveform"]


@dataclass(frozen=True)
class ClockComparator:
    """Hysteresis comparator across LC1/LC2.

    Parameters
    ----------
    hysteresis:
        Total hysteresis width; the output toggles high above
        ``+hysteresis/2`` and low below ``-hysteresis/2``.  This sets
        the minimum oscillation amplitude that still produces a clock —
        the comparator's sensitivity in the safety concept.
    offset:
        Input-referred offset voltage.
    """

    hysteresis: float = 0.05
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis <= 0:
            raise ConfigurationError("hysteresis must be positive")

    @property
    def minimum_amplitude(self) -> float:
        """Smallest differential peak that still toggles the clock."""
        return 0.5 * self.hysteresis + abs(self.offset)

    def rising_edges(self, differential: Waveform) -> np.ndarray:
        """Times of rising clock edges extracted from the waveform."""
        high = self.offset + 0.5 * self.hysteresis
        low = self.offset - 0.5 * self.hysteresis
        y = differential.y
        t = differential.t
        edges: List[float] = []
        state = y[0] > high
        for i in range(1, len(y)):
            if not state and y[i] > high:
                # Interpolate the crossing of the upper threshold.
                frac = (high - y[i - 1]) / (y[i] - y[i - 1])
                edges.append(float(t[i - 1] + frac * (t[i] - t[i - 1])))
                state = True
            elif state and y[i] < low:
                state = False
        return np.asarray(edges)

    def clock_frequency(self, differential: Waveform) -> float:
        """Average clock frequency (0.0 if fewer than 2 edges)."""
        edges = self.rising_edges(differential)
        if edges.size < 2:
            return 0.0
        return float(1.0 / np.mean(np.diff(edges)))


def supervise_waveform(
    differential: Waveform,
    comparator: ClockComparator,
    watchdog: WatchdogTimer,
) -> bool:
    """Run the §7 missing-oscillation supervision over a waveform.

    Arms the watchdog at the start of the record, kicks it on every
    clock edge, and evaluates expiry at every sample time.  Returns
    ``True`` when a missing-clock failure latched.
    """
    watchdog.arm(differential.t_start)
    edges = list(comparator.rising_edges(differential))
    edge_index = 0
    for t in differential.t:
        while edge_index < len(edges) and edges[edge_index] <= t:
            watchdog.kick(edges[edge_index])
            edge_index += 1
        if watchdog.expired(float(t)):
            return True
    return watchdog.expired(differential.t_stop)
