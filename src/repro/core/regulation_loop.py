"""Digital amplitude-regulation state machine (§4).

Every regulation period (1 ms in the paper) the current-limitation
code moves by +1, -1 or stays, depending on the window comparator.
Because the window is wider than the largest relative DAC step the
loop cannot jump across the window and limit-cycle; it also tolerates
a non-monotonic DAC (the ±1 stepping eventually walks through any
local reversal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError
from .constants import MAX_CODE, REGULATION_PERIOD
from .window_comparator import ComparatorState, WindowComparator

__all__ = ["RegulationAction", "RegulationEvent", "RegulationLoop"]


class RegulationAction(enum.Enum):
    """Decision taken at a regulation tick."""

    UP = "up"
    DOWN = "down"
    HOLD = "hold"


@dataclass(frozen=True)
class RegulationEvent:
    """One tick of the loop (for traceability / Fig 15 analysis)."""

    time: float
    detector_voltage: float
    comparator: ComparatorState
    action: RegulationAction
    code_before: int
    code_after: int


@dataclass
class RegulationLoop:
    """The ±1/hold code regulator.

    Parameters
    ----------
    comparator:
        The amplitude window (detector-output volts).
    initial_code:
        Starting current-limitation code.
    min_code / max_code:
        Clamping range of the code counter.
    period:
        Tick period (informational; stepping is driven externally).
    """

    comparator: WindowComparator
    initial_code: int
    min_code: int = 0
    max_code: int = MAX_CODE
    period: float = REGULATION_PERIOD
    enabled: bool = True
    history: List[RegulationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.min_code <= self.max_code <= MAX_CODE:
            raise ConfigurationError("invalid code clamp range")
        if not self.min_code <= self.initial_code <= self.max_code:
            raise ConfigurationError("initial code outside clamp range")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        self._code = int(self.initial_code)

    @property
    def code(self) -> int:
        """Current current-limitation code."""
        return self._code

    def set_code(self, code: int) -> None:
        """Force the code (POR preset, NVM load, safety override)."""
        if not self.min_code <= code <= self.max_code:
            raise ConfigurationError(
                f"code {code} outside {self.min_code}..{self.max_code}"
            )
        self._code = int(code)

    def tick(self, time: float, detector_voltage: float) -> RegulationEvent:
        """One regulation period: compare and step the code.

        Low amplitude -> more current (code up); high amplitude ->
        less current (code down); inside the window -> hold.
        """
        state = self.comparator.compare(detector_voltage)
        before = self._code
        if not self.enabled:
            action = RegulationAction.HOLD
        elif state is ComparatorState.BELOW:
            action = RegulationAction.UP
            self._code = min(self._code + 1, self.max_code)
        elif state is ComparatorState.ABOVE:
            action = RegulationAction.DOWN
            self._code = max(self._code - 1, self.min_code)
        else:
            action = RegulationAction.HOLD
        event = RegulationEvent(
            time=time,
            detector_voltage=detector_voltage,
            comparator=state,
            action=action,
            code_before=before,
            code_after=self._code,
        )
        self.history.append(event)
        return event

    # -- analysis helpers ------------------------------------------------------

    def steps_taken(self) -> int:
        """Number of ticks whose action changed the code."""
        return sum(
            1 for e in self.history if e.action is not RegulationAction.HOLD
        )

    def settled_at(self, consecutive_holds: int = 3) -> Optional[float]:
        """Time of the first tick opening a run of N holds to the end."""
        if consecutive_holds <= 0:
            raise ConfigurationError("consecutive_holds must be positive")
        run = 0
        start: Optional[float] = None
        for event in self.history:
            if event.action is RegulationAction.HOLD:
                if run == 0:
                    start = event.time
                run += 1
            else:
                run = 0
                start = None
        if run >= consecutive_holds:
            return start
        return None

    def is_limit_cycling(self, window: int = 8, min_changes: int = 6) -> bool:
        """Heuristic: many code changes among the last ``window`` ticks."""
        tail = self.history[-window:]
        if len(tail) < window:
            return False
        changes = sum(1 for e in tail if e.action is not RegulationAction.HOLD)
        return changes >= min_changes
