"""The paper's design equations (Eq 1–6) in executable form.

Conventions (derived for the Fig 1 topology, see DESIGN.md §3):

* the driver is modelled as one lumped differential transconductor
  across the tank; the classical two-stage cross-coupled pair with
  per-stage transconductance ``Gm_stage`` presents a lumped
  ``Gm = Gm_stage / 2`` (negative resistance ``-2/Gm_stage``);
* oscillation condition (Eq 1):  lumped ``Gm >= 1/Rp`` with
  ``Rp = 2 L / (C Rs)``, equivalently ``Gm_stage >= 2/Rp = Rs C / L``;
* steady-state RMS amplitude (Eq 4): ``V = k * Rp * IM`` with
  ``k = 2 sqrt(2) / pi ≈ 0.90`` for a hard-limited driver — the
  paper's ``V = 2 k IM / Gm0``;
* amplitude step (Eq 5): ``dV/V = dIM/IM`` — a *relative* current step
  gives the same relative voltage step;
* exponential code law (Eq 6): ``I_n = I0 (1+delta)^n``.
"""

from __future__ import annotations

import math
from typing import List

from ..envelope.describing import K_SQUARE_WAVE
from ..envelope.tank import RLCTank
from ..errors import ConfigurationError
from .segments import multiplication_factor

__all__ = [
    "critical_gm_lumped",
    "critical_gm_stage",
    "oscillation_condition_met",
    "steady_state_rms",
    "steady_state_peak",
    "current_limit_for_rms",
    "relative_voltage_step",
    "exponential_current_law",
    "delta_for_range",
    "pwl_approximation_error",
]


def critical_gm_lumped(tank: RLCTank) -> float:
    """Eq 1 (lumped form): minimum differential transconductance ``1/Rp``."""
    return 1.0 / tank.parallel_resistance


def critical_gm_stage(tank: RLCTank) -> float:
    """Eq 1 (per-stage form): ``2/Rp = Rs C / L`` for the cross-coupled pair."""
    return 2.0 / tank.parallel_resistance


def oscillation_condition_met(tank: RLCTank, gm_lumped: float, margin: float = 1.0) -> bool:
    """Whether oscillations build up, with an optional gm margin factor."""
    if margin <= 0:
        raise ConfigurationError("margin must be positive")
    return gm_lumped >= margin * critical_gm_lumped(tank)


def steady_state_rms(tank: RLCTank, i_max: float, k: float = K_SQUARE_WAVE) -> float:
    """Eq 4: RMS differential amplitude ``V = k * Rp * IM``."""
    if i_max < 0:
        raise ConfigurationError("i_max must be non-negative")
    if not 0 < k <= 4.0 / math.pi:
        raise ConfigurationError("k out of physical range")
    return k * tank.parallel_resistance * i_max


def steady_state_peak(tank: RLCTank, i_max: float, k: float = K_SQUARE_WAVE) -> float:
    """Peak differential amplitude, ``sqrt(2)`` times the RMS value."""
    return math.sqrt(2.0) * steady_state_rms(tank, i_max, k=k)


def current_limit_for_rms(tank: RLCTank, v_rms: float, k: float = K_SQUARE_WAVE) -> float:
    """Invert Eq 4: the IM needed for a target RMS amplitude."""
    if v_rms < 0:
        raise ConfigurationError("v_rms must be non-negative")
    return v_rms / (k * tank.parallel_resistance)


def relative_voltage_step(relative_current_step: float) -> float:
    """Eq 5: ``dV/V = dIM/IM`` (amplitude tracks the current limit)."""
    return relative_current_step


def exponential_current_law(i0: float, delta: float, n: int) -> float:
    """Eq 6: ``I_n = I0 * (1 + delta)^n``."""
    if i0 <= 0:
        raise ConfigurationError("i0 must be positive")
    if delta <= -1.0:
        raise ConfigurationError("delta must be > -1")
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    return i0 * (1.0 + delta) ** n


def delta_for_range(span: float, n_steps: int) -> float:
    """The per-code delta needed to cover a current span in n steps.

    ``(1+delta)^n = span`` — e.g. covering 16:1984 (=124x) in 111 codes
    needs delta ≈ 4.44 %, inside the paper's 3.23–6.25 % PWL band.
    """
    if span <= 1.0:
        raise ConfigurationError("span must exceed 1")
    if n_steps <= 0:
        raise ConfigurationError("n_steps must be positive")
    return span ** (1.0 / n_steps) - 1.0


def pwl_approximation_error(start_code: int = 16) -> List[float]:
    """Relative deviation of the PWL law from the best-fit exponential.

    Fits ``I0 (1+delta)^n`` through the factors at ``start_code`` and
    127, then reports ``M_pwl(n)/M_exp(n) - 1`` for every code in
    between.  Quantifies how good the mu-law-style approximation is
    (stays within about ±6 %).
    """
    m_start = multiplication_factor(start_code)
    m_end = multiplication_factor(127)
    n_steps = 127 - start_code
    delta = (m_end / m_start) ** (1.0 / n_steps) - 1.0
    errors = []
    for code in range(start_code, 128):
        ideal = m_start * (1.0 + delta) ** (code - start_code)
        errors.append(multiplication_factor(code) / ideal - 1.0)
    return errors
