"""Oscillator Gm output block (Fig 7, Table 1).

Five transconductance stages (Gm, Gm, Gm, 2Gm, 4Gm) work in parallel;
stage 0 is always active and stages 1..4 are enabled by ``OscE<3:0>``.
Enabling a stage also routes the corresponding fixed mirror current
(16/16/32/64 units) to the output — both functions are integrated in
one block on silicon, which this model mirrors.

The *speed* requirement of §5 ("the driver must be much faster than the
oscillation frequency") translates here into the total small-signal
transconductance: more stages => more gm => faster limiting edges.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import CodingError
from ..mc.mismatch import MismatchProfile

__all__ = ["GmBlock", "GM_STAGE_WEIGHTS"]

#: Relative strength of the five parallel output stages (Fig 7).
GM_STAGE_WEIGHTS: Tuple[int, ...] = (1, 1, 1, 2, 4)


class GmBlock:
    """Parallel Gm output stages with optional per-stage mismatch."""

    def __init__(self, gm_unit: float, mismatch: Optional[MismatchProfile] = None):
        if gm_unit <= 0:
            raise CodingError("unit transconductance must be positive")
        self.gm_unit = float(gm_unit)
        self.mismatch = mismatch if mismatch is not None else MismatchProfile.ideal()

    @staticmethod
    def active_stage_weight(osc_e: int) -> int:
        """Nominal total relative Gm (Table 1 'Active Gm stages')."""
        if not 0 <= osc_e <= 0b1111:
            raise CodingError(f"OscE {osc_e:#06b} outside 4 bits")
        total = GM_STAGE_WEIGHTS[0]
        for bit in range(4):
            if osc_e & (1 << bit):
                total += GM_STAGE_WEIGHTS[bit + 1]
        return total

    def transconductance(self, osc_e: int) -> float:
        """Realized total transconductance for an OscE code."""
        if not 0 <= osc_e <= 0b1111:
            raise CodingError(f"OscE {osc_e:#06b} outside 4 bits")
        return self.gm_unit * self.mismatch.gm_gain(osc_e)
