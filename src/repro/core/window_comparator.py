"""Window comparator for amplitude regulation (Fig 8, §4).

The rectified-and-filtered amplitude is compared against two reference
voltages (VR3, VR4 in the paper, derived from the bandgap).  A window
comparator — rather than a single threshold — minimizes the number of
current-limitation changes in steady state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from .constants import MAX_RELATIVE_STEP

__all__ = ["ComparatorState", "WindowComparator", "design_window"]


class ComparatorState(enum.Enum):
    """Output of the window comparator."""

    BELOW = "below"
    INSIDE = "inside"
    ABOVE = "above"


@dataclass(frozen=True)
class WindowComparator:
    """Two-threshold comparator; thresholds in detector-output volts."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ConfigurationError("window low threshold must be positive")
        if self.high <= self.low:
            raise ConfigurationError("window high must exceed low")

    @property
    def center(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def relative_width(self) -> float:
        """Window width relative to its center."""
        return (self.high - self.low) / self.center

    def compare(self, value: float) -> ComparatorState:
        if value < self.low:
            return ComparatorState.BELOW
        if value > self.high:
            return ComparatorState.ABOVE
        return ComparatorState.INSIDE

    def is_wider_than_step(self, max_relative_step: float = MAX_RELATIVE_STEP) -> bool:
        """§4 design rule: the window must exceed the largest DAC step.

        Otherwise a single ±1 code step could jump across the window
        and the loop would limit-cycle.
        """
        return self.relative_width > max_relative_step


def design_window(
    target: float,
    max_relative_step: float = MAX_RELATIVE_STEP,
    margin: float = 1.3,
) -> WindowComparator:
    """Build a window centred on ``target``, wider than the max step.

    ``margin`` > 1 scales the window beyond the strict minimum; the
    default gives a window of ~8.1 % for the 6.25 % worst-case step.
    """
    if target <= 0:
        raise ConfigurationError("target must be positive")
    if margin <= 1.0:
        raise ConfigurationError("margin must exceed 1 (window must beat the step)")
    half = 0.5 * margin * max_relative_step * target
    return WindowComparator(low=target - half, high=target + half)
