"""Output driver topologies and the supply-loss experiments (§8).

Three driver cells are modelled as transistor-level netlists:

* ``fig10a`` — the standard CMOS push-pull: its intrinsic bulk diodes
  load the live system when this system's supply floats;
* ``fig10b`` — a series PMOS (MP1d) blocks the positive path and lets
  the pin go negative, but costs output voltage range when powered;
* ``fig11``  — the paper's bulk-switched driver: MN5/MN3 tie the NMOS
  bulk and gate to the pin for negative excursions, MP3 lifts the PMOS
  gate to cancel the positive path, so the floating system draws only
  microamp-to-sub-mA resistive currents (Fig 17) while the floating
  Vdd is gently pumped by the MP1 bulk diode (Fig 18).

The experiment (Fig 17/18): both pins of the *unsupplied* chip are
driven differentially (LC1 = +V/2, LC2 = -V/2, the live system's
tank voltage), the DC current through the pins and the voltages on
LC1/LC2/Vdd are recorded while Vdd floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..circuits import Circuit, MosfetParams, NewtonOptions, dc_sweep, solve_dc
from ..circuits.corners import TYPICAL, ProcessCorner
from ..errors import ConfigurationError

__all__ = [
    "TOPOLOGIES",
    "build_supply_loss_testbench",
    "SupplyLossResult",
    "run_supply_loss_sweep",
    "powered_output_low_voltage",
]

#: 0.35 um-flavoured device cards for the I3T80-like output devices.
NMOS_OUT = MosfetParams(polarity=+1, beta=8e-3, vt0=0.55, lam=0.02, i_sat_body=1e-13)
PMOS_OUT = MosfetParams(polarity=-1, beta=4e-3, vt0=0.65, lam=0.02, i_sat_body=1e-13)

#: Gate/bulk network resistors of the Fig 11 cell and the lumped load
#: the rest of the (unpowered) chip presents on Vdd.
R_NG1 = 5e3
R_NG2 = 10e3
R_NG6 = 50e3
R_VDD_LOAD = 2.5e3
#: Impedance of the live system's tank driving the dead chip's pins.
R_SOURCE = 10.0

TOPOLOGIES = ("fig10a", "fig10b", "fig11")


def _add_fig10a_cell(circuit: Circuit, pin: str, prefix: str, nmos: MosfetParams, pmos: MosfetParams) -> None:
    """Standard CMOS driver: bulk diodes directly on the pin."""
    circuit.mosfet(f"{prefix}MP1", pin, "vdd", "vdd", "vdd", pmos)
    circuit.mosfet(f"{prefix}MN1", pin, "0", "0", "0", nmos)


def _add_fig10b_cell(circuit: Circuit, pin: str, prefix: str, nmos: MosfetParams, pmos: MosfetParams) -> None:
    """Series-PMOS driver (Fig 10b): the pin may go negative.

    MP1d (a PMOS with its well at Vdd) sits in the pull-down branch
    between the pin and MN1.  For negative pin excursions MP1d's
    channel and junctions are off, so — unlike Fig 10a — no current
    flows; the price is that the powered driver cannot pull the pin
    below roughly ``|Vt_p|`` ("voltage needed to open MP1d").  The
    positive path (MP1 channel and bulk diode) still loads the live
    system.
    """
    internal = f"{prefix}y"
    circuit.mosfet(f"{prefix}MP1", pin, "vdd", "vdd", "vdd", pmos)
    circuit.mosfet(f"{prefix}MP1d", internal, "0", pin, "vdd", pmos)
    circuit.mosfet(f"{prefix}MN1", internal, "0", "0", "0", nmos)


def _add_fig11_cell(circuit: Circuit, pin: str, prefix: str, nmos: MosfetParams, pmos: MosfetParams) -> None:
    """The paper's bulk-switched output driver (Fig 11, simplified).

    Keeps the components that set the DC supply-loss behaviour: MP1,
    MN1 (switched bulk), MN3/MN5 (negative-excursion bulk/gate tie),
    MN6 (powered bulk short), MP3 (positive-path cancellation), and
    the R1/R2 gate network.
    """
    ng1 = f"{prefix}ng1"
    ng2 = f"{prefix}ng2"
    ng6 = f"{prefix}ng6"
    m6 = f"{prefix}m6"
    nbulk = f"{prefix}nbulk"
    circuit.mosfet(f"{prefix}MP1", pin, ng2, "vdd", "vdd", pmos)
    circuit.mosfet(f"{prefix}MN1", pin, ng1, "0", nbulk, nmos)
    circuit.mosfet(f"{prefix}MN3", ng1, "0", pin, nbulk, nmos)
    circuit.mosfet(f"{prefix}MN5", nbulk, "0", pin, nbulk, nmos)
    # MN6 shorts Nbulk to ground when powered.  Its gate is driven by
    # the MP6 stack: "without supply, the voltage on Vdd is lower than
    # 2 PMOS Vt needed to switch on MP6; MN6 is also off" — so a
    # bulk-diode-pumped Vdd (~0.9 V) cannot enable MN6.
    circuit.mosfet(f"{prefix}MP6a", m6, m6, "vdd", "vdd", pmos)
    circuit.mosfet(f"{prefix}MP6b", ng6, ng6, m6, "vdd", pmos)
    circuit.resistor(f"{prefix}R3", ng6, "0", R_NG6)
    circuit.mosfet(f"{prefix}MN6", nbulk, ng6, "0", nbulk, nmos)
    # MN4 ties MN6's gate to the pin during negative excursions so the
    # Nbulk-to-ground switch cannot self-turn-on (gate at 0 V, source
    # dragged negative) — same trick MN3 plays for MN1's gate.
    circuit.mosfet(f"{prefix}MN4", ng6, "0", pin, nbulk, nmos)
    circuit.mosfet(f"{prefix}MP3", ng2, "vdd", pin, "vdd", pmos)
    circuit.resistor(f"{prefix}R1", ng1, "0", R_NG1)
    # The PMOS gate defaults to Vdd (off); the powered pre-driver pulls
    # it low through a path not needed for the supply-loss experiment.
    circuit.resistor(f"{prefix}R2", ng2, "vdd", R_NG2)


_CELL_BUILDERS = {
    "fig10a": _add_fig10a_cell,
    "fig10b": _add_fig10b_cell,
    "fig11": _add_fig11_cell,
}


def build_supply_loss_testbench(
    topology: str, corner: ProcessCorner = TYPICAL
) -> Circuit:
    """Two driver cells (LC1, LC2) with floating Vdd, driven at ±V/2.

    The differential stimulus is the source ``Vdiff``; VCVS halves
    generate LC1 = +V/2 and LC2 = -V/2.  The pin currents are the
    branch currents of the ``Elc1``/``Elc2`` sources (positive =
    current flowing *into* the chip pin).
    """
    if topology not in _CELL_BUILDERS:
        raise ConfigurationError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
        )
    circuit = Circuit(f"supply-loss-{topology}")
    circuit.voltage_source("Vdiff", "vd", "0", 0.0)
    circuit.vcvs("Elc1", "lc1s", "0", "vd", "0", +0.5)
    circuit.vcvs("Elc2", "lc2s", "0", "vd", "0", -0.5)
    # The live system drives the pins through its tank; a small source
    # impedance keeps hard-diode currents physical.
    circuit.resistor("Rsrc1", "lc1s", "lc1", R_SOURCE)
    circuit.resistor("Rsrc2", "lc2s", "lc2", R_SOURCE)
    # Floating Vdd: only the (off) chip load holds it.
    circuit.resistor("Rvddload", "vdd", "0", R_VDD_LOAD)
    nmos = corner.scale(NMOS_OUT)
    pmos = corner.scale(PMOS_OUT)
    build_cell = _CELL_BUILDERS[topology]
    build_cell(circuit, "lc1", "a_", nmos, pmos)
    build_cell(circuit, "lc2", "b_", nmos, pmos)
    return circuit


@dataclass
class SupplyLossResult:
    """Traces of the Fig 17/18 DC sweep."""

    topology: str
    v_diff: np.ndarray
    i_lc1: np.ndarray
    v_lc1: np.ndarray
    v_lc2: np.ndarray
    v_vdd: np.ndarray

    def max_loading_current(self) -> float:
        """Worst-case |pin current| over the sweep."""
        return float(np.max(np.abs(self.i_lc1)))

    def current_at(self, v: float) -> float:
        return float(np.interp(v, self.v_diff, self.i_lc1))

    def vdd_at(self, v: float) -> float:
        return float(np.interp(v, self.v_diff, self.v_vdd))


def run_supply_loss_sweep(
    topology: str,
    v_max: float = 3.0,
    n_points: int = 121,
    corner: ProcessCorner = TYPICAL,
) -> SupplyLossResult:
    """Reproduce Fig 17/18 for one topology.

    Sweeps the differential pin voltage over ``[-v_max, +v_max]`` with
    the chip's Vdd floating and records pin current and node voltages.
    """
    if v_max <= 0:
        raise ConfigurationError("v_max must be positive")
    if n_points < 3:
        raise ConfigurationError("need at least 3 sweep points")
    circuit = build_supply_loss_testbench(topology, corner=corner)
    values = np.linspace(-v_max, v_max, n_points)
    # Branch current of Elc1 is positive when flowing out of lc1 into
    # the VCVS; the current into the chip pin is its negation.
    result = dc_sweep(
        circuit,
        "Vdiff",
        values,
        probes={
            "i_lc1": lambda op: -op.branch_current("Elc1"),
            "v_lc1": lambda op: op.voltage("lc1"),
            "v_lc2": lambda op: op.voltage("lc2"),
            "v_vdd": lambda op: op.voltage("vdd"),
        },
        options=NewtonOptions(max_step=0.3),
    )
    return SupplyLossResult(
        topology=topology,
        v_diff=result.values,
        i_lc1=result.trace("i_lc1"),
        v_lc1=result.trace("v_lc1"),
        v_lc2=result.trace("v_lc2"),
        v_vdd=result.trace("v_vdd"),
    )


def powered_output_low_voltage(
    topology: str,
    vdd: float = 3.3,
    load_resistance: float = 10e3,
) -> float:
    """Output voltage-range check of §8 (powered mode, pull-down).

    Drives the pull-down path fully on against a resistive load to Vdd
    and returns the reached pin voltage.  Fig 10a and Fig 11 pull to
    within millivolts of ground; Fig 10b stalls roughly a PMOS
    threshold above ground because MP1d needs ``|Vgs| > |Vt_p|`` to
    conduct — the paper's "voltage range of the driver is limited".
    """
    if topology not in _CELL_BUILDERS:
        raise ConfigurationError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
        )
    if vdd <= 0 or load_resistance <= 0:
        raise ConfigurationError("vdd and load_resistance must be positive")
    circuit = Circuit(f"powered-range-{topology}")
    circuit.voltage_source("Vdd", "vdd", "0", vdd)
    circuit.resistor("Rload", "vdd", "pin", load_resistance)
    if topology == "fig10b":
        # Pull-down path: pin -> MP1d (gate at 0, fully driven) -> MN1.
        circuit.mosfet("MP1d", "y", "0", "pin", "vdd", PMOS_OUT)
        circuit.mosfet("MN1", "y", "vdd", "0", "0", NMOS_OUT)
    else:  # fig10a and fig11 pull down directly through MN1.
        circuit.mosfet("MN1", "pin", "vdd", "0", "0", NMOS_OUT)
    op = solve_dc(circuit)
    return op.voltage("pin")
