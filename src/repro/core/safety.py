"""Safety monitors and failure reaction (§7, §9).

Three on-chip detections are modelled:

* **missing oscillations** — a fast comparator across LC1/LC2 makes a
  clock; a watchdog flags when no edge arrives within the timeout;
* **low amplitude** — the detector output stays below a fraction of
  the regulation target for several regulation periods;
* **asymmetry** — the synchronously-rectified mid-point ripple exceeds
  a threshold (failed Cosc1/Cosc2).

Reaction (§9): "If low amplitude or missing oscillations are detected,
the oscillator driver is set to maximum output current and outputs of
the complete system are set to safe values."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..digital.watchdog import WatchdogTimer
from ..errors import ConfigurationError
from .amplitude_detector import AsymmetryDetector
from .constants import MAX_CODE

__all__ = ["FailureKind", "SafetyConfig", "SafetyMonitors", "SafetyReaction"]


class FailureKind(enum.Enum):
    MISSING_OSCILLATION = "missing-oscillation"
    LOW_AMPLITUDE = "low-amplitude"
    ASYMMETRY = "asymmetry"


@dataclass(frozen=True)
class SafetyConfig:
    """Thresholds of the three monitors.

    Attributes
    ----------
    clock_min_amplitude:
        Minimum peak differential amplitude for the fast comparator to
        produce a clock (its input offset/sensitivity).
    watchdog_timeout:
        Missing-clock timeout.
    low_amplitude_fraction:
        Low-amplitude threshold as a fraction of the regulation target.
    low_amplitude_ticks:
        Consecutive regulation ticks below threshold before latching.
    asymmetry_threshold:
        Detector-output volts of rectified mid-point ripple.
    """

    clock_min_amplitude: float = 0.05
    watchdog_timeout: float = 20e-6
    low_amplitude_fraction: float = 0.5
    low_amplitude_ticks: int = 3
    asymmetry_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.clock_min_amplitude <= 0:
            raise ConfigurationError("clock_min_amplitude must be positive")
        if self.watchdog_timeout <= 0:
            raise ConfigurationError("watchdog_timeout must be positive")
        if not 0 < self.low_amplitude_fraction < 1:
            raise ConfigurationError("low_amplitude_fraction must be in (0,1)")
        if self.low_amplitude_ticks < 1:
            raise ConfigurationError("low_amplitude_ticks must be >= 1")
        if self.asymmetry_threshold <= 0:
            raise ConfigurationError("asymmetry_threshold must be positive")


@dataclass
class SafetyReaction:
    """What the chip does once a failure latches."""

    force_max_code: bool = True
    safe_outputs: bool = True

    def forced_code(self) -> int:
        return MAX_CODE


class SafetyMonitors:
    """Stateful evaluation of the three failure detections."""

    def __init__(
        self,
        config: Optional[SafetyConfig] = None,
        detector_target: float = 0.4,
    ):
        if detector_target <= 0:
            raise ConfigurationError("detector_target must be positive")
        self.config = config if config is not None else SafetyConfig()
        self.detector_target = float(detector_target)
        self.watchdog = WatchdogTimer(self.config.watchdog_timeout)
        self.asymmetry_detector = AsymmetryDetector(
            threshold=self.config.asymmetry_threshold
        )
        self._low_amp_count = 0
        self._latched: Set[FailureKind] = set()
        self._first_detection: Dict[FailureKind, float] = {}

    # -- lifecycle -----------------------------------------------------------

    def arm(self, time: float) -> None:
        """Start supervision (driver enable)."""
        self.watchdog.arm(time)
        self._low_amp_count = 0
        self._latched.clear()
        self._first_detection.clear()

    @property
    def failures(self) -> Set[FailureKind]:
        return set(self._latched)

    @property
    def any_failure(self) -> bool:
        return bool(self._latched)

    def first_detection_time(self, kind: FailureKind) -> Optional[float]:
        return self._first_detection.get(kind)

    def _latch(self, kind: FailureKind, time: float) -> None:
        if kind not in self._latched:
            self._latched.add(kind)
            self._first_detection[kind] = time

    # -- fast path (sub-tick): clock supervision ---------------------------------

    def observe_oscillation(self, time: float, peak_amplitude: float) -> None:
        """Feed the fast comparator: amplitude above sensitivity = clock."""
        if peak_amplitude >= self.config.clock_min_amplitude:
            self.watchdog.kick(time)
        if self.watchdog.expired(time):
            self._latch(FailureKind.MISSING_OSCILLATION, time)

    # -- slow path (per regulation tick) --------------------------------------------

    def observe_tick(
        self,
        time: float,
        detector_voltage: float,
        amplitude_lc1: Optional[float] = None,
        amplitude_lc2: Optional[float] = None,
    ) -> None:
        """Per-tick checks: low amplitude and (optionally) asymmetry."""
        threshold = self.config.low_amplitude_fraction * self.detector_target
        if detector_voltage < threshold:
            self._low_amp_count += 1
        else:
            self._low_amp_count = 0
        if self._low_amp_count >= self.config.low_amplitude_ticks:
            self._latch(FailureKind.LOW_AMPLITUDE, time)
        if amplitude_lc1 is not None and amplitude_lc2 is not None:
            if self.asymmetry_detector.asymmetric(amplitude_lc1, amplitude_lc2):
                self._latch(FailureKind.ASYMMETRY, time)
