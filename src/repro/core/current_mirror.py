"""Complementary current mirrors (Fig 6).

Each mirror (top PMOS, bottom NMOS) has two parts:

* fixed outputs of 16, 16, 32 and 64 x Iref2, switched to the output
  by the Gm blocks under control of ``OscE<3:0>``;
* a 7-bit binary weighted DAC part delivering 0..127 x Iref2 under
  control of ``OscF<6:0>``.

The class computes the total output in *units of Iref2*, including
mismatch of each ratio.  Top and bottom mirrors get independent
mismatch in :class:`ComplementaryMirrors`; the effective current limit
of the driver is their average (the tank responds to the fundamental,
which averages the two half-waves).
"""

from __future__ import annotations

from typing import Optional

from ..errors import CodingError
from ..mc.mismatch import MismatchProfile

__all__ = ["CurrentMirror", "ComplementaryMirrors"]


class CurrentMirror:
    """One (top or bottom) output mirror with optional mismatch."""

    def __init__(self, mismatch: Optional[MismatchProfile] = None):
        self.mismatch = mismatch if mismatch is not None else MismatchProfile.ideal()

    def fixed_units(self, osc_e: int) -> float:
        """Enabled fixed outputs (16/16/32/64) in units of Iref2."""
        if not 0 <= osc_e <= 0b1111:
            raise CodingError(f"OscE {osc_e:#06b} outside 4 bits")
        return self.mismatch.fixed_mirror_units(osc_e)

    def binary_units(self, osc_f: int) -> float:
        """Binary DAC part output in units of Iref2."""
        if not 0 <= osc_f <= 0b1111111:
            raise CodingError(f"OscF {osc_f:#09b} outside 7 bits")
        return self.mismatch.binary_units(osc_f)

    def output_units(self, osc_e: int, osc_f: int) -> float:
        """Total mirror output in units of Iref2."""
        return self.fixed_units(osc_e) + self.binary_units(osc_f)


class ComplementaryMirrors:
    """Top + bottom mirror pair feeding the Gm output stages."""

    def __init__(
        self,
        top_mismatch: Optional[MismatchProfile] = None,
        bottom_mismatch: Optional[MismatchProfile] = None,
    ):
        self.top = CurrentMirror(top_mismatch)
        self.bottom = CurrentMirror(bottom_mismatch)

    def output_units(self, osc_e: int, osc_f: int) -> float:
        """Effective (average of top/bottom) output units."""
        return 0.5 * (
            self.top.output_units(osc_e, osc_f)
            + self.bottom.output_units(osc_e, osc_f)
        )

    def asymmetry_units(self, osc_e: int, osc_f: int) -> float:
        """Top-bottom difference — source of even-harmonic content."""
        return self.top.output_units(osc_e, osc_f) - self.bottom.output_units(
            osc_e, osc_f
        )
