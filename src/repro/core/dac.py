"""Current-limitation DACs.

Three models, all sharing the same 7-bit code space:

* :class:`ExponentialPWLDAC` — the ideal segment law of Fig 3
  (``M(n)`` times ``I_LSB``).
* :class:`HardwareDAC` — the structural model (prescaler, mirrors, Gm
  switching per Table 1) with optional mismatch; this reproduces the
  *measured* Fig 13/14 including the non-monotonic code.
* :class:`LinearDAC` — an N-bit linear DAC used by the ablation bench
  to demonstrate why the paper chose the exponential PWL law (a linear
  DAC needs 11 bits for the same worst-case relative step, and its
  relative step explodes at low codes).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import CodingError
from ..mc.mismatch import MismatchProfile
from .constants import I_LSB, MAX_CODE, N_CODES
from .control_bus import ControlWord, encode
from .current_mirror import ComplementaryMirrors
from .gm_block import GmBlock
from .prescaler import Prescaler
from .segments import multiplication_factor

__all__ = ["ExponentialPWLDAC", "HardwareDAC", "LinearDAC", "EQUIVALENT_LINEAR_BITS"]

#: The 7-bit PWL DAC spans factors 0..1984, i.e. the range of an 11-bit
#: linear DAC (2048 codes) — "corresponding to a 11-bit linear DAC".
EQUIVALENT_LINEAR_BITS = 11


class ExponentialPWLDAC:
    """Ideal PWL-approximated exponential DAC (Fig 3)."""

    def __init__(self, i_lsb: float = I_LSB):
        if i_lsb <= 0:
            raise CodingError("i_lsb must be positive")
        self.i_lsb = float(i_lsb)

    @property
    def n_codes(self) -> int:
        return N_CODES

    def factor(self, code: int) -> int:
        """Multiplication factor M(n)."""
        return multiplication_factor(code)

    def current(self, code: int) -> float:
        """Output current limit for a code."""
        return self.i_lsb * self.factor(code)

    def full_scale(self) -> float:
        return self.current(MAX_CODE)

    def transfer(self) -> np.ndarray:
        """Currents for all 128 codes (the Fig 13 ideal curve)."""
        return np.asarray([self.current(code) for code in range(N_CODES)])

    def relative_steps(self, start_code: int = 2) -> np.ndarray:
        """Relative current steps for codes >= start_code (Fig 4)."""
        if start_code < 2:
            raise CodingError("relative steps defined for codes >= 2")
        currents = self.transfer()
        previous = currents[start_code - 1 : -1]
        return (currents[start_code:] - previous) / previous

    def is_monotonic(self) -> bool:
        transfer = self.transfer()
        return bool(np.all(np.diff(transfer) >= 0))


class HardwareDAC:
    """Structural model of the current limitation path (Fig 5/6/7).

    Composes the prescaler, the complementary mirrors and the Gm block
    exactly as the control buses drive them.  With an ideal mismatch
    profile it reproduces :class:`ExponentialPWLDAC`; with a sampled or
    measured-like profile it produces realistic INL/DNL.
    """

    def __init__(
        self,
        i_lsb: float = I_LSB,
        gm_unit: float = 1.2e-3,
        mismatch: Optional[MismatchProfile] = None,
        top_mismatch: Optional[MismatchProfile] = None,
        bottom_mismatch: Optional[MismatchProfile] = None,
    ):
        if i_lsb <= 0:
            raise CodingError("i_lsb must be positive")
        profile = mismatch if mismatch is not None else MismatchProfile.ideal()
        self.i_lsb = float(i_lsb)
        self.profile = profile
        self.prescaler = Prescaler(i_ref=i_lsb, mismatch=profile)
        self.mirrors = ComplementaryMirrors(
            top_mismatch=top_mismatch if top_mismatch is not None else profile,
            bottom_mismatch=bottom_mismatch if bottom_mismatch is not None else profile,
        )
        self.gm_block = GmBlock(gm_unit=gm_unit, mismatch=profile)

    def control_word(self, code: int) -> ControlWord:
        return encode(code)

    def current(self, code: int) -> float:
        """Realized current limit for a code."""
        word = self.control_word(code)
        i_ref2 = self.prescaler.output_current(word.osc_d)
        units = self.mirrors.output_units(word.osc_e, word.osc_f)
        return i_ref2 * units

    def transconductance(self, code: int) -> float:
        """Realized driver small-signal transconductance for a code."""
        word = self.control_word(code)
        return self.gm_block.transconductance(word.osc_e)

    def transfer(self) -> np.ndarray:
        return np.asarray([self.current(code) for code in range(N_CODES)])

    def relative_steps(self, start_code: int = 2) -> np.ndarray:
        transfer = self.transfer()
        previous = transfer[start_code - 1 : -1]
        if np.any(previous <= 0):
            raise CodingError("relative steps need positive baseline currents")
        return (transfer[start_code:] - previous) / previous

    def is_monotonic(self) -> bool:
        return bool(np.all(np.diff(self.transfer()) >= 0))

    def non_monotonic_codes(self) -> List[int]:
        """Codes whose current is below the previous code's current."""
        transfer = self.transfer()
        return [int(c) for c in np.where(np.diff(transfer) < 0)[0] + 1]

    def max_relative_step(self, start_code: int = 17) -> float:
        """Largest relative step at/above ``start_code`` (loop design)."""
        return float(np.max(self.relative_steps(start_code=start_code)))


class LinearDAC:
    """Plain N-bit linear current DAC (ablation baseline)."""

    def __init__(self, bits: int, i_lsb: float):
        if not 1 <= bits <= 16:
            raise CodingError("bits must be in 1..16")
        if i_lsb <= 0:
            raise CodingError("i_lsb must be positive")
        self.bits = int(bits)
        self.i_lsb = float(i_lsb)

    @property
    def n_codes(self) -> int:
        return 1 << self.bits

    def current(self, code: int) -> float:
        if not 0 <= code < self.n_codes:
            raise CodingError(f"code {code} outside 0..{self.n_codes - 1}")
        return self.i_lsb * code

    def transfer(self) -> np.ndarray:
        return self.i_lsb * np.arange(self.n_codes)

    def relative_steps(self, start_code: int = 2) -> np.ndarray:
        codes = np.arange(start_code, self.n_codes)
        return 1.0 / (codes - 1.0)

    def codes_for_same_range(self, pwl: ExponentialPWLDAC) -> int:
        """Number of linear codes needed to cover the PWL full scale."""
        return int(np.ceil(pwl.full_scale() / self.i_lsb)) + 1
