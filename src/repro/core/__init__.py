"""The paper's contribution: exponential-PWL-DAC-controlled, safety-
monitored LC oscillator driver.

Key entry points:

* :class:`OscillatorDriverSystem` — the complete behavioural system,
* :class:`ExponentialPWLDAC` / :class:`HardwareDAC` — the current DACs,
* :func:`encode` — Table 1 control-bus coding,
* :class:`OscillatorNetlist` — carrier-level transient model,
* :func:`run_supply_loss_sweep` — the Fig 17/18 experiments,
* design equations in :mod:`repro.core.design_equations`.
"""

from .area import AreaBudget, default_area_budget
from .amplitude_detector import AmplitudeDetector, AsymmetryDetector, DETECTOR_GAIN
from .constants import (
    I_LSB,
    I_MAX_DRIVER,
    MAX_CODE,
    MAX_MULTIPLICATION_FACTOR,
    MAX_RELATIVE_STEP,
    MIN_REGULATED_CODE,
    N_CODES,
    POR_CODE,
    REGULATION_PERIOD,
)
from .control_bus import ControlWord, encode, table1_rows
from .dac import EQUIVALENT_LINEAR_BITS, ExponentialPWLDAC, HardwareDAC, LinearDAC
from .design_equations import (
    critical_gm_lumped,
    critical_gm_stage,
    current_limit_for_rms,
    delta_for_range,
    exponential_current_law,
    oscillation_condition_met,
    pwl_approximation_error,
    relative_voltage_step,
    steady_state_peak,
    steady_state_rms,
)
from .driver_iv import DriverIV, driver_limiter_for_code, static_iv_curve
from .gm_block import GmBlock
from .current_mirror import ComplementaryMirrors, CurrentMirror
from .oscillator_system import (
    OscillatorConfig,
    OscillatorDriverSystem,
    PlantState,
    SystemTrace,
)
from .output_stage import (
    TOPOLOGIES,
    SupplyLossResult,
    build_supply_loss_testbench,
    powered_output_low_voltage,
    run_supply_loss_sweep,
)
from .prescaler import Prescaler
from .regulation_loop import RegulationAction, RegulationEvent, RegulationLoop
from .safety import FailureKind, SafetyConfig, SafetyMonitors, SafetyReaction
from .segments import (
    SEGMENTS,
    Segment,
    all_multiplication_factors,
    code_for_factor,
    join_code,
    multiplication_factor,
    relative_step,
    segment_of_code,
    split_code,
)
from .startup import StartupPhase, StartupSequencer, startup_current_fraction
from .transient_system import (
    OscillatorNetlist,
    TransientStartupResult,
    supply_loss_tank_circuit,
)
from .registers import ControlRegister, StatusRegister
from .vref_buffer import OVERDRIVE_CONSUMPTION_TYPICAL, VrefBuffer
from .clock_comparator import ClockComparator, supervise_waveform
from .window_comparator import ComparatorState, WindowComparator, design_window

__all__ = [
    "AreaBudget",
    "default_area_budget",
    "AmplitudeDetector",
    "AsymmetryDetector",
    "DETECTOR_GAIN",
    "I_LSB",
    "I_MAX_DRIVER",
    "MAX_CODE",
    "MAX_MULTIPLICATION_FACTOR",
    "MAX_RELATIVE_STEP",
    "MIN_REGULATED_CODE",
    "N_CODES",
    "POR_CODE",
    "REGULATION_PERIOD",
    "ControlWord",
    "encode",
    "table1_rows",
    "EQUIVALENT_LINEAR_BITS",
    "ExponentialPWLDAC",
    "HardwareDAC",
    "LinearDAC",
    "critical_gm_lumped",
    "critical_gm_stage",
    "current_limit_for_rms",
    "delta_for_range",
    "exponential_current_law",
    "oscillation_condition_met",
    "pwl_approximation_error",
    "relative_voltage_step",
    "steady_state_peak",
    "steady_state_rms",
    "DriverIV",
    "driver_limiter_for_code",
    "static_iv_curve",
    "GmBlock",
    "ComplementaryMirrors",
    "CurrentMirror",
    "OscillatorConfig",
    "OscillatorDriverSystem",
    "PlantState",
    "SystemTrace",
    "TOPOLOGIES",
    "SupplyLossResult",
    "build_supply_loss_testbench",
    "powered_output_low_voltage",
    "run_supply_loss_sweep",
    "Prescaler",
    "RegulationAction",
    "RegulationEvent",
    "RegulationLoop",
    "FailureKind",
    "SafetyConfig",
    "SafetyMonitors",
    "SafetyReaction",
    "SEGMENTS",
    "Segment",
    "all_multiplication_factors",
    "code_for_factor",
    "join_code",
    "multiplication_factor",
    "relative_step",
    "segment_of_code",
    "split_code",
    "StartupPhase",
    "StartupSequencer",
    "startup_current_fraction",
    "OscillatorNetlist",
    "supply_loss_tank_circuit",
    "TransientStartupResult",
    "ControlRegister",
    "StatusRegister",
    "OVERDRIVE_CONSUMPTION_TYPICAL",
    "VrefBuffer",
    "ClockComparator",
    "supervise_waveform",
    "ComparatorState",
    "WindowComparator",
    "design_window",
]
