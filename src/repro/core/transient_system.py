"""Netlist-level oscillator model for carrier-resolution transients.

Builds the Fig 1 circuit inside the MNA simulator: the external tank
(L + Rs between LC1 and LC2, Cosc1/Cosc2 to the Vref mid-rail) driven
by the current-limited transconductor.  Used for the startup experiment
(Fig 16) and to cross-validate the envelope model.

The driver is lumped into one differential negative-transconductance
element with saturation (tanh characteristic for Newton friendliness);
its gm and IM come from the same code-dependent :class:`DriverIV`
models as the behavioural system, so both simulations describe the
same hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..analysis.waveform import Waveform
from ..circuits import Circuit, TransientOptions, run_transient
from ..envelope.describing import LimiterCharacteristic
from ..envelope.tank import RLCTank
from ..errors import SimulationError
from .driver_iv import driver_limiter_for_code

__all__ = [
    "OscillatorNetlist",
    "TransientStartupResult",
    "supply_loss_tank_circuit",
]


@dataclass(frozen=True)
class _NegatedVectorPair:
    """Sign-flipped batchable characteristic family.

    The oscillator driver injects ``-limiter(v)`` (negative
    transconductance), so the limiter's vectorized ``(i, di/dv)``
    family must be negated too.  A frozen dataclass (rather than a
    closure) keeps equality structural: every Monte-Carlo sample wraps
    the *same* module-level family function, so the batched transient
    engine recognizes the drivers as one stackable family.
    """

    inner: Callable

    def __call__(self, v, *params):
        i, g = self.inner(v, *params)
        return -i, -g


def supply_loss_tank_circuit(
    frequency: float,
    t_fault: float,
    q: float = 15.0,
    inductance: float = 1e-6,
    drive_amplitude: float = 1.0,
    coupling_resistance: float = 50.0,
    dead_pin_resistance: float = 10e3,
) -> Circuit:
    """The §8 supply-loss scenario seen from the live tank.

    A sine drive forces the carrier through a coupling resistor; at
    ``t_fault`` the drive collapses (the dead chip's supply is gone)
    and the tank rings down into the dead driver's pins, modelled as
    ``dead_pin_resistance`` — the ~10 kohm a Fig 11 output stage
    presents (Fig 17/18).  The stimulus carries a breakpoint
    annotation at ``t_fault`` so adaptive transient runs land a step
    exactly on the discontinuity.  Shared by the supply-loss bench,
    the adaptive-stepping example, and the engine tests so they all
    exercise the same netlist.
    """
    from ..circuits import sine

    if t_fault <= 0:
        raise SimulationError("t_fault must be positive")
    capacitance = 1.0 / ((2 * math.pi * frequency) ** 2 * inductance)
    drive = sine(drive_amplitude, frequency)

    def lost_drive(t: float) -> float:
        return drive(t) if t < t_fault else 0.0

    lost_drive.breakpoints = lambda t_stop: (t_fault,)

    circuit = Circuit("supply-loss-tank")
    circuit.voltage_source("Vdrv", "drv", "0", lost_drive)
    circuit.resistor("Rc", "drv", "lc1", coupling_resistance)
    circuit.inductor("L", "lc1", "mid", inductance)
    circuit.resistor("Rs", "mid", "lc2", 2 * math.pi * frequency * inductance / q)
    circuit.capacitor("C1", "lc1", "0", 2 * capacitance)
    circuit.capacitor("C2", "lc2", "0", 2 * capacitance)
    circuit.resistor("Rdead", "lc1", "lc2", dead_pin_resistance)
    return circuit


@dataclass
class TransientStartupResult:
    """Waveforms from a carrier-resolution startup run."""

    differential: Waveform
    lc1: Waveform
    lc2: Waveform
    #: Engine diagnostics passed through from the transient run
    #: (strategy, Newton totals, accepted/rejected steps in adaptive
    #: mode) — what the benchmarks and regression gates consume.
    stats: Dict[str, object] = field(default_factory=dict)


class OscillatorNetlist:
    """Factory for carrier-level oscillator circuits."""

    def __init__(
        self,
        tank: RLCTank,
        vref: float = 2.5,
        seed_current: float = 50e-6,
    ):
        if vref < 0:
            raise SimulationError("vref must be >= 0")
        if seed_current <= 0:
            raise SimulationError("seed_current must be positive")
        self.tank = tank
        self.vref = float(vref)
        self.seed_current = float(seed_current)

    def build(self, limiter: LimiterCharacteristic) -> Circuit:
        """The Fig 1 netlist with the given driver characteristic.

        The driver current is injected differentially: a current
        ``-f(v_lc1 - v_lc2)`` flowing from LC1 to LC2 realizes the
        negative conductance with saturation.  A small initial inductor
        current seeds the oscillation (thermal kick).
        """
        circuit = Circuit("lc-oscillator")
        circuit.voltage_source("Vref", "vref", "0", self.vref)
        circuit.inductor(
            "Losc", "lc1", "mid", self.tank.inductance, ic=self.seed_current
        )
        circuit.resistor("Rs", "mid", "lc2", self.tank.series_resistance)
        circuit.capacitor("Cosc1", "lc1", "vref", self.tank.capacitance, ic=0.0)
        circuit.capacitor("Cosc2", "lc2", "vref", self.tank.capacitance, ic=0.0)
        def driver(v: float) -> float:
            return -limiter(v)

        pair = None
        if hasattr(limiter, "value_and_slope"):
            try:
                limiter.value_and_slope(0.0)
            except NotImplementedError:
                pass
            else:

                def pair(v: float):
                    i, g = limiter.value_and_slope(v)
                    return -i, -g

        vector_pair = None
        vector_params = ()
        spec = limiter.vector_pair_spec() if hasattr(limiter, "vector_pair_spec") else None
        if spec is not None:
            family, vector_params = spec
            vector_pair = _NegatedVectorPair(family)

        circuit.nonlinear_vccs(
            "Gdrv",
            "lc1",
            "lc2",
            "lc1",
            "lc2",
            driver,
            pair=pair,
            vector_pair=vector_pair,
            vector_params=vector_params,
        )
        return circuit

    def run_startup(
        self,
        code: int,
        t_stop: float,
        points_per_cycle: int = 40,
        limiter: Optional[LimiterCharacteristic] = None,
        step_control: str = "fixed",
        lte_reltol: float = 1e-3,
        method: str = "trap",
    ) -> TransientStartupResult:
        """Simulate startup at a fixed DAC code (Fig 16).

        ``points_per_cycle`` sets the integration step relative to the
        tank period; 40 keeps trapezoidal amplitude error well under a
        percent over hundreds of cycles.  ``step_control="adaptive"``
        instead lets the LTE controller pick each step, floored at
        carrier resolution (``dt_max`` of a tenth of a period so peak
        detection on the non-uniform grid stays meaningful) — the
        startup's small-amplitude phase then runs at a fraction of the
        fixed grid's Newton solves at shape-level accuracy.
        """
        if t_stop <= 0:
            raise SimulationError("t_stop must be positive")
        if points_per_cycle < 16:
            raise SimulationError("points_per_cycle must be >= 16")
        if limiter is None:
            limiter = driver_limiter_for_code(code, smooth=True)
        circuit = self.build(limiter)
        dt = 1.0 / (self.tank.frequency * points_per_cycle)
        options = TransientOptions(
            t_stop=t_stop,
            dt=dt,
            method=method,
            use_dc_operating_point=False,
            # Startup analysis consumes the two tank nodes only; skip
            # recording the remaining unknowns.
            record_nodes=("lc1", "lc2"),
            step_control=step_control,
            lte_reltol=lte_reltol,
            dt_max=1.0 / (self.tank.frequency * 10),
            dt_min=dt / 64.0,
        )
        result = run_transient(circuit, options)
        lc1 = result.waveform("lc1")
        lc2 = result.waveform("lc2")
        diff = result.differential("lc1", "lc2")
        return TransientStartupResult(
            differential=diff, lc1=lc1, lc2=lc2, stats=dict(result.stats)
        )

    def expected_period(self) -> float:
        """Analytic carrier period for step-size selection."""
        return 1.0 / self.tank.frequency

    def cycles_to_settle(self, gm: float) -> float:
        """Rough number of carrier cycles for the envelope to settle.

        From the small-signal growth rate: settling in ~10 growth time
        constants, each ``2 C_diff / (gm - 1/Rp)`` seconds.
        """
        rp = self.tank.parallel_resistance
        excess = gm - 1.0 / rp
        if excess <= 0:
            return math.inf
        tau = 2.0 * self.tank.differential_capacitance / excess
        return 10.0 * tau * self.tank.frequency
