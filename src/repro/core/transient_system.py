"""Netlist-level oscillator model for carrier-resolution transients.

Builds the Fig 1 circuit inside the MNA simulator: the external tank
(L + Rs between LC1 and LC2, Cosc1/Cosc2 to the Vref mid-rail) driven
by the current-limited transconductor.  Used for the startup experiment
(Fig 16) and to cross-validate the envelope model.

The driver is lumped into one differential negative-transconductance
element with saturation (tanh characteristic for Newton friendliness);
its gm and IM come from the same code-dependent :class:`DriverIV`
models as the behavioural system, so both simulations describe the
same hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..analysis.waveform import Waveform
from ..circuits import Circuit, TransientOptions, run_transient
from ..envelope.describing import LimiterCharacteristic
from ..envelope.tank import RLCTank
from ..errors import SimulationError
from .driver_iv import driver_limiter_for_code

__all__ = ["OscillatorNetlist", "TransientStartupResult"]


@dataclass
class TransientStartupResult:
    """Waveforms from a carrier-resolution startup run."""

    differential: Waveform
    lc1: Waveform
    lc2: Waveform


class OscillatorNetlist:
    """Factory for carrier-level oscillator circuits."""

    def __init__(
        self,
        tank: RLCTank,
        vref: float = 2.5,
        seed_current: float = 50e-6,
    ):
        if vref < 0:
            raise SimulationError("vref must be >= 0")
        if seed_current <= 0:
            raise SimulationError("seed_current must be positive")
        self.tank = tank
        self.vref = float(vref)
        self.seed_current = float(seed_current)

    def build(self, limiter: LimiterCharacteristic) -> Circuit:
        """The Fig 1 netlist with the given driver characteristic.

        The driver current is injected differentially: a current
        ``-f(v_lc1 - v_lc2)`` flowing from LC1 to LC2 realizes the
        negative conductance with saturation.  A small initial inductor
        current seeds the oscillation (thermal kick).
        """
        circuit = Circuit("lc-oscillator")
        circuit.voltage_source("Vref", "vref", "0", self.vref)
        circuit.inductor(
            "Losc", "lc1", "mid", self.tank.inductance, ic=self.seed_current
        )
        circuit.resistor("Rs", "mid", "lc2", self.tank.series_resistance)
        circuit.capacitor("Cosc1", "lc1", "vref", self.tank.capacitance, ic=0.0)
        circuit.capacitor("Cosc2", "lc2", "vref", self.tank.capacitance, ic=0.0)
        def driver(v: float) -> float:
            return -limiter(v)

        pair = None
        if hasattr(limiter, "value_and_slope"):
            try:
                limiter.value_and_slope(0.0)
            except NotImplementedError:
                pass
            else:

                def pair(v: float):
                    i, g = limiter.value_and_slope(v)
                    return -i, -g

        circuit.nonlinear_vccs(
            "Gdrv",
            "lc1",
            "lc2",
            "lc1",
            "lc2",
            driver,
            pair=pair,
        )
        return circuit

    def run_startup(
        self,
        code: int,
        t_stop: float,
        points_per_cycle: int = 40,
        limiter: Optional[LimiterCharacteristic] = None,
    ) -> TransientStartupResult:
        """Simulate startup at a fixed DAC code (Fig 16).

        ``points_per_cycle`` sets the integration step relative to the
        tank period; 40 keeps trapezoidal amplitude error well under a
        percent over hundreds of cycles.
        """
        if t_stop <= 0:
            raise SimulationError("t_stop must be positive")
        if points_per_cycle < 16:
            raise SimulationError("points_per_cycle must be >= 16")
        if limiter is None:
            limiter = driver_limiter_for_code(code, smooth=True)
        circuit = self.build(limiter)
        dt = 1.0 / (self.tank.frequency * points_per_cycle)
        options = TransientOptions(
            t_stop=t_stop,
            dt=dt,
            method="trap",
            use_dc_operating_point=False,
            # Startup analysis consumes the two tank nodes only; skip
            # recording the remaining unknowns.
            record_nodes=("lc1", "lc2"),
        )
        result = run_transient(circuit, options)
        lc1 = result.waveform("lc1")
        lc2 = result.waveform("lc2")
        diff = result.differential("lc1", "lc2")
        return TransientStartupResult(differential=diff, lc1=lc1, lc2=lc2)

    def expected_period(self) -> float:
        """Analytic carrier period for step-size selection."""
        return 1.0 / self.tank.frequency

    def cycles_to_settle(self, gm: float) -> float:
        """Rough number of carrier cycles for the envelope to settle.

        From the small-signal growth rate: settling in ~10 growth time
        constants, each ``2 C_diff / (gm - 1/Rp)`` seconds.
        """
        rp = self.tank.parallel_resistance
        excess = gm - 1.0 / rp
        if excess <= 0:
            return math.inf
        tau = 2.0 * self.tank.differential_capacitance / excess
        return 10.0 * tau * self.tank.frequency
