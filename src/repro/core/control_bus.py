"""Control-bus coding of the current limitation (Table 1, §5).

Three independent buses set the driver current:

* ``OscD<2:0>`` — prescaler control, thermometer coded so that the
  prescale factor is ``OscD + 1`` ∈ {1, 2, 4, 8},
* ``OscE<3:0>`` — Gm-stage / fixed-mirror-current enables (stages
  Gm, Gm, Gm, 2·Gm, 4·Gm; fixed currents 16, 16, 32, 64 units),
* ``OscF<6:0>`` — binary weighted current-mirror DAC, fed with the
  4-bit mantissa shifted left by the segment's sub-shift.

The output current follows the paper's formula::

    Iout = Iunit * (1 + OscD) * (OscF + 16*(OscE<0>) + 16*(OscE<1>)
                                 + 32*(OscE<2>) + 64*(OscE<3>))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import CodingError
from .constants import MAX_CODE
from .segments import SEGMENTS, Segment, multiplication_factor, split_code

__all__ = ["ControlWord", "encode", "decode_units", "table1_rows"]

#: OscD thermometer codes per segment (Table 1, column OscD<2:0>).
_OSC_D_BY_SEGMENT = (0b000, 0b000, 0b001, 0b001, 0b011, 0b011, 0b111, 0b111)
#: OscE enable codes per segment (Table 1, column OscE<3:0>).
_OSC_E_BY_SEGMENT = (0b0000, 0b0001, 0b0001, 0b0011, 0b0011, 0b0111, 0b0111, 0b1111)
#: Left shift applied to the mantissa to form OscF (Table 1, column OscF<6:0>).
_OSC_F_SHIFT_BY_SEGMENT = (0, 0, 0, 1, 1, 2, 2, 3)

#: Fixed mirror currents in units, gated by OscE bits 0..3.
_FIXED_MIRROR_UNITS = (16, 16, 32, 64)
#: Relative Gm of the five output stages; stage 0 is always on, stages
#: 1..4 are gated by OscE bits 0..3 (Fig 7).
_GM_STAGE_WEIGHTS = (1, 1, 1, 2, 4)


@dataclass(frozen=True)
class ControlWord:
    """The three control buses for one DAC code."""

    osc_d: int
    osc_e: int
    osc_f: int

    def __post_init__(self) -> None:
        if not 0 <= self.osc_d <= 0b111:
            raise CodingError(f"OscD {self.osc_d:#05b} outside 3 bits")
        if self.osc_d not in (0b000, 0b001, 0b011, 0b111):
            raise CodingError(f"OscD {self.osc_d:#05b} is not thermometer coded")
        if not 0 <= self.osc_e <= 0b1111:
            raise CodingError(f"OscE {self.osc_e:#06b} outside 4 bits")
        if not 0 <= self.osc_f <= 0b1111111:
            raise CodingError(f"OscF {self.osc_f:#09b} outside 7 bits")

    @property
    def prescale_factor(self) -> int:
        """Prescaler current gain ``1 + OscD`` ∈ {1, 2, 4, 8}."""
        return 1 + self.osc_d

    @property
    def fixed_mirror_units(self) -> int:
        """Sum of enabled fixed mirror outputs (units of Iref2)."""
        return sum(
            units
            for bit, units in enumerate(_FIXED_MIRROR_UNITS)
            if self.osc_e & (1 << bit)
        )

    @property
    def active_gm_stages(self) -> int:
        """Relative total transconductance of the enabled Gm stages."""
        total = _GM_STAGE_WEIGHTS[0]
        for bit in range(4):
            if self.osc_e & (1 << bit):
                total += _GM_STAGE_WEIGHTS[bit + 1]
        return total

    @property
    def mirror_units(self) -> int:
        """Total mirror output in units of Iref2 (fixed + binary DAC)."""
        return self.fixed_mirror_units + self.osc_f

    @property
    def output_units(self) -> int:
        """Output current in units of the LSB (the paper's formula)."""
        return self.prescale_factor * self.mirror_units

    def bus_strings(self) -> List[str]:
        """Rendered bus values as in Table 1 (for the bench output)."""
        return [
            format(self.osc_d, "03b"),
            format(self.osc_e, "04b"),
            format(self.osc_f, "07b"),
        ]


def encode(code: int) -> ControlWord:
    """Control word for a 7-bit DAC code, per Table 1."""
    seg_index, mantissa = split_code(code)
    shift = _OSC_F_SHIFT_BY_SEGMENT[seg_index]
    return ControlWord(
        osc_d=_OSC_D_BY_SEGMENT[seg_index],
        osc_e=_OSC_E_BY_SEGMENT[seg_index],
        osc_f=mantissa << shift,
    )


def decode_units(word: ControlWord) -> int:
    """Output units for an arbitrary (valid) control word."""
    return word.output_units


def table1_rows() -> List[dict]:
    """Reconstruct the static rows of Table 1 for all 8 segments.

    Each row reports the segment, step, range, prescaler output, active
    Gm stages and the three bus codes (evaluated at mantissa = 0), plus
    a consistency check against :func:`multiplication_factor`.
    """
    rows = []
    for segment in SEGMENTS:
        word_min = encode(segment.code_min)
        word_max = encode(segment.code_max)
        rows.append(
            {
                "segment": segment.index,
                "step": segment.step,
                "range_min": word_min.output_units,
                "range_max": word_max.output_units,
                "prescale": word_min.prescale_factor,
                "active_gm_stages": word_min.active_gm_stages,
                "osc_d": word_min.bus_strings()[0],
                "osc_e": word_min.bus_strings()[1],
                "osc_f_template": _osc_f_template(segment),
            }
        )
    return rows


def _osc_f_template(segment: Segment) -> str:
    """Render the OscF column as in Table 1, e.g. '00B3B2B1B00'."""
    shift = _OSC_F_SHIFT_BY_SEGMENT[segment.index]
    bits = ["0"] * (3 - shift) + ["B3", "B2", "B1", "B0"] + ["0"] * shift
    return "".join(bits)


def verify_against_factors() -> bool:
    """True iff the bus coding reproduces M(n) for every code."""
    return all(
        encode(code).output_units == multiplication_factor(code)
        for code in range(MAX_CODE + 1)
    )
