"""Numerical constants taken directly from the paper.

Every value here is traceable to a sentence, figure, or table of
Horsky, "LC Oscillator Driver for Safety Critical Applications",
DATE 2005.  See DESIGN.md for the experiment mapping.
"""

from __future__ import annotations

from ..units import MA, MHZ, MS, UA, US

__all__ = [
    "CODE_BITS", "SEGMENT_BITS", "MANTISSA_BITS", "N_CODES", "MAX_CODE",
    "MAX_MULTIPLICATION_FACTOR", "DYNAMIC_RANGE",
    "I_LSB", "I_MAX_DRIVER",
    "POR_CODE", "REGULATION_PERIOD", "NVM_READ_DELAY",
    "MIN_REGULATED_CODE", "MAX_RELATIVE_STEP", "MIN_RELATIVE_STEP_ABOVE_16",
    "F_OSC_MIN", "F_OSC_MAX",
    "SUPPLY_CURRENT_MIN", "SUPPLY_CURRENT_MAX",
    "MAX_OPERATING_AMPLITUDE_PP", "MAX_EQUIVALENT_GM",
    "OVERDRIVE_EXTRA_CONSUMPTION", "Q_RANGE_DECADES",
    "LAYOUT_AREA_DRIVER_MM2", "LAYOUT_AREA_FULL_MM2",
]

# -- DAC geometry (Fig 3, Table 1) ---------------------------------------------

#: The current-control DAC accepts a 7-bit code...
CODE_BITS = 7
#: ...split into a 3-bit segment (MSBs)...
SEGMENT_BITS = 3
#: ...and a 4-bit mantissa (LSBs).
MANTISSA_BITS = 4
N_CODES = 1 << CODE_BITS
MAX_CODE = N_CODES - 1
#: Multiplication factor at code 127 (Table 1 "Range max" of segment 7).
MAX_MULTIPLICATION_FACTOR = 1984
#: "wide dynamic range of output current (0:1984)" (§5).
DYNAMIC_RANGE = (0, 1984)

# -- Currents (Fig 13, §9) --------------------------------------------------------

#: "1 LSB is 12.5 uA" (Fig 13 caption).
I_LSB = 12.5 * UA
#: Full-scale driver current limit = 1984 LSB ≈ 24.8 mA (Fig 13 y-axis).
I_MAX_DRIVER = MAX_MULTIPLICATION_FACTOR * I_LSB

# -- Regulation loop (§4) -----------------------------------------------------------

#: Power-on-reset preset ("sets the current limitation to code 105").
POR_CODE = 105
#: "Every 1 ms the oscillator driver current limitation is increased by
#: one, decreased by one, or remains unchanged."
REGULATION_PERIOD = 1.0 * MS
#: "A few us after startup an internal non-volatile memory is read."
NVM_READ_DELAY = 4.0 * US
#: "the amplitude regulation code remains above code 16" (§3).
MIN_REGULATED_CODE = 16
#: "the amplitude step varies between 3.23% and 6.25%" for codes > 16.
MAX_RELATIVE_STEP = 1.0 / 16.0
MIN_RELATIVE_STEP_ABOVE_16 = 1.0 / 31.0

# -- Oscillator operating range (§9) ---------------------------------------------------

#: "designed for an oscillation frequency from 2 MHz to 5 MHz".
F_OSC_MIN = 2.0 * MHZ
F_OSC_MAX = 5.0 * MHZ
#: "Current consumption ... varies from 250 uA to 30 mA".
SUPPLY_CURRENT_MIN = 250.0 * UA
SUPPLY_CURRENT_MAX = 30.0 * MA
#: "maximum operating amplitude, which is 2.7 Vpp" (§8).
MAX_OPERATING_AMPLITUDE_PP = 2.7
#: "equivalent transconductance up to around 10 mS" (§9).
MAX_EQUIVALENT_GM = 10e-3
#: "additional power consumption (typically 120 uA)" of the Vref buffer
#: when overdriven in dual-system mode (§6).
OVERDRIVE_EXTRA_CONSUMPTION = 120.0 * UA
#: "Quality factor of the external LC network can vary two decades".
Q_RANGE_DECADES = 2

# -- Silicon (§9, informational only) ------------------------------------------------------

LAYOUT_AREA_DRIVER_MM2 = 0.22
LAYOUT_AREA_FULL_MM2 = 0.40
