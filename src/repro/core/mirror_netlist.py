"""Transistor-level realization of the current-limitation path.

The behavioural :class:`~repro.core.dac.HardwareDAC` multiplies ideal
ratios; this module builds the same Fig 5/6 structure out of level-1
MOSFETs in the MNA simulator — a two-stage NMOS mirror cascade:

* **prescale mirror**: a diode-connected input device carrying
  ``Iref`` with a single output leg of width 1, 2, 4 or 8 (OscD),
* **output mirror**: a diode-connected input carrying ``Iref2`` with
  one leg per enabled fixed current (16/16/32/64, OscE) and one per
  set binary bit (1..64, OscF), all drains tied to the measurement
  node.

The prescaled current is re-injected into the output mirror's diode
device by an ideal fold (the real chip folds through the complementary
PMOS top mirror, Fig 5); this isolates exactly the NMOS ratio
mechanics.  The transfer reproduces the segment law with *systematic*
errors the ideal model cannot show: channel-length modulation makes
each leg's current depend on its drain voltage, so the realized gain
deviates from the W-ratio whenever the output node sits away from the
diode device's Vgs — the classic mirror output-resistance error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..circuits import Circuit, MosfetParams, solve_dc
from ..errors import ConfigurationError
from .constants import I_LSB
from .control_bus import encode

__all__ = [
    "MirrorNetlistParams",
    "transistor_dac_current",
    "transistor_dac_transfer",
]

#: Fixed mirror output weights gated by OscE (Fig 6).
_FIXED_WEIGHTS = (16, 16, 32, 64)


@dataclass(frozen=True)
class MirrorNetlistParams:
    """Device and bias parameters of the mirror cascade."""

    #: Unit-device transconductance factor (scaled by leg width).
    beta_unit: float = 0.5e-3
    vt0: float = 0.55
    #: Channel-length modulation — the source of systematic gain error.
    lam: float = 0.02
    #: Supply and output measurement voltage.
    vdd: float = 3.3
    v_out: float = 1.5
    i_ref: float = I_LSB

    def __post_init__(self) -> None:
        if self.beta_unit <= 0 or self.i_ref <= 0:
            raise ConfigurationError("beta_unit and i_ref must be positive")
        if self.lam < 0:
            raise ConfigurationError("lam must be >= 0")
        if not 0 < self.v_out < self.vdd:
            raise ConfigurationError("v_out must lie inside the supply")

    def device(self, weight: float) -> MosfetParams:
        """Model card of a mirror leg of the given relative width."""
        return MosfetParams(
            polarity=+1,
            beta=self.beta_unit * weight,
            vt0=self.vt0,
            lam=self.lam,
        )


def _output_legs(code: int) -> List[Tuple[str, int]]:
    """(name, weight) of every enabled output-mirror leg for a code."""
    word = encode(code)
    legs: List[Tuple[str, int]] = []
    for bit, weight in enumerate(_FIXED_WEIGHTS):
        if word.osc_e & (1 << bit):
            legs.append((f"fix{bit}", weight))
    for bit in range(7):
        if word.osc_f & (1 << bit):
            legs.append((f"bin{bit}", 1 << bit))
    return legs


def _prescaled_current(code: int, params: MirrorNetlistParams) -> float:
    """Stage 1: the prescale mirror's output current (Iref2)."""
    word = encode(code)
    circuit = Circuit("prescale-mirror")
    circuit.voltage_source("Vdd", "vdd", "0", params.vdd)
    circuit.current_source("Iref", "vdd", "npre", params.i_ref)
    circuit.mosfet("Mpre_in", "npre", "npre", "0", "0", params.device(1))
    circuit.voltage_source("Vm", "vm", "0", params.v_out)
    circuit.mosfet(
        "Mpre_out", "vm", "npre", "0", "0", params.device(word.prescale_factor)
    )
    op = solve_dc(circuit)
    # The leg sinks current out of the Vm source: branch current > 0.
    return float(abs(op.branch_current("Vm")))


def transistor_dac_current(
    code: int, params: MirrorNetlistParams = MirrorNetlistParams()
) -> float:
    """Realized output current of the transistor mirror path."""
    legs = _output_legs(code)
    if not legs:
        return 0.0
    i_ref2 = _prescaled_current(code, params)
    circuit = Circuit("output-mirror")
    circuit.voltage_source("Vdd", "vdd", "0", params.vdd)
    circuit.current_source("Iref2", "vdd", "nmain", i_ref2)
    circuit.mosfet("Mmain_in", "nmain", "nmain", "0", "0", params.device(1))
    circuit.voltage_source("Vout", "vout", "0", params.v_out)
    for name, weight in legs:
        circuit.mosfet(f"M_{name}", "vout", "nmain", "0", "0", params.device(weight))
    op = solve_dc(circuit)
    return float(abs(op.branch_current("Vout")))


def transistor_dac_transfer(
    codes: Sequence[int],
    params: MirrorNetlistParams = MirrorNetlistParams(),
) -> List[float]:
    """Realized currents for a sequence of codes."""
    return [transistor_dac_current(int(code), params) for code in codes]
