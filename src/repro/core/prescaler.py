"""Prescale block (Fig 5): scales the reference current by 1/2/4/8.

The prescaler receives ``Iref`` and delivers ``Iref2`` into the two
complementary current mirrors.  Control is the thermometer-coded
``OscD<2:0>`` bus so the gain is ``1 + OscD``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CodingError
from ..mc.mismatch import MismatchProfile

__all__ = ["Prescaler", "VALID_OSC_D"]

#: Thermometer codes accepted on the OscD bus (Table 1).
VALID_OSC_D = (0b000, 0b001, 0b011, 0b111)


class Prescaler:
    """Current prescaler with optional ratio mismatch."""

    def __init__(self, i_ref: float, mismatch: Optional[MismatchProfile] = None):
        if i_ref <= 0:
            raise CodingError("reference current must be positive")
        self.i_ref = float(i_ref)
        self.mismatch = mismatch if mismatch is not None else MismatchProfile.ideal()

    @staticmethod
    def factor_for(osc_d: int) -> int:
        """Nominal prescale factor for an OscD code."""
        if osc_d not in VALID_OSC_D:
            raise CodingError(
                f"OscD {osc_d:#05b} invalid; must be thermometer coded "
                f"{[format(v, '03b') for v in VALID_OSC_D]}"
            )
        return 1 + osc_d

    def gain(self, osc_d: int) -> float:
        """Realized (mismatched) prescale gain."""
        return self.mismatch.prescale_gain(self.factor_for(osc_d))

    def output_current(self, osc_d: int) -> float:
        """``Iref2`` delivered to the mirrors."""
        return self.i_ref * self.gain(osc_d)
