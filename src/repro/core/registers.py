"""Digital register interface of the oscillator driver.

Models the product-level view of the block: a control register
(enable, test modes, forced code) and a status register (current code,
comparator state, failure flags) — the packing/unpacking a downstream
microcontroller or test program would use.  Layout:

Control register (8 bit)::

    bit 7    : ENABLE
    bit 6..0 : FORCED_CODE (used when FORCE_CODE test mode active)

Extended control (8 bit)::

    bit 0    : FORCE_CODE test mode (bypass regulation)
    bit 1    : FREEZE_REGULATION (hold the present code)
    bit 2..7 : reserved, read as 0

Status register (16 bit)::

    bit 15      : ANY_FAILURE
    bit 14      : MISSING_OSCILLATION
    bit 13      : LOW_AMPLITUDE
    bit 12      : ASYMMETRY
    bit 11..10  : COMPARATOR (00 below, 01 inside, 10 above)
    bit 9..7    : reserved
    bit 6..0    : CODE
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..errors import CodingError
from .constants import MAX_CODE
from .safety import FailureKind
from .window_comparator import ComparatorState

__all__ = ["ControlRegister", "StatusRegister"]

_COMPARATOR_CODES = {
    ComparatorState.BELOW: 0b00,
    ComparatorState.INSIDE: 0b01,
    ComparatorState.ABOVE: 0b10,
}
_COMPARATOR_FROM_CODE = {v: k for k, v in _COMPARATOR_CODES.items()}

_FAILURE_BITS = {
    FailureKind.MISSING_OSCILLATION: 14,
    FailureKind.LOW_AMPLITUDE: 13,
    FailureKind.ASYMMETRY: 12,
}


@dataclass(frozen=True)
class ControlRegister:
    """Enable / test-mode control word."""

    enable: bool = False
    forced_code: int = 0
    force_code_mode: bool = False
    freeze_regulation: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.forced_code <= MAX_CODE:
            raise CodingError(f"forced code {self.forced_code} out of range")

    def pack(self) -> int:
        """(main << 8) | extended, as two bytes."""
        main = (int(self.enable) << 7) | self.forced_code
        ext = int(self.force_code_mode) | (int(self.freeze_regulation) << 1)
        return (main << 8) | ext

    @classmethod
    def unpack(cls, word: int) -> "ControlRegister":
        if not 0 <= word <= 0xFFFF:
            raise CodingError("control word outside 16 bits")
        main = (word >> 8) & 0xFF
        ext = word & 0xFF
        if ext & ~0b11:
            raise CodingError("reserved control bits must be zero")
        return cls(
            enable=bool(main & 0x80),
            forced_code=main & 0x7F,
            force_code_mode=bool(ext & 0b01),
            freeze_regulation=bool(ext & 0b10),
        )


@dataclass(frozen=True)
class StatusRegister:
    """Read-only status snapshot of the driver."""

    code: int
    comparator: ComparatorState
    failures: frozenset

    def __init__(self, code: int, comparator: ComparatorState, failures: Set[FailureKind] = frozenset()):
        if not 0 <= code <= MAX_CODE:
            raise CodingError(f"code {code} out of range")
        object.__setattr__(self, "code", int(code))
        object.__setattr__(self, "comparator", comparator)
        object.__setattr__(self, "failures", frozenset(failures))

    @property
    def any_failure(self) -> bool:
        return bool(self.failures)

    def pack(self) -> int:
        word = self.code & 0x7F
        word |= _COMPARATOR_CODES[self.comparator] << 10
        for kind, bit in _FAILURE_BITS.items():
            if kind in self.failures:
                word |= 1 << bit
        if self.any_failure:
            word |= 1 << 15
        return word

    @classmethod
    def unpack(cls, word: int) -> "StatusRegister":
        if not 0 <= word <= 0xFFFF:
            raise CodingError("status word outside 16 bits")
        comparator_code = (word >> 10) & 0b11
        if comparator_code not in _COMPARATOR_FROM_CODE:
            raise CodingError(f"invalid comparator field {comparator_code:#04b}")
        failures = {
            kind for kind, bit in _FAILURE_BITS.items() if word & (1 << bit)
        }
        status = cls(
            code=word & 0x7F,
            comparator=_COMPARATOR_FROM_CODE[comparator_code],
            failures=failures,
        )
        # Consistency: the summary bit must match the detail bits.
        if bool(word & (1 << 15)) != status.any_failure:
            raise CodingError("ANY_FAILURE bit inconsistent with flags")
        return status

    @classmethod
    def from_system_trace(cls, trace) -> "StatusRegister":
        """Snapshot the end state of a SystemTrace."""
        comparator = ComparatorState.INSIDE
        if trace.regulation_events:
            comparator = trace.regulation_events[-1].comparator
        return cls(
            code=trace.final_code,
            comparator=comparator,
            failures=set(trace.failures),
        )
