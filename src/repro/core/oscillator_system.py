"""Whole-system behavioural model of the oscillator driver.

This is the model behind the regulation-loop experiments (Fig 15/16 at
envelope resolution, the §9 consumption sweep, and the §7 FMEA
campaign).  It couples:

* the envelope dynamics of the external tank (:mod:`repro.envelope`),
* the code-dependent driver limiter (:mod:`repro.core.driver_iv`),
* the amplitude detector and its filter lag,
* the 1 ms regulation state machine,
* the startup sequencer (POR code 105 → NVM preset),
* the safety monitors and their failure reaction.

The simulation is multi-rate: the envelope ODE is integrated with an
internal step bounded by the tank's ring time constant, while the
digital loop runs at the regulation period.  A quasi-equilibrium
shortcut freezes the integration once the envelope has converged for
the active code, so second-long runs stay cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.waveform import Waveform
from ..envelope.describing import LimiterCharacteristic
from ..envelope.dynamics import small_signal_growth_rate, steady_state_amplitude
from ..envelope.tank import RLCTank
from ..errors import ConfigurationError, SimulationError
from ..mc.mismatch import MismatchProfile
from ..digital.nvm import NonVolatileMemory
from .amplitude_detector import AmplitudeDetector
from .constants import (
    I_LSB,
    MAX_CODE,
    MAX_RELATIVE_STEP,
    NVM_READ_DELAY,
    POR_CODE,
    REGULATION_PERIOD,
)
from .design_equations import current_limit_for_rms
from .driver_iv import DEFAULT_GM_UNIT, DriverIV
from .regulation_loop import RegulationLoop
from .safety import FailureKind, SafetyConfig, SafetyMonitors, SafetyReaction
from .segments import code_for_factor
from .startup import StartupSequencer
from .window_comparator import WindowComparator, design_window

__all__ = ["OscillatorConfig", "PlantState", "SystemTrace", "OscillatorDriverSystem"]

#: A fault mutator receives the running system and changes its plant.
FaultMutator = Callable[["OscillatorDriverSystem"], None]


@dataclass
class OscillatorConfig:
    """Configuration of the complete oscillator driver system."""

    tank: RLCTank
    #: Regulation target, peak differential volts (2.7 Vpp -> 1.35 V).
    target_peak_amplitude: float = 1.35
    i_lsb: float = I_LSB
    gm_unit: float = DEFAULT_GM_UNIT
    mismatch: Optional[MismatchProfile] = None
    #: NVM preset code; None derives it from the design equations.
    nvm_code: Optional[int] = None
    por_code: int = POR_CODE
    nvm_delay: float = NVM_READ_DELAY
    regulation_period: float = REGULATION_PERIOD
    #: Window width margin over the worst-case DAC step (must be > 1).
    window_margin: float = 1.3
    detector_tau: float = 50e-6
    safety: SafetyConfig = field(default_factory=SafetyConfig)
    seed_amplitude: float = 1e-4
    #: Envelope/detector sub-steps per regulation period.
    substeps_per_tick: int = 10
    #: Fixed analog overhead (references, comparators, Vref buffer).
    bias_current: float = 130e-6
    #: RMS noise added to the detector voltage at each comparator
    #: sampling instant (models comparator input noise + residual
    #: detector ripple).  The window design absorbs it.
    detector_noise_rms: float = 0.0
    #: Seed for the detector-noise generator (reproducible runs).
    noise_seed: int = 20050307

    def __post_init__(self) -> None:
        if self.detector_noise_rms < 0:
            raise ConfigurationError("detector_noise_rms must be >= 0")
        if self.target_peak_amplitude <= 0:
            raise ConfigurationError("target amplitude must be positive")
        if self.substeps_per_tick < 1:
            raise ConfigurationError("substeps_per_tick must be >= 1")
        if self.window_margin <= 1.0:
            raise ConfigurationError("window_margin must exceed 1")
        if self.bias_current < 0:
            raise ConfigurationError("bias_current must be >= 0")

    def derived_nvm_code(self) -> int:
        """Code whose current limit hits the target amplitude (Eq 4)."""
        v_rms = self.target_peak_amplitude / math.sqrt(2.0)
        i_needed = current_limit_for_rms(self.tank, v_rms)
        return code_for_factor(i_needed / self.i_lsb)


@dataclass
class PlantState:
    """Mutable state of the *external* world (tank + fault effects).

    Fault mutators act on this object; the system re-derives limiter
    caches when it changes.
    """

    tank: RLCTank
    #: False once a hard fault (open coil, pin short) kills resonance.
    oscillation_possible: bool = True
    #: Per-pin amplitude split: (A1, A2) = (split, 2-split) * A/2.
    #: 1.0 means symmetric; a failed Cosc makes it asymmetric (§7).
    amplitude_split: float = 1.0
    #: Supply present (False models loss of Vdd of this system).
    supply_ok: bool = True
    #: Decay time constant used when oscillation is impossible.
    kill_tau: float = 2e-6
    version: int = 0

    def touch(self) -> None:
        self.version += 1

    def set_tank(self, tank: RLCTank) -> None:
        self.tank = tank
        self.touch()

    def kill_oscillation(self) -> None:
        self.oscillation_possible = False
        self.touch()

    def set_amplitude_split(self, split: float) -> None:
        if not 0.0 <= split <= 2.0:
            raise ConfigurationError("amplitude split must be in [0, 2]")
        self.amplitude_split = split
        self.touch()

    def lose_supply(self) -> None:
        self.supply_ok = False
        self.touch()


@dataclass
class SystemTrace:
    """Recorded behaviour of one run."""

    t: np.ndarray
    amplitude: np.ndarray
    code: np.ndarray
    detector: np.ndarray
    supply_current: np.ndarray
    failures: Dict[FailureKind, float]
    final_code: int
    regulation_events: list

    def amplitude_waveform(self) -> Waveform:
        return Waveform(self.t, self.amplitude, name="amplitude")

    def code_waveform(self) -> Waveform:
        return Waveform(self.t, self.code.astype(float), name="code")

    def detector_waveform(self) -> Waveform:
        return Waveform(self.t, self.detector, name="detector")

    def supply_current_waveform(self) -> Waveform:
        return Waveform(self.t, self.supply_current, name="i_supply")

    @property
    def final_amplitude(self) -> float:
        return float(self.amplitude[-1])

    @property
    def mean_supply_current(self) -> float:
        """Time-averaged supply current over the last half of the run."""
        half = len(self.t) // 2
        return float(np.mean(self.supply_current[half:]))

    def failure_detected(self, kind: FailureKind) -> bool:
        return kind in self.failures

    @property
    def any_failure(self) -> bool:
        return bool(self.failures)


class OscillatorDriverSystem:
    """The complete regulated oscillator driver (behavioural)."""

    def __init__(self, config: OscillatorConfig):
        self.config = config
        self.driver = DriverIV(
            i_lsb=config.i_lsb,
            gm_unit=config.gm_unit,
            mismatch=config.mismatch,
        )
        self.detector = AmplitudeDetector(tau=config.detector_tau)
        detector_target = self.detector.target_for_amplitude(
            config.target_peak_amplitude
        )
        self.window: WindowComparator = design_window(
            detector_target,
            max_relative_step=MAX_RELATIVE_STEP,
            margin=config.window_margin,
        )
        nvm = NonVolatileMemory()
        nvm_code = (
            config.nvm_code if config.nvm_code is not None else config.derived_nvm_code()
        )
        if not 0 <= nvm_code <= MAX_CODE:
            raise ConfigurationError(f"nvm code {nvm_code} out of range")
        nvm.program_amplitude_code(nvm_code)
        self.startup = StartupSequencer(
            nvm=nvm, por_code=config.por_code, nvm_delay=config.nvm_delay
        )
        self.loop = RegulationLoop(
            comparator=self.window,
            initial_code=nvm_code,
            period=config.regulation_period,
        )
        self.monitors = SafetyMonitors(
            config=config.safety, detector_target=detector_target
        )
        self.reaction = SafetyReaction()
        self.plant = PlantState(tank=config.tank)
        # Per-(code, plant-version) limiter cache with derived rates.
        self._cache: Dict[Tuple[int, int], Tuple[LimiterCharacteristic, float, float]] = {}

    # -- cached per-code quantities --------------------------------------------

    def _limiter_info(self, code: int) -> Tuple[LimiterCharacteristic, float, float]:
        """(limiter, steady_state_amplitude, max_rate) for a code."""
        key = (code, self.plant.version)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        limiter = self.driver.limiter(code)
        tank = self.plant.tank
        try:
            a_ss = steady_state_amplitude(tank, limiter)
        except Exception:
            a_ss = 0.0
        growth = abs(small_signal_growth_rate(tank, limiter.gm))
        ring = 1.0 / tank.ring_down_tau()
        max_rate = max(growth, ring)
        info = (limiter, a_ss, max_rate)
        self._cache[key] = info
        return info

    # -- envelope integration ------------------------------------------------------

    def _advance_envelope(self, amplitude: float, code: int, dt: float) -> float:
        """Integrate the envelope ODE over ``dt`` for a fixed code."""
        if not self.plant.oscillation_possible or not self.plant.supply_ok:
            # Hard fault or dead supply: tank rings down fast (the kill
            # tau lumps de-tuned/damped decay).
            return amplitude * math.exp(-dt / self.plant.kill_tau)
        limiter, a_ss, max_rate = self._limiter_info(code)
        # Quasi-equilibrium shortcut.
        if a_ss > 0.0 and abs(amplitude - a_ss) <= 1e-9 * a_ss:
            return a_ss
        tank = self.plant.tank
        two_c = 2.0 * tank.differential_capacitance
        rp = tank.parallel_resistance

        def rate(a: float) -> float:
            if a <= 0.0:
                return 0.0
            return (limiter.fundamental(a) - a / rp) / two_c

        n_sub = max(1, int(math.ceil(dt * max_rate / 0.2)))
        h = dt / n_sub
        a = max(amplitude, 0.0)
        for _ in range(n_sub):
            k1 = rate(a)
            k2 = rate(max(a + 0.5 * h * k1, 0.0))
            k3 = rate(max(a + 0.5 * h * k2, 0.0))
            k4 = rate(max(a + h * k3, 0.0))
            a = max(a + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4), 0.0)
            # Snap onto the equilibrium when overshooting across it.
            if a_ss > 0.0 and abs(a - a_ss) <= 1e-9 * a_ss:
                return a_ss
        return a

    def _supply_current(self, amplitude: float, code: int) -> float:
        """Driver + bias supply current at the present operating point."""
        if not self.plant.supply_ok:
            return 0.0
        limiter, _a_ss, _rate = self._limiter_info(code)
        return self.config.bias_current + limiter.mean_abs(amplitude)

    # -- the run loop -----------------------------------------------------------------

    def run(
        self,
        t_stop: float,
        faults: Optional[Sequence[Tuple[float, FaultMutator]]] = None,
        initial_amplitude: Optional[float] = None,
    ) -> SystemTrace:
        """Simulate from enable (t = 0) to ``t_stop``.

        ``faults`` is a sequence of (time, mutator) pairs applied once
        when the simulation time crosses each fault time.
        """
        if t_stop <= 0:
            raise SimulationError("t_stop must be positive")
        config = self.config
        dt = config.regulation_period / config.substeps_per_tick
        n_steps = int(round(t_stop / dt))
        if n_steps < 1:
            raise SimulationError("t_stop shorter than one sub-step")
        pending_faults = sorted(faults or [], key=lambda pair: pair[0])
        fault_index = 0
        noise_rng = np.random.default_rng(config.noise_seed)

        self.startup.enable(0.0)
        self.monitors.arm(0.0)
        self.detector.reset(0.0)
        amplitude = (
            config.seed_amplitude if initial_amplitude is None else initial_amplitude
        )

        times = np.empty(n_steps + 1)
        amplitudes = np.empty(n_steps + 1)
        codes = np.empty(n_steps + 1, dtype=int)
        detector_values = np.empty(n_steps + 1)
        supply = np.empty(n_steps + 1)

        regulation_started = False
        next_tick = config.regulation_period
        code = self.startup.code_at(0.0)

        times[0] = 0.0
        amplitudes[0] = amplitude
        codes[0] = code
        detector_values[0] = self.detector.output
        supply[0] = self._supply_current(amplitude, code)

        for step in range(1, n_steps + 1):
            t = step * dt
            # Apply any scheduled faults crossed by this step.
            while (
                fault_index < len(pending_faults)
                and pending_faults[fault_index][0] <= t
            ):
                pending_faults[fault_index][1](self)
                fault_index += 1
            # Active code: startup sequencer until regulation begins.
            if regulation_started:
                code = self.loop.code
            else:
                code = self.startup.code_at(t)
            amplitude = self._advance_envelope(amplitude, code, dt)
            powered = self.plant.supply_ok
            if powered:
                # An unpowered chip cannot observe anything: its own
                # detection of a supply loss is a *system level* job
                # (§7); the on-chip monitors and the digital loop
                # freeze with the supply.
                self.detector.update(amplitude, dt)
                self.monitors.observe_oscillation(t, amplitude)

            if t + 1e-15 >= next_tick:
                if powered:
                    regulation_started = True
                    detector_sample = self.detector.output
                    if config.detector_noise_rms > 0.0:
                        detector_sample += config.detector_noise_rms * float(
                            noise_rng.standard_normal()
                        )
                    a1 = amplitude * 0.5 * self.plant.amplitude_split
                    a2 = amplitude * 0.5 * (2.0 - self.plant.amplitude_split)
                    self.monitors.observe_tick(
                        t,
                        detector_sample,
                        amplitude_lc1=a1,
                        amplitude_lc2=a2,
                    )
                    if self.monitors.any_failure and self.reaction.force_max_code:
                        self.loop.set_code(self.reaction.forced_code())
                    else:
                        self.loop.tick(t, detector_sample)
                    code = self.loop.code
                next_tick += config.regulation_period

            times[step] = t
            amplitudes[step] = amplitude
            codes[step] = code
            detector_values[step] = self.detector.output
            supply[step] = self._supply_current(amplitude, code)

        return SystemTrace(
            t=times,
            amplitude=amplitudes,
            code=codes,
            detector=detector_values,
            supply_current=supply,
            failures=dict(self.monitors._first_detection),
            final_code=int(codes[-1]),
            regulation_events=list(self.loop.history),
        )
