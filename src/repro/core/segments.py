"""The 8-segment piece-wise-linear exponential law (Fig 3, Table 1).

The 7-bit DAC code ``n`` splits into a 3-bit segment ``s = n >> 4`` and
a 4-bit mantissa ``B = n & 15``.  The multiplication factor is::

    M(n) = B                      for segment 0
    M(n) = (16 + B) * 2**(s-1)    for segments 1..7

which approximates the exponential ``I0 * (1+delta)**n`` required for a
constant *relative* amplitude step (Eq 5/6) with a constant *absolute*
step inside each segment — exactly the segmented mu-law idea the paper
cites [4].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import CodingError
from .constants import MANTISSA_BITS, MAX_CODE, N_CODES

__all__ = [
    "Segment",
    "SEGMENTS",
    "split_code",
    "join_code",
    "segment_of_code",
    "multiplication_factor",
    "relative_step",
    "all_multiplication_factors",
    "code_for_factor",
]

_MANTISSA_MASK = (1 << MANTISSA_BITS) - 1


@dataclass(frozen=True)
class Segment:
    """One row of Table 1 (static part).

    Attributes mirror the table columns: the per-code step, the factor
    range covered, the prescaler setting, and how many Gm stages are
    active.
    """

    index: int
    step: int
    range_min: int
    range_max: int
    prescale: int
    active_gm_stages: int

    @property
    def code_min(self) -> int:
        return self.index << MANTISSA_BITS

    @property
    def code_max(self) -> int:
        return self.code_min + _MANTISSA_MASK


#: Table 1, static columns.  step = 1,1,2,4,8,16,32,64;
#: prescaler output = 1,1,2,2,4,4,8,8; active Gm stages = 1,2,2,3,3,5,5,9.
SEGMENTS: Tuple[Segment, ...] = (
    Segment(0, 1, 0, 15, 1, 1),
    Segment(1, 1, 16, 31, 1, 2),
    Segment(2, 2, 32, 62, 2, 2),
    Segment(3, 4, 64, 124, 2, 3),
    Segment(4, 8, 128, 248, 4, 3),
    Segment(5, 16, 256, 496, 4, 5),
    Segment(6, 32, 512, 992, 8, 5),
    Segment(7, 64, 1024, 1984, 8, 9),
)


def _check_code(code: int) -> int:
    if not isinstance(code, (int,)) or isinstance(code, bool):
        raise CodingError(f"code must be an int, got {type(code).__name__}")
    if not 0 <= code <= MAX_CODE:
        raise CodingError(f"code {code} outside 0..{MAX_CODE}")
    return int(code)


def split_code(code: int) -> Tuple[int, int]:
    """Split a 7-bit code into (segment, mantissa)."""
    code = _check_code(code)
    return code >> MANTISSA_BITS, code & _MANTISSA_MASK


def join_code(segment: int, mantissa: int) -> int:
    """Inverse of :func:`split_code`."""
    if not 0 <= segment < len(SEGMENTS):
        raise CodingError(f"segment {segment} outside 0..{len(SEGMENTS) - 1}")
    if not 0 <= mantissa <= _MANTISSA_MASK:
        raise CodingError(f"mantissa {mantissa} outside 0..{_MANTISSA_MASK}")
    return (segment << MANTISSA_BITS) | mantissa


def segment_of_code(code: int) -> Segment:
    """The :class:`Segment` a code belongs to."""
    seg, _b = split_code(code)
    return SEGMENTS[seg]


def multiplication_factor(code: int) -> int:
    """Ideal multiplication factor ``M(n)`` of Fig 3."""
    seg, mantissa = split_code(code)
    if seg == 0:
        return mantissa
    return (16 + mantissa) * (1 << (seg - 1))


def relative_step(code: int) -> float:
    """Relative factor step ``(M(n) - M(n-1)) / M(n-1)`` (Fig 4).

    Defined for codes >= 2 (M(0) = 0 and M(1) = 1 give an infinite /
    100 % step which the paper's Fig 4 also omits).
    """
    code = _check_code(code)
    if code < 2:
        raise CodingError("relative step defined for codes >= 2")
    previous = multiplication_factor(code - 1)
    return (multiplication_factor(code) - previous) / previous


def all_multiplication_factors() -> List[int]:
    """M(n) for every code 0..127 (the Fig 3 curve)."""
    return [multiplication_factor(code) for code in range(N_CODES)]


def code_for_factor(target: float) -> int:
    """Smallest code whose factor is >= ``target`` (clamped to 127).

    Handy for picking an NVM preset from a desired current limit.
    """
    if target <= 0:
        return 0
    for code in range(N_CODES):
        if multiplication_factor(code) >= target:
            return code
    return MAX_CODE
