"""Mid-supply reference buffer (paper §6).

"The Vref point is connected to the middle of the supply voltage to
control the DC operating point of the oscillator.  To keep the DC
operating point constant when the oscillator in dual system mode is
overdriven from the other system, despite additional power consumption
(typically 120 uA) a transimpedance amplifier is used with two output
stages working in class A."

The behavioural model: a transimpedance buffer holding ``Vdd/2`` with
finite output resistance, class-A source/sink limits, and a quiescent
consumption that rises by the overdrive current (class A: the stage
conducts the injected current on top of its bias).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["VrefBuffer", "OVERDRIVE_CONSUMPTION_TYPICAL"]

#: Paper §6: "additional power consumption (typically 120 uA)".
OVERDRIVE_CONSUMPTION_TYPICAL = 120e-6


@dataclass
class VrefBuffer:
    """Class-A mid-supply buffer with transimpedance regulation.

    Parameters
    ----------
    vdd:
        Supply voltage; the reference sits at ``vdd/2``.
    output_resistance:
        Closed-loop output resistance of the transimpedance stage.
    class_a_limit:
        Maximum current each output stage can source or sink while
        staying in class A; beyond it the reference starts to slip.
    quiescent_current:
        Bias consumption with no injected current.
    """

    vdd: float = 3.3
    output_resistance: float = 50.0
    class_a_limit: float = 250e-6
    quiescent_current: float = 40e-6

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        if self.output_resistance <= 0:
            raise ConfigurationError("output_resistance must be positive")
        if self.class_a_limit <= 0:
            raise ConfigurationError("class_a_limit must be positive")
        if self.quiescent_current < 0:
            raise ConfigurationError("quiescent_current must be >= 0")

    @property
    def nominal_vref(self) -> float:
        return self.vdd / 2.0

    def output_voltage(self, injected_current: float) -> float:
        """Vref under an injected (overdrive) DC current.

        Positive ``injected_current`` flows *into* the Vref pin (the
        buffer must sink it).  Within the class-A limit the reference
        moves only by ``i * Rout``; beyond the limit the stage runs out
        of bias and the excess current slips the node hard (modelled
        with a 20x higher incremental resistance).
        """
        i = injected_current
        limit = self.class_a_limit
        if abs(i) <= limit:
            return self.nominal_vref - i * self.output_resistance
        excess = abs(i) - limit
        drop = limit * self.output_resistance + excess * 20.0 * self.output_resistance
        return self.nominal_vref - drop * (1.0 if i > 0 else -1.0)

    def supply_current(self, injected_current: float) -> float:
        """Total buffer consumption under overdrive.

        Class A: the stage carries the injected current on top of the
        quiescent bias (clamped at the class-A limit — beyond it the
        stage cannot conduct more).
        """
        conducted = min(abs(injected_current), self.class_a_limit)
        return self.quiescent_current + conducted

    def regulation_ok(self, injected_current: float, tolerance: float = 0.1) -> bool:
        """Is the DC operating point held within ``tolerance`` volts?"""
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        return abs(self.output_voltage(injected_current) - self.nominal_vref) <= tolerance

    def typical_overdrive_consumption(self) -> float:
        """Consumption at the paper's typical overdrive (§6)."""
        return self.supply_current(OVERDRIVE_CONSUMPTION_TYPICAL)
