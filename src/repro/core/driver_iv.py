"""Static driver output characteristic (Fig 2) and its code dependence.

The driver behaves as a transconductor that is linear for small
differential voltages and limits at ``±IM`` (Fig 2).  ``IM`` is set by
the DAC code; the small-signal slope is set by the number of active Gm
stages (Table 1), so both are functions of the code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..envelope.describing import HardLimiter, LimiterCharacteristic, TanhLimiter
from ..errors import CodingError
from ..mc.mismatch import MismatchProfile
from .constants import I_LSB
from .control_bus import encode
from .dac import HardwareDAC
from .gm_block import GmBlock
from .segments import multiplication_factor

__all__ = ["DriverIV", "driver_limiter_for_code", "static_iv_curve"]

#: Default transconductance of one unit Gm stage.  Chosen so that all
#: nine stages give the paper's "equivalent transconductance up to
#: around 10 mS" (§9): 9 * 1.2 mS ≈ 10.8 mS.
DEFAULT_GM_UNIT = 1.2e-3


class DriverIV:
    """Code-dependent driver I–V characteristic factory."""

    def __init__(
        self,
        i_lsb: float = I_LSB,
        gm_unit: float = DEFAULT_GM_UNIT,
        mismatch: Optional[MismatchProfile] = None,
        smooth: bool = False,
    ):
        self.dac = HardwareDAC(i_lsb=i_lsb, gm_unit=gm_unit, mismatch=mismatch)
        self.smooth = bool(smooth)

    def limiter(self, code: int) -> LimiterCharacteristic:
        """The limiter (gm, IM) realized at a DAC code.

        Code 0 has zero output current; a tiny floor current keeps the
        limiter object valid (the oscillator cannot start there, which
        is the physically correct behaviour).
        """
        i_max = self.dac.current(code)
        if i_max <= 0.0:
            i_max = 1e-12
        gm = self.dac.transconductance(code)
        cls = TanhLimiter if self.smooth else HardLimiter
        return cls(gm=gm, i_max=i_max)


def driver_limiter_for_code(
    code: int,
    i_lsb: float = I_LSB,
    gm_unit: float = DEFAULT_GM_UNIT,
    smooth: bool = False,
) -> LimiterCharacteristic:
    """Convenience: the ideal limiter for a code (no mismatch)."""
    factor = multiplication_factor(code)
    i_max = max(factor * i_lsb, 1e-12)
    stages = encode(code).active_gm_stages
    gm = GmBlock(gm_unit=gm_unit).gm_unit * stages
    cls = TanhLimiter if smooth else HardLimiter
    return cls(gm=gm, i_max=i_max)


def static_iv_curve(
    limiter: LimiterCharacteristic,
    v_max: float,
    n: int = 201,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sampled static I–V curve (the Fig 2 plot).

    Returns (v, i) arrays spanning ``[-v_max, +v_max]``.
    """
    if v_max <= 0:
        raise CodingError("v_max must be positive")
    v = np.linspace(-v_max, v_max, n)
    return v, limiter.sample(v)
