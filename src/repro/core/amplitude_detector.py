"""Amplitude detection (Fig 8): full-wave rectification and filtering.

Each LC pin swings ``A/2`` around the mid-point voltage VR1 for a peak
differential amplitude ``A``.  Full-wave rectifying both pins against
VR1 and low-pass filtering yields a DC value of ``(2/pi) * (A/2)``
above VR1 — the detector gain is ``1/pi`` per volt of differential
peak amplitude.

The on-chip RC filter is modelled as a single pole so the regulation
loop sees realistic detector lag.  The same synchronous-rectification
principle applied to the *mid-point* VR0 gives the asymmetry detector
of §7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["AmplitudeDetector", "AsymmetryDetector", "DETECTOR_GAIN"]

#: DC output per volt of peak differential amplitude: (2/pi) * (1/2).
DETECTOR_GAIN = 1.0 / math.pi


@dataclass
class AmplitudeDetector:
    """Rectifier + single-pole filter producing the detector voltage.

    Parameters
    ----------
    gain:
        DC output per volt of peak differential amplitude.
    tau:
        Filter time constant; 0 gives an ideal (instant) detector.
    """

    gain: float = DETECTOR_GAIN
    tau: float = 50e-6
    _state: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError("detector gain must be positive")
        if self.tau < 0:
            raise ConfigurationError("detector tau must be >= 0")

    def reset(self, value: float = 0.0) -> None:
        self._state = float(value)

    @property
    def output(self) -> float:
        """Current (filtered) detector voltage."""
        return self._state

    def target_for_amplitude(self, peak_amplitude: float) -> float:
        """Detector DC value for a steady peak amplitude."""
        if peak_amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        return self.gain * peak_amplitude

    def amplitude_for_output(self, detector_voltage: float) -> float:
        """Invert the detector gain (used to design window thresholds)."""
        return detector_voltage / self.gain

    def update(self, peak_amplitude: float, dt: float) -> float:
        """Advance the filter by ``dt`` with the given input amplitude."""
        if dt < 0:
            raise ConfigurationError("dt must be >= 0")
        target = self.target_for_amplitude(peak_amplitude)
        if self.tau == 0.0 or dt == 0.0:
            self._state = target
        else:
            alpha = 1.0 - math.exp(-dt / self.tau)
            self._state += alpha * (target - self._state)
        return self._state

    def ripple(self, peak_amplitude: float, carrier_frequency: float) -> float:
        """Residual ripple amplitude on the detector output.

        A full-wave rectified sine has its first ripple component at
        ``2 f_carrier`` with amplitude ``(2/3)`` of the DC value (the
        k=1 term of the rectified-sine Fourier series); the RC filter
        attenuates it by its single pole::

            ripple ≈ (2/3) * V_dc / (2π * 2 f_c * tau)

        (high-frequency asymptote).  The regulation window must exceed
        the worst-case DAC step *plus* this ripple plus comparator
        noise — the margin the ``design_window`` factor provides.
        """
        if carrier_frequency <= 0:
            raise ConfigurationError("carrier frequency must be positive")
        v_dc = self.target_for_amplitude(peak_amplitude)
        if self.tau == 0.0:
            return (2.0 / 3.0) * v_dc
        attenuation = 2.0 * math.pi * (2.0 * carrier_frequency) * self.tau
        return (2.0 / 3.0) * v_dc / max(attenuation, 1.0)


@dataclass
class AsymmetryDetector:
    """Mid-point synchronous rectifier (§7, third bullet).

    If one of the external capacitors fails, the amplitudes on LC1 and
    LC2 differ and the mid-point VR0 is no longer DC; synchronous
    rectification of its ripple yields ``(2/pi) * |A1 - A2| / 2``,
    which is compared against a reference.
    """

    gain: float = 2.0 / math.pi
    threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError("gain must be positive")
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")

    def output(self, amplitude_lc1: float, amplitude_lc2: float) -> float:
        """Rectified mid-point ripple for per-pin peak amplitudes."""
        if amplitude_lc1 < 0 or amplitude_lc2 < 0:
            raise ConfigurationError("amplitudes must be non-negative")
        ripple_peak = 0.5 * abs(amplitude_lc1 - amplitude_lc2)
        return self.gain * ripple_peak

    def asymmetric(self, amplitude_lc1: float, amplitude_lc2: float) -> bool:
        return self.output(amplitude_lc1, amplitude_lc2) > self.threshold
