"""Startup sequencing (§4, last paragraph).

At power-on-reset the current limitation is preset to code 105 — below
the maximum code but high enough to start the oscillator even when the
application will finally need the full amplitude, and drawing only
about 40 % of the maximum current during startup.  A few microseconds
later the NVM is read and the code jumps to the application preset,
which speeds up amplitude settling; regulation then takes over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..digital.nvm import NonVolatileMemory
from ..errors import ConfigurationError
from .constants import NVM_READ_DELAY, POR_CODE
from .segments import multiplication_factor

__all__ = ["StartupPhase", "StartupSequencer", "startup_current_fraction"]


def startup_current_fraction(por_code: int = POR_CODE) -> float:
    """Current at the POR preset relative to the maximum code.

    The paper quotes "approx. 40 % of the maximum current consumption";
    code 105 gives M(105)/M(127) = 832/1984 ≈ 0.42.
    """
    return multiplication_factor(por_code) / multiplication_factor(127)


class StartupPhase(enum.Enum):
    DISABLED = "disabled"
    POR_PRESET = "por-preset"
    NVM_PRESET = "nvm-preset"
    REGULATING = "regulating"


@dataclass
class StartupSequencer:
    """Time-driven code source during the startup sequence.

    Call :meth:`enable` at t0, then :meth:`phase_at`/:meth:`code_at`
    with simulation time.  After ``nvm_delay`` the code is the NVM
    preset; regulation (external) should take over from the first
    regulation tick, at which point callers stop consulting the
    sequencer.
    """

    nvm: NonVolatileMemory
    por_code: int = POR_CODE
    nvm_delay: float = NVM_READ_DELAY

    def __post_init__(self) -> None:
        if not 0 <= self.por_code <= 127:
            raise ConfigurationError("POR code must be 7-bit")
        if self.nvm_delay < 0:
            raise ConfigurationError("nvm_delay must be >= 0")
        self._enable_time: Optional[float] = None

    def enable(self, time: float) -> None:
        self._enable_time = float(time)

    def disable(self) -> None:
        self._enable_time = None

    @property
    def enabled(self) -> bool:
        return self._enable_time is not None

    def phase_at(self, time: float) -> StartupPhase:
        if self._enable_time is None or time < self._enable_time:
            return StartupPhase.DISABLED
        if time < self._enable_time + self.nvm_delay:
            return StartupPhase.POR_PRESET
        return StartupPhase.NVM_PRESET

    def code_at(self, time: float) -> int:
        """The forced code during startup (0 when disabled)."""
        phase = self.phase_at(time)
        if phase is StartupPhase.DISABLED:
            return 0
        if phase is StartupPhase.POR_PRESET:
            return self.por_code
        return self.nvm.read_amplitude_code()
