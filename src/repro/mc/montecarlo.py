"""Monte-Carlo campaign runner over mismatch instances.

Sample execution is delegated to the shared batch-campaign engine
(:mod:`repro.campaigns`).  For *plain* metrics (one profile in, one
value out) scheduling can never change the statistics: sample ``i``
always uses seed ``base_seed + i``, results always come back in
sample order, and any sample can be reproduced in isolation —
whatever :class:`~repro.campaigns.BatchOptions` policy ran it.

Warm-started chains
-------------------
MC campaigns draw *nearby* parameter perturbations, so consecutive
samples usually converge to nearby operating points.  A metric that
opts in via :func:`chain_metric` receives the previous sample's carry
(typically its converged DC solution) and returns its own, and the
campaign is routed through :func:`~repro.campaigns.run_chain` — each
Newton solve starts from the last answer instead of from scratch.

The carry deliberately trades the scheduling-independence guarantee
for speed: a warm-started solve may converge within tolerance to a
(slightly or, for multistable circuits, genuinely) different solution
than a cold one, so a chain metric's values can depend on whether the
chain actually ran.  Warm starting is therefore explicit (the
decorator) and avoidable (``warm_start=False``); a parallel ``batch``
policy also forces every sample cold, because no sequential carry
exists across worker processes.  Cold runs — plain metrics, opted-out
chains, parallel chains — are always bitwise reproducible per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..campaigns import BatchOptions, run_batch, run_chain
from ..errors import BatchTaskError, ConfigurationError
from .mismatch import DEFAULT_SIGMAS, MismatchProfile, MismatchSigmas

__all__ = ["MonteCarloResult", "run_monte_carlo", "chain_metric"]

F = TypeVar("F", bound=Callable)


def chain_metric(func: F) -> F:
    """Mark a metric as warm-startable.

    The metric must accept ``(profile, carry)`` and return
    ``(value, carry)``; the carry of sample ``i`` seeds sample
    ``i + 1`` (the first sample receives ``None``).  Anything picklable
    works as a carry — the converged DC solution vector is the usual
    choice.
    """
    func.supports_carry = True
    return func


@dataclass
class MonteCarloResult:
    """Per-sample metric values with summary statistics.

    ``waveforms`` is populated by campaigns that stream full
    trajectories (a :class:`~repro.campaigns.vectorized.
    TransientMetricSpec` with a ``waveform`` extractor): one
    :class:`~repro.analysis.waveform.Waveform` per sample, in seed
    order, which is what turns a scalar Monte-Carlo summary into
    amplitude percentile *bands* (:meth:`envelope_quantiles`).
    """

    metric_name: str
    values: np.ndarray
    seeds: List[int]
    #: One streamed waveform per sample (None for scalar campaigns).
    waveforms: Optional[List] = None
    #: Aggregated :class:`~repro.circuits.health.HealthReport` records
    #: across the campaign, each with ``sample`` remapped to the
    #: campaign's global sample index.  Empty when the health layer was
    #: disarmed (no guards/certify/preflight) or nothing was flagged.
    health: List = field(default_factory=list)

    def health_for(self, sample: int) -> List:
        """The health reports attributed to one sample."""
        return [r for r in self.health if r.sample == sample]

    @property
    def n(self) -> int:
        return int(self.values.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.values, q))

    def fraction_true(self) -> float:
        """For boolean metrics: fraction of samples that were truthy."""
        return float(np.mean(self.values != 0.0))

    def summary(self) -> str:
        return (
            f"{self.metric_name}: n={self.n} mean={self.mean:.6g} "
            f"std={self.std:.3g} min={self.values.min():.6g} "
            f"max={self.values.max():.6g}"
        )

    def envelope_quantiles(
        self, q: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Amplitude percentile bands from the streamed waveforms.

        Extracts each sample's peak envelope, interpolates every
        envelope onto the first sample's time grid (lockstep campaigns
        share it already), and returns ``(t, bands)`` where
        ``bands[j]`` is the ``q[j]`` quantile of the envelope across
        samples at each time point — the campaign-level "startup
        amplitude spread" picture the scalar summary cannot give.
        """
        if not self.waveforms:
            raise ConfigurationError(
                "no waveforms were streamed; run the campaign with a "
                "TransientMetricSpec carrying a waveform extractor"
            )
        from ..analysis import envelope_by_peaks

        t = self.waveforms[0].t
        envelopes = np.empty((len(self.waveforms), t.size))
        for i, waveform in enumerate(self.waveforms):
            envelope = envelope_by_peaks(waveform)
            envelopes[i] = np.interp(t, envelope.t, envelope.y)
        bands = np.quantile(envelopes, np.asarray(q, dtype=float), axis=0)
        return t, bands


def _evaluate_sample(
    seed: int,
    metric: Callable[[MismatchProfile], float],
    sigmas: MismatchSigmas,
) -> float:
    """One seeded draw -> metric value (module-level: picklable)."""
    profile = MismatchProfile.sample(seed=seed, sigmas=sigmas)
    return float(metric(profile))


def _evaluate_chain_sample(
    seed: int,
    carry,
    metric,
    sigmas: MismatchSigmas,
) -> Tuple[float, object]:
    """One seeded draw with a warm-start carry (module-level: picklable)."""
    profile = MismatchProfile.sample(seed=seed, sigmas=sigmas)
    value, next_carry = metric(profile, carry)
    return float(value), next_carry


def run_monte_carlo(
    metric: Callable,
    n_samples: int,
    metric_name: str = "metric",
    base_seed: int = 12345,
    sigmas: MismatchSigmas = DEFAULT_SIGMAS,
    batch: Optional[BatchOptions] = None,
    warm_start: bool = True,
) -> MonteCarloResult:
    """Evaluate ``metric`` on ``n_samples`` seeded mismatch draws.

    Sample ``i`` uses seed ``base_seed + i`` so individual samples'
    *draws* can be reproduced in isolation (and their values too,
    whenever the metric runs cold).  ``batch`` selects the execution
    policy (process parallelism needs a picklable ``metric``).

    Plain metrics take one ``MismatchProfile``; metrics decorated with
    :func:`chain_metric` take ``(profile, carry)`` and are threaded
    through :func:`~repro.campaigns.run_chain` so each sample reuses
    the previous sample's carry (e.g. its DC point) as a warm start —
    see the module docstring for the reproducibility trade involved.
    ``warm_start=False`` opts a chain metric out — every sample then
    runs cold with ``carry=None``, which is also what a parallel
    ``batch`` policy forces (workers have no sequential carry).
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    seeds = [base_seed + i for i in range(n_samples)]
    # A metric split into build/evaluate halves routes through the
    # transient-campaign front-end, which picks the execution strategy
    # (lockstep batch, shared-memory processes, plain loop) from the
    # BatchOptions policy.  Duck-type gate first, import second:
    # behavioural/scalar campaigns must not pay for (or depend on)
    # the circuits layer at all.
    is_spec = (
        hasattr(metric, "build")
        and hasattr(metric, "options")
        and hasattr(metric, "evaluate")
    )
    if is_spec:
        from ..campaigns.runner import wrap_task_error
        from ..campaigns.vectorized import (
            TransientMetricSpec,
            run_transient_campaign,
        )

        # A callable that merely happens to carry these attributes is
        # still a plain metric; only real specs take this path.
        is_spec = isinstance(metric, TransientMetricSpec)
    if is_spec:
        profiles = MismatchProfile.sample_many(
            n_samples, base_seed, sigmas
        ).profiles()
        results = run_transient_campaign(
            profiles, metric.build, metric.options, batch
        )
        values = np.empty(n_samples)
        waveforms = [] if metric.waveform is not None else None
        health: List = []
        for index, (profile, result) in enumerate(zip(profiles, results)):
            stats = getattr(result, "stats", None)
            if stats:
                for report in stats.get("health") or []:
                    # Attribute every report — including run-level ones
                    # filed with sample=None — to its campaign sample.
                    health.append(replace(report, sample=index))
            try:
                values[index] = float(metric.evaluate(profile, result))
                if waveforms is not None:
                    waveforms.append(metric.waveform(result))
            except BatchTaskError:
                raise
            except Exception as exc:
                raise wrap_task_error(
                    exc, index, profile, action="metric evaluation failed"
                ) from exc
        return MonteCarloResult(
            metric_name=metric_name if metric_name != "metric" else metric.name,
            values=values,
            seeds=seeds,
            waveforms=waveforms,
            health=health,
        )
    if getattr(metric, "supports_carry", False):
        if warm_start and (batch is None or not batch.parallel):
            worker = partial(_evaluate_chain_sample, metric=metric, sigmas=sigmas)
            values = np.asarray(run_chain(worker, seeds))
        else:
            cold = partial(
                _evaluate_chain_sample, carry=None, metric=metric, sigmas=sigmas
            )
            values = np.asarray(
                [value for value, _carry in run_batch(cold, seeds, batch)]
            )
    else:
        worker = partial(_evaluate_sample, metric=metric, sigmas=sigmas)
        values = np.asarray(run_batch(worker, seeds, batch))
    return MonteCarloResult(metric_name=metric_name, values=values, seeds=seeds)
