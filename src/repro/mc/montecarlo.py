"""Monte-Carlo campaign runner over mismatch instances.

Sample execution is delegated to the shared batch-campaign engine
(:mod:`repro.campaigns`), so MC runs can opt into process parallelism
with a :class:`~repro.campaigns.BatchOptions` without changing their
statistics: sample ``i`` always uses seed ``base_seed + i`` and
results always come back in sample order, whatever the scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..campaigns import BatchOptions, run_batch
from ..errors import ConfigurationError
from .mismatch import DEFAULT_SIGMAS, MismatchProfile, MismatchSigmas

__all__ = ["MonteCarloResult", "run_monte_carlo"]


@dataclass
class MonteCarloResult:
    """Per-sample metric values with summary statistics."""

    metric_name: str
    values: np.ndarray
    seeds: List[int]

    @property
    def n(self) -> int:
        return int(self.values.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.values, q))

    def fraction_true(self) -> float:
        """For boolean metrics: fraction of samples that were truthy."""
        return float(np.mean(self.values != 0.0))

    def summary(self) -> str:
        return (
            f"{self.metric_name}: n={self.n} mean={self.mean:.6g} "
            f"std={self.std:.3g} min={self.values.min():.6g} "
            f"max={self.values.max():.6g}"
        )


def _evaluate_sample(
    seed: int,
    metric: Callable[[MismatchProfile], float],
    sigmas: MismatchSigmas,
) -> float:
    """One seeded draw -> metric value (module-level: picklable)."""
    profile = MismatchProfile.sample(seed=seed, sigmas=sigmas)
    return float(metric(profile))


def run_monte_carlo(
    metric: Callable[[MismatchProfile], float],
    n_samples: int,
    metric_name: str = "metric",
    base_seed: int = 12345,
    sigmas: MismatchSigmas = DEFAULT_SIGMAS,
    batch: Optional[BatchOptions] = None,
) -> MonteCarloResult:
    """Evaluate ``metric`` on ``n_samples`` seeded mismatch draws.

    Sample ``i`` uses seed ``base_seed + i`` so individual samples can
    be reproduced in isolation.  ``batch`` selects the execution
    policy (process parallelism needs a picklable ``metric``).
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    seeds = [base_seed + i for i in range(n_samples)]
    worker = partial(_evaluate_sample, metric=metric, sigmas=sigmas)
    values = np.asarray(run_batch(worker, seeds, batch))
    return MonteCarloResult(metric_name=metric_name, values=values, seeds=seeds)
