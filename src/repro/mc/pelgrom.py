"""Pelgrom-law matching model: device area -> mismatch sigma.

Grounds the :class:`~repro.mc.mismatch.MismatchSigmas` defaults in
physics: the relative current-matching error of a pair of MOS devices
in saturation is::

    sigma(dI/I) = sqrt( (A_beta^2 + (2 A_vt / (Vgs - Vt))^2) / (W L) )

with the Pelgrom coefficients ``A_vt`` (mV*um) and ``A_beta`` (%*um)
of the technology.  For a 0.35 um flow, A_vt ~ 9 mV*um and
A_beta ~ 1.9 %*um are representative values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .mismatch import MismatchSigmas

__all__ = ["PelgromCoefficients", "current_mismatch_sigma", "sigmas_for_areas"]


@dataclass(frozen=True)
class PelgromCoefficients:
    """Technology matching coefficients.

    Attributes
    ----------
    a_vt:
        Threshold matching coefficient in V*um (9 mV*um -> 9e-3).
    a_beta:
        Beta matching coefficient, relative, in um (1.9 % -> 0.019).
    """

    a_vt: float = 9e-3
    a_beta: float = 0.019

    def __post_init__(self) -> None:
        if self.a_vt <= 0 or self.a_beta <= 0:
            raise ConfigurationError("Pelgrom coefficients must be positive")


def current_mismatch_sigma(
    area_um2: float,
    overdrive: float,
    coefficients: PelgromCoefficients = PelgromCoefficients(),
) -> float:
    """Relative current mismatch sigma of a device pair.

    Parameters
    ----------
    area_um2:
        Gate area ``W * L`` of one device in um^2.
    overdrive:
        ``Vgs - Vt`` of the mirror devices (saturation assumed).
    """
    if area_um2 <= 0:
        raise ConfigurationError("area must be positive")
    if overdrive <= 0:
        raise ConfigurationError("overdrive must be positive")
    vt_term = 2.0 * coefficients.a_vt / overdrive
    return math.sqrt(
        (coefficients.a_beta**2 + vt_term**2) / area_um2
    )


def sigmas_for_areas(
    prescale_area_um2: float = 20.0,
    fixed_mirror_area_um2: float = 60.0,
    binary_bit_area_um2: float = 12.0,
    gm_stage_area_um2: float = 8.0,
    overdrive: float = 0.35,
    coefficients: PelgromCoefficients = PelgromCoefficients(),
) -> MismatchSigmas:
    """Build :class:`MismatchSigmas` from device areas.

    The defaults are plausible layout choices for the Fig 5/6/7 blocks
    (output mirrors drawn large for matching, Gm switches small for
    speed) and land near the library's default sigmas — the point of
    this helper is to make that connection auditable.
    """
    return MismatchSigmas(
        prescale=current_mismatch_sigma(prescale_area_um2, overdrive, coefficients),
        fixed_mirror=current_mismatch_sigma(
            fixed_mirror_area_um2, overdrive, coefficients
        ),
        binary_bit=current_mismatch_sigma(
            binary_bit_area_um2, overdrive, coefficients
        ),
        gm_stage=current_mismatch_sigma(gm_stage_area_um2, overdrive, coefficients),
    )
