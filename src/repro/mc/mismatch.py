"""Mismatch model of the current-limitation DAC hardware (Fig 5–7).

The paper's measured transfer (Fig 13/14) deviates from the ideal
segment law because the prescaler ratios, the fixed mirror outputs, the
binary-weighted mirror bits, and the Gm stages are real transistors
with finite matching.  The tell-tale signature is the *negative*
relative step at code 96 — the boundary between segments 5 and 6 where
the prescaler switches from x4 to x8 and the binary DAC part drops from
60 to 0 units: a fraction-of-a-percent ratio error there flips the sign
of a 3.2 % ideal step... only at the boundary, exactly as measured.

:class:`MismatchProfile` carries one relative error per matched ratio;
:meth:`MismatchProfile.sample` draws a Monte-Carlo instance and
:meth:`MismatchProfile.measured_like` returns a fixed, documented
profile that reproduces the Fig 13/14 signature (including the
non-monotonic code 96).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .distributions import make_rng, relative_errors

__all__ = [
    "MismatchProfile",
    "MismatchDrawSet",
    "DEFAULT_SIGMAS",
    "MismatchSigmas",
]


@dataclass(frozen=True)
class MismatchSigmas:
    """Standard deviations of the relative matching errors.

    Values are typical for medium-size mirror devices in a 0.35 um
    flow (Pelgrom-style area scaling is left to the caller: larger
    sigma for the small prescaler devices, smaller for the wide output
    mirrors).
    """

    prescale: float = 0.008
    fixed_mirror: float = 0.005
    binary_bit: float = 0.01
    gm_stage: float = 0.02


DEFAULT_SIGMAS = MismatchSigmas()


@dataclass(frozen=True)
class MismatchDrawSet:
    """Struct-of-arrays Monte-Carlo draws: one row per sample.

    The batched campaign engine consumes whole campaigns at once, so
    the draws come stacked — ``prescale_errors[i]`` is row ``i``'s
    four prescaler errors, and :meth:`profile` reconstructs the exact
    :class:`MismatchProfile` that ``MismatchProfile.sample(seed=
    base_seed + i)`` would return (same per-seed generator, bit for
    bit — the equality is pinned by tests).
    """

    base_seed: int
    prescale_errors: np.ndarray  # (n, 4)
    fixed_mirror_errors: np.ndarray  # (n, 4)
    binary_bit_errors: np.ndarray  # (n, 7)
    gm_stage_errors: np.ndarray  # (n, 5)

    @property
    def n(self) -> int:
        return len(self.prescale_errors)

    def seed(self, i: int) -> int:
        return self.base_seed + i

    def profile(self, i: int) -> "MismatchProfile":
        """Row ``i`` as a scalar profile (== ``sample(base_seed + i)``)."""
        return MismatchProfile(
            prescale_errors=tuple(self.prescale_errors[i]),
            fixed_mirror_errors=tuple(self.fixed_mirror_errors[i]),
            binary_bit_errors=tuple(self.binary_bit_errors[i]),
            gm_stage_errors=tuple(self.gm_stage_errors[i]),
        )

    def profiles(self) -> List["MismatchProfile"]:
        return [self.profile(i) for i in range(self.n)]


@dataclass(frozen=True)
class MismatchProfile:
    """One mismatch instance of the full current-limitation path.

    All entries are *relative* errors: a ratio nominally ``r`` realizes
    as ``r * (1 + error)``.

    Attributes
    ----------
    prescale_errors:
        Errors of the four prescaler gains (x1, x2, x4, x8).
    fixed_mirror_errors:
        Errors of the fixed mirror outputs (16a, 16b, 32, 64 units).
    binary_bit_errors:
        Errors of the 7 binary-weighted mirror bits (LSB first).
    gm_stage_errors:
        Errors of the five Gm output stages (Gm, Gm, Gm, 2Gm, 4Gm).
    """

    prescale_errors: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    fixed_mirror_errors: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    binary_bit_errors: Tuple[float, ...] = (0.0,) * 7
    gm_stage_errors: Tuple[float, float, float, float, float] = (0.0,) * 5

    def __post_init__(self) -> None:
        if len(self.prescale_errors) != 4:
            raise ConfigurationError("need 4 prescale errors")
        if len(self.fixed_mirror_errors) != 4:
            raise ConfigurationError("need 4 fixed mirror errors")
        if len(self.binary_bit_errors) != 7:
            raise ConfigurationError("need 7 binary bit errors")
        if len(self.gm_stage_errors) != 5:
            raise ConfigurationError("need 5 gm stage errors")
        for group in (
            self.prescale_errors,
            self.fixed_mirror_errors,
            self.binary_bit_errors,
            self.gm_stage_errors,
        ):
            if any(e <= -1.0 for e in group):
                raise ConfigurationError("relative errors must be > -100 %")

    # -- constructors ------------------------------------------------------

    @classmethod
    def ideal(cls) -> "MismatchProfile":
        """A profile with zero errors (the ideal DAC)."""
        return cls()

    @classmethod
    def sample(
        cls,
        seed: Optional[int] = None,
        sigmas: MismatchSigmas = DEFAULT_SIGMAS,
        rng: Optional[np.random.Generator] = None,
    ) -> "MismatchProfile":
        """Draw a Monte-Carlo mismatch instance."""
        generator = rng if rng is not None else make_rng(seed)
        return cls(
            prescale_errors=tuple(relative_errors(generator, 4, sigmas.prescale)),
            fixed_mirror_errors=tuple(relative_errors(generator, 4, sigmas.fixed_mirror)),
            binary_bit_errors=tuple(relative_errors(generator, 7, sigmas.binary_bit)),
            gm_stage_errors=tuple(relative_errors(generator, 5, sigmas.gm_stage)),
        )

    @classmethod
    def sample_many(
        cls,
        n: int,
        base_seed: int,
        sigmas: MismatchSigmas = DEFAULT_SIGMAS,
    ) -> MismatchDrawSet:
        """Draw ``n`` seeded instances as struct-of-arrays.

        Row ``i`` uses seed ``base_seed + i`` — its own generator, so
        it is bitwise identical to ``sample(seed=base_seed + i,
        sigmas=sigmas)`` and any sample remains reproducible in
        isolation no matter how the campaign was executed.
        """
        if n <= 0:
            raise ConfigurationError("n must be positive")
        prescale = np.empty((n, 4))
        fixed = np.empty((n, 4))
        binary = np.empty((n, 7))
        gm = np.empty((n, 5))
        for i in range(n):
            rng = make_rng(base_seed + i)
            prescale[i] = relative_errors(rng, 4, sigmas.prescale)
            fixed[i] = relative_errors(rng, 4, sigmas.fixed_mirror)
            binary[i] = relative_errors(rng, 7, sigmas.binary_bit)
            gm[i] = relative_errors(rng, 5, sigmas.gm_stage)
        return MismatchDrawSet(
            base_seed=base_seed,
            prescale_errors=prescale,
            fixed_mirror_errors=fixed,
            binary_bit_errors=binary,
            gm_stage_errors=gm,
        )

    @classmethod
    def measured_like(cls) -> "MismatchProfile":
        """A fixed profile reproducing the Fig 13/14 measurement signature.

        The x8 prescaler gain is 2.5 % low and the x4 gain 1.8 % high;
        at the segment 5 -> 6 boundary (code 95 -> 96) the ideal +3.23 %
        step becomes ≈ -1 %, exactly the non-monotonic code the paper
        reports ("value for code 96 is negative").  All other errors
        are a few tenths of a percent, so every other boundary stays
        monotonic.
        """
        return cls(
            prescale_errors=(0.0, 0.002, 0.018, -0.025),
            fixed_mirror_errors=(0.003, -0.002, 0.004, -0.003),
            binary_bit_errors=(0.004, -0.003, 0.002, -0.002, 0.003, -0.004, 0.005),
            gm_stage_errors=(0.01, -0.008, 0.005, -0.004, 0.006),
        )

    # -- realized ratios ------------------------------------------------------

    def prescale_gain(self, nominal_factor: int) -> float:
        """Realized prescaler gain for a nominal factor in {1, 2, 4, 8}."""
        try:
            index = (1, 2, 4, 8).index(nominal_factor)
        except ValueError:
            raise ConfigurationError(
                f"prescale factor must be 1, 2, 4 or 8, got {nominal_factor}"
            ) from None
        return nominal_factor * (1.0 + self.prescale_errors[index])

    def fixed_mirror_units(self, enabled_mask: int) -> float:
        """Realized fixed-mirror output (units) for an OscE mask."""
        nominal = (16.0, 16.0, 32.0, 64.0)
        total = 0.0
        for bit in range(4):
            if enabled_mask & (1 << bit):
                total += nominal[bit] * (1.0 + self.fixed_mirror_errors[bit])
        return total

    def binary_units(self, osc_f: int) -> float:
        """Realized binary-weighted mirror output (units) for OscF."""
        if not 0 <= osc_f <= 0b1111111:
            raise ConfigurationError("OscF outside 7 bits")
        total = 0.0
        for bit in range(7):
            if osc_f & (1 << bit):
                total += float(1 << bit) * (1.0 + self.binary_bit_errors[bit])
        return total

    def gm_gain(self, enabled_mask: int) -> float:
        """Realized relative Gm of the enabled stages (stage 0 always on)."""
        weights = (1.0, 1.0, 1.0, 2.0, 4.0)
        total = weights[0] * (1.0 + self.gm_stage_errors[0])
        for bit in range(4):
            if enabled_mask & (1 << bit):
                total += weights[bit + 1] * (1.0 + self.gm_stage_errors[bit + 1])
        return total
