"""Random draws for mismatch modelling.

Relative matching errors of identically-drawn devices are modelled as
zero-mean normal variables, optionally truncated to guard against
unphysical tail draws (a mirror ratio cannot be negative).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["relative_errors", "make_rng"]


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """A numpy Generator with an explicit, reproducible seed."""
    return np.random.default_rng(seed)


def relative_errors(
    rng: np.random.Generator,
    n: int,
    sigma: float,
    truncate_at: float = 4.0,
) -> np.ndarray:
    """Draw ``n`` zero-mean relative errors with std ``sigma``.

    Draws beyond ``truncate_at`` sigmas are redrawn (rejection), which
    keeps ratios positive for any realistic sigma.
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    if sigma < 0:
        raise ConfigurationError("sigma must be non-negative")
    if truncate_at <= 0:
        raise ConfigurationError("truncate_at must be positive")
    if sigma == 0.0 or n == 0:
        return np.zeros(n)
    out = rng.normal(0.0, sigma, size=n)
    bad = np.abs(out) > truncate_at * sigma
    while bad.any():
        out[bad] = rng.normal(0.0, sigma, size=int(bad.sum()))
        bad = np.abs(out) > truncate_at * sigma
    return out
