"""Monte-Carlo and mismatch modelling."""

from .distributions import make_rng, relative_errors
from .mismatch import DEFAULT_SIGMAS, MismatchProfile, MismatchSigmas
from .pelgrom import PelgromCoefficients, current_mismatch_sigma, sigmas_for_areas
from .montecarlo import MonteCarloResult, chain_metric, run_monte_carlo

__all__ = [
    "make_rng",
    "relative_errors",
    "DEFAULT_SIGMAS",
    "MismatchProfile",
    "MismatchSigmas",
    "PelgromCoefficients",
    "current_mismatch_sigma",
    "sigmas_for_areas",
    "MonteCarloResult",
    "chain_metric",
    "run_monte_carlo",
]
