"""Monte-Carlo and mismatch modelling."""

from .distributions import make_rng, relative_errors
from .mismatch import DEFAULT_SIGMAS, MismatchProfile, MismatchSigmas
from .pelgrom import PelgromCoefficients, current_mismatch_sigma, sigmas_for_areas
from .montecarlo import MonteCarloResult, run_monte_carlo

__all__ = [
    "make_rng",
    "relative_errors",
    "DEFAULT_SIGMAS",
    "MismatchProfile",
    "MismatchSigmas",
    "PelgromCoefficients",
    "current_mismatch_sigma",
    "sigmas_for_areas",
    "MonteCarloResult",
    "run_monte_carlo",
]
