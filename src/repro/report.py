"""Assemble the benchmark artifacts into one reproduction report.

Usage (after ``pytest benchmarks/ --benchmark-only``)::

    python -m repro.report [results_dir] [output_file]

Collects every ``benchmarks/results/*.txt`` artifact in the paper's
figure/table order and writes a single ``REPORT.txt`` that mirrors the
structure of the paper's evaluation section.
"""

from __future__ import annotations

import pathlib
import sys
from typing import List, Optional, Sequence

__all__ = ["ARTIFACT_ORDER", "assemble_report", "main"]

#: Artifacts in the order the paper presents them.
ARTIFACT_ORDER: Sequence[str] = (
    "fig02_driver_iv",
    "fig03_dac_transfer",
    "fig04_relative_step",
    "table1_control_codes",
    "fig13_current_limitation",
    "fig14_relative_step_measured",
    "fig15_regulation_steps",
    "fig16_startup",
    "fig17_supply_loss_current",
    "fig18_supply_loss_voltage",
    "sec7_fault_coverage",
    "sec9_current_consumption",
    "emc_harmonics",
    "transistor_dac",
    "corners_supply_loss",
    "locking_budget",
    "ablation_window_width",
    "ablation_dac_laws",
    "ablation_output_stage",
    "ablation_startup_code",
    "ablation_nvm_preset",
)

_HEADER = """\
Reproduction report — Horsky, "LC Oscillator Driver for Safety
Critical Applications", DATE 2005.

Generated from benchmarks/results/ (run `pytest benchmarks/
--benchmark-only` first).  Each section below is the regenerated
counterpart of one table or figure of the paper; the assertions that
verify it live in the bench of the same name.
"""


def assemble_report(results_dir: pathlib.Path) -> str:
    """Concatenate the artifacts in paper order.

    Missing artifacts are listed at the end rather than failing, so a
    partial bench run still produces a useful report.
    """
    sections: List[str] = [_HEADER]
    missing: List[str] = []
    for name in ARTIFACT_ORDER:
        path = results_dir / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        bar = "=" * 70
        sections.append(f"{bar}\n{name}\n{bar}\n{path.read_text().rstrip()}\n")
    # Any extra artifacts not in the canonical order.
    known = {f"{name}.txt" for name in ARTIFACT_ORDER}
    for path in sorted(results_dir.glob("*.txt")):
        if path.name not in known:
            bar = "=" * 70
            sections.append(f"{bar}\n{path.stem}\n{bar}\n{path.read_text().rstrip()}\n")
    if missing:
        sections.append(
            "MISSING ARTIFACTS (bench not run?): " + ", ".join(missing)
        )
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    results_dir = pathlib.Path(args[0]) if args else pathlib.Path("benchmarks/results")
    output = pathlib.Path(args[1]) if len(args) > 1 else pathlib.Path("REPORT.txt")
    if not results_dir.is_dir():
        print(f"error: results directory {results_dir} not found", file=sys.stderr)
        return 1
    report = assemble_report(results_dir)
    output.write_text(report)
    print(f"wrote {output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
