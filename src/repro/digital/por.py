"""Power-on-reset model.

Generates a reset that asserts while the supply is below a threshold
and releases a fixed delay after the supply is good, as the startup
sequencing of the oscillator expects.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import ConfigurationError

__all__ = ["PowerOnReset"]


class PowerOnReset:
    """Threshold + delay POR, driven by explicit (time, vdd) samples."""

    def __init__(self, threshold: float = 2.4, release_delay: float = 10e-6):
        if threshold <= 0:
            raise ConfigurationError("POR threshold must be positive")
        if release_delay < 0:
            raise ConfigurationError("release delay must be >= 0")
        self.threshold = float(threshold)
        self.release_delay = float(release_delay)
        self._good_since = None  # type: float | None

    def update(self, time: float, vdd: float) -> bool:
        """Feed a supply sample; returns True while reset is asserted."""
        if vdd < self.threshold:
            self._good_since = None
            return True
        if self._good_since is None:
            self._good_since = float(time)
        return (time - self._good_since) < self.release_delay

    @property
    def supply_good_since(self):
        """Time the supply last became good, or None."""
        return self._good_since

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """The known reset-release time, for adaptive stepping.

        Once the supply is good the release fires exactly
        ``release_delay`` after ``supply_good_since``; exposing it
        through the shared ``breakpoints`` hook lets startup scenarios
        land an adaptive step on the release edge without hand-listing
        it.
        """
        if self._good_since is None:
            return ()
        release = self._good_since + self.release_delay
        return (release,) if release <= t_stop else ()
