"""Behavioural non-volatile memory holding the amplitude preset code.

The paper (§4): a power-on-reset sets the current limitation to code
105; a few microseconds later the NVM is read and the code jumps to a
predefined value to speed up amplitude settling.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError

__all__ = ["NonVolatileMemory"]


class NonVolatileMemory:
    """A tiny word-addressable NVM with a read latency.

    Only the amplitude preset word is used by the oscillator, but the
    model is generic enough for the rest of the product family.
    """

    #: Address of the oscillator amplitude preset code.
    ADDR_AMPLITUDE_CODE = 0x00

    def __init__(self, read_latency: float = 2e-6):
        if read_latency < 0:
            raise ConfigurationError("read latency must be >= 0")
        self.read_latency = float(read_latency)
        self._words: Dict[int, int] = {}

    def program(self, address: int, value: int) -> None:
        """Factory programming of a word (0..255)."""
        if not 0 <= value <= 255:
            raise ConfigurationError("NVM stores 8-bit words")
        if address < 0:
            raise ConfigurationError("address must be non-negative")
        self._words[address] = int(value)

    def read(self, address: int) -> int:
        """Read a word; unprogrammed cells read as erased (0xFF)."""
        return self._words.get(address, 0xFF)

    def program_amplitude_code(self, code: int) -> None:
        if not 0 <= code <= 127:
            raise ConfigurationError("amplitude code must be a 7-bit value")
        self.program(self.ADDR_AMPLITUDE_CODE, code)

    def read_amplitude_code(self) -> int:
        """The preset code, clamped into the 7-bit DAC range."""
        return min(self.read(self.ADDR_AMPLITUDE_CODE), 127)
