"""A minimal discrete-event simulation kernel.

Used for the digital side of the oscillator (regulation tick, watchdog
timeout, POR/NVM sequencing).  Events are callbacks scheduled at
absolute times; ties are broken by insertion order so behaviour is
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventScheduler", "RecurringEvent"]


class EventScheduler:
    """Deterministic event queue with absolute-time scheduling."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (t={time:g} < now={self._now:g})"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.schedule_at(self._now + delay, callback)

    def run_until(self, t_stop: float) -> int:
        """Execute all events up to and including ``t_stop``.

        Returns the number of events executed and leaves ``now`` at
        ``t_stop``.
        """
        if t_stop < self._now:
            raise SimulationError("t_stop is in the past")
        executed = 0
        while self._queue and self._queue[0][0] <= t_stop:
            time, _seq, callback = heapq.heappop(self._queue)
            self._now = time
            callback()
            executed += 1
        self._now = t_stop
        return executed

    def run_next(self) -> bool:
        """Execute the single next event; returns False if queue empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self._now = time
        callback()
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """Pending event times up to ``t_stop``, for adaptive stepping.

        The hook consumed by :func:`~repro.circuits.stepcontrol.
        collect_breakpoints`: a mixed-signal scenario hands its
        scheduler to ``TransientOptions(breakpoint_sources=...)`` and
        the analog engine lands a step boundary exactly on every
        queued digital event instead of integrating across it.  Only
        *currently scheduled* events are known (a recurring event
        enumerates its own future ticks via
        :meth:`RecurringEvent.breakpoints`).
        """
        return tuple(
            sorted(time for time, _seq, _cb in self._queue if time <= t_stop)
        )


class RecurringEvent:
    """A periodic callback (e.g. the 1 ms regulation tick).

    The callback receives the scheduler time.  Cancelling stops future
    occurrences.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        period: float,
        callback: Callable[[float], None],
        start_delay: Optional[float] = None,
    ):
        if period <= 0:
            raise SimulationError("period must be positive")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._cancelled = False
        first = period if start_delay is None else start_delay
        self._next_fire = scheduler.now + first
        scheduler.schedule_after(first, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback(self._scheduler.now)
        self._next_fire = self._scheduler.now + self._period
        self._scheduler.schedule_after(self._period, self._fire)

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """All future tick times up to ``t_stop`` (adaptive stepping).

        Unlike the scheduler — which only sees the *next* occurrence,
        because each tick schedules its successor — the recurring
        event knows its whole comb of future firings from its period.
        Capped defensively for very fast tickers over long windows.
        """
        if self._cancelled:
            return ()
        out: List[float] = []
        t = self._next_fire
        while t <= t_stop and len(out) < 10_000:
            out.append(t)
            t += self._period
        return tuple(out)
