"""Missing-clock timeout circuit (paper §7, "Missing oscillations").

A fast comparator across the LC1/LC2 pins produces a clock; this
watchdog flags a failure when no clock edge arrives within the timeout.
It is written time-explicitly (``kick(t)`` / ``expired(t)``) so it can
be driven both from the event kernel and from the fixed-tick system
simulation.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import ConfigurationError

__all__ = ["WatchdogTimer"]


class WatchdogTimer:
    """Retriggerable timeout detector."""

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ConfigurationError("watchdog timeout must be positive")
        self.timeout = float(timeout)
        self._last_kick = 0.0
        self._armed = False
        self._latched = False

    def arm(self, time: float) -> None:
        """Start supervision at ``time`` (e.g. driver enable)."""
        self._armed = True
        self._latched = False
        self._last_kick = float(time)

    def disarm(self) -> None:
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def kick(self, time: float) -> None:
        """Record a clock edge at ``time``."""
        if not self._armed:
            return
        if time >= self._last_kick:
            self._last_kick = float(time)

    def expired(self, time: float) -> bool:
        """True if the timeout elapsed without a kick (latched)."""
        if not self._armed:
            return False
        if self._latched:
            return True
        if time - self._last_kick > self.timeout:
            self._latched = True
        return self._latched

    def clear(self, time: float) -> None:
        """Clear a latched failure and restart supervision."""
        self._latched = False
        self._last_kick = float(time)

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """The pending timeout deadline, for adaptive stepping.

        An armed, unlatched watchdog will trip at ``last_kick +
        timeout`` unless a clock edge arrives first; handing the timer
        to ``TransientOptions(breakpoint_sources=...)`` forces a step
        boundary exactly there, so a missing-clock detection is not
        smeared across one long adaptive step.
        """
        if not self._armed or self._latched:
            return ()
        deadline = self._last_kick + self.timeout
        return (deadline,) if deadline <= t_stop else ()
