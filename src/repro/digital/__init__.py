"""Digital building blocks: event kernel, watchdog, NVM, POR."""

from .events import EventScheduler, RecurringEvent
from .nvm import NonVolatileMemory
from .por import PowerOnReset
from .watchdog import WatchdogTimer

__all__ = [
    "EventScheduler",
    "RecurringEvent",
    "NonVolatileMemory",
    "PowerOnReset",
    "WatchdogTimer",
]
