"""Numerical health primitives: reports and cheap condition estimation.

The health layer (ISSUE 8) turns *silent* numerical failure into
structured, inspectable records.  This module is its vocabulary:

* :class:`HealthReport` — one observed violation (a non-finite
  solution, an ill-conditioned factorization, a residual that does
  not certify, a broken grid invariant).  Engines collect them in
  ``stats["health"]``; campaigns aggregate them per sample into
  :class:`~repro.mc.montecarlo.MonteCarloResult`.
* :func:`invnorm1_estimate` — Hager/Higham 1-norm estimation of
  ``||A^-1||_1`` from a handful of solves against a cached
  factorization, so ``cond_1(A) ~= ||A||_1 * est`` costs a few
  triangular solves instead of an O(n^3) refactorization.

Everything here is *read-only* with respect to solver state: a guard
may solve against an existing factorization but never mutates the
iterate, the companion states, or the factorization itself.  That is
what keeps healthy armed runs bit-identical to unarmed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "HealthReport",
    "CONDITION_LIMIT",
    "invnorm1_estimate",
    "condest_from_solves",
    "check_grid_invariants",
    "nonfinite_sample_rows",
]

#: Default estimated-1-norm condition number above which a
#: factorization is flagged (and, in the batched engine, the offending
#: sample quarantined).  At cond ~1e13 a double-precision solve has at
#: most ~3 trustworthy digits left — past the point where a waveform
#: metric means anything, while still clear of the ~1e9..1e11 range
#: that stiff-but-legitimate RC/RL netlists reach.
CONDITION_LIMIT = 1e13


@dataclass
class HealthReport:
    """One observed numerical-health violation.

    Attributes
    ----------
    kind:
        ``"nonfinite"`` (NaN/Inf in a solution or state),
        ``"ill_conditioned"`` (factorization condition estimate over
        the limit), ``"residual"`` (accepted-step residual failed to
        certify), ``"state"`` (reactive charge/flux inconsistency),
        ``"grid"`` (time-grid invariant broken), ``"preflight"``
        (carried over from netlist lint), ``"condest_skipped"`` (the
        active backend keeps no direct factorization to estimate
        conditioning against).
    severity:
        ``"error"`` for violations that invalidate the waveform,
        ``"warning"`` for degradations the solve survived, ``"info"``
        for notes that flag no degradation at all (a guard that
        skipped).
    time:
        Simulation time of the observation, when stepwise.
    sample:
        Batched/campaign sample index, when per-sample.
    value:
        The offending magnitude (residual norm, condition estimate,
        ...), when one exists.
    """

    kind: str
    message: str
    severity: str = "error"
    time: Optional[float] = None
    sample: Optional[int] = None
    value: Optional[float] = None


def invnorm1_estimate(
    solve: Callable[[np.ndarray], np.ndarray],
    solve_t: Callable[[np.ndarray], np.ndarray],
    n: int,
    max_iter: int = 5,
) -> float:
    """Hager's estimate of ``||A^-1||_1`` from solves with A and A^T.

    Classic power-style iteration on the unit 1-norm ball (Hager 1984,
    as refined by Higham): each round costs one solve with ``A`` and
    one with ``A^T``; converges in 2-3 rounds for almost every matrix.
    Returns ``inf`` when any solve produces non-finite values — a
    poisoned factorization is the worst possible conditioning.
    """
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    estimate = 0.0
    for _ in range(max_iter):
        y = solve(x)
        if not np.isfinite(y).all():
            return float("inf")
        new_estimate = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0.0] = 1.0
        z = solve_t(xi)
        if not np.isfinite(z).all():
            return float("inf")
        j = int(np.argmax(np.abs(z)))
        if abs(z[j]) <= float(z.dot(x)) + 1e-300:
            # Stationary point of the local linearization: converged.
            estimate = max(estimate, new_estimate)
            break
        estimate = max(estimate, new_estimate)
        x = np.zeros(n)
        x[j] = 1.0
    return estimate


def condest_from_solves(
    norm1: float,
    solve: Callable[[np.ndarray], np.ndarray],
    solve_t: Callable[[np.ndarray], np.ndarray],
    n: int,
) -> float:
    """1-norm condition estimate ``||A||_1 * est(||A^-1||_1)``."""
    if not np.isfinite(norm1):
        return float("inf")
    return float(norm1) * invnorm1_estimate(solve, solve_t, n)


def check_grid_invariants(times: np.ndarray, t_stop: float, health: list) -> None:
    """Certify the finished recording's time-grid invariants.

    Shared by the per-sample and lockstep engines: the recorded grid
    must be finite, strictly increasing, and must not overshoot
    ``t_stop`` (beyond float round-off).
    """
    if times.size > 1 and float(np.diff(times).min()) <= 0.0:
        health.append(
            HealthReport("grid", "recorded time grid is not strictly increasing")
        )
    if times.size and not np.isfinite(times).all():
        health.append(
            HealthReport("grid", "recorded time grid contains NaN/Inf")
        )
    if times.size:
        overshoot = float(times[-1]) - t_stop
        if overshoot > 1e-9 * t_stop:
            health.append(
                HealthReport(
                    "grid",
                    f"final time {float(times[-1])!r} overshoots "
                    f"t_stop={t_stop!r}",
                    value=overshoot,
                )
            )


def nonfinite_sample_rows(x: np.ndarray, eligible: Optional[np.ndarray] = None):
    """Indices of batched samples whose rows contain NaN/Inf.

    ``x`` is the ``(S, n)`` stacked solution of the lockstep engine;
    ``eligible`` optionally masks out samples already quarantined so a
    dead sample's frozen garbage is not re-reported every step.
    """
    finite = np.isfinite(x).all(axis=-1)
    if eligible is not None:
        bad = ~finite & eligible
    else:
        bad = ~finite
    return np.flatnonzero(bad)
